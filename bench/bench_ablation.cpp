/**
 * @file
 * Ablation studies for the design choices the paper discusses in prose:
 *
 *  1. Adjacent vs fixed base element (§V-B: "using the adjacent element as
 *     a base element shows better energy reduction").
 *  2. ZDR constant choice (§IV-A: 0x40000000-style constants beat 0x0 and
 *     small-offset constants; here we compare against disabling the remap).
 *  3. Universal stage count (2 vs 3 vs 4 stages on 32-byte transactions).
 *  4. BD-Encoding similarity threshold sensitivity (§VI-D).
 */

#include <cstdio>

#include "common/table.h"
#include "core/base_xor.h"
#include "core/codec_factory.h"
#include "core/bd_encoding.h"
#include "core/universal_xor.h"
#include "channel/channel_eval.h"
#include "suite_eval.h"
#include "workloads/apps.h"
#include "workloads/patterns.h"

namespace {

/** Mean normalized ones of @p codec over the whole GPU population. */
double
meanOnes(bxt::Codec &codec, std::vector<bxt::App> &apps)
{
    using namespace bxt;
    double sum = 0.0;
    for (App &app : apps) {
        const std::vector<Transaction> trace =
            generateTrace(app, defaultTraceLength / 2);
        const ChannelEvalResult r = evalCodecOnStream(codec, trace, 32);
        sum += r.normalizedOnes();
    }
    return sum / static_cast<double>(apps.size()) * 100.0;
}

} // namespace

int
main()
{
    using namespace bxt;

    std::printf("%s", banner("Ablations (normalized # of 1 values, GPU "
                             "population)").c_str());

    Table table({"study", "variant", "ones %"});

    {
        std::vector<App> apps = buildGpuSuite();
        BaseXorCodec adjacent(4, true, true);
        table.addRow({"base element", "adjacent (paper)",
                      Table::cell(meanOnes(adjacent, apps))});
    }
    {
        std::vector<App> apps = buildGpuSuite();
        BaseXorCodec fixed(4, true, false);
        table.addRow({"base element", "fixed element0",
                      Table::cell(meanOnes(fixed, apps))});
    }
    // The paper's §V-B claim (adjacent bases beat a fixed base) holds on
    // drifting-walk data where similarity decays with element distance;
    // on zero-interspersed data a fixed base is more robust because an
    // adjacent zero destroys the next element's base. Both shown.
    {
        PatternPtr drift = makeSoaFloatPattern(1.0e3, 3.0e-2, 777, 14);
        Rng rng(778);
        std::vector<Transaction> stream;
        for (int i = 0; i < 20000; ++i) {
            Transaction tx(32);
            drift->fill(rng, tx.bytes());
            stream.push_back(tx);
        }
        BaseXorCodec adjacent(4, true, true);
        BaseXorCodec fixed(4, true, false);
        table.addRow({"base element (drift only)", "adjacent (paper)",
                      Table::cell(evalCodecOnStream(adjacent, stream, 32)
                                      .normalizedOnes() *
                                  100.0)});
        table.addRow({"base element (drift only)", "fixed element0",
                      Table::cell(evalCodecOnStream(fixed, stream, 32)
                                      .normalizedOnes() *
                                  100.0)});
    }
    {
        std::vector<App> apps = buildGpuSuite();
        UniversalXorCodec no_zdr(3, false);
        table.addRow({"zero remap", "universal, ZDR off",
                      Table::cell(meanOnes(no_zdr, apps))});
    }
    {
        std::vector<App> apps = buildGpuSuite();
        UniversalXorCodec with_zdr(3, true);
        table.addRow({"zero remap", "universal, ZDR on (paper)",
                      Table::cell(meanOnes(with_zdr, apps))});
    }
    for (unsigned stages = 2; stages <= 4; ++stages) {
        std::vector<App> apps = buildGpuSuite();
        UniversalXorCodec codec(stages, true);
        table.addRow({"universal stages",
                      std::to_string(stages) + " stages",
                      Table::cell(meanOnes(codec, apps))});
    }
    // DBI-DC vs DBI-AC (paper footnote 3): on a terminated POD bus the
    // DC variant is the right choice because 1 values, not transitions,
    // dominate; AC minimizes toggles instead.
    {
        std::vector<App> apps = buildGpuSuite();
        std::uint64_t dc_ones = 0, dc_toggles = 0;
        std::uint64_t ac_ones = 0, ac_toggles = 0;
        std::uint64_t raw_ones = 0, raw_toggles = 0;
        for (App &app : apps) {
            const auto trace = generateTrace(app, defaultTraceLength / 4);
            CodecPtr baseline = makeCodec("baseline");
            CodecPtr dc = makeCodec("dbi1");
            CodecPtr ac = makeCodec("dbi-ac1");
            const auto rb = evalCodecOnStream(*baseline, trace, 32);
            const auto rd = evalCodecOnStream(*dc, trace, 32);
            const auto ra = evalCodecOnStream(*ac, trace, 32);
            raw_ones += rb.stats.ones();
            raw_toggles += rb.stats.toggles();
            dc_ones += rd.stats.ones();
            dc_toggles += rd.stats.toggles();
            ac_ones += ra.stats.ones();
            ac_toggles += ra.stats.toggles();
        }
        auto pct = [](std::uint64_t v, std::uint64_t base) {
            return 100.0 * static_cast<double>(v) /
                   static_cast<double>(base);
        };
        table.addRow({"dbi variant (ones)", "DBI-DC (GDDR5X)",
                      Table::cell(pct(dc_ones, raw_ones))});
        table.addRow({"dbi variant (ones)", "DBI-AC",
                      Table::cell(pct(ac_ones, raw_ones))});
        table.addRow({"dbi variant (toggles)", "DBI-DC (GDDR5X)",
                      Table::cell(pct(dc_toggles, raw_toggles))});
        table.addRow({"dbi variant (toggles)", "DBI-AC",
                      Table::cell(pct(ac_toggles, raw_toggles))});
    }
    for (unsigned threshold : {6u, 12u, 24u}) {
        std::vector<App> apps = buildGpuSuite();
        BdEncodingCodec codec(64, threshold, 4);
        table.addRow({"bd threshold", std::to_string(threshold) + " bits",
                      Table::cell(meanOnes(codec, apps))});
    }

    std::printf("%s", table.render().c_str());
    return 0;
}
