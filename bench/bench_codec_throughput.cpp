/**
 * @file
 * Software throughput of the codec layer and the batch-evaluation engine.
 *
 * Two parts:
 *  1. google-benchmark microbenches: encode/decode round-trips on 32-byte
 *     transactions, in the allocating (`encode`) and allocation-free
 *     (`encodeInto`) forms, on patterned and random data.
 *  2. An end-to-end suite sweep (the workload every figure bench runs):
 *     full GPU population x paper scheme set, executed serially and then
 *     on the parallel engine. Reports GB/s for both, asserts that the
 *     parallel BusStats are bit-identical to the serial run, and emits
 *     `BENCH_codec_throughput.json` for CI tracking.
 *  3. A batch-vs-scalar kernel sweep: encode+decode throughput of the
 *     batch hot path (encodeBatch / decodeBatch) against the scalar
 *     reference loop at batch sizes 1/8/64/512/4096, after asserting the
 *     two paths produce field-identical BusStats through the full eval
 *     pipeline. `--batch-min-speedup F` turns the best batch>=512
 *     speedup into a CI gate.
 *  4. A SIMD dispatch-level sweep: per spec and batch size, encode-only
 *     and decode-only throughput at every available kernel level (word
 *     and up; a forced BXT_SIMD pins the sweep to that single level).
 *     `--simd-min-speedup F` gates the xor4+zdr encode batch-512 speedup
 *     of the best SIMD level over the word baseline, and skips with a
 *     note on hosts with no vector level.
 *
 * Not a paper artifact — it documents that the library is fast enough to
 * sit in a simulator's memory-controller path.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "channel/channel_eval.h"
#include "common/error.h"
#include "common/parallel.h"
#include "core/batch.h"
#include "core/codec_factory.h"
#include "core/simd/simd.h"
#include "suite_eval.h"
#include "workloads/apps.h"
#include "workloads/patterns.h"

namespace {

using namespace bxt;

std::vector<Transaction>
makeInput(bool random_data, std::size_t count)
{
    PatternPtr pattern =
        random_data ? makeRandomPattern(7)
                    : makeSoaFloatPattern(1.0e3, 1.0e-3, 7);
    Rng rng(11);
    std::vector<Transaction> txs;
    txs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Transaction tx(32);
        pattern->fill(rng, tx.bytes());
        txs.push_back(tx);
    }
    return txs;
}

void
BM_RoundTrip(benchmark::State &state, const std::string &spec,
             bool random_data)
{
    CodecPtr codec = makeCodec(spec);
    const std::vector<Transaction> input = makeInput(random_data, 256);

    std::size_t i = 0;
    for (auto _ : state) {
        const Encoded enc = codec->encode(input[i % input.size()]);
        const Transaction back = codec->decode(enc);
        benchmark::DoNotOptimize(back.data());
        ++i;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            32);
}

/** The allocation-free hot path: scratch Encoded/Transaction reuse. */
void
BM_RoundTripInto(benchmark::State &state, const std::string &spec,
                 bool random_data)
{
    CodecPtr codec = makeCodec(spec);
    const std::vector<Transaction> input = makeInput(random_data, 256);

    Encoded enc;
    Transaction back;
    std::size_t i = 0;
    for (auto _ : state) {
        codec->encodeInto(input[i % input.size()], enc);
        codec->decodeInto(enc, back);
        benchmark::DoNotOptimize(back.data());
        ++i;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            32);
}

/** Transactions per app in the end-to-end sweep (kept short for CI). */
constexpr std::size_t sweepTxPerApp = 512;

struct SweepRun
{
    double seconds = 0.0;
    double gbPerSecond = 0.0;
    std::vector<AppResult> results;
};

SweepRun
runSweep(unsigned threads, const std::vector<std::string> &specs,
         std::size_t *bytes_out)
{
    // Rebuild the population each run: equal seeds give bit-identical
    // traces, which is what makes serial-vs-parallel comparable.
    std::vector<App> apps = buildGpuSuite();

    std::size_t bytes = 0;
    for (const App &app : apps)
        bytes += app.txBytes * sweepTxPerApp * specs.size();
    if (bytes_out != nullptr)
        *bytes_out = bytes;

    const auto start = std::chrono::steady_clock::now();
    SweepRun run;
    run.results = evalSuite(apps, specs, sweepTxPerApp, threads);
    const auto stop = std::chrono::steady_clock::now();
    run.seconds =
        std::chrono::duration<double>(stop - start).count();
    run.gbPerSecond = static_cast<double>(bytes) / run.seconds / 1.0e9;
    return run;
}

bool
identicalResults(const std::vector<AppResult> &a,
                 const std::vector<AppResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].app != b[i].app || a[i].rawOnes != b[i].rawOnes ||
            a[i].mixedRatio != b[i].mixedRatio ||
            a[i].stats != b[i].stats)
            return false;
    }
    return true;
}

/** Specs the batch-vs-scalar sweep times (one per kernel family). */
const std::vector<std::string> batchSweepSpecs = {
    "baseline", "xor4+zdr", "universal3+zdr", "dbi4",
    "universal3+zdr|dbi1"};

/** Batch sizes swept; 1 isolates the per-call overhead. */
const std::vector<std::size_t> batchSweepSizes = {1, 8, 64, 512, 4096};

/** Transactions per timed run (32-byte GPU sectors). */
constexpr std::size_t batchSweepTx = 16384;

struct BatchRow
{
    std::string spec;
    std::size_t batchTx = 0; ///< 0 = the scalar reference loop.
    double seconds = 0.0;
    double txPerSecond = 0.0;
    double speedup = 1.0; ///< vs the same spec's scalar row.
};

/** Best wall-clock of three codec-only round-trip passes over @p stream. */
double
timeScalarRoundTrips(const std::string &spec,
                     const std::vector<Transaction> &stream)
{
    double best = 1.0e30;
    for (int rep = 0; rep < 3; ++rep) {
        CodecPtr codec = makeCodec(spec);
        Encoded enc;
        Transaction back;
        const auto start = std::chrono::steady_clock::now();
        for (const Transaction &tx : stream) {
            codec->encodeInto(tx, enc);
            codec->decodeInto(enc, back);
            benchmark::DoNotOptimize(back.data());
        }
        const auto stop = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(stop - start).count());
    }
    return best;
}

double
timeBatchRoundTrips(const std::string &spec,
                    const std::vector<Transaction> &stream,
                    std::size_t batch_tx)
{
    // Batch consumers (bxtd frames, materialized traces) hold the
    // transactions as one flat plane already, so the timed region fills
    // each TxBatch with append() from a pre-flattened copy rather than
    // paying a per-transaction push loop the real hot path never runs.
    const std::size_t tx_bytes = stream[0].size();
    std::vector<std::uint8_t> plane(stream.size() * tx_bytes);
    for (std::size_t i = 0; i < stream.size(); ++i)
        std::memcpy(plane.data() + i * tx_bytes, stream[i].data(),
                    tx_bytes);

    // Mirror evalBatched's cache blocking: chunks are capped at one
    // L1/L2-resident tile so large nominal batches do not thrash the
    // encode plane + encoded copy through L2.
    const std::size_t tile_tx = std::min(batch_tx, batchTileTx(tx_bytes));
    double best = 1.0e30;
    for (int rep = 0; rep < 3; ++rep) {
        CodecPtr codec = makeCodec(spec);
        TxBatch batch(tx_bytes, tile_tx);
        EncodedBatch enc;
        TxBatch decoded;
        const auto start = std::chrono::steady_clock::now();
        std::size_t i = 0;
        while (i < stream.size()) {
            batch.clear();
            const std::size_t chunk =
                std::min(tile_tx, stream.size() - i);
            batch.append(plane.data() + i * tx_bytes, chunk);
            codec->encodeBatch(batch, enc);
            codec->decodeBatch(enc, decoded);
            benchmark::DoNotOptimize(decoded.data());
            i += chunk;
        }
        const auto stop = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(stop - start).count());
    }
    return best;
}

/** Flatten @p stream into one contiguous plane of @p tx_bytes rows. */
std::vector<std::uint8_t>
flattenStream(const std::vector<Transaction> &stream, std::size_t tx_bytes)
{
    std::vector<std::uint8_t> plane(stream.size() * tx_bytes);
    for (std::size_t i = 0; i < stream.size(); ++i)
        std::memcpy(plane.data() + i * tx_bytes, stream[i].data(),
                    tx_bytes);
    return plane;
}

/** Timed passes over the stream per rep in the encode/decode-only
 *  timers: one pass at vector speeds is tens of microseconds, too close
 *  to timer granularity for a stable CI gate. */
constexpr int simdTimerPasses = 16;

/** Reps per cell in the SIMD sweep (best-of; the gate needs low noise). */
constexpr int simdTimerReps = 5;

/**
 * Transactions per SIMD-sweep run: 4096 x 32 B keeps the source plane
 * L2-resident, so the per-level numbers measure the dispatched kernels
 * in the cache-blocked regime the tile geometry is designed for rather
 * than L3/DRAM streaming bandwidth (the round-trip sweep above keeps
 * the larger stream for that).
 */
constexpr std::size_t simdSweepTx = 4096;

/** Split @p stream into ready-to-encode TxBatch tiles of @p tile_tx. */
std::vector<TxBatch>
buildTiles(const std::vector<Transaction> &stream, std::size_t tile_tx)
{
    const std::size_t tx_bytes = stream[0].size();
    const std::vector<std::uint8_t> plane = flattenStream(stream, tx_bytes);
    std::vector<TxBatch> tiles;
    std::size_t i = 0;
    while (i < stream.size()) {
        const std::size_t chunk = std::min(tile_tx, stream.size() - i);
        tiles.emplace_back(tx_bytes, chunk);
        tiles.back().append(plane.data() + i * tx_bytes, chunk);
        i += chunk;
    }
    return tiles;
}

/**
 * Encode-only wall clock (best of 3) at the active dispatch level. The
 * tiles are pre-filled outside the timed region (symmetric with
 * timeBatchDecode) so the measurement isolates encodeBatch itself.
 */
double
timeBatchEncode(const std::string &spec,
                const std::vector<Transaction> &stream,
                std::size_t batch_tx)
{
    const std::size_t tx_bytes = stream[0].size();
    const std::size_t tile_tx = std::min(batch_tx, batchTileTx(tx_bytes));
    const std::vector<TxBatch> tiles = buildTiles(stream, tile_tx);

    double best = 1.0e30;
    for (int rep = 0; rep < simdTimerReps; ++rep) {
        CodecPtr codec = makeCodec(spec);
        EncodedBatch enc;
        const auto start = std::chrono::steady_clock::now();
        for (int pass = 0; pass < simdTimerPasses; ++pass) {
            for (const TxBatch &batch : tiles) {
                codec->encodeBatch(batch, enc);
                benchmark::DoNotOptimize(enc.payloadData());
            }
        }
        const auto stop = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(stop - start).count() /
                            simdTimerPasses);
    }
    return best;
}

/**
 * Decode-only wall clock (best of 3): the tiles are pre-encoded outside
 * the timed region, so the measurement isolates decodeBatch.
 */
double
timeBatchDecode(const std::string &spec,
                const std::vector<Transaction> &stream,
                std::size_t batch_tx)
{
    const std::size_t tx_bytes = stream[0].size();
    const std::size_t tile_tx = std::min(batch_tx, batchTileTx(tx_bytes));
    const std::vector<TxBatch> raw_tiles = buildTiles(stream, tile_tx);

    std::vector<EncodedBatch> tiles;
    {
        CodecPtr codec = makeCodec(spec);
        for (const TxBatch &batch : raw_tiles) {
            tiles.emplace_back();
            codec->encodeBatch(batch, tiles.back());
        }
    }

    double best = 1.0e30;
    for (int rep = 0; rep < simdTimerReps; ++rep) {
        CodecPtr codec = makeCodec(spec);
        TxBatch decoded;
        const auto start = std::chrono::steady_clock::now();
        for (int pass = 0; pass < simdTimerPasses; ++pass) {
            for (const EncodedBatch &enc : tiles) {
                codec->decodeBatch(enc, decoded);
                benchmark::DoNotOptimize(decoded.data());
            }
        }
        const auto stop = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(stop - start).count() /
                            simdTimerPasses);
    }
    return best;
}

/**
 * The batch-vs-scalar sweep. Per spec: assert the batch eval pipeline's
 * BusStats are field-identical to the scalar reference at every batch
 * size, then time codec-only round trips. Returns the rows (scalar row
 * first per spec) and the best batch>=512 speedup via @p best_out.
 */
std::vector<BatchRow>
runBatchSweep(double *best_out)
{
    const std::vector<Transaction> stream = makeInput(false, batchSweepTx);
    std::vector<BatchRow> rows;
    double best = 0.0;

    std::printf("\n--- batch kernels vs scalar reference: %zu tx/run ---\n",
                batchSweepTx);
    for (const std::string &spec : batchSweepSpecs) {
        // Field-identity gate first: the full eval pipeline (encode,
        // transmit, decode) must report the same BusStats either way.
        CodecPtr scalar_codec = makeCodec(spec);
        const BusStats want =
            evalCodecOnStream(*scalar_codec, stream, 32, 0.3, 0).stats;
        for (std::size_t batch_tx : batchSweepSizes) {
            CodecPtr codec = makeCodec(spec);
            const BusStats got =
                evalCodecOnStream(*codec, stream, 32, 0.3, batch_tx).stats;
            if (!(got == want))
                panic("batch eval BusStats diverged from scalar (" + spec +
                      ", batch " + std::to_string(batch_tx) + ")");
        }

        BatchRow scalar;
        scalar.spec = spec;
        scalar.seconds = timeScalarRoundTrips(spec, stream);
        scalar.txPerSecond =
            static_cast<double>(stream.size()) / scalar.seconds;
        std::printf("%-22s scalar      %9.0f ktx/s\n", spec.c_str(),
                    scalar.txPerSecond / 1.0e3);
        rows.push_back(scalar);

        for (std::size_t batch_tx : batchSweepSizes) {
            BatchRow row;
            row.spec = spec;
            row.batchTx = batch_tx;
            row.seconds = timeBatchRoundTrips(spec, stream, batch_tx);
            row.txPerSecond =
                static_cast<double>(stream.size()) / row.seconds;
            row.speedup = row.txPerSecond / scalar.txPerSecond;
            std::printf("%-22s batch %-5zu %9.0f ktx/s  %5.2fx\n",
                        spec.c_str(), batch_tx, row.txPerSecond / 1.0e3,
                        row.speedup);
            if (batch_tx >= 512)
                best = std::max(best, row.speedup);
            rows.push_back(row);
        }
    }
    std::printf("best batch>=512 speedup: %.2fx  (BusStats field-identical "
                "at every batch size)\n",
                best);
    if (best_out != nullptr)
        *best_out = best;
    return rows;
}

struct SimdRow
{
    std::string spec;
    simd::Level level = simd::Level::Word;
    std::size_t batchTx = 0;
    double encodeTxPerSecond = 0.0;
    double decodeTxPerSecond = 0.0;
    double encodeSpeedupVsWord = 1.0;
    double decodeSpeedupVsWord = 1.0;
};

/**
 * Dispatch levels the SIMD sweep visits. A forced BXT_SIMD pins the
 * sweep to the single level it resolved to; otherwise every supported
 * level from word upward (scalar is a correctness reference, not a
 * throughput contender).
 */
std::vector<simd::Level>
simdSweepLevels()
{
    if (simd::envForcedLevel().has_value())
        return {simd::activeLevel()};
    std::vector<simd::Level> levels;
    for (simd::Level level : simd::supportedLevels())
        if (level != simd::Level::Scalar)
            levels.push_back(level);
    return levels;
}

/**
 * The per-level sweep: encode-only and decode-only throughput for every
 * spec x dispatch level x batch size. Word rows come first per spec and
 * anchor the speedup columns. @p gate_out receives the xor4+zdr encode
 * batch-512 speedup of the best SIMD level over word, or -1 when the
 * host has no vector level to compare (the gate then skips).
 */
std::vector<SimdRow>
runSimdSweep(double *gate_out)
{
    const simd::Level saved = simd::activeLevel();
    const std::vector<simd::Level> levels = simdSweepLevels();
    const std::vector<Transaction> stream = makeInput(false, simdSweepTx);
    std::vector<SimdRow> rows;
    double gate = -1.0;

    std::printf("\n--- SIMD dispatch levels: ");
    for (std::size_t i = 0; i < levels.size(); ++i)
        std::printf("%s%s", i == 0 ? "" : ", ",
                    simd::levelName(levels[i]));
    std::printf(" (%zu tx/run) ---\n", simdSweepTx);

    for (const std::string &spec : batchSweepSpecs) {
        // word-baseline seconds per batch size, for the speedup columns.
        std::vector<double> word_enc(batchSweepSizes.size(), 0.0);
        std::vector<double> word_dec(batchSweepSizes.size(), 0.0);
        for (simd::Level level : levels) {
            simd::setActiveLevel(level);
            for (std::size_t s = 0; s < batchSweepSizes.size(); ++s) {
                const std::size_t batch_tx = batchSweepSizes[s];
                SimdRow row;
                row.spec = spec;
                row.level = level;
                row.batchTx = batch_tx;
                const double enc_s =
                    timeBatchEncode(spec, stream, batch_tx);
                const double dec_s =
                    timeBatchDecode(spec, stream, batch_tx);
                row.encodeTxPerSecond =
                    static_cast<double>(stream.size()) / enc_s;
                row.decodeTxPerSecond =
                    static_cast<double>(stream.size()) / dec_s;
                if (level == simd::Level::Word) {
                    word_enc[s] = enc_s;
                    word_dec[s] = dec_s;
                }
                if (word_enc[s] > 0.0)
                    row.encodeSpeedupVsWord = word_enc[s] / enc_s;
                if (word_dec[s] > 0.0)
                    row.decodeSpeedupVsWord = word_dec[s] / dec_s;
                if (spec == "xor4+zdr" && batch_tx == 512 &&
                    level != simd::Level::Word && word_enc[s] > 0.0)
                    gate = std::max(gate, row.encodeSpeedupVsWord);
                std::printf("%-22s %-7s batch %-5zu enc %9.0f ktx/s "
                            "%5.2fx  dec %9.0f ktx/s %5.2fx\n",
                            spec.c_str(), simd::levelName(level),
                            batch_tx, row.encodeTxPerSecond / 1.0e3,
                            row.encodeSpeedupVsWord,
                            row.decodeTxPerSecond / 1.0e3,
                            row.decodeSpeedupVsWord);
                rows.push_back(row);
            }
        }
    }
    simd::setActiveLevel(saved);

    if (gate >= 0.0)
        std::printf("xor4+zdr encode batch-512 SIMD-over-word speedup: "
                    "%.2fx\n",
                    gate);
    else
        std::printf("no vector dispatch level available; SIMD speedup "
                    "gate not applicable on this host\n");
    if (gate_out != nullptr)
        *gate_out = gate;
    return rows;
}

int
runSuiteSweep(const std::string &json_path, double batch_min_speedup,
              double simd_min_speedup)
{
    const std::vector<std::string> specs = paperSchemeSpecs();
    const unsigned parallel_threads = defaultThreadCount();

    std::printf("\n--- end-to-end suite sweep: %zu specs x GPU "
                "population, %zu tx/app ---\n",
                specs.size(), sweepTxPerApp);

    std::size_t bytes = 0;
    const SweepRun serial = runSweep(1, specs, &bytes);
    std::printf("serial   (1 thread)  : %6.2f s  %6.3f GB/s\n",
                serial.seconds, serial.gbPerSecond);

    const SweepRun parallel = runSweep(parallel_threads, specs, nullptr);
    std::printf("parallel (%u threads): %6.2f s  %6.3f GB/s\n",
                parallel_threads, parallel.seconds,
                parallel.gbPerSecond);

    const bool identical =
        identicalResults(serial.results, parallel.results);
    const double speedup = serial.seconds / parallel.seconds;
    std::printf("speedup: %.2fx   BusStats bit-identical: %s\n", speedup,
                identical ? "yes" : "NO");
    if (!identical)
        panic("parallel evalSuite diverged from the serial run");

    double best_batch_speedup = 0.0;
    const std::vector<BatchRow> batch_rows =
        runBatchSweep(&best_batch_speedup);

    double simd_gate = -1.0;
    const std::vector<SimdRow> simd_rows = runSimdSweep(&simd_gate);
    const std::vector<simd::Level> simd_levels = simdSweepLevels();

    const bool ok = writeBenchJson(
        json_path, "codec_throughput", [&](JsonWriter &w) {
            auto emit = [&](const char *mode, unsigned threads,
                            const SweepRun &run) {
                w.beginObject();
                w.kv("mode", mode);
                w.kv("threads", static_cast<std::uint64_t>(threads));
                w.kv("seconds", run.seconds);
                w.kv("gb_per_s", run.gbPerSecond);
                w.kv("apps",
                     static_cast<std::uint64_t>(run.results.size()));
                w.kv("specs", static_cast<std::uint64_t>(specs.size()));
                w.kv("tx_per_app",
                     static_cast<std::uint64_t>(sweepTxPerApp));
                w.kv("bytes_swept", static_cast<std::uint64_t>(bytes));
                w.kv("speedup", speedup);
                w.kv("bit_identical", identical);
                w.endObject();
            };
            emit("serial", 1, serial);
            emit("parallel", parallel_threads, parallel);
            for (const BatchRow &row : batch_rows) {
                w.beginObject();
                w.kv("mode", row.batchTx == 0 ? "scalar_codec"
                                              : "batch_codec");
                w.kv("spec", row.spec);
                w.kv("batch_tx", static_cast<std::uint64_t>(row.batchTx));
                w.kv("seconds", row.seconds);
                w.kv("tx_per_s", row.txPerSecond);
                w.kv("speedup_vs_scalar", row.speedup);
                w.kv("stats_identical", true);
                w.endObject();
            }
            {
                std::string levels;
                for (simd::Level level : simd_levels) {
                    if (!levels.empty())
                        levels += ",";
                    levels += simd::levelName(level);
                }
                w.beginObject();
                w.kv("mode", "simd_info");
                w.kv("simd_levels", levels);
                w.kv("best_level",
                     simd::levelName(simd::bestLevel()));
                w.kv("forced", simd::envForcedLevel().has_value());
                w.endObject();
            }
            for (const SimdRow &row : simd_rows) {
                w.beginObject();
                w.kv("mode", "simd_codec");
                w.kv("spec", row.spec);
                w.kv("simd_level", simd::levelName(row.level));
                w.kv("batch_tx", static_cast<std::uint64_t>(row.batchTx));
                w.kv("encode_tx_per_s", row.encodeTxPerSecond);
                w.kv("decode_tx_per_s", row.decodeTxPerSecond);
                w.kv("encode_speedup_vs_word", row.encodeSpeedupVsWord);
                w.kv("decode_speedup_vs_word", row.decodeSpeedupVsWord);
                w.endObject();
            }
        });
    if (!ok)
        return 1;
    std::printf("wrote %s\n", json_path.c_str());

    if (batch_min_speedup > 0.0 && best_batch_speedup < batch_min_speedup) {
        std::fprintf(stderr,
                     "FAIL: best batch>=512 speedup %.2fx is below the "
                     "--batch-min-speedup gate %.2fx\n",
                     best_batch_speedup, batch_min_speedup);
        return 1;
    }
    if (simd_min_speedup > 0.0) {
        if (simd_gate < 0.0) {
            std::printf("--simd-min-speedup skipped: no vector dispatch "
                        "level on this host\n");
        } else if (simd_gate < simd_min_speedup) {
            std::fprintf(stderr,
                         "FAIL: xor4+zdr encode batch-512 SIMD speedup "
                         "%.2fx is below the --simd-min-speedup gate "
                         "%.2fx\n",
                         simd_gate, simd_min_speedup);
            return 1;
        }
    }
    return 0;
}

} // namespace

BENCHMARK_CAPTURE(BM_RoundTrip, xor4_zdr_patterned, "xor4+zdr", false);
BENCHMARK_CAPTURE(BM_RoundTrip, xor4_zdr_random, "xor4+zdr", true);
BENCHMARK_CAPTURE(BM_RoundTrip, universal_zdr_patterned, "universal3+zdr",
                  false);
BENCHMARK_CAPTURE(BM_RoundTrip, universal_zdr_random, "universal3+zdr",
                  true);
BENCHMARK_CAPTURE(BM_RoundTrip, dbi1_patterned, "dbi1", false);
BENCHMARK_CAPTURE(BM_RoundTrip, universal_dbi1_patterned,
                  "universal3+zdr|dbi1", false);
BENCHMARK_CAPTURE(BM_RoundTrip, bd_patterned, "bd", false);

BENCHMARK_CAPTURE(BM_RoundTripInto, xor4_zdr_patterned, "xor4+zdr", false);
BENCHMARK_CAPTURE(BM_RoundTripInto, xor4_zdr_random, "xor4+zdr", true);
BENCHMARK_CAPTURE(BM_RoundTripInto, universal_zdr_patterned,
                  "universal3+zdr", false);
BENCHMARK_CAPTURE(BM_RoundTripInto, universal_zdr_random,
                  "universal3+zdr", true);
BENCHMARK_CAPTURE(BM_RoundTripInto, dbi1_patterned, "dbi1", false);

int
main(int argc, char **argv)
{
    // Strip this bench's own flags before google-benchmark parses the
    // rest. --sweep-only skips the microbenches (the overhead gate in
    // `ci.sh metrics` only needs the sweep); --json redirects the sweep
    // document (default BENCH_codec_throughput.json, unified schema);
    // --batch-min-speedup F fails the run when the best batch>=512
    // codec speedup over scalar falls below F (the `ci.sh batch` gate);
    // --simd-min-speedup F fails the run when the best SIMD level's
    // xor4+zdr encode batch-512 speedup over word falls below F (skips
    // with a note on hosts without a vector level).
    bool sweep_only = false;
    std::string json_path = "BENCH_codec_throughput.json";
    double batch_min_speedup = 0.0;
    double simd_min_speedup = 0.0;
    std::vector<char *> passthrough = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep-only") == 0) {
            sweep_only = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--batch-min-speedup") == 0 &&
                   i + 1 < argc) {
            batch_min_speedup = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--simd-min-speedup") == 0 &&
                   i + 1 < argc) {
            simd_min_speedup = std::strtod(argv[++i], nullptr);
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    int pass_argc = static_cast<int>(passthrough.size());

    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data()))
        return 1;
    if (!sweep_only)
        benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return runSuiteSweep(json_path, batch_min_speedup, simd_min_speedup);
}
