/**
 * @file
 * Software throughput of every codec (google-benchmark): encode, decode,
 * and round-trip on 32-byte transactions of patterned and random data.
 * Not a paper artifact — it documents that the library itself is fast
 * enough to sit in a simulator's memory-controller path.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "core/codec_factory.h"
#include "workloads/patterns.h"

namespace {

using namespace bxt;

std::vector<Transaction>
makeInput(bool random_data, std::size_t count)
{
    PatternPtr pattern =
        random_data ? makeRandomPattern(7)
                    : makeSoaFloatPattern(1.0e3, 1.0e-3, 7);
    Rng rng(11);
    std::vector<Transaction> txs;
    txs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Transaction tx(32);
        pattern->fill(rng, tx.bytes());
        txs.push_back(tx);
    }
    return txs;
}

void
runEncodeDecode(benchmark::State &state, const std::string &spec,
                bool random_data)
{
    CodecPtr codec = makeCodec(spec);
    const std::vector<Transaction> input = makeInput(random_data, 256);

    std::size_t i = 0;
    for (auto _ : state) {
        const Encoded enc = codec->encode(input[i % input.size()]);
        const Transaction back = codec->decode(enc);
        benchmark::DoNotOptimize(back.data());
        ++i;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            32);
}

void
BM_RoundTrip(benchmark::State &state, const std::string &spec,
             bool random_data)
{
    runEncodeDecode(state, spec, random_data);
}

} // namespace

BENCHMARK_CAPTURE(BM_RoundTrip, xor4_zdr_patterned, "xor4+zdr", false);
BENCHMARK_CAPTURE(BM_RoundTrip, xor4_zdr_random, "xor4+zdr", true);
BENCHMARK_CAPTURE(BM_RoundTrip, universal_zdr_patterned, "universal3+zdr",
                  false);
BENCHMARK_CAPTURE(BM_RoundTrip, universal_zdr_random, "universal3+zdr",
                  true);
BENCHMARK_CAPTURE(BM_RoundTrip, dbi1_patterned, "dbi1", false);
BENCHMARK_CAPTURE(BM_RoundTrip, universal_dbi1_patterned,
                  "universal3+zdr|dbi1", false);
BENCHMARK_CAPTURE(BM_RoundTrip, bd_patterned, "bd", false);

BENCHMARK_MAIN();
