/**
 * @file
 * Software throughput of the codec layer and the batch-evaluation engine.
 *
 * Two parts:
 *  1. google-benchmark microbenches: encode/decode round-trips on 32-byte
 *     transactions, in the allocating (`encode`) and allocation-free
 *     (`encodeInto`) forms, on patterned and random data.
 *  2. An end-to-end suite sweep (the workload every figure bench runs):
 *     full GPU population x paper scheme set, executed serially and then
 *     on the parallel engine. Reports GB/s for both, asserts that the
 *     parallel BusStats are bit-identical to the serial run, and emits
 *     `BENCH_codec_throughput.json` for CI tracking.
 *  3. A batch-vs-scalar kernel sweep: encode+decode throughput of the
 *     batch hot path (encodeBatch / decodeBatch) against the scalar
 *     reference loop at batch sizes 1/8/64/512/4096, after asserting the
 *     two paths produce field-identical BusStats through the full eval
 *     pipeline. `--batch-min-speedup F` turns the best batch>=512
 *     speedup into a CI gate.
 *
 * Not a paper artifact — it documents that the library is fast enough to
 * sit in a simulator's memory-controller path.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "channel/channel_eval.h"
#include "common/error.h"
#include "common/parallel.h"
#include "core/batch.h"
#include "core/codec_factory.h"
#include "suite_eval.h"
#include "workloads/apps.h"
#include "workloads/patterns.h"

namespace {

using namespace bxt;

std::vector<Transaction>
makeInput(bool random_data, std::size_t count)
{
    PatternPtr pattern =
        random_data ? makeRandomPattern(7)
                    : makeSoaFloatPattern(1.0e3, 1.0e-3, 7);
    Rng rng(11);
    std::vector<Transaction> txs;
    txs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Transaction tx(32);
        pattern->fill(rng, tx.bytes());
        txs.push_back(tx);
    }
    return txs;
}

void
BM_RoundTrip(benchmark::State &state, const std::string &spec,
             bool random_data)
{
    CodecPtr codec = makeCodec(spec);
    const std::vector<Transaction> input = makeInput(random_data, 256);

    std::size_t i = 0;
    for (auto _ : state) {
        const Encoded enc = codec->encode(input[i % input.size()]);
        const Transaction back = codec->decode(enc);
        benchmark::DoNotOptimize(back.data());
        ++i;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            32);
}

/** The allocation-free hot path: scratch Encoded/Transaction reuse. */
void
BM_RoundTripInto(benchmark::State &state, const std::string &spec,
                 bool random_data)
{
    CodecPtr codec = makeCodec(spec);
    const std::vector<Transaction> input = makeInput(random_data, 256);

    Encoded enc;
    Transaction back;
    std::size_t i = 0;
    for (auto _ : state) {
        codec->encodeInto(input[i % input.size()], enc);
        codec->decodeInto(enc, back);
        benchmark::DoNotOptimize(back.data());
        ++i;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            32);
}

/** Transactions per app in the end-to-end sweep (kept short for CI). */
constexpr std::size_t sweepTxPerApp = 512;

struct SweepRun
{
    double seconds = 0.0;
    double gbPerSecond = 0.0;
    std::vector<AppResult> results;
};

SweepRun
runSweep(unsigned threads, const std::vector<std::string> &specs,
         std::size_t *bytes_out)
{
    // Rebuild the population each run: equal seeds give bit-identical
    // traces, which is what makes serial-vs-parallel comparable.
    std::vector<App> apps = buildGpuSuite();

    std::size_t bytes = 0;
    for (const App &app : apps)
        bytes += app.txBytes * sweepTxPerApp * specs.size();
    if (bytes_out != nullptr)
        *bytes_out = bytes;

    const auto start = std::chrono::steady_clock::now();
    SweepRun run;
    run.results = evalSuite(apps, specs, sweepTxPerApp, threads);
    const auto stop = std::chrono::steady_clock::now();
    run.seconds =
        std::chrono::duration<double>(stop - start).count();
    run.gbPerSecond = static_cast<double>(bytes) / run.seconds / 1.0e9;
    return run;
}

bool
identicalResults(const std::vector<AppResult> &a,
                 const std::vector<AppResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].app != b[i].app || a[i].rawOnes != b[i].rawOnes ||
            a[i].mixedRatio != b[i].mixedRatio ||
            a[i].stats != b[i].stats)
            return false;
    }
    return true;
}

/** Specs the batch-vs-scalar sweep times (one per kernel family). */
const std::vector<std::string> batchSweepSpecs = {
    "baseline", "xor4+zdr", "universal3+zdr", "dbi4",
    "universal3+zdr|dbi1"};

/** Batch sizes swept; 1 isolates the per-call overhead. */
const std::vector<std::size_t> batchSweepSizes = {1, 8, 64, 512, 4096};

/** Transactions per timed run (32-byte GPU sectors). */
constexpr std::size_t batchSweepTx = 16384;

struct BatchRow
{
    std::string spec;
    std::size_t batchTx = 0; ///< 0 = the scalar reference loop.
    double seconds = 0.0;
    double txPerSecond = 0.0;
    double speedup = 1.0; ///< vs the same spec's scalar row.
};

/** Best wall-clock of three codec-only round-trip passes over @p stream. */
double
timeScalarRoundTrips(const std::string &spec,
                     const std::vector<Transaction> &stream)
{
    double best = 1.0e30;
    for (int rep = 0; rep < 3; ++rep) {
        CodecPtr codec = makeCodec(spec);
        Encoded enc;
        Transaction back;
        const auto start = std::chrono::steady_clock::now();
        for (const Transaction &tx : stream) {
            codec->encodeInto(tx, enc);
            codec->decodeInto(enc, back);
            benchmark::DoNotOptimize(back.data());
        }
        const auto stop = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(stop - start).count());
    }
    return best;
}

double
timeBatchRoundTrips(const std::string &spec,
                    const std::vector<Transaction> &stream,
                    std::size_t batch_tx)
{
    // Batch consumers (bxtd frames, materialized traces) hold the
    // transactions as one flat plane already, so the timed region fills
    // each TxBatch with append() from a pre-flattened copy rather than
    // paying a per-transaction push loop the real hot path never runs.
    const std::size_t tx_bytes = stream[0].size();
    std::vector<std::uint8_t> plane(stream.size() * tx_bytes);
    for (std::size_t i = 0; i < stream.size(); ++i)
        std::memcpy(plane.data() + i * tx_bytes, stream[i].data(),
                    tx_bytes);

    double best = 1.0e30;
    for (int rep = 0; rep < 3; ++rep) {
        CodecPtr codec = makeCodec(spec);
        TxBatch batch(tx_bytes, batch_tx);
        EncodedBatch enc;
        TxBatch decoded;
        const auto start = std::chrono::steady_clock::now();
        std::size_t i = 0;
        while (i < stream.size()) {
            batch.clear();
            const std::size_t chunk =
                std::min(batch_tx, stream.size() - i);
            batch.append(plane.data() + i * tx_bytes, chunk);
            codec->encodeBatch(batch, enc);
            codec->decodeBatch(enc, decoded);
            benchmark::DoNotOptimize(decoded.data());
            i += chunk;
        }
        const auto stop = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(stop - start).count());
    }
    return best;
}

/**
 * The batch-vs-scalar sweep. Per spec: assert the batch eval pipeline's
 * BusStats are field-identical to the scalar reference at every batch
 * size, then time codec-only round trips. Returns the rows (scalar row
 * first per spec) and the best batch>=512 speedup via @p best_out.
 */
std::vector<BatchRow>
runBatchSweep(double *best_out)
{
    const std::vector<Transaction> stream = makeInput(false, batchSweepTx);
    std::vector<BatchRow> rows;
    double best = 0.0;

    std::printf("\n--- batch kernels vs scalar reference: %zu tx/run ---\n",
                batchSweepTx);
    for (const std::string &spec : batchSweepSpecs) {
        // Field-identity gate first: the full eval pipeline (encode,
        // transmit, decode) must report the same BusStats either way.
        CodecPtr scalar_codec = makeCodec(spec);
        const BusStats want =
            evalCodecOnStream(*scalar_codec, stream, 32, 0.3, 0).stats;
        for (std::size_t batch_tx : batchSweepSizes) {
            CodecPtr codec = makeCodec(spec);
            const BusStats got =
                evalCodecOnStream(*codec, stream, 32, 0.3, batch_tx).stats;
            if (!(got == want))
                panic("batch eval BusStats diverged from scalar (" + spec +
                      ", batch " + std::to_string(batch_tx) + ")");
        }

        BatchRow scalar;
        scalar.spec = spec;
        scalar.seconds = timeScalarRoundTrips(spec, stream);
        scalar.txPerSecond =
            static_cast<double>(stream.size()) / scalar.seconds;
        std::printf("%-22s scalar      %9.0f ktx/s\n", spec.c_str(),
                    scalar.txPerSecond / 1.0e3);
        rows.push_back(scalar);

        for (std::size_t batch_tx : batchSweepSizes) {
            BatchRow row;
            row.spec = spec;
            row.batchTx = batch_tx;
            row.seconds = timeBatchRoundTrips(spec, stream, batch_tx);
            row.txPerSecond =
                static_cast<double>(stream.size()) / row.seconds;
            row.speedup = row.txPerSecond / scalar.txPerSecond;
            std::printf("%-22s batch %-5zu %9.0f ktx/s  %5.2fx\n",
                        spec.c_str(), batch_tx, row.txPerSecond / 1.0e3,
                        row.speedup);
            if (batch_tx >= 512)
                best = std::max(best, row.speedup);
            rows.push_back(row);
        }
    }
    std::printf("best batch>=512 speedup: %.2fx  (BusStats field-identical "
                "at every batch size)\n",
                best);
    if (best_out != nullptr)
        *best_out = best;
    return rows;
}

int
runSuiteSweep(const std::string &json_path, double batch_min_speedup)
{
    const std::vector<std::string> specs = paperSchemeSpecs();
    const unsigned parallel_threads = defaultThreadCount();

    std::printf("\n--- end-to-end suite sweep: %zu specs x GPU "
                "population, %zu tx/app ---\n",
                specs.size(), sweepTxPerApp);

    std::size_t bytes = 0;
    const SweepRun serial = runSweep(1, specs, &bytes);
    std::printf("serial   (1 thread)  : %6.2f s  %6.3f GB/s\n",
                serial.seconds, serial.gbPerSecond);

    const SweepRun parallel = runSweep(parallel_threads, specs, nullptr);
    std::printf("parallel (%u threads): %6.2f s  %6.3f GB/s\n",
                parallel_threads, parallel.seconds,
                parallel.gbPerSecond);

    const bool identical =
        identicalResults(serial.results, parallel.results);
    const double speedup = serial.seconds / parallel.seconds;
    std::printf("speedup: %.2fx   BusStats bit-identical: %s\n", speedup,
                identical ? "yes" : "NO");
    if (!identical)
        panic("parallel evalSuite diverged from the serial run");

    double best_batch_speedup = 0.0;
    const std::vector<BatchRow> batch_rows =
        runBatchSweep(&best_batch_speedup);

    const bool ok = writeBenchJson(
        json_path, "codec_throughput", [&](JsonWriter &w) {
            auto emit = [&](const char *mode, unsigned threads,
                            const SweepRun &run) {
                w.beginObject();
                w.kv("mode", mode);
                w.kv("threads", static_cast<std::uint64_t>(threads));
                w.kv("seconds", run.seconds);
                w.kv("gb_per_s", run.gbPerSecond);
                w.kv("apps",
                     static_cast<std::uint64_t>(run.results.size()));
                w.kv("specs", static_cast<std::uint64_t>(specs.size()));
                w.kv("tx_per_app",
                     static_cast<std::uint64_t>(sweepTxPerApp));
                w.kv("bytes_swept", static_cast<std::uint64_t>(bytes));
                w.kv("speedup", speedup);
                w.kv("bit_identical", identical);
                w.endObject();
            };
            emit("serial", 1, serial);
            emit("parallel", parallel_threads, parallel);
            for (const BatchRow &row : batch_rows) {
                w.beginObject();
                w.kv("mode", row.batchTx == 0 ? "scalar_codec"
                                              : "batch_codec");
                w.kv("spec", row.spec);
                w.kv("batch_tx", static_cast<std::uint64_t>(row.batchTx));
                w.kv("seconds", row.seconds);
                w.kv("tx_per_s", row.txPerSecond);
                w.kv("speedup_vs_scalar", row.speedup);
                w.kv("stats_identical", true);
                w.endObject();
            }
        });
    if (!ok)
        return 1;
    std::printf("wrote %s\n", json_path.c_str());

    if (batch_min_speedup > 0.0 && best_batch_speedup < batch_min_speedup) {
        std::fprintf(stderr,
                     "FAIL: best batch>=512 speedup %.2fx is below the "
                     "--batch-min-speedup gate %.2fx\n",
                     best_batch_speedup, batch_min_speedup);
        return 1;
    }
    return 0;
}

} // namespace

BENCHMARK_CAPTURE(BM_RoundTrip, xor4_zdr_patterned, "xor4+zdr", false);
BENCHMARK_CAPTURE(BM_RoundTrip, xor4_zdr_random, "xor4+zdr", true);
BENCHMARK_CAPTURE(BM_RoundTrip, universal_zdr_patterned, "universal3+zdr",
                  false);
BENCHMARK_CAPTURE(BM_RoundTrip, universal_zdr_random, "universal3+zdr",
                  true);
BENCHMARK_CAPTURE(BM_RoundTrip, dbi1_patterned, "dbi1", false);
BENCHMARK_CAPTURE(BM_RoundTrip, universal_dbi1_patterned,
                  "universal3+zdr|dbi1", false);
BENCHMARK_CAPTURE(BM_RoundTrip, bd_patterned, "bd", false);

BENCHMARK_CAPTURE(BM_RoundTripInto, xor4_zdr_patterned, "xor4+zdr", false);
BENCHMARK_CAPTURE(BM_RoundTripInto, xor4_zdr_random, "xor4+zdr", true);
BENCHMARK_CAPTURE(BM_RoundTripInto, universal_zdr_patterned,
                  "universal3+zdr", false);
BENCHMARK_CAPTURE(BM_RoundTripInto, universal_zdr_random,
                  "universal3+zdr", true);
BENCHMARK_CAPTURE(BM_RoundTripInto, dbi1_patterned, "dbi1", false);

int
main(int argc, char **argv)
{
    // Strip this bench's own flags before google-benchmark parses the
    // rest. --sweep-only skips the microbenches (the overhead gate in
    // `ci.sh metrics` only needs the sweep); --json redirects the sweep
    // document (default BENCH_codec_throughput.json, unified schema);
    // --batch-min-speedup F fails the run when the best batch>=512
    // codec speedup over scalar falls below F (the `ci.sh batch` gate).
    bool sweep_only = false;
    std::string json_path = "BENCH_codec_throughput.json";
    double batch_min_speedup = 0.0;
    std::vector<char *> passthrough = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep-only") == 0) {
            sweep_only = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--batch-min-speedup") == 0 &&
                   i + 1 < argc) {
            batch_min_speedup = std::strtod(argv[++i], nullptr);
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    int pass_argc = static_cast<int>(passthrough.size());

    benchmark::Initialize(&pass_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               passthrough.data()))
        return 1;
    if (!sweep_only)
        benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return runSuiteSweep(json_path, batch_min_speedup);
}
