/**
 * @file
 * Reproduces paper Figure 11: per-application normalized `1` values for
 * 2-/4-/8-byte Base+XOR Transfer with ZDR, with applications grouped by
 * their most beneficial base size. Paper averages: 2B 93.5 %, 4B 70.3 %,
 * 8B 70.4 % (i.e. 6.5 / 29.7 / 29.6 % reductions).
 */

#include <algorithm>
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "suite_eval.h"
#include "verify/golden.h"
#include "workloads/apps.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const BenchArgs args = parseBenchArgs(
        argc, argv, "bench_fig11_nbyte_base",
        "Figure 11: 2-/4-/8-byte Base+XOR Transfer normalized ones");

    std::printf("%s", banner("Figure 11: 2-/4-/8-byte Base+XOR Transfer "
                             "(normalized # of 1 values)").c_str());

    std::vector<App> apps = buildGpuSuite();
    const std::vector<std::string> specs = {"xor2+zdr", "xor4+zdr",
                                            "xor8+zdr"};
    std::vector<AppResult> results =
        evalSuite(apps, specs, defaultTraceLength);

    // Group apps by the base size that benefits them most, then sort each
    // group by the winning scheme's reduction, mirroring the plot order.
    auto best_spec = [&](const AppResult &r) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < specs.size(); ++i) {
            if (r.normalizedOnes(specs[i]) < r.normalizedOnes(specs[best]))
                best = i;
        }
        return best;
    };
    std::stable_sort(results.begin(), results.end(),
                     [&](const AppResult &a, const AppResult &b) {
                         const std::size_t ba = best_spec(a);
                         const std::size_t bb = best_spec(b);
                         if (ba != bb)
                             return ba < bb;
                         return a.normalizedOnes(specs[ba]) <
                                b.normalizedOnes(specs[bb]);
                     });

    Table table({"application", "family", "2B %", "4B %", "8B %", "best"});
    for (const AppResult &r : results) {
        table.addRow({r.app, r.family,
                      Table::cell(r.normalizedOnes("xor2+zdr") * 100.0),
                      Table::cell(r.normalizedOnes("xor4+zdr") * 100.0),
                      Table::cell(r.normalizedOnes("xor8+zdr") * 100.0),
                      specs[best_spec(r)]});
    }
    std::printf("%s", table.render().c_str());

    Table avg({"scheme", "measured avg %", "paper avg %"});
    avg.addRow({"2B XOR+ZDR",
                Table::cell(meanNormalizedOnes(results, "xor2+zdr") * 100.0),
                "93.5"});
    avg.addRow({"4B XOR+ZDR",
                Table::cell(meanNormalizedOnes(results, "xor4+zdr") * 100.0),
                "70.3"});
    avg.addRow({"8B XOR+ZDR",
                Table::cell(meanNormalizedOnes(results, "xor8+zdr") * 100.0),
                "70.4"});
    std::printf("%s", avg.render().c_str());

    if (!args.goldenPath.empty()) {
        std::vector<verify::Endpoint> endpoints;
        for (const std::string &spec : specs) {
            endpoints.push_back({"fig11", spec, defaultTraceLength,
                                 meanNormalizedOnes(results, spec)});
        }
        if (!verify::appendEndpoints(args.goldenPath, endpoints)) {
            std::fprintf(stderr, "cannot append endpoints to %s\n",
                         args.goldenPath.c_str());
            return 1;
        }
        std::printf("\nappended %zu endpoint(s) to %s\n", endpoints.size(),
                    args.goldenPath.c_str());
    }
    if (!args.jsonPath.empty() &&
        !writeBenchJson(args.jsonPath, "fig11", [&](JsonWriter &w) {
            writeAppResults(w, results, specs);
        }))
        return 1;
    return 0;
}
