/**
 * @file
 * Reproduces paper Figure 12: Universal Base+XOR Transfer tracks the best
 * of the fixed 2/4/8-byte bases per application, and beats it on average
 * (paper: 64.7 % normalized ones vs 70.3 % for the best fixed base).
 */

#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "suite_eval.h"
#include "verify/golden.h"
#include "workloads/apps.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const BenchArgs args = parseBenchArgs(
        argc, argv, "bench_fig12_universal",
        "Figure 12: Universal Base+XOR Transfer vs best fixed base");

    std::printf("%s", banner("Figure 12: Universal Base+XOR Transfer vs "
                             "best fixed base").c_str());

    std::vector<App> apps = buildGpuSuite();
    const std::vector<std::string> specs = {"xor2+zdr", "xor4+zdr",
                                            "xor8+zdr", "universal3+zdr"};
    std::vector<AppResult> results =
        evalSuite(apps, specs, defaultTraceLength);

    auto best_fixed = [](const AppResult &r) {
        return std::min({r.normalizedOnes("xor2+zdr"),
                         r.normalizedOnes("xor4+zdr"),
                         r.normalizedOnes("xor8+zdr")});
    };

    std::stable_sort(results.begin(), results.end(),
                     [&](const AppResult &a, const AppResult &b) {
                         return a.normalizedOnes("universal3+zdr") <
                                b.normalizedOnes("universal3+zdr");
                     });

    Table table({"application", "best-of-fixed %", "universal %", "delta"});
    double sum_best = 0.0;
    double sum_universal = 0.0;
    std::size_t universal_wins = 0;
    for (const AppResult &r : results) {
        const double fixed = best_fixed(r) * 100.0;
        const double universal =
            r.normalizedOnes("universal3+zdr") * 100.0;
        sum_best += fixed;
        sum_universal += universal;
        if (universal <= fixed)
            ++universal_wins;
        table.addRow({r.app, Table::cell(fixed), Table::cell(universal),
                      Table::cell(universal - fixed)});
    }
    std::printf("%s", table.render().c_str());

    const auto n = static_cast<double>(results.size());
    std::printf("\naverage best-of-fixed : %5.1f %% (paper 70.3)\n"
                "average universal     : %5.1f %% (paper 64.7)\n"
                "universal <= best-of-fixed in %zu/%zu apps\n",
                sum_best / n, sum_universal / n, universal_wins,
                results.size());

    if (!args.goldenPath.empty()) {
        const std::vector<verify::Endpoint> endpoints = {
            {"fig12", "universal3+zdr", defaultTraceLength,
             meanNormalizedOnes(results, "universal3+zdr")}};
        if (!verify::appendEndpoints(args.goldenPath, endpoints)) {
            std::fprintf(stderr, "cannot append endpoints to %s\n",
                         args.goldenPath.c_str());
            return 1;
        }
        std::printf("appended %zu endpoint(s) to %s\n", endpoints.size(),
                    args.goldenPath.c_str());
    }
    if (!args.jsonPath.empty() &&
        !writeBenchJson(args.jsonPath, "fig12", [&](JsonWriter &w) {
            writeAppResults(w, results, specs);
        }))
        return 1;
    return 0;
}
