/**
 * @file
 * Reproduces paper Figure 13: the distribution of applications over
 * 20-percentage-point buckets of `1`-value reduction, for the three fixed
 * bases and Universal Base+XOR Transfer. The paper's observations: larger
 * fixed bases strand fewer applications with *increased* ones, and
 * Universal has both the fewest regressions and the best average.
 */

#include <cstdio>

#include "common/histogram.h"
#include "common/table.h"
#include "suite_eval.h"
#include "workloads/apps.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const BenchArgs args = parseBenchArgs(
        argc, argv, "bench_fig13_distribution",
        "Figure 13: application distribution of 1-value reduction");

    std::printf("%s", banner("Figure 13: application distribution of "
                             "1-value reduction").c_str());

    std::vector<App> apps = buildGpuSuite();
    const std::vector<std::string> specs = {"xor2+zdr", "xor4+zdr",
                                            "xor8+zdr", "universal3+zdr"};
    const std::vector<AppResult> results =
        evalSuite(apps, specs, defaultTraceLength);

    for (const std::string &spec : specs) {
        // Reduction = 100 - normalized; buckets span -80 %..+80 %.
        Histogram hist(-80.0, 80.0, 8);
        std::size_t regressions = 0;
        for (const AppResult &r : results) {
            const double reduction =
                (1.0 - r.normalizedOnes(spec)) * 100.0;
            hist.add(reduction);
            if (reduction < 0.0)
                ++regressions;
        }
        std::printf("\n%s (apps with increased ones: %zu/%zu)\n",
                    spec.c_str(), regressions, results.size());
        std::printf("%s", hist.render(40).c_str());
    }

    if (!args.jsonPath.empty() &&
        !writeBenchJson(args.jsonPath, "fig13", [&](JsonWriter &w) {
            writeAppResults(w, results, specs);
        }))
        return 1;
    return 0;
}
