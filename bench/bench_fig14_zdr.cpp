/**
 * @file
 * Reproduces paper Figure 14: the impact of Zero Data Remapping as a
 * function of each application's mixed-data-transaction ratio (buckets of
 * 10 %). Without ZDR, zero elements get re-encoded as copies of their
 * neighbours and applications with much mixed data *lose* energy (the
 * paper reports a 24 % ones increase for the >70 % bucket without ZDR).
 */

#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "suite_eval.h"
#include "verify/golden.h"
#include "workloads/apps.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const BenchArgs args = parseBenchArgs(
        argc, argv, "bench_fig14_zdr",
        "Figure 14: Zero Data Remapping vs mixed-data ratio");

    std::printf("%s", banner("Figure 14: Zero Data Remapping vs mixed-data "
                             "transaction ratio").c_str());

    std::vector<App> apps = buildGpuSuite();
    const std::vector<std::string> specs = {"xor4", "xor4+zdr"};
    const std::vector<AppResult> results =
        evalSuite(apps, specs, defaultTraceLength);

    constexpr int buckets = 8;
    RunningStat with_zdr[buckets];
    RunningStat without_zdr[buckets];
    for (const AppResult &r : results) {
        int bucket = static_cast<int>(r.mixedRatio * 10.0);
        bucket = bucket < 0 ? 0 : (bucket >= buckets ? buckets - 1 : bucket);
        without_zdr[bucket].add(r.normalizedOnes("xor4") * 100.0);
        with_zdr[bucket].add(r.normalizedOnes("xor4+zdr") * 100.0);
    }

    Table table({"mixed ratio bucket", "apps", "4B XOR %", "4B XOR+ZDR %"});
    for (int b = 0; b < buckets; ++b) {
        char label[32];
        std::snprintf(label, sizeof(label), "%d-%d %%", b * 10,
                      (b + 1) * 10);
        table.addRow({label, Table::cell(without_zdr[b].count()),
                      Table::cell(without_zdr[b].mean()),
                      Table::cell(with_zdr[b].mean())});
    }
    std::printf("%s", table.render().c_str());

    // Paper §VI-C headline numbers: ZDR cuts the number of regressing
    // applications by 33 % and the added ones by 53.8 %; the worst-case
    // app goes from +100 % to +8.4 %.
    std::size_t regress_plain = 0;
    std::size_t regress_zdr = 0;
    double added_plain = 0.0;
    double added_zdr = 0.0;
    double worst_plain = 0.0;
    double worst_zdr = 0.0;
    for (const AppResult &r : results) {
        const double plain = r.normalizedOnes("xor4") * 100.0 - 100.0;
        const double zdr = r.normalizedOnes("xor4+zdr") * 100.0 - 100.0;
        if (plain > 0.0) {
            ++regress_plain;
            added_plain += plain;
        }
        if (zdr > 0.0) {
            ++regress_zdr;
            added_zdr += zdr;
        }
        worst_plain = std::max(worst_plain, plain);
        worst_zdr = std::max(worst_zdr, zdr);
    }
    std::printf("\nregressing apps: %zu without ZDR -> %zu with ZDR "
                "(paper: -33 %%)\n",
                regress_plain, regress_zdr);
    if (added_plain > 0.0) {
        std::printf("added 1 values: %.1f -> %.1f app-%% "
                    "(paper: -53.8 %%)\n",
                    added_plain, added_zdr);
    }
    std::printf("worst-case increase: +%.1f %% -> +%.1f %% "
                "(paper: +100 %% -> +8.4 %%)\n",
                worst_plain, worst_zdr);

    if (!args.goldenPath.empty()) {
        std::vector<verify::Endpoint> endpoints;
        for (const std::string &spec : specs) {
            endpoints.push_back({"fig14", spec, defaultTraceLength,
                                 meanNormalizedOnes(results, spec)});
        }
        if (!verify::appendEndpoints(args.goldenPath, endpoints)) {
            std::fprintf(stderr, "cannot append endpoints to %s\n",
                         args.goldenPath.c_str());
            return 1;
        }
        std::printf("appended %zu endpoint(s) to %s\n", endpoints.size(),
                    args.goldenPath.c_str());
    }
    if (!args.jsonPath.empty() &&
        !writeBenchJson(args.jsonPath, "fig14", [&](JsonWriter &w) {
            writeAppResults(w, results, specs);
        }))
        return 1;
    return 0;
}
