/**
 * @file
 * Reproduces paper Figure 15: normalized `1` values of DBI (4/2/1-byte
 * groups), Universal Base+XOR Transfer with ZDR, their combinations, and
 * BD-Encoding, averaged over the 187-application GPU population.
 *
 * Paper reference values (% of baseline ones):
 *   baseline 100.0 | 4B DBI 81.2 | 2B DBI 77.3 | 1B DBI 74.3 |
 *   Univ+ZDR 64.7 | +4B DBI 58.1 | +2B DBI 54.9 | +1B DBI 51.8 |
 *   BD-Encoding 70.2
 */

#include <cstdio>

#include "common/table.h"
#include "core/codec_factory.h"
#include "suite_eval.h"
#include "workloads/apps.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const BenchArgs args = parseBenchArgs(
        argc, argv, "bench_fig15_comparison",
        "Figure 15: Base+XOR Transfer vs previous works (normalized "
        "ones)");

    std::printf("%s", banner("Figure 15: Base+XOR Transfer vs. previous "
                             "works (normalized # of 1 values)")
                          .c_str());

    std::vector<App> apps = buildGpuSuite();
    const std::vector<std::string> specs = paperSchemeSpecs();
    const std::vector<AppResult> results =
        evalSuite(apps, specs, defaultTraceLength);

    const double paper[] = {100.0, 81.2, 77.3, 74.3, 64.7,
                            58.1,  54.9, 51.8, 70.2};
    const char *labels[] = {
        "baseline (no DBI)",   "4B DBI (1 bit)",
        "2B DBI (2 bits)",     "1B DBI (4 bits)",
        "Univ XOR+ZDR",        "Univ XOR+ZDR | 4B DBI",
        "Univ XOR+ZDR | 2B DBI", "Univ XOR+ZDR | 1B DBI",
        "BD-Encoding (4 bit)",
    };

    Table table({"scheme", "spec", "measured %", "paper %"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const double measured =
            meanNormalizedOnes(results, specs[i]) * 100.0;
        table.addRow({labels[i], specs[i], Table::cell(measured),
                      Table::cell(paper[i])});
    }
    std::printf("%s", table.render().c_str());
    std::printf("(avg over %zu apps: 106 compute + 81 graphics; "
                "%zu transactions per app)\n",
                results.size(), defaultTraceLength);

    if (!args.jsonPath.empty() &&
        !writeBenchJson(args.jsonPath, "fig15", [&](JsonWriter &w) {
            writeAppResults(w, results, specs);
        }))
        return 1;
    return 0;
}
