/**
 * @file
 * Reproduces paper Figure 16: I/O switching-activity (toggle) reduction.
 * DBI-DC *increases* toggles slightly (its polarity wires add transitions)
 * while Universal Base+XOR Transfer cuts toggles ~23 % because mostly-zero
 * encoded data keeps wires flat.
 *
 * Paper values (% of baseline toggles): baseline 100.0, 4B DBI 101.1,
 * 2B DBI 103.0, 1B DBI 104.0, Univ+ZDR 77.0, +4B DBI 78.0, +2B DBI 78.7,
 * +1B DBI 79.0, BD-Encoding 89.1.
 */

#include <cstdio>
#include <map>

#include "common/table.h"
#include "core/codec_factory.h"
#include "suite_eval.h"
#include "workloads/apps.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const BenchArgs args = parseBenchArgs(
        argc, argv, "bench_fig16_toggles",
        "Figure 16: I/O switching activity (normalized toggles)");

    std::printf("%s", banner("Figure 16: I/O switching activity "
                             "(normalized toggles)").c_str());

    std::vector<App> apps = buildGpuSuite();
    const std::vector<std::string> specs = paperSchemeSpecs();
    const std::vector<AppResult> results =
        evalSuite(apps, specs, defaultTraceLength);

    const double paper[] = {100.0, 101.1, 103.0, 104.0, 77.0,
                            78.0,  78.7,  79.0,  89.1};

    // Headline numbers are traffic-weighted (the aggregate the energy
    // model prices); the per-app mean is shown alongside.
    Table table({"scheme", "measured %", "per-app mean %", "paper %"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        table.addRow({specs[i],
                      Table::cell(aggregateNormalizedToggles(results,
                                                             specs[i]) *
                                  100.0),
                      Table::cell(meanNormalizedToggles(results, specs[i]) *
                                  100.0),
                      Table::cell(paper[i])});
    }
    std::printf("%s", table.render().c_str());

    // Per-family view of the universal scheme, to show where switching
    // activity is saved.
    std::map<std::string, std::pair<double, std::size_t>> families;
    for (const AppResult &r : results) {
        auto &[sum, n] = families[r.family];
        sum += r.normalizedToggles("universal3+zdr");
        ++n;
    }
    Table fam({"family", "apps", "universal toggles %"});
    for (const auto &[family, acc] : families) {
        fam.addRow({family, Table::cell(acc.second),
                    Table::cell(acc.first /
                                static_cast<double>(acc.second) * 100.0)});
    }
    std::printf("\n%s", fam.render().c_str());

    if (!args.jsonPath.empty() &&
        !writeBenchJson(args.jsonPath, "fig16", [&](JsonWriter &w) {
            writeAppResults(w, results, specs);
        }))
        return 1;
    return 0;
}
