/**
 * @file
 * Reproduces paper Figure 17: total DRAM memory-system energy reduction
 * for every scheme at 70 % bandwidth utilization, combining the `1`-value
 * and toggle reductions through the component power model.
 *
 * Paper values (% energy reduction vs baseline): 4B DBI 2.2, 2B DBI 2.4,
 * 1B DBI 2.7, Univ+ZDR 5.8, +4B DBI 6.4, +2B DBI 6.7, +1B DBI 7.1,
 * BD-Encoding 4.2.
 */

#include <cstdio>

#include "common/table.h"
#include "core/codec_factory.h"
#include "energy/dram_power.h"
#include "suite_eval.h"
#include "workloads/apps.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const BenchArgs args = parseBenchArgs(
        argc, argv, "bench_fig17_energy",
        "Figure 17: DRAM energy reduction at 70% bandwidth utilization");

    std::printf("%s", banner("Figure 17: DRAM energy reduction "
                             "(70 % bandwidth utilization)").c_str());

    std::vector<App> apps = buildGpuSuite();
    const std::vector<std::string> specs = paperSchemeSpecs();
    const std::vector<AppResult> results =
        evalSuite(apps, specs, defaultTraceLength);

    const DramPowerModel model(DramPowerParams::gddr5x());

    // Aggregate wire activity across the population per scheme, then price
    // the traffic with the component model.
    auto total_energy = [&](const std::string &spec) {
        BusStats total;
        for (const AppResult &r : results) {
            const auto it = r.stats.find(spec);
            total += it->second;
        }
        return model.computeSimple(total).total();
    };

    const double baseline = total_energy("baseline");
    const double paper[] = {0.0, 2.2, 2.4, 2.7, 5.8, 6.4, 6.7, 7.1, 4.2};

    Table table({"scheme", "measured reduction %", "paper %"});
    for (std::size_t i = 1; i < specs.size(); ++i) {
        const double reduction =
            (1.0 - total_energy(specs[i]) / baseline) * 100.0;
        table.addRow({specs[i], Table::cell(reduction),
                      Table::cell(paper[i])});
    }
    std::printf("%s", table.render().c_str());

    EnergyBreakdown base;
    {
        BusStats total;
        for (const AppResult &r : results)
            total += r.stats.at("baseline");
        base = model.computeSimple(total);
    }
    std::printf("\nbaseline component split (calibration, DESIGN.md §6):\n"
                "  ones-dependent  %.1f %%\n"
                "  toggle-dependent %.1f %%\n"
                "  I/O total        %.1f %%\n",
                base.ioOnes / base.total() * 100.0,
                base.ioToggles / base.total() * 100.0,
                (base.ioOnes + base.ioToggles + base.ioFixed) /
                    base.total() * 100.0);

    if (!args.jsonPath.empty() &&
        !writeBenchJson(args.jsonPath, "fig17", [&](JsonWriter &w) {
            for (const std::string &spec : specs) {
                w.beginObject();
                w.kv("spec", spec);
                w.kv("energy_j", total_energy(spec));
                w.kv("reduction_pct",
                     (1.0 - total_energy(spec) / baseline) * 100.0);
                w.endObject();
            }
        }))
        return 1;
    return 0;
}
