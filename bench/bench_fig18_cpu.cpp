/**
 * @file
 * Reproduces paper Figure 18: Base+XOR Transfer on a CPU system (single
 * core, 4 MB LLC, DDR4, 64-byte transactions over a 64-bit channel).
 * The paper reports a 12 % average ones reduction with 68 % of the 28
 * SPEC CPU2006 applications improving — much less than on the GPU because
 * CPU data has lower intra-transaction similarity.
 */

#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "gpusim/gpu_system.h"
#include "suite_eval.h"
#include "workloads/apps.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const BenchArgs args = parseBenchArgs(
        argc, argv, "bench_fig18_cpu",
        "Figure 18: Base+XOR Transfer on CPU workloads (DDR4, 64B "
        "lines)");

    std::printf("%s", banner("Figure 18: Base+XOR Transfer with CPU "
                             "workloads (normalized # of 1 values)")
                          .c_str());

    std::vector<App> apps = buildCpuSuite();
    const std::vector<std::string> specs = {"universal3+zdr"};
    std::vector<AppResult> results =
        evalSuite(apps, specs, defaultTraceLength);

    std::stable_sort(results.begin(), results.end(),
                     [](const AppResult &a, const AppResult &b) {
                         return a.normalizedOnes("universal3+zdr") <
                                b.normalizedOnes("universal3+zdr");
                     });

    Table table({"application", "family", "universal XOR+ZDR %"});
    std::size_t improved = 0;
    for (const AppResult &r : results) {
        const double norm = r.normalizedOnes("universal3+zdr") * 100.0;
        if (norm < 100.0)
            ++improved;
        table.addRow({r.app, r.family, Table::cell(norm)});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\naverage reduction: %.1f %% (paper: 12 %%)\n"
                "apps improved: %zu/%zu = %.0f %% (paper: 68 %%)\n",
                (1.0 - meanNormalizedOnes(results, "universal3+zdr")) *
                    100.0,
                improved, results.size(),
                100.0 * static_cast<double>(improved) /
                    static_cast<double>(results.size()));

    // End-to-end sanity on the full CPU system model: one representative
    // workload through the 4 MB LLC and DDR4 channel.
    std::printf("%s", banner("CPU system end-to-end (4 MB LLC, one DDR4 "
                             "channel, 64 B lines)").c_str());
    double baseline_energy = 0.0;
    for (const char *scheme : {"baseline", "universal3+zdr"}) {
        GpuConfig config = GpuConfig::cpuDdr4();
        config.codecSpec = scheme;
        GpuSystem system(config);
        GpuKernel kernel;
        kernel.name = "spec-fp-like";
        kernel.footprintBytes = 16u << 20;
        kernel.accesses = 150000;
        kernel.writeFraction = 0.3;
        kernel.randomFraction = 0.3;
        kernel.dataPattern =
            makeSoaDoublePattern(1.0e3, 1.0e-3, 99, 24);
        kernel.seed = 99;
        const GpuRunReport report = system.run(kernel);
        if (std::string(scheme) == "baseline")
            baseline_energy = report.energy.total();
        std::printf("%-15s ones %5.1f %%  DRAM energy %8.1f uJ"
                    "  saved %4.1f %%\n",
                    scheme,
                    100.0 * static_cast<double>(report.bus.ones()) /
                        static_cast<double>(report.bus.dataBits),
                    report.energy.total() * 1e6,
                    (1.0 - report.energy.total() / baseline_energy) *
                        100.0);
    }

    if (!args.jsonPath.empty() &&
        !writeBenchJson(args.jsonPath, "fig18", [&](JsonWriter &w) {
            writeAppResults(w, results, specs);
        }))
        return 1;
    return 0;
}
