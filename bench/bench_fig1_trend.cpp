/**
 * @file
 * Reproduces paper Figure 1: the GDDR5 -> GDDR5X trend of energy/bit,
 * bandwidth, and peak power, normalized to GDDR5 6 Gbps. The paper's
 * annotated end points are 81 % energy/bit, 200 % bandwidth, and 163 %
 * peak power for GDDR5X 12 Gbps.
 */

#include <cstdio>

#include "common/table.h"
#include "energy/gddr_trend.h"
#include "suite_eval.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const BenchArgs args = parseBenchArgs(
        argc, argv, "bench_fig1_trend",
        "Figure 1: GDDR generation trend of energy/bit, bandwidth, and "
        "peak power");

    std::printf("%s", banner("Figure 1: hypothetical GPU memory system "
                             "trend (normalized to GDDR5 6Gbps)").c_str());

    const auto trend = computeGddrTrend(gddrGenerations(), 384);
    Table table({"generation", "energy/bit %", "bandwidth %",
                 "peak power %"});
    for (const GddrTrendPoint &p : trend) {
        table.addRow({p.name, Table::cell(p.energyPerBitPct, 0),
                      Table::cell(p.bandwidthPct, 0),
                      Table::cell(p.peakPowerPct, 0)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("(paper end point: 81 / 200 / 163 at GDDR5X 12Gbps)\n");

    if (!args.jsonPath.empty() &&
        !writeBenchJson(args.jsonPath, "fig1", [&](JsonWriter &w) {
            for (const GddrTrendPoint &p : trend) {
                w.beginObject();
                w.kv("generation", p.name);
                w.kv("energy_per_bit_pct", p.energyPerBitPct);
                w.kv("bandwidth_pct", p.bandwidthPct);
                w.kv("peak_power_pct", p.peakPowerPct);
                w.endObject();
            }
        }))
        return 1;
    return 0;
}
