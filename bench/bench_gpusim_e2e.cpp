/**
 * @file
 * End-to-end system study (paper §VI-F flavor): runs reference kernels
 * through the full LLC + memory-controller + GDDR5X pipeline and compares
 * DRAM energy between the conventional transfer and Universal Base+XOR
 * Transfer with ZDR (with and without 1-byte DBI), at the utilization each
 * kernel actually achieves.
 */

#include <cstdio>

#include "common/table.h"
#include "gpusim/gpu_system.h"

int
main()
{
    using namespace bxt;

    std::printf("%s", banner("End-to-end GPU system energy "
                             "(LLC + memory controller + GDDR5X)").c_str());

    const char *schemes[] = {"baseline", "universal3+zdr",
                             "universal3+zdr|dbi1"};

    Table table({"kernel", "scheme", "LLC hit %", "bus util %",
                 "ones/bit %", "energy uJ", "savings %"});

    const std::vector<GpuKernel> reference = makeReferenceKernels(42);
    for (std::size_t k = 0; k < reference.size(); ++k) {
        double baseline_energy = 0.0;
        for (const char *scheme : schemes) {
            GpuConfig config = GpuConfig::titanXPascal();
            config.codecSpec = scheme;
            GpuSystem system(config);
            // Regenerate the kernel fresh per run so every scheme sees the
            // same access and data stream.
            std::vector<GpuKernel> kernels = makeReferenceKernels(42);
            GpuRunReport report = system.run(kernels[k]);

            const double energy = report.energy.total();
            if (std::string(scheme) == "baseline")
                baseline_energy = energy;
            const double ones_pct =
                100.0 * static_cast<double>(report.bus.ones()) /
                static_cast<double>(report.bus.dataBits + report.bus.metaBits);
            table.addRow(
                {report.kernel, scheme,
                 Table::cell(report.cache.hitRate() * 100.0),
                 Table::cell(report.mem.utilization() * 100.0),
                 Table::cell(ones_pct),
                 Table::cell(energy * 1e6, 2),
                 Table::cell((1.0 - energy / baseline_energy) * 100.0)});
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("(savings relative to the baseline scheme per kernel; "
                "every run verifies decode(encode(x)) == x end to end)\n");
    return 0;
}
