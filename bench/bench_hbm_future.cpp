/**
 * @file
 * The paper's future work (§VIII): on an *unterminated* interface such
 * as HBM, data-dependent energy is dominated by capacitive switching
 * rather than termination current, so the value of an encoding flips
 * from its `1`-count reduction to its toggle reduction. This bench
 * re-prices the GPU population's wire activity with an HBM2-class
 * electrical model and contrasts DBI-DC (GDDR5X's choice), DBI-AC (the
 * toggle-minimizing variant), and Base+XOR Transfer.
 */

#include <cstdio>

#include "common/table.h"
#include "core/codec_factory.h"
#include "energy/dram_power.h"
#include "suite_eval.h"
#include "workloads/apps.h"

int
main()
{
    using namespace bxt;

    std::printf("%s",
                banner("Future work: Base+XOR Transfer on an unterminated "
                       "HBM2-class interface").c_str());

    std::vector<App> apps = buildGpuSuite();
    const std::vector<std::string> specs = {
        "baseline",       "dbi1",
        "dbi-ac1",        "universal3+zdr",
        "universal3+zdr|dbi-ac1",
    };
    const std::vector<AppResult> results =
        evalSuite(apps, specs, defaultTraceLength / 2);

    const DramPowerModel gddr(DramPowerParams::gddr5x());
    const DramPowerModel hbm(DramPowerParams::hbm2());

    auto totals = [&](const std::string &spec) {
        BusStats total;
        for (const AppResult &r : results)
            total += r.stats.at(spec);
        return total;
    };
    const double gddr_base = gddr.computeSimple(totals("baseline")).total();
    const double hbm_base = hbm.computeSimple(totals("baseline")).total();

    Table table({"scheme", "ones %", "toggles %", "GDDR5X energy saved %",
                 "HBM2 energy saved %"});
    for (const std::string &spec : specs) {
        const BusStats stats = totals(spec);
        table.addRow(
            {spec,
             Table::cell(aggregateNormalizedOnes(results, spec) * 100.0),
             Table::cell(aggregateNormalizedToggles(results, spec) * 100.0),
             Table::cell((1.0 - gddr.computeSimple(stats).total() /
                                    gddr_base) *
                         100.0),
             Table::cell((1.0 - hbm.computeSimple(stats).total() /
                                    hbm_base) *
                         100.0)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nOn the terminated GDDR5X bus, DBI-DC saves energy and DBI-AC "
        "does not;\non unterminated HBM2 the roles flip and only toggle "
        "reduction matters —\nthe adaptation the paper's conclusion "
        "proposes.\n");
    return 0;
}
