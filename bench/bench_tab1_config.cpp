/**
 * @file
 * Reproduces paper Table I: the evaluated GPU system configuration, plus
 * the derived electrical quantities quoted in §V-A (13.5 mA and +1.82 pJ
 * per transmitted `1`, 37 % energy imbalance, 432 mA / 5.2 A peak data
 * currents).
 */

#include <cstdio>

#include "common/table.h"
#include "energy/pod_io.h"
#include "gpusim/gpu_config.h"

int
main()
{
    using namespace bxt;

    std::printf("%s", banner("Table I: configuration of evaluated GPU "
                             "system").c_str());
    const GpuConfig config = GpuConfig::titanXPascal();
    std::printf("%s", config.report().c_str());

    const PodIoParams io = PodIoParams::gddr5x();
    std::printf("%s", banner("Derived POD I/O electrical quantities "
                             "(paper Section V-A)").c_str());
    Table table({"quantity", "measured", "paper"});
    table.addRow({"static current per 1 value (mA)",
                  Table::cell(io.currentPerOne() * 1e3), "13.5"});
    table.addRow({"energy per 1 value (pJ)",
                  Table::cell(io.energyPerOne() * 1e12, 2), "1.82"});
    table.addRow({"POD voltage swing (V)",
                  Table::cell(io.swingVoltage(), 2), "0.54"});
    table.addRow({"peak 1-current, 32-bit chip bus (mA)",
                  Table::cell(io.currentPerOne() * 32 * 1e3, 0), "432"});
    table.addRow({"peak 1-current, 384-bit GPU bus (A)",
                  Table::cell(io.currentPerOne() * 384, 1), "5.2"});
    std::printf("%s", table.render().c_str());
    return 0;
}
