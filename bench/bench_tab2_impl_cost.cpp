/**
 * @file
 * Reproduces paper Table II: area, energy, and latency of the encode and
 * decode logic for every proposed mechanism on 32-byte transactions, from
 * the gate-level cost model, plus the total-GPU area claim (<0.01 % die).
 */

#include <cstdio>

#include "common/table.h"
#include "gatecost/encoder_costs.h"

int
main()
{
    using namespace bxt;

    std::printf("%s",
                banner("Table II: implementation overhead for 32-byte "
                       "transactions (16 nm class)").c_str());

    const GateLibrary lib = GateLibrary::tsmc16();
    const std::vector<SchemeCost> rows = tableTwoCosts(lib, 32);

    // Paper values: {area enc/dec, energy enc/dec, latency enc/dec}.
    struct PaperRow
    {
        double area, energy, latency_enc, latency_dec;
    };
    const PaperRow paper[] = {
        {214, 43, 24, 360},  // 2-byte XOR
        {289, 73, 24, 168},  // 4-byte XOR
        {341, 97, 24, 72},   // 8-byte XOR
        {355, 98, 24, 72},   // Universal XOR (3 stage)
        {761, 103, 165, 165},// ZDR (4B base)
        {1050, 176, 189, 333},   // 4-byte XOR+ZDR
        {1116, 201, 189, 237},   // Universal XOR+ZDR (3 stage)
    };

    Table table({"mechanism", "config", "area um2 (paper)",
                 "energy fJ/32B (paper)", "enc ps (paper)",
                 "dec ps (paper)"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SchemeCost &row = rows[i];
        char area[64], energy[64], enc[64], dec[64];
        std::snprintf(area, sizeof(area), "%.0f (%.0f)", row.encode.areaUm2,
                      paper[i].area);
        std::snprintf(energy, sizeof(energy), "%.0f (%.0f)",
                      row.encode.energyFj, paper[i].energy);
        std::snprintf(enc, sizeof(enc), "%.0f (%.0f)", row.encode.delayPs,
                      paper[i].latency_enc);
        std::snprintf(dec, sizeof(dec), "%.0f (%.0f)", row.decode.delayPs,
                      paper[i].latency_dec);
        table.addRow({row.mechanism, row.config, area, energy, enc, dec});
    }
    std::printf("%s", table.render().c_str());

    const SchemeCost &best = rows.back();
    std::printf("\nTotal encode+decode logic for 12 channels: %.4f mm^2 "
                "(paper: 0.027 mm^2, <0.01%% of die)\n",
                gpuTotalAreaMm2(best, 12));
    std::printf("Worst decode latency %.0f ps vs 400 ps DRAM clock "
                "period -> single-cycle, as the paper requires.\n",
                best.decode.delayPs);
    return 0;
}
