#include "suite_eval.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "channel/channel_eval.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/parallel.h"
#include "core/codec_factory.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"
#include "telemetry/trace.h"

namespace bxt {

double
AppResult::normalizedOnes(const std::string &spec) const
{
    const auto it = stats.find(spec);
    BXT_ASSERT(it != stats.end());
    if (rawOnes == 0)
        return 1.0;
    return static_cast<double>(it->second.ones()) /
           static_cast<double>(rawOnes);
}

double
AppResult::normalizedToggles(const std::string &spec) const
{
    const auto it = stats.find(spec);
    const auto base = stats.find("baseline");
    BXT_ASSERT(it != stats.end() && base != stats.end());
    if (base->second.toggles() == 0)
        return 1.0;
    return static_cast<double>(it->second.toggles()) /
           static_cast<double>(base->second.toggles());
}

std::vector<AppResult>
evalSuite(std::vector<App> &apps, const std::vector<std::string> &specs,
          std::size_t tx_per_app, unsigned threads)
{
    const std::size_t n_apps = apps.size();
    const std::size_t n_specs = specs.size();

    // The work is fanned over a pool in two deterministic stages; every
    // job writes only its own index's slot, so the merged output is
    // bit-identical to a serial run regardless of thread count.
    ThreadPool pool(threads);

    if (telemetry::metricsEnabled()) {
        telemetry::counter("bxt.suite.evals").add(1);
        telemetry::gauge("bxt.suite.apps").set(
            static_cast<double>(n_apps));
        telemetry::gauge("bxt.suite.specs").set(
            static_cast<double>(n_specs));
    }

    // Stage 1: materialize each app's trace (apps own independent
    // seeded pattern state) and fill the per-app metadata once —
    // rawOnes is a property of the *unencoded* trace, not of any spec.
    std::vector<std::vector<Transaction>> traces(n_apps);
    std::vector<AppResult> results(n_apps);
    {
        telemetry::ScopedSpan span("suite.trace-gen", "suite");
        pool.run(n_apps, [&](std::size_t a) {
            traces[a] = generateTrace(apps[a], tx_per_app);
            AppResult &result = results[a];
            result.app = apps[a].name;
            result.category = apps[a].category;
            result.family = apps[a].family;
            result.mixedRatio = mixedDataRatio(traces[a]);
            std::uint64_t raw = 0;
            for (const Transaction &tx : traces[a])
                raw += tx.ones();
            result.rawOnes = raw;
        });
    }

    // Stage 2: one job per (app, spec) pair. Each job owns its codec and
    // Bus, so no channel or codec state is shared between workers.
    std::vector<BusStats> job_stats(n_apps * n_specs);
    {
        telemetry::ScopedSpan span("suite.sweep", "suite");
        pool.run(n_apps * n_specs, [&](std::size_t j) {
            const std::size_t a = j / n_specs;
            const std::size_t s = j % n_specs;
            const auto bus_width =
                static_cast<unsigned>(apps[a].txBytes == 64 ? 64 : 32);
            CodecPtr codec = makeCodec(specs[s], bus_width / 8);
            // Workers drive the batch hot path; its BusStats are
            // field-identical to the scalar loop (see channel_eval.h), so
            // the sweep results and golden figures are unchanged.
            job_stats[j] = evalCodecOnStream(*codec, traces[a], bus_width,
                                             0.3, kDefaultEvalBatchTx)
                               .stats;
        });
    }

    // Merge by index (order-independent assembly).
    for (std::size_t a = 0; a < n_apps; ++a) {
        for (std::size_t s = 0; s < n_specs; ++s)
            results[a].stats.emplace(specs[s], job_stats[a * n_specs + s]);
    }
    return results;
}

double
meanNormalizedOnes(const std::vector<AppResult> &results,
                   const std::string &spec)
{
    if (results.empty())
        return 1.0;
    double sum = 0.0;
    for (const AppResult &r : results)
        sum += r.normalizedOnes(spec);
    return sum / static_cast<double>(results.size());
}

double
aggregateNormalizedOnes(const std::vector<AppResult> &results,
                        const std::string &spec)
{
    std::uint64_t total = 0;
    std::uint64_t raw = 0;
    for (const AppResult &r : results) {
        total += r.stats.at(spec).ones();
        raw += r.rawOnes;
    }
    if (raw == 0)
        return 1.0;
    return static_cast<double>(total) / static_cast<double>(raw);
}

double
aggregateNormalizedToggles(const std::vector<AppResult> &results,
                           const std::string &spec)
{
    std::uint64_t total = 0;
    std::uint64_t base = 0;
    for (const AppResult &r : results) {
        total += r.stats.at(spec).toggles();
        base += r.stats.at("baseline").toggles();
    }
    if (base == 0)
        return 1.0;
    return static_cast<double>(total) / static_cast<double>(base);
}

double
meanNormalizedToggles(const std::vector<AppResult> &results,
                      const std::string &spec)
{
    if (results.empty())
        return 1.0;
    double sum = 0.0;
    for (const AppResult &r : results)
        sum += r.normalizedToggles(spec);
    return sum / static_cast<double>(results.size());
}

BenchArgs
parseBenchArgs(int argc, char **argv, const std::string &bench,
               const std::string &summary)
{
    BenchArgs args;
    Cli cli(bench, summary);
    cli.add("--golden", "PATH",
            "append this bench's endpoint lines to PATH",
            [&](const std::string &v) { args.goldenPath = v; });
    cli.add("--json", "PATH", "write the unified bench JSON to PATH",
            [&](const std::string &v) { args.jsonPath = v; });
    if (!cli.parse(argc, argv))
        std::exit(cli.exitCode());
    return args;
}

bool
writeBenchJson(const std::string &path, const std::string &bench,
               const std::function<void(JsonWriter &)> &fill_results)
{
    JsonWriter writer(/*pretty=*/true);
    writer.beginObject();
    writer.kv("bench", bench);
    writer.kv("schema", 1);
    writer.beginArray("results");
    fill_results(writer);
    writer.endArray();
    writer.kvRaw("metrics", telemetry::snapshotJson(/*pretty=*/false));
    writer.endObject();

    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write bench JSON to %s\n",
                     path.c_str());
        return false;
    }
    out << writer.str() << "\n";
    return static_cast<bool>(out);
}

void
writeAppResults(JsonWriter &writer, const std::vector<AppResult> &results,
                const std::vector<std::string> &specs)
{
    for (const AppResult &r : results) {
        for (const std::string &spec : specs) {
            const BusStats &stats = r.stats.at(spec);
            writer.beginObject();
            writer.kv("app", r.app);
            writer.kv("family", r.family);
            writer.kv("spec", spec);
            writer.kv("raw_ones", r.rawOnes);
            writer.kv("ones", stats.ones());
            writer.kv("toggles", stats.toggles());
            writer.kv("normalized_ones", r.normalizedOnes(spec));
            if (r.stats.count("baseline") != 0)
                writer.kv("normalized_toggles",
                          r.normalizedToggles(spec));
            writer.endObject();
        }
    }
}

} // namespace bxt
