#include "suite_eval.h"

#include "channel/channel_eval.h"
#include "common/error.h"
#include "core/codec_factory.h"

namespace bxt {

double
AppResult::normalizedOnes(const std::string &spec) const
{
    const auto it = stats.find(spec);
    BXT_ASSERT(it != stats.end());
    if (rawOnes == 0)
        return 1.0;
    return static_cast<double>(it->second.ones()) /
           static_cast<double>(rawOnes);
}

double
AppResult::normalizedToggles(const std::string &spec) const
{
    const auto it = stats.find(spec);
    const auto base = stats.find("baseline");
    BXT_ASSERT(it != stats.end() && base != stats.end());
    if (base->second.toggles() == 0)
        return 1.0;
    return static_cast<double>(it->second.toggles()) /
           static_cast<double>(base->second.toggles());
}

std::vector<AppResult>
evalSuite(std::vector<App> &apps, const std::vector<std::string> &specs,
          std::size_t tx_per_app)
{
    std::vector<AppResult> results;
    results.reserve(apps.size());
    for (App &app : apps) {
        const std::vector<Transaction> trace =
            generateTrace(app, tx_per_app);
        const auto bus_width =
            static_cast<unsigned>(app.txBytes == 64 ? 64 : 32);

        AppResult result;
        result.app = app.name;
        result.category = app.category;
        result.family = app.family;
        result.mixedRatio = mixedDataRatio(trace);
        for (const std::string &spec : specs) {
            CodecPtr codec = makeCodec(spec, bus_width / 8);
            const ChannelEvalResult eval =
                evalCodecOnStream(*codec, trace, bus_width);
            result.rawOnes = eval.rawOnes;
            result.stats.emplace(spec, eval.stats);
        }
        results.push_back(std::move(result));
    }
    return results;
}

double
meanNormalizedOnes(const std::vector<AppResult> &results,
                   const std::string &spec)
{
    if (results.empty())
        return 1.0;
    double sum = 0.0;
    for (const AppResult &r : results)
        sum += r.normalizedOnes(spec);
    return sum / static_cast<double>(results.size());
}

double
aggregateNormalizedOnes(const std::vector<AppResult> &results,
                        const std::string &spec)
{
    std::uint64_t total = 0;
    std::uint64_t raw = 0;
    for (const AppResult &r : results) {
        total += r.stats.at(spec).ones();
        raw += r.rawOnes;
    }
    if (raw == 0)
        return 1.0;
    return static_cast<double>(total) / static_cast<double>(raw);
}

double
aggregateNormalizedToggles(const std::vector<AppResult> &results,
                           const std::string &spec)
{
    std::uint64_t total = 0;
    std::uint64_t base = 0;
    for (const AppResult &r : results) {
        total += r.stats.at(spec).toggles();
        base += r.stats.at("baseline").toggles();
    }
    if (base == 0)
        return 1.0;
    return static_cast<double>(total) / static_cast<double>(base);
}

double
meanNormalizedToggles(const std::vector<AppResult> &results,
                      const std::string &spec)
{
    if (results.empty())
        return 1.0;
    double sum = 0.0;
    for (const AppResult &r : results)
        sum += r.normalizedToggles(spec);
    return sum / static_cast<double>(results.size());
}

} // namespace bxt
