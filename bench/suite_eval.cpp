#include "suite_eval.h"

#include "channel/channel_eval.h"
#include "common/error.h"
#include "common/parallel.h"
#include "core/codec_factory.h"

namespace bxt {

double
AppResult::normalizedOnes(const std::string &spec) const
{
    const auto it = stats.find(spec);
    BXT_ASSERT(it != stats.end());
    if (rawOnes == 0)
        return 1.0;
    return static_cast<double>(it->second.ones()) /
           static_cast<double>(rawOnes);
}

double
AppResult::normalizedToggles(const std::string &spec) const
{
    const auto it = stats.find(spec);
    const auto base = stats.find("baseline");
    BXT_ASSERT(it != stats.end() && base != stats.end());
    if (base->second.toggles() == 0)
        return 1.0;
    return static_cast<double>(it->second.toggles()) /
           static_cast<double>(base->second.toggles());
}

std::vector<AppResult>
evalSuite(std::vector<App> &apps, const std::vector<std::string> &specs,
          std::size_t tx_per_app, unsigned threads)
{
    const std::size_t n_apps = apps.size();
    const std::size_t n_specs = specs.size();

    // The work is fanned over a pool in two deterministic stages; every
    // job writes only its own index's slot, so the merged output is
    // bit-identical to a serial run regardless of thread count.
    ThreadPool pool(threads);

    // Stage 1: materialize each app's trace (apps own independent
    // seeded pattern state) and fill the per-app metadata once —
    // rawOnes is a property of the *unencoded* trace, not of any spec.
    std::vector<std::vector<Transaction>> traces(n_apps);
    std::vector<AppResult> results(n_apps);
    pool.run(n_apps, [&](std::size_t a) {
        traces[a] = generateTrace(apps[a], tx_per_app);
        AppResult &result = results[a];
        result.app = apps[a].name;
        result.category = apps[a].category;
        result.family = apps[a].family;
        result.mixedRatio = mixedDataRatio(traces[a]);
        std::uint64_t raw = 0;
        for (const Transaction &tx : traces[a])
            raw += tx.ones();
        result.rawOnes = raw;
    });

    // Stage 2: one job per (app, spec) pair. Each job owns its codec and
    // Bus, so no channel or codec state is shared between workers.
    std::vector<BusStats> job_stats(n_apps * n_specs);
    pool.run(n_apps * n_specs, [&](std::size_t j) {
        const std::size_t a = j / n_specs;
        const std::size_t s = j % n_specs;
        const auto bus_width =
            static_cast<unsigned>(apps[a].txBytes == 64 ? 64 : 32);
        CodecPtr codec = makeCodec(specs[s], bus_width / 8);
        job_stats[j] =
            evalCodecOnStream(*codec, traces[a], bus_width).stats;
    });

    // Merge by index (order-independent assembly).
    for (std::size_t a = 0; a < n_apps; ++a) {
        for (std::size_t s = 0; s < n_specs; ++s)
            results[a].stats.emplace(specs[s], job_stats[a * n_specs + s]);
    }
    return results;
}

double
meanNormalizedOnes(const std::vector<AppResult> &results,
                   const std::string &spec)
{
    if (results.empty())
        return 1.0;
    double sum = 0.0;
    for (const AppResult &r : results)
        sum += r.normalizedOnes(spec);
    return sum / static_cast<double>(results.size());
}

double
aggregateNormalizedOnes(const std::vector<AppResult> &results,
                        const std::string &spec)
{
    std::uint64_t total = 0;
    std::uint64_t raw = 0;
    for (const AppResult &r : results) {
        total += r.stats.at(spec).ones();
        raw += r.rawOnes;
    }
    if (raw == 0)
        return 1.0;
    return static_cast<double>(total) / static_cast<double>(raw);
}

double
aggregateNormalizedToggles(const std::vector<AppResult> &results,
                           const std::string &spec)
{
    std::uint64_t total = 0;
    std::uint64_t base = 0;
    for (const AppResult &r : results) {
        total += r.stats.at(spec).toggles();
        base += r.stats.at("baseline").toggles();
    }
    if (base == 0)
        return 1.0;
    return static_cast<double>(total) / static_cast<double>(base);
}

double
meanNormalizedToggles(const std::vector<AppResult> &results,
                      const std::string &spec)
{
    if (results.empty())
        return 1.0;
    double sum = 0.0;
    for (const AppResult &r : results)
        sum += r.normalizedToggles(spec);
    return sum / static_cast<double>(results.size());
}

} // namespace bxt
