/**
 * @file
 * Shared evaluation harness for the figure-reproduction benches: runs the
 * workload population through a set of codecs and collects per-application
 * wire-activity results.
 */

#ifndef BXT_BENCH_SUITE_EVAL_H
#define BXT_BENCH_SUITE_EVAL_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "channel/bus.h"
#include "common/json.h"
#include "workloads/apps.h"

namespace bxt {

/** Per-application evaluation across a set of schemes. */
struct AppResult
{
    std::string app;
    AppCategory category = AppCategory::Compute;
    std::string family;
    double mixedRatio = 0.0;   ///< Mixed zero/non-zero transaction ratio.
    std::uint64_t rawOnes = 0; ///< Unencoded `1` count of the trace.
    /** Wire activity per scheme spec (data + metadata). */
    std::map<std::string, BusStats> stats;

    /** Ones of @p spec normalized to the unencoded stream (1.0 = equal). */
    double normalizedOnes(const std::string &spec) const;

    /** Toggles of @p spec normalized to the baseline scheme's toggles. */
    double normalizedToggles(const std::string &spec) const;
};

/**
 * Evaluate every app in @p apps against every codec in @p specs with
 * @p tx_per_app transactions per application. The bus width is chosen per
 * app (32-bit for 32-byte GPU sectors, 64-bit for 64-byte CPU lines).
 *
 * Execution is batch-parallel: traces are materialized per app, then one
 * (app, spec) job per pair is fanned across a thread pool. Each job owns
 * its codec and Bus, and results are merged into the per-app slots by
 * index, so the output is bit-identical for any thread count (including
 * a serial run) — parallelism never changes a figure.
 *
 * @param threads Worker count. 0 (default) resolves via the BXT_THREADS
 *        environment variable, falling back to the hardware concurrency;
 *        1 forces a serial run.
 */
std::vector<AppResult> evalSuite(std::vector<App> &apps,
                                 const std::vector<std::string> &specs,
                                 std::size_t tx_per_app,
                                 unsigned threads = 0);

/** Arithmetic-mean normalized ones of @p spec over @p results. */
double meanNormalizedOnes(const std::vector<AppResult> &results,
                          const std::string &spec);

/** Arithmetic-mean normalized toggles of @p spec over @p results. */
double meanNormalizedToggles(const std::vector<AppResult> &results,
                             const std::string &spec);

/**
 * Traffic-weighted normalized ones: total ones of @p spec over the whole
 * population divided by total unencoded ones. This is the aggregate the
 * energy model prices.
 */
double aggregateNormalizedOnes(const std::vector<AppResult> &results,
                               const std::string &spec);

/** Traffic-weighted normalized toggles (vs the baseline scheme). */
double aggregateNormalizedToggles(const std::vector<AppResult> &results,
                                  const std::string &spec);

/** Flags shared by every figure bench. */
struct BenchArgs
{
    /** `--golden PATH`: append this bench's endpoint lines. */
    std::string goldenPath;
    /** `--json PATH`: write the unified bench JSON document. */
    std::string jsonPath;
};

/**
 * Parse the common bench command line (`--golden`, `--json`, `--help`,
 * `--version`). Exits the process directly after `--help`/`--version`
 * (status 0) or on an unknown flag (status 2), so callers just use the
 * returned values.
 */
BenchArgs parseBenchArgs(int argc, char **argv, const std::string &bench,
                         const std::string &summary);

/**
 * Write the unified bench JSON document (satellite schema, version 1):
 *
 *   {"bench": <name>, "schema": 1, "results": [...], "metrics": {...}}
 *
 * @p fill_results is invoked inside the "results" array and emits one
 * value per row; "metrics" embeds the current telemetry snapshot (always
 * valid, `"enabled": false` when metrics are off). Returns false on I/O
 * failure (message on stderr).
 */
bool writeBenchJson(const std::string &path, const std::string &bench,
                    const std::function<void(JsonWriter &)> &fill_results);

/**
 * Emit one results-array row per (app, spec) pair: app metadata plus
 * absolute and normalized wire-activity numbers. The standard body for
 * suite-sweep benches' writeBenchJson callback.
 */
void writeAppResults(JsonWriter &writer,
                     const std::vector<AppResult> &results,
                     const std::vector<std::string> &specs);

} // namespace bxt

#endif // BXT_BENCH_SUITE_EVAL_H
