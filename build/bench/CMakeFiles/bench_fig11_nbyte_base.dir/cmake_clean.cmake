file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_nbyte_base.dir/bench_fig11_nbyte_base.cpp.o"
  "CMakeFiles/bench_fig11_nbyte_base.dir/bench_fig11_nbyte_base.cpp.o.d"
  "bench_fig11_nbyte_base"
  "bench_fig11_nbyte_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_nbyte_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
