# Empty compiler generated dependencies file for bench_fig11_nbyte_base.
# This may be replaced when dependencies are built.
