file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_universal.dir/bench_fig12_universal.cpp.o"
  "CMakeFiles/bench_fig12_universal.dir/bench_fig12_universal.cpp.o.d"
  "bench_fig12_universal"
  "bench_fig12_universal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_universal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
