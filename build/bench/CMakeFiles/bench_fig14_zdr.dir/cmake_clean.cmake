file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_zdr.dir/bench_fig14_zdr.cpp.o"
  "CMakeFiles/bench_fig14_zdr.dir/bench_fig14_zdr.cpp.o.d"
  "bench_fig14_zdr"
  "bench_fig14_zdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_zdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
