# Empty dependencies file for bench_fig14_zdr.
# This may be replaced when dependencies are built.
