file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_toggles.dir/bench_fig16_toggles.cpp.o"
  "CMakeFiles/bench_fig16_toggles.dir/bench_fig16_toggles.cpp.o.d"
  "bench_fig16_toggles"
  "bench_fig16_toggles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_toggles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
