# Empty dependencies file for bench_fig16_toggles.
# This may be replaced when dependencies are built.
