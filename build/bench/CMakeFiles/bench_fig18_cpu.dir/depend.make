# Empty dependencies file for bench_fig18_cpu.
# This may be replaced when dependencies are built.
