
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_trend.cpp" "bench/CMakeFiles/bench_fig1_trend.dir/bench_fig1_trend.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_trend.dir/bench_fig1_trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bxt_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bxt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/bxt_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bxt_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/gatecost/CMakeFiles/bxt_gatecost.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bxt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/bxt_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bxt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
