file(REMOVE_RECURSE
  "CMakeFiles/bench_hbm_future.dir/bench_hbm_future.cpp.o"
  "CMakeFiles/bench_hbm_future.dir/bench_hbm_future.cpp.o.d"
  "bench_hbm_future"
  "bench_hbm_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hbm_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
