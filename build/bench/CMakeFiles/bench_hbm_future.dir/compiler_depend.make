# Empty compiler generated dependencies file for bench_hbm_future.
# This may be replaced when dependencies are built.
