file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_impl_cost.dir/bench_tab2_impl_cost.cpp.o"
  "CMakeFiles/bench_tab2_impl_cost.dir/bench_tab2_impl_cost.cpp.o.d"
  "bench_tab2_impl_cost"
  "bench_tab2_impl_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_impl_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
