# Empty compiler generated dependencies file for bench_tab2_impl_cost.
# This may be replaced when dependencies are built.
