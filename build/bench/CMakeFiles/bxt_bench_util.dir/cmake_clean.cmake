file(REMOVE_RECURSE
  "CMakeFiles/bxt_bench_util.dir/suite_eval.cpp.o"
  "CMakeFiles/bxt_bench_util.dir/suite_eval.cpp.o.d"
  "libbxt_bench_util.a"
  "libbxt_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bxt_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
