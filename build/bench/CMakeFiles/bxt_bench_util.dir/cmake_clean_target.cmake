file(REMOVE_RECURSE
  "libbxt_bench_util.a"
)
