# Empty dependencies file for bxt_bench_util.
# This may be replaced when dependencies are built.
