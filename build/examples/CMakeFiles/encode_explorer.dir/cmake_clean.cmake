file(REMOVE_RECURSE
  "CMakeFiles/encode_explorer.dir/encode_explorer.cpp.o"
  "CMakeFiles/encode_explorer.dir/encode_explorer.cpp.o.d"
  "encode_explorer"
  "encode_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encode_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
