# Empty dependencies file for encode_explorer.
# This may be replaced when dependencies are built.
