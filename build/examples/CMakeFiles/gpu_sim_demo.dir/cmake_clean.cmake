file(REMOVE_RECURSE
  "CMakeFiles/gpu_sim_demo.dir/gpu_sim_demo.cpp.o"
  "CMakeFiles/gpu_sim_demo.dir/gpu_sim_demo.cpp.o.d"
  "gpu_sim_demo"
  "gpu_sim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_sim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
