# Empty dependencies file for gpu_sim_demo.
# This may be replaced when dependencies are built.
