
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/bus.cpp" "src/channel/CMakeFiles/bxt_channel.dir/bus.cpp.o" "gcc" "src/channel/CMakeFiles/bxt_channel.dir/bus.cpp.o.d"
  "/root/repo/src/channel/channel_eval.cpp" "src/channel/CMakeFiles/bxt_channel.dir/channel_eval.cpp.o" "gcc" "src/channel/CMakeFiles/bxt_channel.dir/channel_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bxt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bxt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
