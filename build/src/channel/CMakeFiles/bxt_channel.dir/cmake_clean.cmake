file(REMOVE_RECURSE
  "CMakeFiles/bxt_channel.dir/bus.cpp.o"
  "CMakeFiles/bxt_channel.dir/bus.cpp.o.d"
  "CMakeFiles/bxt_channel.dir/channel_eval.cpp.o"
  "CMakeFiles/bxt_channel.dir/channel_eval.cpp.o.d"
  "libbxt_channel.a"
  "libbxt_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bxt_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
