file(REMOVE_RECURSE
  "libbxt_channel.a"
)
