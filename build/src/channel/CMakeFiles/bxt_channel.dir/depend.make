# Empty dependencies file for bxt_channel.
# This may be replaced when dependencies are built.
