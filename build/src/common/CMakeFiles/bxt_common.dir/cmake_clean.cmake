file(REMOVE_RECURSE
  "CMakeFiles/bxt_common.dir/error.cpp.o"
  "CMakeFiles/bxt_common.dir/error.cpp.o.d"
  "CMakeFiles/bxt_common.dir/histogram.cpp.o"
  "CMakeFiles/bxt_common.dir/histogram.cpp.o.d"
  "CMakeFiles/bxt_common.dir/rng.cpp.o"
  "CMakeFiles/bxt_common.dir/rng.cpp.o.d"
  "CMakeFiles/bxt_common.dir/stats.cpp.o"
  "CMakeFiles/bxt_common.dir/stats.cpp.o.d"
  "CMakeFiles/bxt_common.dir/table.cpp.o"
  "CMakeFiles/bxt_common.dir/table.cpp.o.d"
  "libbxt_common.a"
  "libbxt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bxt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
