file(REMOVE_RECURSE
  "libbxt_common.a"
)
