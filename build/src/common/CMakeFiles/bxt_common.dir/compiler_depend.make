# Empty compiler generated dependencies file for bxt_common.
# This may be replaced when dependencies are built.
