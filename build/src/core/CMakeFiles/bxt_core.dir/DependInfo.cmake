
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/base_xor.cpp" "src/core/CMakeFiles/bxt_core.dir/base_xor.cpp.o" "gcc" "src/core/CMakeFiles/bxt_core.dir/base_xor.cpp.o.d"
  "/root/repo/src/core/bd_encoding.cpp" "src/core/CMakeFiles/bxt_core.dir/bd_encoding.cpp.o" "gcc" "src/core/CMakeFiles/bxt_core.dir/bd_encoding.cpp.o.d"
  "/root/repo/src/core/codec.cpp" "src/core/CMakeFiles/bxt_core.dir/codec.cpp.o" "gcc" "src/core/CMakeFiles/bxt_core.dir/codec.cpp.o.d"
  "/root/repo/src/core/codec_factory.cpp" "src/core/CMakeFiles/bxt_core.dir/codec_factory.cpp.o" "gcc" "src/core/CMakeFiles/bxt_core.dir/codec_factory.cpp.o.d"
  "/root/repo/src/core/dbi.cpp" "src/core/CMakeFiles/bxt_core.dir/dbi.cpp.o" "gcc" "src/core/CMakeFiles/bxt_core.dir/dbi.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/bxt_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/bxt_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/transaction.cpp" "src/core/CMakeFiles/bxt_core.dir/transaction.cpp.o" "gcc" "src/core/CMakeFiles/bxt_core.dir/transaction.cpp.o.d"
  "/root/repo/src/core/universal_xor.cpp" "src/core/CMakeFiles/bxt_core.dir/universal_xor.cpp.o" "gcc" "src/core/CMakeFiles/bxt_core.dir/universal_xor.cpp.o.d"
  "/root/repo/src/core/zdr.cpp" "src/core/CMakeFiles/bxt_core.dir/zdr.cpp.o" "gcc" "src/core/CMakeFiles/bxt_core.dir/zdr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bxt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
