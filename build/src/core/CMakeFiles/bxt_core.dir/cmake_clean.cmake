file(REMOVE_RECURSE
  "CMakeFiles/bxt_core.dir/base_xor.cpp.o"
  "CMakeFiles/bxt_core.dir/base_xor.cpp.o.d"
  "CMakeFiles/bxt_core.dir/bd_encoding.cpp.o"
  "CMakeFiles/bxt_core.dir/bd_encoding.cpp.o.d"
  "CMakeFiles/bxt_core.dir/codec.cpp.o"
  "CMakeFiles/bxt_core.dir/codec.cpp.o.d"
  "CMakeFiles/bxt_core.dir/codec_factory.cpp.o"
  "CMakeFiles/bxt_core.dir/codec_factory.cpp.o.d"
  "CMakeFiles/bxt_core.dir/dbi.cpp.o"
  "CMakeFiles/bxt_core.dir/dbi.cpp.o.d"
  "CMakeFiles/bxt_core.dir/pipeline.cpp.o"
  "CMakeFiles/bxt_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/bxt_core.dir/transaction.cpp.o"
  "CMakeFiles/bxt_core.dir/transaction.cpp.o.d"
  "CMakeFiles/bxt_core.dir/universal_xor.cpp.o"
  "CMakeFiles/bxt_core.dir/universal_xor.cpp.o.d"
  "CMakeFiles/bxt_core.dir/zdr.cpp.o"
  "CMakeFiles/bxt_core.dir/zdr.cpp.o.d"
  "libbxt_core.a"
  "libbxt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bxt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
