file(REMOVE_RECURSE
  "libbxt_core.a"
)
