# Empty compiler generated dependencies file for bxt_core.
# This may be replaced when dependencies are built.
