file(REMOVE_RECURSE
  "CMakeFiles/bxt_energy.dir/dram_power.cpp.o"
  "CMakeFiles/bxt_energy.dir/dram_power.cpp.o.d"
  "CMakeFiles/bxt_energy.dir/gddr_trend.cpp.o"
  "CMakeFiles/bxt_energy.dir/gddr_trend.cpp.o.d"
  "CMakeFiles/bxt_energy.dir/pod_io.cpp.o"
  "CMakeFiles/bxt_energy.dir/pod_io.cpp.o.d"
  "libbxt_energy.a"
  "libbxt_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bxt_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
