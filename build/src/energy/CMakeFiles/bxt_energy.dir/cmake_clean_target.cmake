file(REMOVE_RECURSE
  "libbxt_energy.a"
)
