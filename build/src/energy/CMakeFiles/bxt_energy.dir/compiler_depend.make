# Empty compiler generated dependencies file for bxt_energy.
# This may be replaced when dependencies are built.
