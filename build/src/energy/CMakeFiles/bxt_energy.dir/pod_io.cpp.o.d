src/energy/CMakeFiles/bxt_energy.dir/pod_io.cpp.o: \
 /root/repo/src/energy/pod_io.cpp /usr/include/stdc-predef.h \
 /root/repo/src/energy/pod_io.h
