
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gatecost/encoder_costs.cpp" "src/gatecost/CMakeFiles/bxt_gatecost.dir/encoder_costs.cpp.o" "gcc" "src/gatecost/CMakeFiles/bxt_gatecost.dir/encoder_costs.cpp.o.d"
  "/root/repo/src/gatecost/gates.cpp" "src/gatecost/CMakeFiles/bxt_gatecost.dir/gates.cpp.o" "gcc" "src/gatecost/CMakeFiles/bxt_gatecost.dir/gates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bxt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
