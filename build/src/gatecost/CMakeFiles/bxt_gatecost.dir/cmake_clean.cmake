file(REMOVE_RECURSE
  "CMakeFiles/bxt_gatecost.dir/encoder_costs.cpp.o"
  "CMakeFiles/bxt_gatecost.dir/encoder_costs.cpp.o.d"
  "CMakeFiles/bxt_gatecost.dir/gates.cpp.o"
  "CMakeFiles/bxt_gatecost.dir/gates.cpp.o.d"
  "libbxt_gatecost.a"
  "libbxt_gatecost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bxt_gatecost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
