file(REMOVE_RECURSE
  "libbxt_gatecost.a"
)
