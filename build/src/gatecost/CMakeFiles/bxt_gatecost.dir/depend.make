# Empty dependencies file for bxt_gatecost.
# This may be replaced when dependencies are built.
