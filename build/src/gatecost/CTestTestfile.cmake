# CMake generated Testfile for 
# Source directory: /root/repo/src/gatecost
# Build directory: /root/repo/build/src/gatecost
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
