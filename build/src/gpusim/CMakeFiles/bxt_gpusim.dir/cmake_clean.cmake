file(REMOVE_RECURSE
  "CMakeFiles/bxt_gpusim.dir/cache.cpp.o"
  "CMakeFiles/bxt_gpusim.dir/cache.cpp.o.d"
  "CMakeFiles/bxt_gpusim.dir/gpu_config.cpp.o"
  "CMakeFiles/bxt_gpusim.dir/gpu_config.cpp.o.d"
  "CMakeFiles/bxt_gpusim.dir/gpu_system.cpp.o"
  "CMakeFiles/bxt_gpusim.dir/gpu_system.cpp.o.d"
  "CMakeFiles/bxt_gpusim.dir/memctrl.cpp.o"
  "CMakeFiles/bxt_gpusim.dir/memctrl.cpp.o.d"
  "libbxt_gpusim.a"
  "libbxt_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bxt_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
