file(REMOVE_RECURSE
  "libbxt_gpusim.a"
)
