# Empty dependencies file for bxt_gpusim.
# This may be replaced when dependencies are built.
