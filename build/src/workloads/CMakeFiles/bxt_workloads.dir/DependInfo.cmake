
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps.cpp" "src/workloads/CMakeFiles/bxt_workloads.dir/apps.cpp.o" "gcc" "src/workloads/CMakeFiles/bxt_workloads.dir/apps.cpp.o.d"
  "/root/repo/src/workloads/patterns.cpp" "src/workloads/CMakeFiles/bxt_workloads.dir/patterns.cpp.o" "gcc" "src/workloads/CMakeFiles/bxt_workloads.dir/patterns.cpp.o.d"
  "/root/repo/src/workloads/trace.cpp" "src/workloads/CMakeFiles/bxt_workloads.dir/trace.cpp.o" "gcc" "src/workloads/CMakeFiles/bxt_workloads.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bxt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bxt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
