file(REMOVE_RECURSE
  "CMakeFiles/bxt_workloads.dir/apps.cpp.o"
  "CMakeFiles/bxt_workloads.dir/apps.cpp.o.d"
  "CMakeFiles/bxt_workloads.dir/patterns.cpp.o"
  "CMakeFiles/bxt_workloads.dir/patterns.cpp.o.d"
  "CMakeFiles/bxt_workloads.dir/trace.cpp.o"
  "CMakeFiles/bxt_workloads.dir/trace.cpp.o.d"
  "libbxt_workloads.a"
  "libbxt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bxt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
