file(REMOVE_RECURSE
  "libbxt_workloads.a"
)
