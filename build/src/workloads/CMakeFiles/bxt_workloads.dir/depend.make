# Empty dependencies file for bxt_workloads.
# This may be replaced when dependencies are built.
