file(REMOVE_RECURSE
  "CMakeFiles/test_base_xor.dir/test_base_xor.cpp.o"
  "CMakeFiles/test_base_xor.dir/test_base_xor.cpp.o.d"
  "test_base_xor"
  "test_base_xor.pdb"
  "test_base_xor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_base_xor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
