# Empty compiler generated dependencies file for test_base_xor.
# This may be replaced when dependencies are built.
