file(REMOVE_RECURSE
  "CMakeFiles/test_bd_encoding.dir/test_bd_encoding.cpp.o"
  "CMakeFiles/test_bd_encoding.dir/test_bd_encoding.cpp.o.d"
  "test_bd_encoding"
  "test_bd_encoding.pdb"
  "test_bd_encoding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bd_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
