# Empty dependencies file for test_bd_encoding.
# This may be replaced when dependencies are built.
