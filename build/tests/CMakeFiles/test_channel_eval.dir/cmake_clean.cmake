file(REMOVE_RECURSE
  "CMakeFiles/test_channel_eval.dir/test_channel_eval.cpp.o"
  "CMakeFiles/test_channel_eval.dir/test_channel_eval.cpp.o.d"
  "test_channel_eval"
  "test_channel_eval.pdb"
  "test_channel_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
