file(REMOVE_RECURSE
  "CMakeFiles/test_codec_factory.dir/test_codec_factory.cpp.o"
  "CMakeFiles/test_codec_factory.dir/test_codec_factory.cpp.o.d"
  "test_codec_factory"
  "test_codec_factory.pdb"
  "test_codec_factory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
