# Empty dependencies file for test_codec_factory.
# This may be replaced when dependencies are built.
