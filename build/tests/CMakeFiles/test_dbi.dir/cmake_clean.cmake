file(REMOVE_RECURSE
  "CMakeFiles/test_dbi.dir/test_dbi.cpp.o"
  "CMakeFiles/test_dbi.dir/test_dbi.cpp.o.d"
  "test_dbi"
  "test_dbi.pdb"
  "test_dbi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
