# Empty compiler generated dependencies file for test_dbi.
# This may be replaced when dependencies are built.
