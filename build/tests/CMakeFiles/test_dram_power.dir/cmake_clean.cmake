file(REMOVE_RECURSE
  "CMakeFiles/test_dram_power.dir/test_dram_power.cpp.o"
  "CMakeFiles/test_dram_power.dir/test_dram_power.cpp.o.d"
  "test_dram_power"
  "test_dram_power.pdb"
  "test_dram_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
