file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_roundtrip.dir/test_fuzz_roundtrip.cpp.o"
  "CMakeFiles/test_fuzz_roundtrip.dir/test_fuzz_roundtrip.cpp.o.d"
  "test_fuzz_roundtrip"
  "test_fuzz_roundtrip.pdb"
  "test_fuzz_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
