file(REMOVE_RECURSE
  "CMakeFiles/test_gatecost.dir/test_gatecost.cpp.o"
  "CMakeFiles/test_gatecost.dir/test_gatecost.cpp.o.d"
  "test_gatecost"
  "test_gatecost.pdb"
  "test_gatecost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gatecost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
