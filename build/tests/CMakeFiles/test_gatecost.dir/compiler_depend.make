# Empty compiler generated dependencies file for test_gatecost.
# This may be replaced when dependencies are built.
