file(REMOVE_RECURSE
  "CMakeFiles/test_gddr_trend.dir/test_gddr_trend.cpp.o"
  "CMakeFiles/test_gddr_trend.dir/test_gddr_trend.cpp.o.d"
  "test_gddr_trend"
  "test_gddr_trend.pdb"
  "test_gddr_trend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gddr_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
