# Empty compiler generated dependencies file for test_gddr_trend.
# This may be replaced when dependencies are built.
