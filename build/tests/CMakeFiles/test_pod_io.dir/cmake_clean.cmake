file(REMOVE_RECURSE
  "CMakeFiles/test_pod_io.dir/test_pod_io.cpp.o"
  "CMakeFiles/test_pod_io.dir/test_pod_io.cpp.o.d"
  "test_pod_io"
  "test_pod_io.pdb"
  "test_pod_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pod_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
