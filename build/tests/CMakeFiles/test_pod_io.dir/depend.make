# Empty dependencies file for test_pod_io.
# This may be replaced when dependencies are built.
