file(REMOVE_RECURSE
  "CMakeFiles/test_suite_eval.dir/test_suite_eval.cpp.o"
  "CMakeFiles/test_suite_eval.dir/test_suite_eval.cpp.o.d"
  "test_suite_eval"
  "test_suite_eval.pdb"
  "test_suite_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
