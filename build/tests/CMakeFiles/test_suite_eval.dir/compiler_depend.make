# Empty compiler generated dependencies file for test_suite_eval.
# This may be replaced when dependencies are built.
