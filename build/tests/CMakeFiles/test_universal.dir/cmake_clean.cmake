file(REMOVE_RECURSE
  "CMakeFiles/test_universal.dir/test_universal.cpp.o"
  "CMakeFiles/test_universal.dir/test_universal.cpp.o.d"
  "test_universal"
  "test_universal.pdb"
  "test_universal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_universal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
