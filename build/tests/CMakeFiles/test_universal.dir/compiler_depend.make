# Empty compiler generated dependencies file for test_universal.
# This may be replaced when dependencies are built.
