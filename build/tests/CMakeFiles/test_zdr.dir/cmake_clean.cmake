file(REMOVE_RECURSE
  "CMakeFiles/test_zdr.dir/test_zdr.cpp.o"
  "CMakeFiles/test_zdr.dir/test_zdr.cpp.o.d"
  "test_zdr"
  "test_zdr.pdb"
  "test_zdr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
