# Empty dependencies file for test_zdr.
# This may be replaced when dependencies are built.
