# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitops[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_transaction[1]_include.cmake")
include("/root/repo/build/tests/test_zdr[1]_include.cmake")
include("/root/repo/build/tests/test_base_xor[1]_include.cmake")
include("/root/repo/build/tests/test_universal[1]_include.cmake")
include("/root/repo/build/tests/test_dbi[1]_include.cmake")
include("/root/repo/build/tests/test_bd_encoding[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_codec_factory[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_channel_eval[1]_include.cmake")
include("/root/repo/build/tests/test_pod_io[1]_include.cmake")
include("/root/repo/build/tests/test_dram_power[1]_include.cmake")
include("/root/repo/build/tests/test_gddr_trend[1]_include.cmake")
include("/root/repo/build/tests/test_gatecost[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_memctrl[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_system[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_suite_eval[1]_include.cmake")
