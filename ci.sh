#!/usr/bin/env bash
# CI driver: tier-1 verify in Release, plus an ASan/UBSan job so the
# concurrency code (ThreadPool / parallel evalSuite) is sanitizer-checked
# on every PR, plus a fuzz job that runs the differential verifier
# (tools/bxt_fuzz) under the sanitizers on a wall-clock budget.
#
# Usage: ./ci.sh [release|asan|tsan|fuzz|batch|metrics|serve|scenario|
#                 adaptive|all]
# (default: all)
#   release  Release build + `ctest -L tier1`
#   asan     ASan/UBSan build + `ctest -L tier1` (oversubscribed pool)
#   tsan     ThreadSanitizer build + telemetry/server-labeled ctest: the
#            lock-free instrument paths, span rings, and the threaded
#            server under the race detector
#   fuzz     ASan/UBSan build + bxt_fuzz campaign + fuzz/golden-labeled
#            ctest; BXT_FUZZ_SECONDS scales the budget (default 60) and
#            BXT_FUZZ_FRAMES the wire-frame parser pass (default 100000)
#   batch    Release build + batch/simd-labeled ctest (batch kernels vs
#            the scalar reference, SIMD tables vs the scalar table) + an
#            ASan/UBSan pass of the same tests forced through every
#            dispatch level (BXT_SIMD=scalar/word/avx2/avx512) + the
#            bench_codec_throughput sweep with its speedup gates
#            (BXT_BATCH_MIN_SPEEDUP, default 1.5, over scalar at
#            batch >= 512; BXT_SIMD_MIN_SPEEDUP, default 2.0, best SIMD
#            level over word for xor4+zdr encode at batch 512, enforced
#            only on AVX2-capable runners) + per-level bench JSONs for
#            bxt_report --diff
#   metrics  Release build + telemetry-enabled run: validates the metrics
#            snapshot and trace with bxt_report, then asserts the
#            compiled-in-but-disabled telemetry costs under
#            BXT_METRICS_OVERHEAD_PCT (default 2) percent versus a
#            -DBXT_TELEMETRY=OFF baseline build of the same sources
#   serve    Release build + server-labeled ctest + live bxtd smoke: boot
#            a 4-thread bxtd on a Unix socket, ping it, round-trip a
#            captured trace through it, drive a closed-loop bxt_loadgen
#            burst (asserting >= BXT_SERVE_MIN_TX_RATE encoded tx/s,
#            default 100000, into BENCH_server_loadgen.json), re-run the
#            burst with --trace-sample 0.01 and assert the traced tx rate
#            stays within BXT_TRACE_OVERHEAD_PCT (default 2) percent of
#            the untraced one, upload the merged Chrome span trace
#            (bxtd --trace-spans) and a schema-2 Snapshot-opcode
#            document, then SIGTERM it and assert a clean drain (exit 0)
#   scenario Release build + scenario-labeled ctest + multi-tenant traffic
#            smoke: boot a metrics-enabled bxtd, replay the zipf-0.99 and
#            hot-flood presets unpaced over 4 connections (asserting
#            >= BXT_SCENARIO_MIN_TX_RATE encoded tx/s each, default
#            50000), and upload BENCH_server_scenarios.json plus the
#            hot-flood variant; then the shard-scaling gate: the same
#            hot-flood replay against bxtd --shards 1 and --shards 4,
#            failing via `bxt_report --assert-shard-scaling` unless the
#            4-shard aggregate tx rate is >= BXT_SHARD_SCALING_MIN
#            (default 2.5) times the single-shard one (skipped below 4
#            cores), with both runs' merged per-shard snapshots
#            (bxt.server.shard.<i>.*) uploaded as artifacts
#   adaptive Release build + adaptive-labeled ctest (grammar, controller
#            cost model, differential byte-identity, loopback migration)
#            + an ASan/UBSan pass of the same tests + the live win gate:
#            boot a metrics-enabled bxtd, replay the zipf-0.99 and burst
#            presets with --spec adaptive and --adaptive-compare over the
#            fixed candidate set, write the spec-comparison rows into
#            BENCH_server_scenarios.json / .burst.json, and fail via
#            `bxt_report --scenario --assert-adaptive-wins` unless the
#            adaptive controller's total ones-on-bus is strictly below
#            every fixed spec's on both presets
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

configure_asan() {
    cmake -B build-ci-asan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
}

run_release() {
    echo "=== CI job: Release build + tier-1 ctest ==="
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-ci-release -j "${jobs}"
    ctest --test-dir build-ci-release --output-on-failure -j "${jobs}" \
        -L tier1
}

run_asan() {
    echo "=== CI job: ASan+UBSan build + tier-1 ctest ==="
    configure_asan
    cmake --build build-ci-asan -j "${jobs}"
    # Exercise the parallel engine under the sanitizers with an
    # oversubscribed pool to shake out data races on a small host.
    BXT_THREADS=8 ctest --test-dir build-ci-asan --output-on-failure \
        -j "${jobs}" -L tier1
}

run_tsan() {
    echo "=== CI job: TSan build + telemetry/server ctest ==="
    cmake -B build-ci-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
    cmake --build build-ci-tsan -j "${jobs}" \
        --target test_telemetry test_server test_adaptive
    # The span rings, HDR histograms, and snapshot exporter are
    # lock-free; the server tests drive them from real worker threads,
    # and the adaptive loopback test runs per-stream controllers on them.
    ctest --test-dir build-ci-tsan --output-on-failure -j "${jobs}" \
        -L 'telemetry|server|adaptive'
}

run_fuzz() {
    echo "=== CI job: differential fuzz (ASan+UBSan) ==="
    configure_asan
    cmake --build build-ci-asan -j "${jobs}" \
        --target bxt_fuzz test_differential test_golden
    # The time-budgeted campaign sweeps every canonical spec and shrinks
    # any failure into tests/corpus/ (uploaded as a CI artifact). The
    # --frames pass also fuzzes the bxtd wire-frame parser (clean frames
    # must round-trip; corrupted ones must yield typed errors, never UB),
    # and --batch differentially checks the batch kernels against the
    # scalar path under the sanitizers (BXT_FUZZ_BATCH_STREAMS scales it).
    ./build-ci-asan/tools/bxt_fuzz \
        --seconds "${BXT_FUZZ_SECONDS:-60}" \
        --frames "${BXT_FUZZ_FRAMES:-100000}" \
        --batch --batch-streams "${BXT_FUZZ_BATCH_STREAMS:-12}" \
        --corpus tests/corpus
    ctest --test-dir build-ci-asan --output-on-failure -j "${jobs}" \
        -L 'fuzz|golden'
}

run_batch() {
    echo "=== CI job: batch kernels vs scalar reference ==="
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-ci-release -j "${jobs}" \
        --target test_batch test_simd bench_codec_throughput
    # SIMD intrinsics under ASan/UBSan: force each dispatch level in
    # turn so every kernel tier's loads/stores and tail masks run
    # sanitized, not just the level CPUID would pick. Unsupported levels
    # clamp down (with a warning) rather than fail, so the loop is safe
    # on any host.
    configure_asan
    cmake --build build-ci-asan -j "${jobs}" --target test_batch test_simd
    local level
    for level in scalar word avx2 avx512; do
        echo "--- batch/simd ctest (ASan, BXT_SIMD=${level}) ---"
        BXT_SIMD="${level}" ctest --test-dir build-ci-asan \
            --output-on-failure -j "${jobs}" -L 'batch|simd'
    done
    # Differential coverage first (golden corpus through the batch
    # kernels, split-invariance, the short fuzz campaign), then the
    # throughput smoke: the batch path must beat the scalar loop by the
    # gate factor at batch >= 512 on at least one spec, and the sweep
    # itself asserts BusStats field-identity at every batch size.
    ctest --test-dir build-ci-release --output-on-failure -j "${jobs}" \
        -L 'batch|simd'
    # The SIMD floor only binds on hosts whose CPU can beat the word
    # baseline; elsewhere the bench skips the gate with a note.
    local simd_gate=()
    if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
        simd_gate=(--simd-min-speedup "${BXT_SIMD_MIN_SPEEDUP:-2.0}")
    else
        echo "no AVX2 on this runner; skipping the SIMD speedup floor"
    fi
    ./build-ci-release/bench/bench_codec_throughput --sweep-only \
        --batch-min-speedup "${BXT_BATCH_MIN_SPEEDUP:-1.5}" \
        "${simd_gate[@]}" \
        --json build-ci-release/BENCH_codec_throughput.json
    # Per-level bench JSONs (uploaded as CI artifacts; bxt_report --diff
    # renders the cross-level speedup tables from any pair of them).
    for level in word avx2 avx512; do
        BXT_SIMD="${level}" \
            ./build-ci-release/bench/bench_codec_throughput --sweep-only \
            --json "build-ci-release/BENCH_codec_throughput.${level}.json"
    done
}

run_metrics() {
    echo "=== CI job: telemetry snapshot + overhead gate ==="
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-ci-release -j "${jobs}" \
        --target bench_codec_throughput bench_fig15_comparison bxt_report \
        test_telemetry
    local out=build-ci-release/metrics
    mkdir -p "${out}"

    # Telemetry-labeled tests, then a telemetry-on figure run: validate
    # the emitted snapshot and trace with bxt_report.
    ctest --test-dir build-ci-release --output-on-failure -L telemetry
    BXT_METRICS=1 BXT_TRACE="${out}/fig15_trace.json" \
        ./build-ci-release/bench/bench_fig15_comparison \
        --json "${out}/fig15.json" > /dev/null
    ./build-ci-release/tools/bxt_report --validate "${out}/fig15.json"
    ./build-ci-release/tools/bxt_report --validate-trace \
        "${out}/fig15_trace.json"

    # Overhead gate for the zero-cost-when-off contract: the metrics-off
    # suite sweep must stay within the budget of the same sweep built
    # with telemetry compiled out (-DBXT_TELEMETRY=OFF), which stands in
    # for the pre-telemetry baseline. The sweep is short, so give CI
    # timing noise a couple of retries before failing.
    cmake -B build-ci-notelemetry -S . -DCMAKE_BUILD_TYPE=Release \
        -DBXT_TELEMETRY=OFF
    cmake --build build-ci-notelemetry -j "${jobs}" \
        --target bench_codec_throughput
    local limit="${BXT_METRICS_OVERHEAD_PCT:-2}"
    # Untimed warmup of both binaries so attempt 1 is not measuring cold
    # page caches / frequency ramp.
    ./build-ci-notelemetry/bench/bench_codec_throughput --sweep-only \
        --json "${out}/sweep_baseline.json" > /dev/null
    ./build-ci-release/bench/bench_codec_throughput --sweep-only \
        --json "${out}/sweep_off.json" > /dev/null
    local attempt
    for attempt in 1 2 3; do
        ./build-ci-notelemetry/bench/bench_codec_throughput --sweep-only \
            --json "${out}/sweep_baseline.json" > /dev/null
        ./build-ci-release/bench/bench_codec_throughput --sweep-only \
            --json "${out}/sweep_off.json" > /dev/null
        if ./build-ci-release/tools/bxt_report \
            --assert-overhead "${limit}" \
            "${out}/sweep_baseline.json" "${out}/sweep_off.json"; then
            return 0
        fi
        echo "overhead gate attempt ${attempt} failed; retrying"
    done
    echo "telemetry overhead gate failed after 3 attempts" >&2
    return 1
}

run_serve() {
    echo "=== CI job: bxtd loopback smoke + loadgen burst ==="
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-ci-release -j "${jobs}" \
        --target bxtd bxt_client bxt_loadgen bxt_report trace_tool \
        test_server
    ctest --test-dir build-ci-release --output-on-failure -j "${jobs}" \
        -L server

    local out=build-ci-release/serve
    mkdir -p "${out}"
    local sock="${out}/bxtd.sock"
    rm -f "${sock}"

    # Plain background command (no subshell) so $! is bxtd itself and the
    # SIGTERM below reaches the daemon, not a wrapper. --trace-spans
    # makes the drain write the merged Chrome span trace artifact.
    ./build-ci-release/tools/bxtd --unix "${sock}" --threads 4 \
        --trace-spans "${out}/server_spans.json" \
        > "${out}/bxtd.log" 2>&1 &
    local bxtd_pid=$!
    local i
    for i in $(seq 1 100); do
        [ -S "${sock}" ] && break
        sleep 0.1
    done
    if ! [ -S "${sock}" ]; then
        echo "bxtd never created ${sock}" >&2
        cat "${out}/bxtd.log" >&2
        kill "${bxtd_pid}" 2>/dev/null || true
        return 1
    fi

    # Loopback smoke: ping, then round-trip a captured workload trace
    # through a paper-representative pipeline and confirm bit-identity.
    ./build-ci-release/tools/bxt_client --unix "${sock}" --mode ping
    ./build-ci-release/examples/trace_tool gen rodinia-bfs \
        "${out}/smoke.bxtrace" 512
    ./build-ci-release/tools/bxt_client --unix "${sock}" \
        --spec universal3+zdr --mode roundtrip "${out}/smoke.bxtrace"

    # Closed-loop load: every request is one batch of 32-byte encodes;
    # the tx-rate floor is the acceptance bar for a 4-thread server.
    ./build-ci-release/tools/bxt_loadgen --unix "${sock}" \
        --closed-loop --spec baseline --tx-bytes 32 --batch 64 \
        --requests 4000 --json BENCH_server_loadgen.json \
        --assert-min-tx-rate "${BXT_SERVE_MIN_TX_RATE:-100000}"

    # Trace-overhead gate: the same burst with 1 % span sampling must
    # stay within BXT_TRACE_OVERHEAD_PCT percent of the untraced rate.
    # Both runs are warm by now; still, give CI timing noise a couple of
    # retries (re-measuring BOTH sides each attempt) before failing.
    local trace_limit="${BXT_TRACE_OVERHEAD_PCT:-2}"
    local attempt gate_ok=""
    for attempt in 1 2 3; do
        ./build-ci-release/tools/bxt_loadgen --unix "${sock}" \
            --closed-loop --spec baseline --tx-bytes 32 --batch 64 \
            --requests 4000 --json "${out}/loadgen_untraced.json" \
            > /dev/null
        ./build-ci-release/tools/bxt_loadgen --unix "${sock}" \
            --closed-loop --spec baseline --tx-bytes 32 --batch 64 \
            --requests 4000 --trace-sample 0.01 \
            --json "${out}/loadgen_traced.json" > /dev/null
        if ./build-ci-release/tools/bxt_report \
            --assert-tx-overhead "${trace_limit}" \
            "${out}/loadgen_untraced.json" "${out}/loadgen_traced.json"
        then
            gate_ok=1
            break
        fi
        echo "trace overhead gate attempt ${attempt} failed; retrying"
    done
    if [ -z "${gate_ok}" ]; then
        echo "trace overhead gate failed after 3 attempts" >&2
        kill "${bxtd_pid}" 2>/dev/null || true
        return 1
    fi

    # Live-introspection artifact: the Snapshot opcode's schema-2
    # document (what bxt_top polls), validated like any other snapshot.
    ./build-ci-release/tools/bxt_client --unix "${sock}" \
        --mode snapshot > "${out}/server_snapshot.json"
    ./build-ci-release/tools/bxt_report --validate \
        "${out}/server_snapshot.json"

    # Graceful drain: SIGTERM must produce a clean exit 0, not 143.
    kill -TERM "${bxtd_pid}"
    local status=0
    wait "${bxtd_pid}" || status=$?
    if [ "${status}" -ne 0 ]; then
        echo "bxtd did not drain cleanly (exit ${status})" >&2
        cat "${out}/bxtd.log" >&2
        return 1
    fi
    grep -q "drained, exiting" "${out}/bxtd.log"
    # The drain wrote the merged span trace (the traced burst sampled
    # ~1 % of 4000 requests, so it cannot be empty).
    ./build-ci-release/tools/bxt_report --validate-trace \
        "${out}/server_spans.json"
    echo "serve: clean drain; BENCH_server_loadgen.json, trace-overhead" \
        "gate, server_spans.json + server_snapshot.json written"
}

run_scenario() {
    echo "=== CI job: multi-tenant scenario traffic + per-tenant gates ==="
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-ci-release -j "${jobs}" \
        --target bxtd bxt_loadgen bxt_report test_scenario test_server
    ctest --test-dir build-ci-release --output-on-failure -j "${jobs}" \
        -L scenario

    local out=build-ci-release/scenario
    mkdir -p "${out}"
    local sock="${out}/bxtd.sock"
    rm -f "${sock}"

    # Metrics on, so the per-tenant stream counters are live and land in
    # the bench documents' embedded snapshots.
    BXT_METRICS=1 ./build-ci-release/tools/bxtd --unix "${sock}" \
        --threads 4 > "${out}/bxtd.log" 2>&1 &
    local bxtd_pid=$!
    local i
    for i in $(seq 1 100); do
        [ -S "${sock}" ] && break
        sleep 0.1
    done
    if ! [ -S "${sock}" ]; then
        echo "bxtd never created ${sock}" >&2
        cat "${out}/bxtd.log" >&2
        kill "${bxtd_pid}" 2>/dev/null || true
        return 1
    fi

    # Unpaced replays so the floor measures server capacity, not the
    # scenario's arrival schedule. Fixed seed: the request stream (and
    # therefore the JSON's per-tenant rows) is reproducible.
    local floor="${BXT_SCENARIO_MIN_TX_RATE:-50000}"
    ./build-ci-release/tools/bxt_loadgen --unix "${sock}" \
        --scenario zipf-0.99 --no-pace --connections 4 --seed 1 \
        --json BENCH_server_scenarios.json \
        --assert-min-tx-rate "${floor}"
    ./build-ci-release/tools/bxt_loadgen --unix "${sock}" \
        --scenario hot-flood --no-pace --connections 4 --seed 1 \
        --json BENCH_server_scenarios.hot-flood.json \
        --assert-min-tx-rate "${floor}"
    ./build-ci-release/tools/bxt_report --scenario \
        BENCH_server_scenarios.json BENCH_server_scenarios.hot-flood.json

    kill -TERM "${bxtd_pid}"
    local status=0
    wait "${bxtd_pid}" || status=$?
    if [ "${status}" -ne 0 ]; then
        echo "bxtd did not drain cleanly (exit ${status})" >&2
        cat "${out}/bxtd.log" >&2
        return 1
    fi

    # Shard-scaling gate: the same unpaced hot-flood replay against a
    # single-shard and a 4-shard bxtd. Shared-nothing sharding must buy
    # real aggregate throughput; per-shard snapshots (the merged Stats
    # document with the bxt.server.shard.<i>.* breakdown) are kept as
    # artifacts so a failed gate can be diagnosed from the load balance.
    local shards
    for shards in 1 4; do
        rm -f "${sock}"
        BXT_METRICS=1 ./build-ci-release/tools/bxtd --unix "${sock}" \
            --shards "${shards}" \
            > "${out}/bxtd.shards${shards}.log" 2>&1 &
        bxtd_pid=$!
        for i in $(seq 1 100); do
            [ -S "${sock}" ] && break
            sleep 0.1
        done
        if ! [ -S "${sock}" ]; then
            echo "bxtd --shards ${shards} never created ${sock}" >&2
            cat "${out}/bxtd.shards${shards}.log" >&2
            kill "${bxtd_pid}" 2>/dev/null || true
            return 1
        fi
        ./build-ci-release/tools/bxt_loadgen --unix "${sock}" \
            --scenario hot-flood --no-pace --connections 8 --seed 1 \
            --json "${out}/hot-flood.shards${shards}.json"
        ./build-ci-release/tools/bxt_client --unix "${sock}" \
            --mode snapshot > "${out}/server_snapshot.shards${shards}.json"
        ./build-ci-release/tools/bxt_report --validate \
            "${out}/server_snapshot.shards${shards}.json"
        kill -TERM "${bxtd_pid}"
        status=0
        wait "${bxtd_pid}" || status=$?
        if [ "${status}" -ne 0 ]; then
            echo "bxtd --shards ${shards} did not drain cleanly" \
                "(exit ${status})" >&2
            cat "${out}/bxtd.shards${shards}.log" >&2
            return 1
        fi
    done
    if [ "$(nproc)" -ge 4 ]; then
        ./build-ci-release/tools/bxt_report --assert-shard-scaling \
            "${BXT_SHARD_SCALING_MIN:-2.5}" \
            "${out}/hot-flood.shards1.json" \
            "${out}/hot-flood.shards4.json"
    else
        echo "scenario: <4 cores, shard-scaling gate skipped" \
            "(artifacts still written)"
    fi
    echo "scenario: BENCH_server_scenarios.json + hot-flood variant," \
        "shard-scaling artifacts + gate done"
}

run_adaptive() {
    echo "=== CI job: adaptive codec selection + ones-on-bus win gate ==="
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-ci-release -j "${jobs}" \
        --target bxtd bxt_loadgen bxt_report test_adaptive
    ctest --test-dir build-ci-release --output-on-failure -j "${jobs}" \
        -L adaptive
    # The controller's measurement encodes and the switch path under the
    # sanitizers, including the loopback migration test.
    configure_asan
    cmake --build build-ci-asan -j "${jobs}" --target test_adaptive
    ctest --test-dir build-ci-asan --output-on-failure -j "${jobs}" \
        -L adaptive

    local out=build-ci-release/adaptive
    mkdir -p "${out}"
    local sock="${out}/bxtd.sock"
    rm -f "${sock}"

    BXT_METRICS=1 ./build-ci-release/tools/bxtd --unix "${sock}" \
        --threads 4 > "${out}/bxtd.log" 2>&1 &
    local bxtd_pid=$!
    local i
    for i in $(seq 1 100); do
        [ -S "${sock}" ] && break
        sleep 0.1
    done
    if ! [ -S "${sock}" ]; then
        echo "bxtd never created ${sock}" >&2
        cat "${out}/bxtd.log" >&2
        kill "${bxtd_pid}" 2>/dev/null || true
        return 1
    fi

    # The win gate: replay each preset once under --spec adaptive and
    # once per fixed candidate over the identical request stream (fresh
    # connections per pass, so per-stream controllers start cold), then
    # require the adaptive pass to put strictly fewer ones on the bus
    # than every fixed spec. The candidate list mirrors
    # adaptive::defaultConfig().
    local candidates="universal3+zdr,xor2+zdr,xor4+zdr,xor8+zdr,baseline"
    local preset status=0
    for preset in zipf-0.99 burst; do
        local json="BENCH_server_scenarios.json"
        [ "${preset}" = burst ] && json="BENCH_server_scenarios.burst.json"
        ./build-ci-release/tools/bxt_loadgen --unix "${sock}" \
            --scenario "${preset}" --no-pace --connections 4 --seed 1 \
            --spec adaptive --adaptive-compare "${candidates}" \
            --json "${json}"
        ./build-ci-release/tools/bxt_report --scenario \
            --assert-adaptive-wins "${json}"
    done

    kill -TERM "${bxtd_pid}"
    wait "${bxtd_pid}" || status=$?
    if [ "${status}" -ne 0 ]; then
        echo "bxtd did not drain cleanly (exit ${status})" >&2
        cat "${out}/bxtd.log" >&2
        return 1
    fi
    echo "adaptive: win gate passed on zipf-0.99 + burst;" \
        "BENCH_server_scenarios.json + burst variant written"
}

case "${mode}" in
  release) run_release ;;
  asan)    run_asan ;;
  tsan)    run_tsan ;;
  fuzz)    run_fuzz ;;
  batch)   run_batch ;;
  metrics) run_metrics ;;
  serve)   run_serve ;;
  scenario) run_scenario ;;
  adaptive) run_adaptive ;;
  all)     run_release; run_asan; run_tsan; run_batch; run_metrics; run_serve; run_scenario; run_adaptive ;;
  *) echo "usage: $0 [release|asan|tsan|fuzz|batch|metrics|serve|scenario|adaptive|all]" >&2; exit 2 ;;
esac
echo "CI ${mode}: OK"
