#!/usr/bin/env bash
# CI driver: tier-1 verify in Release, plus an ASan/UBSan job so the
# concurrency code (ThreadPool / parallel evalSuite) is sanitizer-checked
# on every PR, plus a fuzz job that runs the differential verifier
# (tools/bxt_fuzz) under the sanitizers on a wall-clock budget.
#
# Usage: ./ci.sh [release|asan|fuzz|all]   (default: all)
#   release  Release build + `ctest -L tier1`
#   asan     ASan/UBSan build + `ctest -L tier1` (oversubscribed pool)
#   fuzz     ASan/UBSan build + bxt_fuzz campaign + fuzz/golden-labeled
#            ctest; BXT_FUZZ_SECONDS scales the budget (default 60)
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

configure_asan() {
    cmake -B build-ci-asan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
}

run_release() {
    echo "=== CI job: Release build + tier-1 ctest ==="
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-ci-release -j "${jobs}"
    ctest --test-dir build-ci-release --output-on-failure -j "${jobs}" \
        -L tier1
}

run_asan() {
    echo "=== CI job: ASan+UBSan build + tier-1 ctest ==="
    configure_asan
    cmake --build build-ci-asan -j "${jobs}"
    # Exercise the parallel engine under the sanitizers with an
    # oversubscribed pool to shake out data races on a small host.
    BXT_THREADS=8 ctest --test-dir build-ci-asan --output-on-failure \
        -j "${jobs}" -L tier1
}

run_fuzz() {
    echo "=== CI job: differential fuzz (ASan+UBSan) ==="
    configure_asan
    cmake --build build-ci-asan -j "${jobs}" \
        --target bxt_fuzz test_differential test_golden
    # The time-budgeted campaign sweeps every canonical spec and shrinks
    # any failure into tests/corpus/ (uploaded as a CI artifact).
    ./build-ci-asan/tools/bxt_fuzz \
        --seconds "${BXT_FUZZ_SECONDS:-60}" \
        --corpus tests/corpus
    ctest --test-dir build-ci-asan --output-on-failure -j "${jobs}" \
        -L 'fuzz|golden'
}

case "${mode}" in
  release) run_release ;;
  asan)    run_asan ;;
  fuzz)    run_fuzz ;;
  all)     run_release; run_asan ;;
  *) echo "usage: $0 [release|asan|fuzz|all]" >&2; exit 2 ;;
esac
echo "CI ${mode}: OK"
