#!/usr/bin/env bash
# CI driver: tier-1 verify in Release, plus an ASan/UBSan job so the
# concurrency code (ThreadPool / parallel evalSuite) is sanitizer-checked
# on every PR.
#
# Usage: ./ci.sh [release|asan|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_release() {
    echo "=== CI job: Release build + ctest ==="
    cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build-ci-release -j "${jobs}"
    ctest --test-dir build-ci-release --output-on-failure -j "${jobs}"
}

run_asan() {
    echo "=== CI job: ASan+UBSan build + ctest ==="
    cmake -B build-ci-asan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    cmake --build build-ci-asan -j "${jobs}"
    # Exercise the parallel engine under the sanitizers with an
    # oversubscribed pool to shake out data races on a small host.
    BXT_THREADS=8 ctest --test-dir build-ci-asan --output-on-failure \
        -j "${jobs}"
}

case "${mode}" in
  release) run_release ;;
  asan)    run_asan ;;
  all)     run_release; run_asan ;;
  *) echo "usage: $0 [release|asan|all]" >&2; exit 2 ;;
esac
echo "CI ${mode}: OK"
