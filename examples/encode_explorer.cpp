/**
 * @file
 * Encode explorer: compare every encoding scheme on a chosen data
 * pattern (or on a hex transaction given on the command line) and print
 * ones/toggle/energy statistics.
 *
 * Usage:
 *   encode_explorer                     # default fp32 pattern
 *   encode_explorer fp32|fp64|fp16|vec4|int|rgba|zbuffer|random|zeros
 *   encode_explorer hex <64 hex digits> # one 32-byte transaction
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "channel/channel_eval.h"
#include "common/error.h"
#include "common/table.h"
#include "core/codec_factory.h"
#include "energy/dram_power.h"
#include "workloads/patterns.h"

namespace {

using namespace bxt;

PatternPtr
patternByName(const std::string &name)
{
    const std::uint64_t seed = 2026;
    if (name == "fp32")
        return makeSoaFloatPattern(1.0e3, 1.0e-3, seed, 12);
    if (name == "fp64")
        return makeSoaDoublePattern(1.0e3, 1.0e-3, seed, 20);
    if (name == "fp16")
        return makeHalfFloatPattern(1.0, 1.0e-2, seed);
    if (name == "vec4")
        return makeVecFloatPattern(4, 4, 1.0e-3, seed, 12);
    if (name == "int")
        return makeIntStridePattern(4, 2, 3, seed);
    if (name == "rgba")
        return makeRgbaPixelPattern(8, 0xff, seed);
    if (name == "zbuffer")
        return makeDepthBufferPattern(0.5, 1.0e-4, seed);
    if (name == "random")
        return makeRandomPattern(seed);
    if (name == "zeros")
        return makeZeroMixedPattern(makeSoaFloatPattern(1.0, 1e-2, seed, 12),
                                    4, 0.5, seed + 1);
    fatal("unknown pattern '" + name +
          "' (try fp32|fp64|fp16|vec4|int|rgba|zbuffer|random|zeros)");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bxt;

    std::vector<Transaction> stream;
    std::string source = "fp32";
    if (argc >= 3 && std::strcmp(argv[1], "hex") == 0) {
        stream.push_back(Transaction::fromHex(argv[2]));
        source = "hex input";
    } else {
        if (argc >= 2)
            source = argv[1];
        PatternPtr pattern = patternByName(source);
        Rng rng(7);
        for (int i = 0; i < 4096; ++i) {
            Transaction tx(32);
            pattern->fill(rng, tx.bytes());
            stream.push_back(tx);
        }
    }

    std::printf("%s", banner("Encoding schemes on '" + source + "' (" +
                             std::to_string(stream.size()) +
                             " transactions)")
                          .c_str());

    const DramPowerModel model(DramPowerParams::gddr5x());
    double baseline_energy = 0.0;

    Table table({"scheme", "ones %", "toggles %", "meta wires",
                 "DRAM energy %"});
    std::uint64_t baseline_toggles = 0;
    for (const std::string &spec :
         {std::string("baseline"), std::string("dbi1"),
          std::string("xor2+zdr"), std::string("xor4+zdr"),
          std::string("xor8+zdr"), std::string("universal3+zdr"),
          std::string("universal3+zdr|dbi1"), std::string("bd")}) {
        CodecPtr codec = makeCodec(spec);
        const ChannelEvalResult result =
            evalCodecOnStream(*codec, stream, 32);
        const double energy =
            model.computeSimple(result.stats).total();
        if (spec == "baseline") {
            baseline_energy = energy;
            baseline_toggles = result.stats.toggles();
        }
        table.addRow(
            {spec, Table::cell(result.normalizedOnes() * 100.0),
             Table::cell(baseline_toggles == 0
                             ? 100.0
                             : 100.0 *
                                   static_cast<double>(
                                       result.stats.toggles()) /
                                   static_cast<double>(baseline_toggles)),
             Table::cell(static_cast<std::size_t>(
                 codec->metaWiresPerBeat())),
             Table::cell(100.0 * energy / baseline_energy)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("(100 %% = conventional transfer; every scheme verified "
                "lossless on this stream)\n");
    return 0;
}
