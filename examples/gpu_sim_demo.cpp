/**
 * @file
 * Full-system demo: run a GPU kernel through the sectored LLC and the
 * encoding memory controller of a Titan X (Pascal)-class system, and
 * compare DRAM energy between the conventional interface and Universal
 * Base+XOR Transfer with ZDR.
 *
 * Usage: gpu_sim_demo [kernel-index 0..4] [codec-spec]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gpusim/gpu_system.h"

int
main(int argc, char **argv)
{
    using namespace bxt;

    const std::size_t kernel_index =
        argc >= 2 ? static_cast<std::size_t>(std::atoi(argv[1])) : 0;
    const std::string codec =
        argc >= 3 ? argv[2] : "universal3+zdr";

    std::vector<GpuKernel> kernels = makeReferenceKernels(42);
    if (kernel_index >= kernels.size()) {
        std::fprintf(stderr, "kernel index must be 0..%zu\n",
                     kernels.size() - 1);
        return 1;
    }

    std::printf("System configuration (paper Table I):\n%s\n",
                GpuConfig::titanXPascal().report().c_str());

    double baseline_energy = 0.0;
    for (const std::string &spec : {std::string("baseline"), codec}) {
        GpuConfig config = GpuConfig::titanXPascal();
        config.codecSpec = spec;
        GpuSystem system(config);
        // Fresh kernel per run so both schemes see identical traffic.
        std::vector<GpuKernel> fresh = makeReferenceKernels(42);
        const GpuRunReport report = system.run(fresh[kernel_index]);
        std::printf("%s\n", report.report().c_str());
        if (spec == "baseline")
            baseline_energy = report.energy.total();
        else
            std::printf("DRAM energy saved vs baseline: %.1f %%\n",
                        100.0 * (1.0 - report.energy.total() /
                                           baseline_energy));
    }
    return 0;
}
