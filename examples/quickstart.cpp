/**
 * @file
 * Quickstart: encode one DRAM transaction with Universal Base+XOR
 * Transfer and see the energy-expensive `1` values disappear.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/codec_factory.h"
#include "core/transaction.h"

int
main()
{
    using namespace bxt;

    // A 32-byte cache sector of similar fp32-style values, like the
    // paper's transaction0 (Figure 3), with one zero element mixed in.
    Transaction tx = Transaction::fromWords32(
        {0x390c9bfb, 0x390c90f9, 0x390c88f8, 0x390c88f9,
         0x00000000, 0x390c78f9, 0x390c78f8, 0x390c70f9});

    std::printf("original : %s  (%zu ones)\n", tx.toHex().c_str(),
                tx.ones());

    // Build the paper's final scheme: 3-stage Universal Base+XOR Transfer
    // with Zero Data Remapping. No metadata, no DRAM-side changes.
    CodecPtr codec = makeCodec("universal3+zdr");

    const Encoded enc = codec->encode(tx);
    std::printf("encoded  : %s  (%zu ones)\n", enc.payload.toHex().c_str(),
                enc.ones());

    const Transaction back = codec->decode(enc);
    std::printf("decoded  : %s  (%s)\n", back.toHex().c_str(),
                back == tx ? "matches original" : "MISMATCH!");

    std::printf("\n%zu -> %zu ones: %.0f %% of the termination energy on "
                "this transfer is gone.\n",
                tx.ones(), enc.ones(),
                100.0 * (1.0 - static_cast<double>(enc.ones()) /
                                   static_cast<double>(tx.ones())));
    return back == tx ? 0 : 1;
}
