/**
 * @file
 * Trace utility: capture synthetic workload traces to .bxtrace files and
 * analyze existing trace files (from this tool or an external simulator)
 * under every encoding scheme.
 *
 * Usage:
 *   trace_tool gen <app-name> <out.bxtrace> [transactions]
 *   trace_tool stats <in.bxtrace>
 *   trace_tool list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "channel/channel_eval.h"
#include "common/table.h"
#include "core/codec_factory.h"
#include "workloads/apps.h"
#include "workloads/trace.h"

namespace {

using namespace bxt;

int
listApps()
{
    std::vector<App> gpu = buildGpuSuite();
    std::vector<App> cpu = buildCpuSuite();
    std::printf("%zu GPU applications:\n", gpu.size());
    for (const App &app : gpu)
        std::printf("  %-24s %-10s %s\n", app.name.c_str(),
                    toString(app.category).c_str(), app.family.c_str());
    std::printf("%zu CPU applications:\n", cpu.size());
    for (const App &app : cpu)
        std::printf("  %-24s %-10s %s\n", app.name.c_str(),
                    toString(app.category).c_str(), app.family.c_str());
    return 0;
}

App *
findApp(std::vector<App> &suite, const std::string &name)
{
    for (App &app : suite)
        if (app.name == name)
            return &app;
    return nullptr;
}

int
generate(const std::string &name, const std::string &path,
         std::size_t count)
{
    std::vector<App> gpu = buildGpuSuite();
    std::vector<App> cpu = buildCpuSuite();
    App *app = findApp(gpu, name);
    if (app == nullptr)
        app = findApp(cpu, name);
    if (app == nullptr) {
        std::fprintf(stderr, "unknown app '%s' (see: trace_tool list)\n",
                     name.c_str());
        return 1;
    }
    Trace trace;
    trace.name = app->name;
    trace.txs = generateTrace(*app, count);
    if (!saveTrace(trace, path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("wrote %zu %zu-byte transactions of '%s' to %s\n",
                trace.txs.size(), trace.txBytes(), trace.name.c_str(),
                path.c_str());
    return 0;
}

int
stats(const std::string &path)
{
    const Trace trace = loadTrace(path);
    if (trace.txs.empty()) {
        std::fprintf(stderr, "no transactions in %s\n", path.c_str());
        return 1;
    }
    const auto bus_width =
        static_cast<unsigned>(trace.txBytes() == 64 ? 64 : 32);

    std::printf("%s", banner("Trace '" + trace.name + "': " +
                             std::to_string(trace.txs.size()) +
                             " transactions of " +
                             std::to_string(trace.txBytes()) + " bytes")
                          .c_str());
    std::printf("mixed zero/non-zero transactions: %.1f %%\n\n",
                mixedDataRatio(trace.txs) * 100.0);

    Table table({"scheme", "ones %", "toggles %"});
    std::uint64_t baseline_toggles = 0;
    for (const std::string &spec : paperSchemeSpecs()) {
        CodecPtr codec = makeCodec(spec, bus_width / 8);
        const ChannelEvalResult result =
            evalCodecOnStream(*codec, trace.txs, bus_width);
        if (spec == "baseline")
            baseline_toggles = result.stats.toggles();
        const double toggles_pct =
            baseline_toggles == 0
                ? 100.0
                : 100.0 * static_cast<double>(result.stats.toggles()) /
                      static_cast<double>(baseline_toggles);
        table.addRow({spec, Table::cell(result.normalizedOnes() * 100.0),
                      Table::cell(toggles_pct)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "list") == 0)
        return listApps();
    if (argc >= 4 && std::strcmp(argv[1], "gen") == 0) {
        const std::size_t count =
            argc >= 5 ? static_cast<std::size_t>(std::atoll(argv[4]))
                      : bxt::defaultTraceLength;
        return generate(argv[2], argv[3], count);
    }
    if (argc >= 3 && std::strcmp(argv[1], "stats") == 0)
        return stats(argv[2]);

    std::fprintf(stderr,
                 "usage:\n"
                 "  trace_tool list\n"
                 "  trace_tool gen <app-name> <out.bxtrace> [count]\n"
                 "  trace_tool stats <in.bxtrace>\n");
    return 1;
}
