#include "adaptive/adaptive_codec.h"

#include <utility>

namespace bxt::adaptive {

AdaptiveCodec::AdaptiveCodec(std::unique_ptr<Controller> controller,
                             std::string name)
    : controller_(std::move(controller)), name_(std::move(name))
{
    meta_wires_ = controller_->activeCodec().metaWiresPerBeat();
}

std::unique_ptr<AdaptiveCodec>
AdaptiveCodec::make(const Config &config, std::string &err)
{
    std::unique_ptr<Controller> controller = Controller::make(config, err);
    if (!controller)
        return nullptr;
    std::string name = canonicalSpec(controller->config());
    return std::unique_ptr<AdaptiveCodec>(
        new AdaptiveCodec(std::move(controller), std::move(name)));
}

Encoded
AdaptiveCodec::encode(const Transaction &tx)
{
    Encoded out;
    encodeInto(tx, out);
    return out;
}

Transaction
AdaptiveCodec::decode(const Encoded &enc)
{
    return controller_->activeCodec().decode(enc);
}

void
AdaptiveCodec::encodeInto(const Transaction &tx, Encoded &out)
{
    // Each scalar transaction is its own batch boundary.
    controller_->maybeEvaluate();
    controller_->activeCodec().encodeInto(tx, out);
    controller_->observe(tx.data(), tx.size());
}

void
AdaptiveCodec::decodeInto(const Encoded &enc, Transaction &out)
{
    controller_->activeCodec().decodeInto(enc, out);
}

void
AdaptiveCodec::encodeBatchKernel(const TxBatch &in, EncodedBatch &out)
{
    // Evaluate before encoding so a switch lands exactly on the batch
    // boundary; observe after encoding so a batch can never influence
    // the choice that encodes it. The delegate's own (non-virtual)
    // encodeBatch runs, making the output byte-identical to the chosen
    // concrete codec encoding this batch standalone.
    controller_->maybeEvaluate();
    controller_->activeCodec().encodeBatch(in, out);
    controller_->observe(in);
}

void
AdaptiveCodec::decodeBatchKernel(const EncodedBatch &in, TxBatch &out)
{
    controller_->activeCodec().decodeBatch(in, out);
}

CodecPtr
tryMakeAdaptiveCodec(const std::string &spec, std::size_t bus_bytes,
                     std::string &err)
{
    Config config;
    if (!parseAdaptiveSpec(spec, bus_bytes, config, err))
        return nullptr;
    return AdaptiveCodec::make(config, err);
}

} // namespace bxt::adaptive
