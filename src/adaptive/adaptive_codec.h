/**
 * @file
 * AdaptiveCodec: the Codec face of the adaptive Controller. Every
 * encode entry point re-evaluates the choice at the batch boundary,
 * delegates to the active concrete codec's own batch path (so the
 * output is byte-identical to that codec run standalone), then feeds
 * the batch into the controller's sampling window. Decode never
 * evaluates: within one epoch, encode → decode round-trips through the
 * same concrete codec, and cross-epoch decodes go through the concrete
 * spec the server announced alongside the payload.
 */

#ifndef BXT_ADAPTIVE_ADAPTIVE_CODEC_H
#define BXT_ADAPTIVE_ADAPTIVE_CODEC_H

#include <memory>
#include <string>

#include "adaptive/controller.h"
#include "core/codec.h"

namespace bxt::adaptive {

class AdaptiveCodec : public Codec
{
  public:
    /** Build from a parsed Config; nullptr + @p err on bad candidates. */
    static std::unique_ptr<AdaptiveCodec> make(const Config &config,
                                               std::string &err);

    /** The canonical adaptive spec (knobs included), not the choice. */
    std::string name() const override { return name_; }

    Encoded encode(const Transaction &tx) override;
    Transaction decode(const Encoded &enc) override;
    void encodeInto(const Transaction &tx, Encoded &out) override;
    void decodeInto(const Encoded &enc, Transaction &out) override;

    /** Uniform across candidates — enforced at construction. */
    unsigned metaWiresPerBeat() const override { return meta_wires_; }

    /** Choice depends on observed history, so encodings do too. */
    bool stateless() const override { return false; }

    /** Drop window, counters, epoch, and candidate state. */
    void reset() override { controller_->reset(); }

    /** The selection engine (sensors/epoch/active spec introspection). */
    Controller &controller() { return *controller_; }
    const Controller &controller() const { return *controller_; }

  protected:
    void encodeBatchKernel(const TxBatch &in, EncodedBatch &out) override;
    void decodeBatchKernel(const EncodedBatch &in, TxBatch &out) override;

  private:
    AdaptiveCodec(std::unique_ptr<Controller> controller,
                  std::string name);

    std::unique_ptr<Controller> controller_;
    std::string name_;
    unsigned meta_wires_ = 0;
};

/**
 * Factory hook used by tryMakeCodec: build an AdaptiveCodec from a raw
 * `adaptive[:...]` spec string. Returns nullptr with @p err set on a
 * malformed spec or invalid candidate set.
 */
CodecPtr tryMakeAdaptiveCodec(const std::string &spec,
                              std::size_t bus_bytes, std::string &err);

} // namespace bxt::adaptive

#endif // BXT_ADAPTIVE_ADAPTIVE_CODEC_H
