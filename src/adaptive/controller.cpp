#include "adaptive/controller.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/bitops.h"
#include "common/error.h"
#include "core/codec_factory.h"

namespace bxt::adaptive {

namespace {

bool
parseSizeKnob(const std::string &value, std::size_t &out)
{
    if (value.empty())
        return false;
    std::size_t parsed = 0;
    for (const char c : value) {
        if (c < '0' || c > '9')
            return false;
        parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
        if (parsed > 1'000'000'000)
            return false;
    }
    out = parsed;
    return true;
}

bool
parsePctKnob(const std::string &value, double &out)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || !std::isfinite(parsed))
        return false;
    out = parsed;
    return true;
}

/** Format a percentage without trailing zeros ("10", "7.5"). */
std::string
formatPct(double pct)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", pct);
    return buf;
}

} // namespace

Config
defaultConfig(std::size_t bus_bytes)
{
    Config config;
    // Metadata-free ladder covering the data families the scenario engine
    // generates: universal for mixed strides, xor2/4/8 for element walks
    // at matching granularity, baseline for high-entropy payloads. All
    // share metaWiresPerBeat == 0, so any switch keeps the wire geometry.
    config.candidates = {"universal3+zdr", "xor2+zdr", "xor4+zdr",
                         "xor8+zdr", "baseline"};
    config.busBytes = bus_bytes;
    return config;
}

bool
isAdaptiveSpec(const std::string &spec)
{
    return spec == "adaptive" || spec.rfind("adaptive:", 0) == 0;
}

bool
parseAdaptiveSpec(const std::string &spec, std::size_t bus_bytes,
                  Config &out, std::string &err)
{
    if (!isAdaptiveSpec(spec)) {
        err = "not an adaptive spec: '" + spec + "'";
        return false;
    }
    const Config defaults = defaultConfig(bus_bytes);
    out = Config{};
    out.busBytes = bus_bytes;
    out.window = defaults.window;
    out.period = defaults.period;
    out.hysteresisPct = defaults.hysteresisPct;

    if (spec == "adaptive") {
        out.candidates = defaults.candidates;
        return true;
    }

    const std::string body = spec.substr(std::string("adaptive:").size());
    std::size_t start = 0;
    while (start <= body.size()) {
        std::size_t end = body.find(',', start);
        if (end == std::string::npos)
            end = body.size();
        const std::string item = body.substr(start, end - start);
        start = end + 1;
        if (item.empty()) {
            err = "adaptive spec has an empty item: '" + spec + "'";
            return false;
        }
        if (item.rfind("w=", 0) == 0) {
            if (!parseSizeKnob(item.substr(2), out.window) ||
                out.window < 2) {
                err = "adaptive window knob '" + item +
                      "' wants w=N with N >= 2";
                return false;
            }
        } else if (item.rfind("p=", 0) == 0) {
            if (!parseSizeKnob(item.substr(2), out.period) ||
                out.period == 0) {
                err = "adaptive period knob '" + item +
                      "' wants p=N with N >= 1";
                return false;
            }
        } else if (item.rfind("h=", 0) == 0) {
            if (!parsePctKnob(item.substr(2), out.hysteresisPct) ||
                out.hysteresisPct < 0.0 || out.hysteresisPct >= 100.0) {
                err = "adaptive hysteresis knob '" + item +
                      "' wants h=PCT with 0 <= PCT < 100";
                return false;
            }
        } else if (item.find('=') != std::string::npos) {
            err = "unknown adaptive knob '" + item +
                  "' (knobs: w=N, p=N, h=PCT)";
            return false;
        } else {
            out.candidates.push_back(item);
        }
        if (end == body.size())
            break;
    }
    if (out.candidates.empty())
        out.candidates = defaults.candidates;
    return true;
}

std::string
canonicalSpec(const Config &config)
{
    std::string spec = "adaptive:";
    for (std::size_t i = 0; i < config.candidates.size(); ++i) {
        if (i != 0)
            spec += ',';
        spec += config.candidates[i];
    }
    spec += ",w=" + std::to_string(config.window);
    spec += ",p=" + std::to_string(config.period);
    spec += ",h=" + formatPct(config.hysteresisPct);
    return spec;
}

Controller::Controller(Config config) : config_(std::move(config)) {}

std::unique_ptr<Controller>
Controller::make(const Config &config, std::string &err)
{
    if (config.candidates.size() < 2) {
        err = "adaptive spec needs at least 2 candidates, got " +
              std::to_string(config.candidates.size());
        return nullptr;
    }
    if (config.window < 2) {
        err = "adaptive window must be >= 2";
        return nullptr;
    }
    if (config.period == 0) {
        err = "adaptive period must be >= 1";
        return nullptr;
    }
    if (!(config.hysteresisPct >= 0.0) || config.hysteresisPct >= 100.0) {
        err = "adaptive hysteresis must be in [0, 100)";
        return nullptr;
    }

    std::unique_ptr<Controller> controller(new Controller(config));
    controller->candidates_.reserve(config.candidates.size());
    unsigned meta_wires = 0;
    for (std::size_t i = 0; i < config.candidates.size(); ++i) {
        const std::string &candidate = config.candidates[i];
        if (isAdaptiveSpec(candidate)) {
            err = "adaptive candidates cannot nest adaptive specs: '" +
                  candidate + "'";
            return nullptr;
        }
        std::string stage_err;
        CodecPtr codec = tryMakeCodec(candidate, config.busBytes, stage_err);
        if (!codec) {
            err = "adaptive candidate '" + candidate + "': " + stage_err;
            return nullptr;
        }
        if (!codec->stateless()) {
            err = "adaptive candidate '" + candidate +
                  "' is stateful; measurement encodes would corrupt its "
                  "channel history";
            return nullptr;
        }
        if (i == 0) {
            meta_wires = codec->metaWiresPerBeat();
        } else if (codec->metaWiresPerBeat() != meta_wires) {
            err = "adaptive candidates disagree on metaWiresPerBeat ('" +
                  config.candidates[0] + "' uses " +
                  std::to_string(meta_wires) + ", '" + candidate +
                  "' uses " + std::to_string(codec->metaWiresPerBeat()) +
                  "); a switch must not change the wire geometry";
            return nullptr;
        }
        controller->candidates_.push_back(std::move(codec));
    }
    return controller;
}

bool
Controller::maybeEvaluate()
{
    if (evaluations_ == 0) {
        if (ring_.size() < config_.window)
            return false;
        return evaluate();
    }
    if (sinceEval_ < config_.period)
        return false;
    return evaluate();
}

void
Controller::observe(const TxBatch &batch)
{
    if (batch.empty() || batch.txBytes() == 0)
        return;
    if (ring_.txBytes() != batch.txBytes()) {
        ring_.reset(batch.txBytes());
        ring_.reserve(config_.window);
        ringNext_ = 0;
    }
    const std::size_t stride =
        std::max<std::size_t>(1, batch.size() / config_.window);
    for (std::size_t i = 0; i < batch.size(); i += stride) {
        const std::span<const std::uint8_t> src = batch.tx(i);
        if (ring_.size() < config_.window) {
            ring_.append(src.data(), 1);
        } else {
            std::memcpy(ring_.tx(ringNext_).data(), src.data(),
                        src.size());
        }
        ringNext_ = (ringNext_ + 1) % config_.window;
    }
    observed_ += batch.size();
    sinceEval_ += batch.size();
}

void
Controller::observe(const std::uint8_t *tx, std::size_t tx_bytes)
{
    if (tx_bytes == 0)
        return;
    if (ring_.txBytes() != tx_bytes) {
        ring_.reset(tx_bytes);
        ring_.reserve(config_.window);
        ringNext_ = 0;
    }
    if (ring_.size() < config_.window) {
        ring_.append(tx, 1);
    } else {
        std::memcpy(ring_.tx(ringNext_).data(), tx, tx_bytes);
    }
    ringNext_ = (ringNext_ + 1) % config_.window;
    ++observed_;
    ++sinceEval_;
}

bool
Controller::evaluate()
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const double txs = static_cast<double>(ring_.size());
    last_costs_.assign(candidates_.size(), kInf);
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
        try {
            candidates_[i]->encodeBatch(ring_, scratch_);
            last_costs_[i] = static_cast<double>(scratch_.payloadOnes() +
                                                 scratch_.metaOnes()) /
                             txs;
        } catch (const CodecSizeError &) {
            // Candidate cannot encode this geometry (base size does not
            // divide the transaction): disqualified at this window.
        }
    }
    ++evaluations_;
    sinceEval_ = 0;

    std::size_t best = active_;
    for (std::size_t i = 0; i < candidates_.size(); ++i)
        if (last_costs_[i] < last_costs_[best])
            best = i;
    if (best == active_)
        return false;

    // The very first evaluation replaces the arbitrary initial choice
    // without demanding a margin; afterwards the challenger must beat
    // the incumbent by the hysteresis margin to avoid flapping on
    // near-tied windows.
    if (evaluations_ > 1) {
        const double bar =
            last_costs_[active_] * (1.0 - config_.hysteresisPct / 100.0);
        if (!(last_costs_[best] < bar))
            return false;
    }
    active_ = best;
    ++epoch_;
    return true;
}

Sensors
Controller::sensors() const
{
    Sensors s;
    s.samples = ring_.size();
    if (ring_.empty() || ring_.txBytes() == 0)
        return s;

    const std::size_t tx_bytes = ring_.txBytes();
    std::uint64_t zero_words = 0;
    std::uint64_t total_words = 0;
    std::array<double, kToggleGranularities.size()> toggle_sum{};
    std::array<std::uint64_t, kToggleGranularities.size()> toggle_n{};
    std::uint64_t heavy_beats = 0;
    std::uint64_t total_beats = 0;
    const std::size_t bus_bytes = std::max<std::size_t>(1, config_.busBytes);

    for (std::size_t t = 0; t < ring_.size(); ++t) {
        const std::uint8_t *tx = ring_.tx(t).data();
        for (std::size_t off = 0; off + 4 <= tx_bytes; off += 4) {
            std::uint32_t word;
            std::memcpy(&word, tx + off, 4);
            zero_words += word == 0;
            ++total_words;
        }
        for (std::size_t g = 0; g < kToggleGranularities.size(); ++g) {
            const std::size_t gran = kToggleGranularities[g];
            if (tx_bytes < 2 * gran)
                continue;
            for (std::size_t off = gran; off + gran <= tx_bytes;
                 off += gran) {
                std::uint64_t toggles = 0;
                for (std::size_t b = 0; b < gran; ++b)
                    toggles += static_cast<std::uint64_t>(
                        std::popcount(static_cast<unsigned>(
                            tx[off + b] ^ tx[off - gran + b])));
                toggle_sum[g] += static_cast<double>(toggles) /
                                 static_cast<double>(gran * 8);
                ++toggle_n[g];
            }
        }
        for (std::size_t off = 0; off + bus_bytes <= tx_bytes;
             off += bus_bytes) {
            heavy_beats +=
                popcountBytes({tx + off, bus_bytes}) > bus_bytes * 8 / 2;
            ++total_beats;
        }
    }

    if (total_words != 0)
        s.zeroWordFrac = static_cast<double>(zero_words) /
                         static_cast<double>(total_words);
    for (std::size_t g = 0; g < kToggleGranularities.size(); ++g)
        if (toggle_n[g] != 0)
            s.toggleWeight[g] =
                toggle_sum[g] / static_cast<double>(toggle_n[g]);
    if (total_beats != 0)
        s.dbiWeight = static_cast<double>(heavy_beats) /
                      static_cast<double>(total_beats);
    return s;
}

void
Controller::reset()
{
    ring_ = TxBatch{};
    ringNext_ = 0;
    active_ = 0;
    epoch_ = 0;
    evaluations_ = 0;
    observed_ = 0;
    sinceEval_ = 0;
    last_costs_.clear();
    for (const CodecPtr &codec : candidates_)
        codec->reset();
}

} // namespace bxt::adaptive
