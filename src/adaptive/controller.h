/**
 * @file
 * Online adaptive codec selection: the per-stream controller behind the
 * `adaptive[:...]` spec (DESIGN.md §13).
 *
 * The paper fixes one encoding spec ahead of time, but no single spec
 * wins across data families: zero-heavy integer streams want ZDR, float
 * walks want a Base+XOR granularity matched to the element size, and
 * high-entropy streams are best left unencoded. The Controller closes
 * that loop at runtime. It samples a sliding window of transactions,
 * derives the value statistics the choice depends on (zero-word
 * fraction, per-granularity XOR toggle weight, a DBI weight estimate),
 * and scores every concrete candidate spec with a cost model that is
 * calibrated against measured ones-on-bus: each candidate encodes the
 * sampled window and its cost is the exact payload+metadata ones it
 * would have put on the wire. The cheapest candidate becomes the active
 * spec; re-evaluations run every `period` observed transactions and
 * only switch when the winner undercuts the incumbent by the hysteresis
 * margin, so bursty streams do not flap between near-tied specs.
 *
 * Candidates must be stateless (measurement encodes must not disturb
 * channel history) and must agree on metaWiresPerBeat (a switch must
 * never change the wire geometry mid-stream).
 */

#ifndef BXT_ADAPTIVE_CONTROLLER_H
#define BXT_ADAPTIVE_CONTROLLER_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/codec.h"

namespace bxt::adaptive {

/** Tuning knobs of one adaptive spec (the `adaptive[:...]` grammar). */
struct Config
{
    /** Concrete candidate specs (>= 2, stateless, uniform meta wires). */
    std::vector<std::string> candidates;

    /** Transactions retained in the sampled window (`w=` knob). */
    std::size_t window = 64;

    /** Observed transactions between re-evaluations (`p=` knob). */
    std::size_t period = 256;

    /**
     * Switch only when the best candidate's measured cost is at least
     * this many percent below the incumbent's (`h=` knob). The first
     * evaluation is exempt: the initial choice is arbitrary, not earned.
     */
    double hysteresisPct = 10.0;

    /** Bus width in bytes for beat-oriented candidates (DBI). */
    std::size_t busBytes = 4;
};

/** The default candidate set: the paper's universal scheme plus the
 *  per-granularity Base+XOR ladder and the unencoded baseline, all
 *  metadata-free so a switch never resizes the bus. */
Config defaultConfig(std::size_t bus_bytes = 4);

/** True when @p spec names the adaptive meta-codec ("adaptive" or
 *  "adaptive:..."); such specs bypass the '|' pipeline grammar. */
bool isAdaptiveSpec(const std::string &spec);

/**
 * Parse `adaptive[:item,item,...]` where each item is a knob (`w=N`,
 * `p=N`, `h=PCT`) or a concrete candidate spec (pipelines with '|' are
 * fine; ',' separates items). Omitted candidates fall back to
 * defaultConfig(). Returns false with @p err set on a malformed spec;
 * candidate validation (existence, statelessness, uniform meta wires)
 * happens in Controller::make.
 */
bool parseAdaptiveSpec(const std::string &spec, std::size_t bus_bytes,
                       Config &out, std::string &err);

/** The canonical round-trippable spec string for @p config. */
std::string canonicalSpec(const Config &config);

/** XOR toggle-weight granularities the sensors track (element bytes). */
inline constexpr std::array<std::size_t, 4> kToggleGranularities{2, 4, 8,
                                                                 16};

/** Windowed value statistics over the sampled transactions. */
struct Sensors
{
    /** Fraction of zero 32-bit words (ZDR's favourite food). */
    double zeroWordFrac = 0.0;

    /** Mean fraction of bits toggling between adjacent g-byte elements
     *  within a transaction, per kToggleGranularities entry; 0 when the
     *  transaction holds fewer than two such elements. */
    std::array<double, kToggleGranularities.size()> toggleWeight{};

    /** Fraction of bus beats whose popcount exceeds half the bus width
     *  (the beats DBI would invert). */
    double dbiWeight = 0.0;

    /** Transactions currently in the window. */
    std::size_t samples = 0;
};

/**
 * The per-stream selection engine. Not thread-safe: one Controller per
 * stream per connection, exactly like the codec instances it manages.
 *
 * Protocol (enforced by AdaptiveCodec): call maybeEvaluate() at a batch
 * boundary *before* encoding, encode the batch with activeCodec(), then
 * observe() the batch. Evaluation therefore only ever sees completed
 * batches and a switch can only land between batches.
 */
class Controller
{
  public:
    /**
     * Build a controller (constructing every candidate codec). Returns
     * nullptr with @p err set when a candidate is malformed, stateful,
     * nested-adaptive, or disagrees on metaWiresPerBeat.
     */
    static std::unique_ptr<Controller> make(const Config &config,
                                            std::string &err);

    const Config &config() const { return config_; }

    /** Index of the active candidate in config().candidates. */
    std::size_t activeIndex() const { return active_; }

    /** The active concrete spec string (what the server announces). */
    const std::string &activeSpec() const
    {
        return config_.candidates[active_];
    }

    /** The active concrete codec (encode/decode delegate). */
    Codec &activeCodec() { return *candidates_[active_]; }

    /** Switches so far — the epoch announced next to the active spec.
     *  Two replies with equal (spec, epoch) used the same choice run. */
    std::uint64_t epoch() const { return epoch_; }

    /** Cost-model evaluations run so far. */
    std::uint64_t evaluations() const { return evaluations_; }

    /** Transactions observed so far. */
    std::uint64_t observed() const { return observed_; }

    /**
     * Re-evaluate if due (first time once the window has filled, then
     * every period transactions). Returns true when the active codec
     * changed. Call only at a batch boundary, before encoding.
     */
    bool maybeEvaluate();

    /** Feed a completed batch into the sampled window (stride-sampled
     *  so a huge batch costs at most `window` copies). */
    void observe(const TxBatch &batch);

    /** Feed one scalar transaction into the sampled window. */
    void observe(const std::uint8_t *tx, std::size_t tx_bytes);

    /** Compute the windowed value statistics (walks the window). */
    Sensors sensors() const;

    /** Mean measured ones-on-bus per transaction per candidate at the
     *  last evaluation (empty before the first). Test/display hook. */
    const std::vector<double> &lastCosts() const { return last_costs_; }

    /** Drop all history: window, counters, epoch, active choice. */
    void reset();

  private:
    explicit Controller(Config config);

    /** Run the calibrated cost model over the window and maybe switch. */
    bool evaluate();

    Config config_;
    std::vector<CodecPtr> candidates_;

    /** Sampled-transaction ring; rows [0, ring_.size()) are live. */
    TxBatch ring_;
    std::size_t ringNext_ = 0;

    /** Scratch for measurement encodes (reused across evaluations). */
    EncodedBatch scratch_;

    std::size_t active_ = 0;
    std::uint64_t epoch_ = 0;
    std::uint64_t evaluations_ = 0;
    std::uint64_t observed_ = 0;
    std::uint64_t sinceEval_ = 0;
    std::vector<double> last_costs_;
};

} // namespace bxt::adaptive

#endif // BXT_ADAPTIVE_CONTROLLER_H
