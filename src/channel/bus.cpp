#include "channel/bus.h"

#include "common/bitops.h"
#include "common/error.h"
#include "telemetry/metrics.h"

namespace bxt {

namespace {

/** Process-wide wire-activity counters (all Bus instances aggregate). */
void
recordBusDelta(const BusStats &delta)
{
    static telemetry::Counter &transactions =
        telemetry::counter("bxt.bus.transactions");
    static telemetry::Counter &beats = telemetry::counter("bxt.bus.beats");
    static telemetry::Counter &data_ones =
        telemetry::counter("bxt.bus.data_ones");
    static telemetry::Counter &data_toggles =
        telemetry::counter("bxt.bus.data_toggles");
    static telemetry::Counter &meta_ones =
        telemetry::counter("bxt.bus.meta_ones");
    static telemetry::Counter &meta_toggles =
        telemetry::counter("bxt.bus.meta_toggles");
    transactions.add(delta.transactions);
    beats.add(delta.beats);
    data_ones.add(delta.dataOnes);
    data_toggles.add(delta.dataToggles);
    meta_ones.add(delta.metaOnes);
    meta_toggles.add(delta.metaToggles);
}

} // namespace

BusStats &
BusStats::operator+=(const BusStats &other)
{
    transactions += other.transactions;
    beats += other.beats;
    dataBits += other.dataBits;
    dataOnes += other.dataOnes;
    dataToggles += other.dataToggles;
    metaBits += other.metaBits;
    metaOnes += other.metaOnes;
    metaToggles += other.metaToggles;
    return *this;
}

Bus::Bus(unsigned data_wires, unsigned meta_wires, double idle_fraction)
    : data_wires_(data_wires), meta_wires_(meta_wires),
      idle_fraction_(idle_fraction), last_data_(data_wires / 8, 0),
      last_meta_(meta_wires, 0)
{
    BXT_ASSERT(data_wires >= 8 && data_wires % 8 == 0);
    BXT_ASSERT(idle_fraction >= 0.0 && idle_fraction < 1.0);
}

void
Bus::parkWires(BusStats &delta)
{
    delta.dataToggles += popcountBytes({last_data_.data(),
                                        last_data_.size()});
    std::fill(last_data_.begin(), last_data_.end(), 0);
    for (std::uint8_t &bit : last_meta_) {
        delta.metaToggles += bit;
        bit = 0;
    }
}

void
Bus::resetWires()
{
    std::fill(last_data_.begin(), last_data_.end(), 0);
    std::fill(last_meta_.begin(), last_meta_.end(), 0);
    idle_accum_ = 0.0;
}

void
Bus::driveTransaction(const std::uint8_t *payload, const std::uint8_t *meta,
                      std::size_t beats, BusStats &delta)
{
    const std::size_t bus_bytes = data_wires_ / 8;
    delta.transactions += 1;
    delta.beats += beats;

    // Ones and toggles are counted word-at-a-time: each beat is loaded as
    // 64/32-bit words, XORed against the previously driven beat, and
    // reduced with one popcount per word instead of one per byte lane.
    // Popcount distributes over byte boundaries, so the counts are
    // bit-identical to the per-lane formulation.
    std::uint8_t *last = last_data_.data();
    for (std::size_t beat = 0; beat < beats; ++beat) {
        const std::uint8_t *beat_ptr = payload + beat * bus_bytes;
        std::size_t lane = 0;
        for (; lane + 8 <= bus_bytes; lane += 8) {
            const std::uint64_t value = loadWord64(beat_ptr + lane);
            const std::uint64_t prev = loadWord64(last + lane);
            delta.dataOnes +=
                static_cast<std::uint64_t>(popcount64(value));
            delta.dataToggles +=
                static_cast<std::uint64_t>(popcount64(value ^ prev));
            storeWord64(last + lane, value);
        }
        for (; lane + 4 <= bus_bytes; lane += 4) {
            const std::uint32_t value = loadWord32(beat_ptr + lane);
            const std::uint32_t prev = loadWord32(last + lane);
            delta.dataOnes +=
                static_cast<std::uint64_t>(popcount64(value));
            delta.dataToggles +=
                static_cast<std::uint64_t>(popcount64(value ^ prev));
            storeWord32(last + lane, value);
        }
        for (; lane < bus_bytes; ++lane) {
            const std::uint8_t value = beat_ptr[lane];
            delta.dataOnes += static_cast<std::uint64_t>(
                popcount64(value));
            delta.dataToggles += static_cast<std::uint64_t>(
                popcount64(static_cast<std::uint8_t>(value ^
                                                     last[lane])));
            last[lane] = value;
        }
        for (unsigned w = 0; w < meta_wires_; ++w) {
            const std::uint8_t bit = meta[beat * meta_wires_ + w];
            delta.metaOnes += bit;
            delta.metaToggles += (bit != last_meta_[w]) ? 1u : 0u;
            last_meta_[w] = bit;
        }
    }
    delta.dataBits += beats * data_wires_;
    delta.metaBits += beats * meta_wires_;

    // Idle gap after this burst (deterministic accumulator).
    idle_accum_ += idle_fraction_;
    if (idle_accum_ >= 1.0) {
        idle_accum_ -= 1.0;
        parkWires(delta);
    }
}

BusStats
Bus::transmit(const Encoded &enc)
{
    const std::size_t bus_bytes = data_wires_ / 8;
    const std::size_t size = enc.payload.size();
    BXT_ASSERT(size % bus_bytes == 0);
    BXT_ASSERT(enc.metaWiresPerBeat == meta_wires_);

    const std::size_t beats = size / bus_bytes;
    BXT_ASSERT(enc.meta.size() == beats * meta_wires_);

    BusStats delta;
    driveTransaction(enc.payload.data(), enc.meta.data(), beats, delta);

    stats_ += delta;
    if (telemetry::metricsEnabled())
        recordBusDelta(delta);
    return delta;
}

BusStats
Bus::transmitBatch(const EncodedBatch &batch)
{
    const std::size_t bus_bytes = data_wires_ / 8;
    const std::size_t tx_bytes = batch.txBytes();
    BXT_ASSERT(tx_bytes % bus_bytes == 0);
    BXT_ASSERT(batch.metaWiresPerBeat() == meta_wires_);

    const std::size_t beats = tx_bytes / bus_bytes;
    BXT_ASSERT(batch.metaBitsPerTx() == beats * meta_wires_);

    // One aggregated delta; the telemetry counters are additive, so a
    // single batched record leaves them exactly where a per-transaction
    // loop would.
    BusStats delta;
    const std::uint8_t *payload = batch.payloadData();
    const std::uint8_t *meta = batch.metaData();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        driveTransaction(payload + i * tx_bytes,
                         meta == nullptr
                             ? nullptr
                             : meta + i * batch.metaBitsPerTx(),
                         beats, delta);
    }

    stats_ += delta;
    if (telemetry::metricsEnabled())
        recordBusDelta(delta);
    return delta;
}

} // namespace bxt
