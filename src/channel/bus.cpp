#include "channel/bus.h"

#include <cstring>

#include "common/bitops.h"
#include "common/error.h"
#include "core/simd/simd.h"
#include "telemetry/metrics.h"

namespace bxt {

namespace {

/**
 * Process-wide wire-activity counters (all Bus instances aggregate).
 * Pinned to the default registry: the statics bind on the first
 * transmit, and a thread-scoped registry must not capture them.
 */
void
recordBusDelta(const BusStats &delta)
{
    static telemetry::Counter &transactions =
        telemetry::defaultRegistry().counter("bxt.bus.transactions");
    static telemetry::Counter &beats =
        telemetry::defaultRegistry().counter("bxt.bus.beats");
    static telemetry::Counter &data_ones =
        telemetry::defaultRegistry().counter("bxt.bus.data_ones");
    static telemetry::Counter &data_toggles =
        telemetry::defaultRegistry().counter("bxt.bus.data_toggles");
    static telemetry::Counter &meta_ones =
        telemetry::defaultRegistry().counter("bxt.bus.meta_ones");
    static telemetry::Counter &meta_toggles =
        telemetry::defaultRegistry().counter("bxt.bus.meta_toggles");
    transactions.add(delta.transactions);
    beats.add(delta.beats);
    data_ones.add(delta.dataOnes);
    data_toggles.add(delta.dataToggles);
    meta_ones.add(delta.metaOnes);
    meta_toggles.add(delta.metaToggles);
}

} // namespace

BusStats &
BusStats::operator+=(const BusStats &other)
{
    transactions += other.transactions;
    beats += other.beats;
    dataBits += other.dataBits;
    dataOnes += other.dataOnes;
    dataToggles += other.dataToggles;
    metaBits += other.metaBits;
    metaOnes += other.metaOnes;
    metaToggles += other.metaToggles;
    return *this;
}

Bus::Bus(unsigned data_wires, unsigned meta_wires, double idle_fraction)
    : data_wires_(data_wires), meta_wires_(meta_wires),
      idle_fraction_(idle_fraction), last_data_(data_wires / 8, 0),
      last_meta_(meta_wires, 0)
{
    BXT_ASSERT(data_wires >= 8 && data_wires % 8 == 0);
    BXT_ASSERT(idle_fraction >= 0.0 && idle_fraction < 1.0);
}

void
Bus::parkWires(BusStats &delta)
{
    const simd::KernelTable &ops = simd::ops();
    delta.dataToggles += ops.popcountRange(last_data_.data(),
                                           last_data_.size());
    std::fill(last_data_.begin(), last_data_.end(), 0);
    if (!last_meta_.empty()) {
        // Meta wires store one 0/1 byte each, so popcount equals the sum
        // of set wires.
        delta.metaToggles += ops.popcountRange(last_meta_.data(),
                                               last_meta_.size());
        std::fill(last_meta_.begin(), last_meta_.end(), 0);
    }
}

void
Bus::resetWires()
{
    std::fill(last_data_.begin(), last_data_.end(), 0);
    std::fill(last_meta_.begin(), last_meta_.end(), 0);
    idle_accum_ = 0.0;
}

void
Bus::driveTransaction(const std::uint8_t *payload, const std::uint8_t *meta,
                      std::size_t beats, BusStats &delta)
{
    const std::size_t bus_bytes = data_wires_ / 8;
    delta.transactions += 1;
    delta.beats += beats;

    // Ones and toggles are counted plane-at-a-time through the dispatched
    // SIMD table. The per-beat loop "ones += popcount(beat); toggles +=
    // popcount(beat ^ previous beat)" is algebraically one popcount over
    // the whole payload plus two XOR-popcount ranges: the first beat
    // toggles against the parked wire state, and every later beat toggles
    // against the beat bus_bytes before it in the same contiguous buffer.
    // Popcount distributes over byte boundaries, so the counts are
    // bit-identical to the per-lane formulation.
    const simd::KernelTable &ops = simd::ops();
    std::uint8_t *last = last_data_.data();
    delta.dataOnes += ops.popcountRange(payload, beats * bus_bytes);
    delta.dataToggles += ops.popcountXorRange(payload, last, bus_bytes);
    if (beats > 1)
        delta.dataToggles += ops.popcountXorRange(
            payload + bus_bytes, payload, (beats - 1) * bus_bytes);
    std::memcpy(last, payload + (beats - 1) * bus_bytes, bus_bytes);

    if (meta_wires_ != 0) {
        // Meta is one 0/1 byte per wire per beat, so popcount doubles as
        // the byte sum and byte XOR matches bitwise wire toggling.
        delta.metaOnes += ops.popcountRange(meta, beats * meta_wires_);
        delta.metaToggles += ops.popcountXorRange(meta, last_meta_.data(),
                                                  meta_wires_);
        if (beats > 1)
            delta.metaToggles += ops.popcountXorRange(
                meta + meta_wires_, meta, (beats - 1) * meta_wires_);
        std::memcpy(last_meta_.data(), meta + (beats - 1) * meta_wires_,
                    meta_wires_);
    }
    delta.dataBits += beats * data_wires_;
    delta.metaBits += beats * meta_wires_;

    // Idle gap after this burst (deterministic accumulator).
    idle_accum_ += idle_fraction_;
    if (idle_accum_ >= 1.0) {
        idle_accum_ -= 1.0;
        parkWires(delta);
    }
}

BusStats
Bus::transmit(const Encoded &enc)
{
    const std::size_t bus_bytes = data_wires_ / 8;
    const std::size_t size = enc.payload.size();
    BXT_ASSERT(size % bus_bytes == 0);
    BXT_ASSERT(enc.metaWiresPerBeat == meta_wires_);

    const std::size_t beats = size / bus_bytes;
    BXT_ASSERT(enc.meta.size() == beats * meta_wires_);

    BusStats delta;
    driveTransaction(enc.payload.data(), enc.meta.data(), beats, delta);

    stats_ += delta;
    if (telemetry::metricsEnabled())
        recordBusDelta(delta);
    return delta;
}

BusStats
Bus::transmitBatch(const EncodedBatch &batch)
{
    const std::size_t bus_bytes = data_wires_ / 8;
    const std::size_t tx_bytes = batch.txBytes();
    BXT_ASSERT(tx_bytes % bus_bytes == 0);
    BXT_ASSERT(batch.metaWiresPerBeat() == meta_wires_);

    const std::size_t beats = tx_bytes / bus_bytes;
    BXT_ASSERT(batch.metaBitsPerTx() == beats * meta_wires_);

    // One aggregated delta; the telemetry counters are additive, so a
    // single batched record leaves them exactly where a per-transaction
    // loop would.
    BusStats delta;
    const std::uint8_t *payload = batch.payloadData();
    const std::uint8_t *meta = batch.metaData();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        driveTransaction(payload + i * tx_bytes,
                         meta == nullptr
                             ? nullptr
                             : meta + i * batch.metaBitsPerTx(),
                         beats, delta);
    }

    stats_ += delta;
    if (telemetry::metricsEnabled())
        recordBusDelta(delta);
    return delta;
}

} // namespace bxt
