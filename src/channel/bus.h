/**
 * @file
 * Physical channel model: serializes encoded transactions into bus beats
 * and accounts the two data-dependent energy drivers of a POD interface —
 * `1` values (termination current) and per-wire toggles (capacitive
 * switching) — across beats *and* across consecutive transactions.
 */

#ifndef BXT_CHANNEL_BUS_H
#define BXT_CHANNEL_BUS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/codec.h"

namespace bxt {

/** Accumulated wire-activity counters for a bus. */
struct BusStats
{
    std::uint64_t transactions = 0; ///< Transactions transmitted.
    std::uint64_t beats = 0;        ///< Bus beats transmitted.
    std::uint64_t dataBits = 0;     ///< Data wire-slots driven (beats × wires).
    std::uint64_t dataOnes = 0;     ///< `1` values on data wires.
    std::uint64_t dataToggles = 0;  ///< Data-wire transitions.
    std::uint64_t metaBits = 0;     ///< Metadata wire-slots driven.
    std::uint64_t metaOnes = 0;     ///< `1` values on metadata wires.
    std::uint64_t metaToggles = 0;  ///< Metadata-wire transitions.

    /** All `1` values (data + metadata). */
    std::uint64_t ones() const { return dataOnes + metaOnes; }

    /** All wire transitions (data + metadata). */
    std::uint64_t toggles() const { return dataToggles + metaToggles; }

    /** Element-wise accumulate. */
    BusStats &operator+=(const BusStats &other);

    /** Field-wise equality (used by determinism checks). */
    bool operator==(const BusStats &other) const = default;
};

/**
 * One DRAM data channel: a set of data wires plus optional dedicated
 * metadata wires (DBI / BD-Encoding polarity and index signals). The bus
 * remembers the last value driven on every wire so toggles are counted
 * across transaction boundaries; wires idle at logical 0 (VDD on a POD
 * interface), matching a terminated bus at rest.
 */
class Bus
{
  public:
    /**
     * @param data_wires Data bus width in bits (32 for one GDDR5X channel,
     *        64 for the DDR4 CPU configuration); must be a multiple of 8.
     * @param meta_wires Dedicated metadata wires (codec-dependent).
     * @param idle_fraction Fraction of transactions followed by a bus idle
     *        gap (1 - bandwidth utilization). A terminated POD bus parks
     *        at VDD = logical 0 when idle, so every `1` on the last beat
     *        before a gap and the first beat after it costs a transition.
     *        Applied deterministically (every 1/idle_fraction-th
     *        transaction) so runs are reproducible.
     */
    explicit Bus(unsigned data_wires = 32, unsigned meta_wires = 0,
                 double idle_fraction = 0.0);

    /**
     * Transmit one encoded transaction and update the counters.
     * The encoding's metaWiresPerBeat must equal the bus's metadata wires.
     * @return the counter deltas contributed by this transaction.
     */
    BusStats transmit(const Encoded &enc);

    /**
     * Transmit every transaction of an encoded batch back to back and
     * return the summed counter deltas. Field-identical to calling
     * transmit() once per transaction in batch order: the last-driven
     * wire values carry across transaction boundaries inside the batch
     * (and into the next call), and the deterministic idle accumulator
     * advances once per transaction, so splitting a stream into batches
     * of any size changes no counter.
     */
    BusStats transmitBatch(const EncodedBatch &batch);

    /** Counters accumulated since construction or the last resetStats(). */
    const BusStats &stats() const { return stats_; }

    /** Zero the counters (wire state is preserved). */
    void resetStats() { stats_ = BusStats{}; }

    /** Drive all wires back to the idle (all-zero) state. */
    void resetWires();

    /** Data bus width in bits. */
    unsigned dataWires() const { return data_wires_; }

    /** Metadata wire count. */
    unsigned metaWires() const { return meta_wires_; }

  private:
    /** Park all wires at idle (0) and charge the resulting transitions. */
    void parkWires(BusStats &delta);

    /**
     * Drive one transaction's beats onto the wires, accumulating into
     * @p delta; shared by transmit() and transmitBatch(). @p meta may be
     * null when the bus has no metadata wires.
     */
    void driveTransaction(const std::uint8_t *payload,
                          const std::uint8_t *meta, std::size_t beats,
                          BusStats &delta);

    unsigned data_wires_;
    unsigned meta_wires_;
    double idle_fraction_;
    double idle_accum_ = 0.0;
    std::vector<std::uint8_t> last_data_;  ///< Last byte-lane values driven.
    std::vector<std::uint8_t> last_meta_;  ///< Last metadata bit values.
    BusStats stats_;
};

} // namespace bxt

#endif // BXT_CHANNEL_BUS_H
