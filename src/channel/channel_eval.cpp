#include "channel/channel_eval.h"

#include "common/bitops.h"
#include "common/error.h"

namespace bxt {

double
ChannelEvalResult::normalizedOnes() const
{
    if (rawOnes == 0)
        return 1.0;
    return static_cast<double>(stats.ones()) / static_cast<double>(rawOnes);
}

double
ChannelEvalResult::onesPerTransaction() const
{
    if (stats.transactions == 0)
        return 0.0;
    return static_cast<double>(stats.ones()) /
           static_cast<double>(stats.transactions);
}

ChannelEvalResult
evalCodecOnStream(Codec &codec, const std::vector<Transaction> &stream,
                  unsigned data_wires, double idle_fraction)
{
    codec.reset();
    Bus bus(data_wires, codec.metaWiresPerBeat(), idle_fraction);

    ChannelEvalResult result;
    result.codec = codec.name();
    // One scratch Encoded/Transaction reused across the stream keeps the
    // inner loop allocation-free (the metadata vector retains capacity).
    Encoded enc;
    Transaction back;
    for (const Transaction &tx : stream) {
        result.rawOnes += tx.ones();
        codec.encodeInto(tx, enc);
        bus.transmit(enc);
        // Losslessness is non-negotiable: encoded data is what gets stored
        // in DRAM, so any mismatch here would be silent data corruption.
        codec.decodeInto(enc, back);
        if (!(back == tx))
            panic("codec " + codec.name() + " failed to round-trip " +
                  tx.toHex());
    }
    result.stats = bus.stats();
    return result;
}

double
mixedDataRatio(const std::vector<Transaction> &stream)
{
    if (stream.empty())
        return 0.0;
    std::size_t mixed = 0;
    for (const Transaction &tx : stream) {
        bool has_zero = false;
        bool has_nonzero = false;
        for (std::size_t off = 0; off < tx.size(); off += 4) {
            if (allZero(tx.data() + off, 4))
                has_zero = true;
            else
                has_nonzero = true;
        }
        if (has_zero && has_nonzero)
            ++mixed;
    }
    return static_cast<double>(mixed) / static_cast<double>(stream.size());
}

} // namespace bxt
