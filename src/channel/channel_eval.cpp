#include "channel/channel_eval.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/error.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace bxt {

namespace {

/** Stream-level eval counters (all codecs/streams aggregate). */
void
recordEvalStream(const ChannelEvalResult &result, std::size_t bytes)
{
    static telemetry::Counter &streams =
        telemetry::counter("bxt.channel.eval.streams");
    static telemetry::Counter &transactions =
        telemetry::counter("bxt.channel.eval.transactions");
    static telemetry::Counter &raw_ones =
        telemetry::counter("bxt.channel.eval.raw_ones");
    static telemetry::Counter &encoded_ones =
        telemetry::counter("bxt.channel.eval.encoded_ones");
    static telemetry::Counter &byte_count =
        telemetry::counter("bxt.channel.eval.bytes");
    streams.add(1);
    transactions.add(result.stats.transactions);
    raw_ones.add(result.rawOnes);
    encoded_ones.add(result.stats.ones());
    byte_count.add(bytes);
}

} // namespace

double
ChannelEvalResult::normalizedOnes() const
{
    if (rawOnes == 0)
        return 1.0;
    return static_cast<double>(stats.ones()) / static_cast<double>(rawOnes);
}

double
ChannelEvalResult::onesPerTransaction() const
{
    if (stats.transactions == 0)
        return 0.0;
    return static_cast<double>(stats.ones()) /
           static_cast<double>(stats.transactions);
}

namespace {

/** Scalar reference loop: one transaction at a time. */
void
evalScalar(Codec &codec, const std::vector<Transaction> &stream, Bus &bus,
           ChannelEvalResult &result, std::size_t &stream_bytes)
{
    // One scratch Encoded/Transaction reused across the stream keeps the
    // inner loop allocation-free (the metadata vector retains capacity).
    Encoded enc;
    Transaction back;
    for (const Transaction &tx : stream) {
        result.rawOnes += tx.ones();
        stream_bytes += tx.size();
        codec.encodeInto(tx, enc);
        bus.transmit(enc);
        // Losslessness is non-negotiable: encoded data is what gets stored
        // in DRAM, so any mismatch here would be silent data corruption.
        codec.decodeInto(enc, back);
        if (!(back == tx))
            panic("codec " + codec.name() + " failed to round-trip " +
                  tx.toHex());
    }
}

/**
 * Batch hot path: the stream is chunked into TxBatches of at most
 * @p batch_tx transactions. A chunk also ends where the transaction size
 * changes, so mixed-size streams stay legal (TxBatch geometry is uniform).
 * Chunks are additionally capped at batchTileTx(tx_bytes) so the encode
 * plane, its encoded copy, and the bus accounting sweep all stay within
 * one L1/L2-resident tile; BusStats is batch-split invariant, so tiling
 * does not change any count.
 */
void
evalBatched(Codec &codec, const std::vector<Transaction> &stream, Bus &bus,
            std::size_t batch_tx, ChannelEvalResult &result,
            std::size_t &stream_bytes)
{
    TxBatch batch;
    EncodedBatch enc;
    TxBatch back;
    std::size_t i = 0;
    while (i < stream.size()) {
        const std::size_t tx_bytes = stream[i].size();
        const std::size_t tile_tx =
            std::min(batch_tx, batchTileTx(tx_bytes));
        batch.reset(tx_bytes);
        batch.reserve(std::min(tile_tx, stream.size() - i));
        while (i < stream.size() && batch.size() < tile_tx &&
               stream[i].size() == tx_bytes) {
            result.rawOnes += stream[i].ones();
            stream_bytes += tx_bytes;
            batch.push(stream[i]);
            ++i;
        }
        codec.encodeBatch(batch, enc);
        bus.transmitBatch(enc);
        codec.decodeBatch(enc, back);
        if (!(back == batch)) {
            for (std::size_t j = 0; j < batch.size(); ++j) {
                if (!bytesEqual(back.tx(j).data(), batch.tx(j).data(),
                                tx_bytes)) {
                    panic("codec " + codec.name() +
                          " failed to round-trip " +
                          batch.transaction(j).toHex() + " (batch index " +
                          std::to_string(j) + ")");
                }
            }
            panic("codec " + codec.name() +
                  " corrupted the batch geometry on round-trip");
        }
    }
}

} // namespace

ChannelEvalResult
evalCodecOnStream(Codec &codec, const std::vector<Transaction> &stream,
                  unsigned data_wires, double idle_fraction,
                  std::size_t batch_tx)
{
    codec.reset();
    Bus bus(data_wires, codec.metaWiresPerBeat(), idle_fraction);

    telemetry::ScopedSpan span("eval " + codec.name(), "channel");
    ChannelEvalResult result;
    result.codec = codec.name();
    std::size_t stream_bytes = 0;
    if (batch_tx == 0)
        evalScalar(codec, stream, bus, result, stream_bytes);
    else
        evalBatched(codec, stream, bus, batch_tx, result, stream_bytes);
    result.stats = bus.stats();
    if (telemetry::metricsEnabled())
        recordEvalStream(result, stream_bytes);
    return result;
}

double
mixedDataRatio(const std::vector<Transaction> &stream)
{
    if (stream.empty())
        return 0.0;
    std::size_t mixed = 0;
    for (const Transaction &tx : stream) {
        bool has_zero = false;
        bool has_nonzero = false;
        for (std::size_t off = 0; off < tx.size(); off += 4) {
            if (allZero(tx.data() + off, 4))
                has_zero = true;
            else
                has_nonzero = true;
        }
        if (has_zero && has_nonzero)
            ++mixed;
    }
    return static_cast<double>(mixed) / static_cast<double>(stream.size());
}

} // namespace bxt
