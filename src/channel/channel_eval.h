/**
 * @file
 * Convenience evaluation driver: run one codec over a stream of
 * transactions through a Bus and collect the activity statistics every
 * figure in the paper is built from. This is the core measurement loop of
 * the reproduction harness.
 */

#ifndef BXT_CHANNEL_CHANNEL_EVAL_H
#define BXT_CHANNEL_CHANNEL_EVAL_H

#include <string>
#include <vector>

#include "channel/bus.h"
#include "core/codec.h"

namespace bxt {

/** Result of evaluating one codec over one transaction stream. */
struct ChannelEvalResult
{
    std::string codec;          ///< Codec name.
    BusStats stats;             ///< Accumulated wire activity.
    std::uint64_t rawOnes = 0;  ///< `1` values of the *unencoded* stream.

    /** Ones (data+meta) normalized to the unencoded stream (1.0 = equal). */
    double normalizedOnes() const;

    /** Average ones per transmitted transaction. */
    double onesPerTransaction() const;
};

/**
 * Encode every transaction in @p stream with @p codec, transmit over a bus
 * of @p data_wires data wires, and verify decode(encode(x)) == x for each
 * transaction (the library treats a round-trip failure as a fatal internal
 * error — encoded storage must be lossless).
 *
 * @param idle_fraction Bus idle-gap fraction passed to the Bus model; the
 *        default matches the paper's 70 % bandwidth utilization.
 * @param batch_tx Transactions per codec/bus batch. 0 runs the scalar
 *        reference loop (encodeInto / transmit / decodeInto per
 *        transaction); any other value chunks the stream into TxBatches of
 *        at most this many same-size transactions and drives the batch hot
 *        path (encodeBatch / transmitBatch / decodeBatch). Both paths
 *        produce field-identical BusStats — the bus carries wire state and
 *        its idle accumulator across batch boundaries, and every batch
 *        kernel is bit-identical to the scalar codec.
 */
ChannelEvalResult evalCodecOnStream(Codec &codec,
                                    const std::vector<Transaction> &stream,
                                    unsigned data_wires = 32,
                                    double idle_fraction = 0.3,
                                    std::size_t batch_tx = 0);

/** Default transactions-per-batch used by the suite sweep workers. */
inline constexpr std::size_t kDefaultEvalBatchTx = 512;

/**
 * Fraction of transactions in @p stream that contain *mixed data*: at least
 * one all-zero 4-byte element and at least one non-zero element (the x-axis
 * of paper Figure 14).
 */
double mixedDataRatio(const std::vector<Transaction> &stream);

} // namespace bxt

#endif // BXT_CHANNEL_CHANNEL_EVAL_H
