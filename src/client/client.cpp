#include "client/client.h"

#include <cstdlib>

namespace bxt::client {

namespace {

/**
 * Split a reply's spec field into the announced concrete spec and the
 * switch epoch. Concrete-spec replies echo the request spec with no
 * ';' marker — announced = the whole field, epoch = 0.
 */
void
parseAnnouncement(const std::string &reply_spec, std::string &announced,
                  std::uint64_t &epoch)
{
    epoch = 0;
    const std::size_t semi = reply_spec.find(';');
    announced = reply_spec.substr(0, semi);
    if (semi == std::string::npos)
        return;
    const std::string tail = reply_spec.substr(semi + 1);
    if (tail.rfind("epoch=", 0) == 0)
        epoch = std::strtoull(tail.c_str() + 6, nullptr, 10);
}

} // namespace

Client
Client::connectTcp(const std::string &host, int port, std::string &err)
{
    Client client;
    client.fd_ = net::connectTcp(host, port, err);
    return client;
}

Client
Client::connectUnix(const std::string &path, std::string &err)
{
    Client client;
    client.fd_ = net::connectUnix(path, err);
    return client;
}

bool
Client::roundTrip(wire::Frame &request, wire::Frame &response,
                  std::string &err)
{
    last_error_ = wire::ErrorCode::None;
    if (!connected()) {
        err = "not connected";
        return false;
    }
    request.streamId = stream_id_;
    request.traceId = trace_id_;
    request.spanId = span_id_;
    request.traceSampled = trace_id_ != 0 && trace_sampled_;
    const std::vector<std::uint8_t> bytes = wire::serializeFrame(request);
    if (!net::writeAll(fd_.get(), bytes.data(), bytes.size(), err))
        return false;

    std::uint8_t buf[64 * 1024];
    for (;;) {
        wire::WireError parse_err;
        const wire::FrameParser::Status st =
            parser_.next(response, parse_err);
        if (st == wire::FrameParser::Status::Bad) {
            err = "response stream corrupt (" +
                  wire::errorCodeName(parse_err.code) +
                  "): " + parse_err.detail;
            return false;
        }
        if (st == wire::FrameParser::Status::Ready)
            break;
        const long n = net::readSome(fd_.get(), buf, sizeof(buf), err);
        if (n < 0)
            return false;
        if (n == 0) {
            err = "server closed the connection";
            return false;
        }
        parser_.feed(buf, static_cast<std::size_t>(n));
    }

    if (response.opcode == wire::Opcode::Error) {
        std::string message;
        wire::ErrorCode code = wire::ErrorCode::None;
        if (!wire::parseErrorFrame(response, code, message)) {
            err = "malformed error frame from server";
            return false;
        }
        last_error_ = code;
        err = wire::errorCodeName(code) + ": " + message;
        return false;
    }
    if (response.opcode != request.opcode) {
        err = "response opcode does not match request";
        return false;
    }
    return true;
}

bool
Client::ping(std::string &err)
{
    wire::Frame request;
    request.opcode = wire::Opcode::Ping;
    wire::Frame response;
    return roundTrip(request, response, err);
}

bool
Client::encode(const std::string &spec, std::uint32_t tx_bytes,
               std::uint32_t bus_bits, std::span<const std::uint8_t> raw,
               EncodeResult &out, std::string &err)
{
    if (tx_bytes == 0 || raw.size() % tx_bytes != 0) {
        err = "raw size " + std::to_string(raw.size()) +
              " is not a whole number of " + std::to_string(tx_bytes) +
              "-byte transactions";
        return false;
    }
    const std::uint64_t count = raw.size() / tx_bytes;
    if (count > wire::maxTxPerRequest) {
        err = "count " + std::to_string(count) + " exceeds " +
              std::to_string(wire::maxTxPerRequest) +
              " transactions per request";
        return false;
    }

    wire::Frame request;
    request.opcode = wire::Opcode::Encode;
    request.spec = spec;
    wire::BodyWriter body;
    body.u32(tx_bytes);
    body.u32(bus_bits);
    body.u64(count);
    body.bytes(raw.data(), raw.size());
    request.body = body.take();

    wire::Frame response;
    if (!roundTrip(request, response, err))
        return false;

    wire::BodyReader reader(response.body);
    if (!reader.u32(out.txBytes) || !reader.u32(out.busBits) ||
        !reader.u32(out.metaWiresPerBeat) ||
        !reader.u32(out.metaBytesPerTx) || !reader.u64(out.count) ||
        !reader.u64(out.inputOnes) || !reader.u64(out.payloadOnes) ||
        !reader.u64(out.metaOnes)) {
        err = "truncated encode response header";
        return false;
    }
    const std::size_t payload_bytes = out.count * out.txBytes;
    const std::size_t meta_bytes = out.count * out.metaBytesPerTx;
    if (reader.remaining() != payload_bytes + meta_bytes) {
        err = "encode response body size mismatch";
        return false;
    }
    out.payloads.resize(payload_bytes);
    out.meta.resize(meta_bytes);
    reader.bytes(out.payloads.data(), payload_bytes);
    reader.bytes(out.meta.data(), meta_bytes);
    parseAnnouncement(response.spec, out.announcedSpec, out.switchEpoch);
    return true;
}

bool
Client::decode(const std::string &spec, const EncodeResult &enc,
               DecodeResult &out, std::string &err)
{
    wire::Frame request;
    request.opcode = wire::Opcode::Decode;
    request.spec = spec;
    wire::BodyWriter body;
    body.u32(enc.txBytes);
    body.u32(enc.busBits);
    body.u32(enc.metaWiresPerBeat);
    body.u32(enc.metaBytesPerTx);
    body.u64(enc.count);
    body.bytes(enc.payloads.data(), enc.payloads.size());
    body.bytes(enc.meta.data(), enc.meta.size());
    request.body = body.take();

    wire::Frame response;
    if (!roundTrip(request, response, err))
        return false;

    wire::BodyReader reader(response.body);
    std::uint64_t count = 0;
    if (!reader.u32(out.txBytes) || !reader.u64(count)) {
        err = "truncated decode response header";
        return false;
    }
    if (reader.remaining() != count * out.txBytes) {
        err = "decode response body size mismatch";
        return false;
    }
    out.raw.resize(count * out.txBytes);
    reader.bytes(out.raw.data(), out.raw.size());
    parseAnnouncement(response.spec, out.announcedSpec, out.switchEpoch);
    return true;
}

bool
Client::stats(std::string &json, std::string &err)
{
    wire::Frame request;
    request.opcode = wire::Opcode::Stats;
    wire::Frame response;
    if (!roundTrip(request, response, err))
        return false;
    json.assign(response.body.begin(), response.body.end());
    return true;
}

bool
Client::snapshot(std::string &json, std::string &err)
{
    wire::Frame request;
    request.opcode = wire::Opcode::Snapshot;
    wire::Frame response;
    if (!roundTrip(request, response, err))
        return false;
    json.assign(response.body.begin(), response.body.end());
    return true;
}

} // namespace bxt::client
