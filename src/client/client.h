/**
 * @file
 * The bxtd client library: a blocking, single-connection wrapper over the
 * framed wire protocol (server/wire.h). One Client is one connection; it
 * is not thread-safe (open one per thread — the server treats each
 * connection as an independent codec stream anyway, which is what makes
 * stateful codecs such as `bd` roundtrip correctly).
 *
 * All calls return false with a human-readable @p err on failure. Typed
 * server errors (Error frames) additionally set lastErrorCode(), so tools
 * can distinguish `busy` (retry later) from `bad-spec` (give up).
 */

#ifndef BXT_CLIENT_CLIENT_H
#define BXT_CLIENT_CLIENT_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "server/net.h"
#include "server/wire.h"

namespace bxt::client {

/** One Encode response, decoded from the wire body. */
struct EncodeResult
{
    std::uint32_t txBytes = 0;
    std::uint32_t busBits = 0;
    std::uint32_t metaWiresPerBeat = 0;
    std::uint32_t metaBytesPerTx = 0;
    std::uint64_t count = 0;

    std::uint64_t inputOnes = 0;   ///< 1-bits across the raw inputs.
    std::uint64_t payloadOnes = 0; ///< 1-bits across encoded payloads.
    std::uint64_t metaOnes = 0;    ///< 1-values on metadata wires.

    std::vector<std::uint8_t> payloads; ///< count * txBytes bytes.
    std::vector<std::uint8_t> meta;     ///< count * metaBytesPerTx bytes.

    /**
     * The concrete spec the server announced on this reply. For a
     * concrete request spec this is that spec echoed back; for an
     * `adaptive[:...]` request it is the per-stream controller's current
     * choice (the codec that actually produced the payloads — decode
     * with this spec), with switchEpoch counting choice switches so far.
     */
    std::string announcedSpec;
    std::uint64_t switchEpoch = 0;

    /** Ones saved versus sending the inputs unencoded (may be negative). */
    std::int64_t onesDelta() const
    {
        return static_cast<std::int64_t>(inputOnes) -
               static_cast<std::int64_t>(payloadOnes + metaOnes);
    }
};

/** One Decode response. */
struct DecodeResult
{
    std::uint32_t txBytes = 0;
    std::vector<std::uint8_t> raw; ///< count * txBytes recovered bytes.

    /** Announced concrete spec + epoch (see EncodeResult). */
    std::string announcedSpec;
    std::uint64_t switchEpoch = 0;
};

/** A blocking connection to a bxtd server. */
class Client
{
  public:
    Client() = default;

    /** Connect over TCP (IPv4 literal host). Invalid client on failure. */
    static Client connectTcp(const std::string &host, int port,
                             std::string &err);

    /** Connect over a Unix-domain socket. */
    static Client connectUnix(const std::string &path, std::string &err);

    bool connected() const { return fd_.valid(); }

    /**
     * Tag every subsequent request with @p stream_id (a tenant/stream
     * identity; 0 reverts to untagged). The server echoes the tag and
     * keys its per-tenant telemetry (`bxt.server.stream.<id>.*`) by it.
     */
    void setStreamId(std::uint16_t stream_id) { stream_id_ = stream_id; }

    /** The stream tag applied to outgoing requests (0 = untagged). */
    std::uint16_t streamId() const { return stream_id_; }

    /**
     * Attach a trace context to every subsequent request: the frame goes
     * out as wire version 2 with @p trace_id / @p span_id and, when
     * @p sampled, the sampled flag that asks the server to record its
     * per-phase lifecycle spans. trace_id 0 reverts to untraced v1
     * frames. The server echoes the context on the response.
     */
    void setTrace(std::uint64_t trace_id, std::uint64_t span_id,
                  bool sampled)
    {
        trace_id_ = trace_id;
        span_id_ = span_id;
        trace_sampled_ = sampled;
    }

    /** Drop the trace context (subsequent requests are untraced v1). */
    void clearTrace() { setTrace(0, 0, false); }

    /** Liveness probe. */
    bool ping(std::string &err);

    /**
     * Encode @p raw (a whole number of @p tx_bytes-sized transactions, at
     * most wire::maxTxPerRequest of them) under @p spec.
     */
    bool encode(const std::string &spec, std::uint32_t tx_bytes,
                std::uint32_t bus_bits, std::span<const std::uint8_t> raw,
                EncodeResult &out, std::string &err);

    /** Decode a previous EncodeResult back to raw transactions. */
    bool decode(const std::string &spec, const EncodeResult &enc,
                DecodeResult &out, std::string &err);

    /** Fetch the server's telemetry snapshot JSON. */
    bool stats(std::string &json, std::string &err);

    /**
     * Fetch the live-introspection document (Snapshot opcode):
     * `{"uptime_us":…,"metrics":<schema-2 snapshot>}`. The server clock
     * lets pollers (bxt_top) turn counter deltas into rates.
     */
    bool snapshot(std::string &json, std::string &err);

    /** Typed code from the last Error frame (None when the last call
     *  succeeded or failed below the protocol layer). */
    wire::ErrorCode lastErrorCode() const { return last_error_; }

    /**
     * The underlying socket, for callers that need to pipeline raw
     * frames (bxt_loadgen's open loop). Mixing raw I/O with the
     * request/response methods on the same Client is undefined.
     */
    int rawFd() const { return fd_.get(); }

  private:
    /**
     * Tag @p request with the stream id, send it, and block for one
     * response frame. Error frames are surfaced as failures (false,
     * err = "<code-name>: <message>", lastErrorCode() set); @p response
     * is only filled on success.
     */
    bool roundTrip(wire::Frame &request, wire::Frame &response,
                   std::string &err);

    net::UniqueFd fd_;
    wire::FrameParser parser_;
    wire::ErrorCode last_error_ = wire::ErrorCode::None;
    std::uint16_t stream_id_ = 0;
    std::uint64_t trace_id_ = 0;
    std::uint64_t span_id_ = 0;
    bool trace_sampled_ = false;
};

} // namespace bxt::client

#endif // BXT_CLIENT_CLIENT_H
