/**
 * @file
 * Bit-manipulation utilities used throughout the encoder and channel models:
 * population counts over byte ranges, word load/store helpers, and
 * power-of-two predicates.
 */

#ifndef BXT_COMMON_BITOPS_H
#define BXT_COMMON_BITOPS_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace bxt {

/** Number of set bits in a 64-bit word. */
constexpr int
popcount64(std::uint64_t value)
{
    return std::popcount(value);
}

/** Number of set bits in a byte range. */
inline std::size_t
popcountBytes(std::span<const std::uint8_t> bytes)
{
    std::size_t count = 0;
    std::size_t i = 0;
    for (; i + 8 <= bytes.size(); i += 8) {
        std::uint64_t word;
        std::memcpy(&word, bytes.data() + i, 8);
        count += static_cast<std::size_t>(std::popcount(word));
    }
    for (; i < bytes.size(); ++i)
        count += static_cast<std::size_t>(std::popcount(bytes[i]));
    return count;
}

/** True iff @p value is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::size_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2; @p value must be nonzero. */
constexpr unsigned
log2Floor(std::size_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** Load a little-endian 64-bit word from @p src (unaligned safe). */
inline std::uint64_t
loadWord64(const std::uint8_t *src)
{
    std::uint64_t word;
    std::memcpy(&word, src, 8);
    return word;
}

/** Store a little-endian 64-bit word to @p dst (unaligned safe). */
inline void
storeWord64(std::uint8_t *dst, std::uint64_t word)
{
    std::memcpy(dst, &word, 8);
}

/** Load a little-endian 32-bit word from @p src (unaligned safe). */
inline std::uint32_t
loadWord32(const std::uint8_t *src)
{
    std::uint32_t word;
    std::memcpy(&word, src, 4);
    return word;
}

/** Store a little-endian 32-bit word to @p dst (unaligned safe). */
inline void
storeWord32(std::uint8_t *dst, std::uint32_t word)
{
    std::memcpy(dst, &word, 4);
}

/** XOR @p n bytes of @p src into @p dst (dst ^= src). */
inline void
xorBytes(std::uint8_t *dst, const std::uint8_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        storeWord64(dst + i, loadWord64(dst + i) ^ loadWord64(src + i));
    for (; i < n; ++i)
        dst[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
}

/** True iff all @p n bytes at @p src are zero. */
inline bool
allZero(const std::uint8_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        if (loadWord64(src + i) != 0)
            return false;
    }
    for (; i < n; ++i) {
        if (src[i] != 0)
            return false;
    }
    return true;
}

/** True iff the two @p n byte ranges are equal. */
inline bool
bytesEqual(const std::uint8_t *a, const std::uint8_t *b, std::size_t n)
{
    return std::memcmp(a, b, n) == 0;
}

/** Hamming distance (number of differing bits) between two byte ranges. */
inline std::size_t
hammingDistance(const std::uint8_t *a, const std::uint8_t *b, std::size_t n)
{
    std::size_t count = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        count += static_cast<std::size_t>(
            std::popcount(loadWord64(a + i) ^ loadWord64(b + i)));
    }
    for (; i < n; ++i) {
        count += static_cast<std::size_t>(
            std::popcount(static_cast<unsigned>(a[i] ^ b[i])));
    }
    return count;
}

} // namespace bxt

#endif // BXT_COMMON_BITOPS_H
