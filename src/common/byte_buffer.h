/**
 * @file
 * A byte buffer with explicit control over zero-initialization.
 *
 * `std::vector<std::uint8_t>::resize` value-initializes every new byte,
 * and after `clear()` that means re-zeroing the whole plane — which is
 * what made the cheap codecs (identity, base-only) slower per
 * transaction at batch 4096 than at batch 64: the batch path paid a
 * full zero-fill pass before the memcpy that overwrites it anyway.
 *
 * ByteBuffer keeps the vector's contract for resize() (new bytes are
 * zeroed, existing bytes preserved) but adds resizeForOverwrite(),
 * which leaves the bytes unspecified for callers about to overwrite
 * the whole range — the batch kernels' first act is always a plane
 * memcpy or a full rewrite. clear() is O(1) and keeps capacity.
 */

#ifndef BXT_COMMON_BYTE_BUFFER_H
#define BXT_COMMON_BYTE_BUFFER_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>

namespace bxt {

class ByteBuffer
{
  public:
    ByteBuffer() = default;

    ByteBuffer(const ByteBuffer &other) { assign(other); }

    ByteBuffer(ByteBuffer &&other) noexcept
        : bytes_(std::move(other.bytes_)), size_(other.size_),
          capacity_(other.capacity_)
    {
        other.size_ = 0;
        other.capacity_ = 0;
    }

    ByteBuffer &operator=(const ByteBuffer &other)
    {
        if (this != &other)
            assign(other);
        return *this;
    }

    ByteBuffer &operator=(ByteBuffer &&other) noexcept
    {
        bytes_ = std::move(other.bytes_);
        size_ = other.size_;
        capacity_ = other.capacity_;
        other.size_ = 0;
        other.capacity_ = 0;
        return *this;
    }

    std::uint8_t *data() { return bytes_.get(); }
    const std::uint8_t *data() const { return bytes_.get(); }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    bool empty() const { return size_ == 0; }

    /** Drop the contents; capacity is kept, no bytes are touched. */
    void clear() { size_ = 0; }

    /** Ensure capacity for @p n bytes (contents preserved). */
    void reserve(std::size_t n)
    {
        if (n > capacity_)
            grow(n, /*preserve=*/size_);
    }

    /**
     * Resize to @p n bytes with the std::vector contract: bytes at
     * [0, min(old, n)) are preserved and bytes at [old, n) are zeroed.
     */
    void resize(std::size_t n)
    {
        const std::size_t old = size_;
        resizeForOverwrite(n);
        if (n > old)
            std::memset(bytes_.get() + old, 0, n - old);
    }

    /**
     * Resize to @p n bytes leaving bytes at [old, n) unspecified; bytes
     * at [0, min(old, n)) are preserved. For callers that immediately
     * overwrite the whole range (plane memcpy / full rewrite).
     */
    void resizeForOverwrite(std::size_t n)
    {
        if (n > capacity_)
            grow(n, /*preserve=*/size_);
        size_ = n;
    }

    /** Append @p n bytes from @p src (amortized growth). */
    void append(const std::uint8_t *src, std::size_t n)
    {
        if (n == 0)
            return;
        const std::size_t old = size_;
        if (old + n > capacity_)
            grow(growCapacity(old + n), /*preserve=*/old);
        std::memcpy(bytes_.get() + old, src, n);
        size_ = old + n;
    }

    bool operator==(const ByteBuffer &other) const
    {
        return size_ == other.size_ &&
               (size_ == 0 ||
                std::memcmp(bytes_.get(), other.bytes_.get(), size_) == 0);
    }

  private:
    void assign(const ByteBuffer &other)
    {
        resizeForOverwrite(other.size_);
        if (other.size_ != 0)
            std::memcpy(bytes_.get(), other.bytes_.get(), other.size_);
    }

    std::size_t growCapacity(std::size_t need) const
    {
        const std::size_t doubled = capacity_ + capacity_;
        return doubled > need ? doubled : need;
    }

    void grow(std::size_t n, std::size_t preserve)
    {
        std::unique_ptr<std::uint8_t[]> next(new std::uint8_t[n]);
        if (preserve != 0)
            std::memcpy(next.get(), bytes_.get(), preserve);
        bytes_ = std::move(next);
        capacity_ = n;
    }

    std::unique_ptr<std::uint8_t[]> bytes_;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace bxt

#endif // BXT_COMMON_BYTE_BUFFER_H
