/**
 * @file
 * CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to integrity-
 * check frames on the bxtd wire protocol. Table-driven, one byte per step;
 * the table is built at compile time so there is no init-order dependency.
 */

#ifndef BXT_COMMON_CHECKSUM_H
#define BXT_COMMON_CHECKSUM_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace bxt {

namespace detail {

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
        table[i] = crc;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32Table = makeCrc32Table();

} // namespace detail

/**
 * Update a running CRC32 with @p bytes. Start from crc32Init, finish with
 * crc32Final; `crc32Final(crc32Update(crc32Init, data))` is the standard
 * zlib/PNG CRC-32 of `data`.
 */
constexpr std::uint32_t crc32Init = 0xffffffffu;

inline std::uint32_t
crc32Update(std::uint32_t crc, std::span<const std::uint8_t> bytes)
{
    for (const std::uint8_t byte : bytes)
        crc = (crc >> 8) ^ detail::crc32Table[(crc ^ byte) & 0xffu];
    return crc;
}

constexpr std::uint32_t
crc32Final(std::uint32_t crc)
{
    return crc ^ 0xffffffffu;
}

/** One-shot CRC32 of @p bytes. */
inline std::uint32_t
crc32(std::span<const std::uint8_t> bytes)
{
    return crc32Final(crc32Update(crc32Init, bytes));
}

} // namespace bxt

#endif // BXT_COMMON_CHECKSUM_H
