#include "common/cli.h"

#include <cstdio>

namespace bxt {

const char *const versionString = "1.0.0";

Cli::Cli(std::string prog, std::string summary)
    : prog_(std::move(prog)), summary_(std::move(summary))
{
}

void
Cli::add(const std::string &flag, const std::string &value_name,
         const std::string &help,
         std::function<void(const std::string &)> handler)
{
    options_.push_back({flag, value_name, help, std::move(handler)});
}

void
Cli::addFlag(const std::string &flag, const std::string &help,
             std::function<void()> handler)
{
    options_.push_back({flag, "", help,
                        [h = std::move(handler)](const std::string &) {
                            h();
                        }});
}

void
Cli::addPositional(const std::string &name, const std::string &help,
                   std::function<void(const std::string &)> handler)
{
    positional_name_ = name;
    positional_help_ = help;
    positional_handler_ = std::move(handler);
}

std::string
Cli::usage() const
{
    std::string text = "usage: " + prog_ + " [options]";
    if (positional_handler_)
        text += " [" + positional_name_ + "...]";
    text += "\n" + summary_ + "\n\noptions:\n";
    for (const Option &option : options_) {
        std::string left = "  " + option.flag;
        if (!option.valueName.empty())
            left += " " + option.valueName;
        if (left.size() < 22)
            left.append(22 - left.size(), ' ');
        text += left + " " + option.help + "\n";
    }
    text += "  --help, -h           show this help and exit\n";
    text += "  --version            print version and exit\n";
    if (positional_handler_ && !positional_help_.empty())
        text += "\n" + positional_name_ + ": " + positional_help_ + "\n";
    return text;
}

bool
Cli::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            exit_code_ = 0;
            return false;
        }
        if (arg == "--version") {
            std::printf("%s (bxt) %s\n", prog_.c_str(), versionString);
            exit_code_ = 0;
            return false;
        }
        if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
            // Both `--flag VALUE` and `--flag=VALUE` spellings are
            // accepted; the name is everything before the first '='.
            const std::size_t eq = arg.find('=');
            const std::string name =
                eq == std::string::npos ? arg : arg.substr(0, eq);
            const bool has_inline_value = eq != std::string::npos;

            const Option *match = nullptr;
            for (const Option &option : options_) {
                if (option.flag == name) {
                    match = &option;
                    break;
                }
            }
            if (match == nullptr) {
                std::fprintf(stderr, "%s: unknown option '%s'\n\n%s",
                             prog_.c_str(), name.c_str(), usage().c_str());
                exit_code_ = 2;
                return false;
            }
            std::string value;
            if (!match->valueName.empty()) {
                if (has_inline_value) {
                    value = arg.substr(eq + 1);
                } else if (i + 1 < argc) {
                    value = argv[++i];
                } else {
                    std::fprintf(stderr, "%s: option '%s' needs a value\n",
                                 prog_.c_str(), name.c_str());
                    exit_code_ = 2;
                    return false;
                }
            } else if (has_inline_value) {
                std::fprintf(stderr,
                             "%s: option '%s' does not take a value\n",
                             prog_.c_str(), name.c_str());
                exit_code_ = 2;
                return false;
            }
            match->handler(value);
            continue;
        }
        if (positional_handler_) {
            positional_handler_(arg);
            continue;
        }
        std::fprintf(stderr, "%s: unexpected argument '%s'\n\n%s",
                     prog_.c_str(), arg.c_str(), usage().c_str());
        exit_code_ = 2;
        return false;
    }
    return true;
}

} // namespace bxt
