/**
 * @file
 * Tiny shared command-line parser for the repo's tools and benches
 * (`bxt_fuzz`, `gen_golden`, `bxt_report`, the fig benches). Provides
 * `--help`/`--version` uniformly and rejects unknown flags with a
 * non-zero exit code instead of silently ignoring them.
 */

#ifndef BXT_COMMON_CLI_H
#define BXT_COMMON_CLI_H

#include <functional>
#include <string>
#include <vector>

namespace bxt {

/** Library version string reported by every tool's `--version`. */
extern const char *const versionString;

/**
 * Declarative flag parser. Register options, then call parse(); the
 * parser handles `--help`/`-h` and `--version` itself and reports
 * unknown flags or missing values on stderr.
 *
 * Typical use:
 *
 *   Cli cli("bxt_report", "pretty-print and diff metrics snapshots");
 *   cli.add("--diff", "B", "diff against snapshot B",
 *           [&](const std::string &v) { diff_path = v; });
 *   if (!cli.parse(argc, argv))
 *       return cli.exitCode();
 */
class Cli
{
  public:
    Cli(std::string prog, std::string summary);

    /**
     * Option taking one value (`--flag VALUE` or `--flag=VALUE`).
     * Repeatable by caller.
     */
    void add(const std::string &flag, const std::string &value_name,
             const std::string &help,
             std::function<void(const std::string &)> handler);

    /** Boolean option (`--flag`). */
    void addFlag(const std::string &flag, const std::string &help,
                 std::function<void()> handler);

    /** Accept bare (non-flag) arguments; rejected unless registered. */
    void addPositional(const std::string &name, const std::string &help,
                       std::function<void(const std::string &)> handler);

    /**
     * Parse @p argv. Returns true when the program should continue;
     * false after `--help`/`--version` (exitCode() == 0) or on a parse
     * error (exitCode() == 2, usage printed to stderr).
     */
    bool parse(int argc, char **argv);

    /** Process exit status to use when parse() returned false. */
    int exitCode() const { return exit_code_; }

    /** The generated usage/help text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string flag;
        std::string valueName; ///< Empty for boolean flags.
        std::string help;
        std::function<void(const std::string &)> handler;
    };

    std::string prog_;
    std::string summary_;
    std::vector<Option> options_;
    std::string positional_name_;
    std::string positional_help_;
    std::function<void(const std::string &)> positional_handler_;
    int exit_code_ = 0;
};

} // namespace bxt

#endif // BXT_COMMON_CLI_H
