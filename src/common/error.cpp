#include "common/error.h"

#include <cstdio>
#include <cstdlib>

namespace bxt {

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

namespace detail {

void
assertFail(const char *expr, const char *file, int line)
{
    std::fprintf(stderr, "assertion failed: %s at %s:%d\n", expr, file, line);
    std::abort();
}

} // namespace detail
} // namespace bxt
