/**
 * @file
 * Error-handling helpers: fatal() for user/configuration errors and
 * BXT_ASSERT for internal invariants (gem5 fatal/panic split).
 */

#ifndef BXT_COMMON_ERROR_H
#define BXT_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace bxt {

/**
 * Typed failure for mismatched transaction / encoding geometry: a codec
 * fed a transaction size its configuration cannot handle, an Encoded
 * whose metadata does not match its payload geometry, or a batch push
 * of a differently sized transaction. Recoverable — the bxtd service
 * maps it to a Malformed error frame instead of dying — unlike
 * BXT_ASSERT, which is reserved for internal invariant violations.
 */
class CodecSizeError : public std::runtime_error
{
  public:
    explicit CodecSizeError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/**
 * Terminate the program with an error message. Use for conditions caused by
 * invalid user input or configuration (the gem5 `fatal()` convention).
 * Exits with status 1; never returns.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Abort with a message. Use for internal invariant violations (the gem5
 * `panic()` convention). Calls std::abort(); never returns.
 */
[[noreturn]] void panic(const std::string &message);

namespace detail {
[[noreturn]] void assertFail(const char *expr, const char *file, int line);
} // namespace detail

} // namespace bxt

/**
 * Invariant check that stays enabled in release builds. The simulator relies
 * on these checks to guarantee that encoded data round-trips; compiling them
 * out would silently convert encoding bugs into data corruption.
 */
#define BXT_ASSERT(expr)                                                      \
    do {                                                                      \
        if (!(expr))                                                          \
            ::bxt::detail::assertFail(#expr, __FILE__, __LINE__);             \
    } while (false)

#endif // BXT_COMMON_ERROR_H
