#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace bxt {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    BXT_ASSERT(hi > lo);
    BXT_ASSERT(buckets > 0);
}

std::size_t
Histogram::bucketIndex(double sample) const
{
    const double span = hi_ - lo_;
    double pos = (sample - lo_) / span * static_cast<double>(counts_.size());
    auto index = static_cast<std::ptrdiff_t>(pos);
    index = std::clamp<std::ptrdiff_t>(
        index, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    return static_cast<std::size_t>(index);
}

void
Histogram::add(double sample)
{
    ++counts_[bucketIndex(sample)];
    ++total_;
}

std::size_t
Histogram::bucketCount(std::size_t index) const
{
    BXT_ASSERT(index < counts_.size());
    return counts_[index];
}

double
Histogram::bucketLo(std::size_t index) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(index);
}

double
Histogram::bucketHi(std::size_t index) const
{
    return bucketLo(index + 1);
}

double
Histogram::bucketFraction(std::size_t index) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(bucketCount(index)) /
           static_cast<double>(total_);
}

std::string
Histogram::render(int bar_width) const
{
    std::size_t peak = 1;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);

    std::string out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        char line[128];
        std::snprintf(line, sizeof(line), "[%8.1f, %8.1f) %6zu ",
                      bucketLo(i), bucketHi(i), counts_[i]);
        out += line;
        const auto bars = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            bar_width);
        out.append(bars, '#');
        out += '\n';
    }
    return out;
}

} // namespace bxt
