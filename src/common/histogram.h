/**
 * @file
 * Fixed-range bucketed histogram, used for the application-distribution
 * plots (paper Figure 13) and the mixed-data-ratio buckets (Figure 14).
 */

#ifndef BXT_COMMON_HISTOGRAM_H
#define BXT_COMMON_HISTOGRAM_H

#include <cstddef>
#include <string>
#include <vector>

namespace bxt {

/**
 * Histogram over [lo, hi) with uniformly sized buckets. Samples outside the
 * range are clamped into the first/last bucket, mirroring how the paper
 * plots out-of-range applications at the plot edges.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the tracked range.
     * @param hi Upper bound of the tracked range; must exceed @p lo.
     * @param buckets Number of buckets; must be nonzero.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Add a sample (clamped into range). */
    void add(double sample);

    /**
     * Bucket a sample falls into (clamped into range). Exposed so the
     * telemetry histograms can reuse the exact edge/clamp math while
     * keeping their own atomic counts.
     */
    std::size_t bucketIndex(double sample) const;

    /** Count in bucket @p index. */
    std::size_t bucketCount(std::size_t index) const;

    /** Total samples added. */
    std::size_t total() const { return total_; }

    /** Number of buckets. */
    std::size_t buckets() const { return counts_.size(); }

    /** Inclusive lower edge of bucket @p index. */
    double bucketLo(std::size_t index) const;

    /** Exclusive upper edge of bucket @p index. */
    double bucketHi(std::size_t index) const;

    /** Fraction of samples in bucket @p index (0 if empty). */
    double bucketFraction(std::size_t index) const;

    /** Render as an ASCII bar chart, one bucket per line. */
    std::string render(int bar_width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace bxt

#endif // BXT_COMMON_HISTOGRAM_H
