#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace bxt {

JsonWriter::JsonWriter(bool pretty) : pretty_(pretty) {}

std::string
JsonWriter::str() const
{
    BXT_ASSERT(needs_comma_.empty());
    return out_;
}

void
JsonWriter::separator()
{
    if (needs_comma_.empty())
        return;
    if (needs_comma_.back())
        out_ += ',';
    needs_comma_.back() = true;
    if (pretty_) {
        out_ += '\n';
        out_.append(needs_comma_.size() * 2, ' ');
    }
}

void
JsonWriter::writeKey(const std::string &key)
{
    separator();
    out_ += '"';
    out_ += escape(key);
    out_ += pretty_ ? "\": " : "\":";
}

void
JsonWriter::beginObject()
{
    separator();
    out_ += '{';
    needs_comma_.push_back(false);
}

void
JsonWriter::beginObject(const std::string &key)
{
    writeKey(key);
    out_ += '{';
    needs_comma_.push_back(false);
}

void
JsonWriter::endObject()
{
    BXT_ASSERT(!needs_comma_.empty());
    const bool had_members = needs_comma_.back();
    needs_comma_.pop_back();
    if (pretty_ && had_members) {
        out_ += '\n';
        out_.append(needs_comma_.size() * 2, ' ');
    }
    out_ += '}';
}

void
JsonWriter::beginArray()
{
    separator();
    out_ += '[';
    needs_comma_.push_back(false);
}

void
JsonWriter::beginArray(const std::string &key)
{
    writeKey(key);
    out_ += '[';
    needs_comma_.push_back(false);
}

void
JsonWriter::endArray()
{
    BXT_ASSERT(!needs_comma_.empty());
    const bool had_members = needs_comma_.back();
    needs_comma_.pop_back();
    if (pretty_ && had_members) {
        out_ += '\n';
        out_.append(needs_comma_.size() * 2, ' ');
    }
    out_ += ']';
}

void
JsonWriter::kv(const std::string &key, const std::string &value)
{
    writeKey(key);
    out_ += '"';
    out_ += escape(value);
    out_ += '"';
}

void
JsonWriter::kv(const std::string &key, const char *value)
{
    kv(key, std::string(value));
}

void
JsonWriter::kv(const std::string &key, double value)
{
    writeKey(key);
    out_ += formatNumber(value);
}

void
JsonWriter::kv(const std::string &key, std::uint64_t value)
{
    writeKey(key);
    out_ += std::to_string(value);
}

void
JsonWriter::kv(const std::string &key, std::int64_t value)
{
    writeKey(key);
    out_ += std::to_string(value);
}

void
JsonWriter::kv(const std::string &key, int value)
{
    kv(key, static_cast<std::int64_t>(value));
}

void
JsonWriter::kv(const std::string &key, bool value)
{
    writeKey(key);
    out_ += value ? "true" : "false";
}

void
JsonWriter::kvRaw(const std::string &key, const std::string &raw_json)
{
    writeKey(key);
    out_ += raw_json;
}

void
JsonWriter::value(const std::string &text)
{
    separator();
    out_ += '"';
    out_ += escape(text);
    out_ += '"';
}

void
JsonWriter::value(double number)
{
    separator();
    out_ += formatNumber(number);
}

void
JsonWriter::value(std::uint64_t number)
{
    separator();
    out_ += std::to_string(number);
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        case '\r': escaped += "\\r"; break;
        case '\t': escaped += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                escaped += buf;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

std::string
JsonWriter::formatNumber(double number)
{
    if (!std::isfinite(number))
        return "0"; // JSON has no Inf/NaN; clamp rather than corrupt.
    // Integral values print without an exponent or trailing ".0" so
    // counters embedded as doubles stay readable and diffable.
    if (number == std::floor(number) && std::fabs(number) < 1.0e15) {
        return std::to_string(static_cast<long long>(number));
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    return buf;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : object) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

namespace {

/** Recursive-descent JSON parser over a string (no streaming needed). */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    bool fail(const std::string &message)
    {
        if (error_ != nullptr) {
            *error_ = message + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool literal(const char *word, JsonValue &out, JsonValue::Kind kind,
                 bool boolean)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        out.kind = kind;
        out.boolean = boolean;
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
        case '{': return parseObject(out);
        case '[': return parseArray(out);
        case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        case 't': return literal("true", out, JsonValue::Kind::Bool, true);
        case 'f': return literal("false", out, JsonValue::Kind::Bool, false);
        case 'n': return literal("null", out, JsonValue::Kind::Null, false);
        default: return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipSpace();
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.object.emplace_back(std::move(key), std::move(member));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            JsonValue element;
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Snapshot/trace strings are ASCII; encode BMP code
                // points as UTF-8 without surrogate-pair handling.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                digits = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' ||
                       c == '+') {
                ++pos_;
            } else {
                break;
            }
        }
        if (!digits)
            return fail("invalid number");
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(text_.c_str() + start, nullptr);
        return true;
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    Parser parser(text, error);
    out = JsonValue{};
    return parser.parse(out);
}

} // namespace bxt
