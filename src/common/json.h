/**
 * @file
 * Minimal JSON support shared by the telemetry exporters, the unified
 * bench `--json` output, and `tools/bxt_report`: a streaming writer with
 * automatic comma/indent handling and a small recursive-descent parser
 * producing a navigable value tree. No third-party dependency — the
 * documents involved (metrics snapshots, bench results, Chrome trace
 * files) are small and machine-generated.
 */

#ifndef BXT_COMMON_JSON_H
#define BXT_COMMON_JSON_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bxt {

/**
 * Streaming JSON writer. Containers are opened/closed explicitly; the
 * writer tracks nesting and inserts commas, newlines, and two-space
 * indentation. Keys are only legal inside objects, bare values only
 * inside arrays (or as the single root value).
 */
class JsonWriter
{
  public:
    /** @param pretty Emit newlines + 2-space indent (else one line). */
    explicit JsonWriter(bool pretty = true);

    /** Finish and return the document; the writer must be balanced. */
    std::string str() const;

    void beginObject();
    void beginObject(const std::string &key);
    void endObject();
    void beginArray();
    void beginArray(const std::string &key);
    void endArray();

    /** Key/value pairs (object context). */
    void kv(const std::string &key, const std::string &value);
    void kv(const std::string &key, const char *value);
    void kv(const std::string &key, double value);
    void kv(const std::string &key, std::uint64_t value);
    void kv(const std::string &key, std::int64_t value);
    void kv(const std::string &key, int value);
    void kv(const std::string &key, bool value);
    /** Splice @p raw_json verbatim as @p key's value (must be valid). */
    void kvRaw(const std::string &key, const std::string &raw_json);

    /** Bare values (array context / root). */
    void value(const std::string &text);
    void value(double number);
    void value(std::uint64_t number);

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &text);

    /** Shortest round-trippable rendering of a double (17 sig. digits). */
    static std::string formatNumber(double number);

  private:
    void separator();
    void writeKey(const std::string &key);

    std::string out_;
    std::vector<bool> needs_comma_; ///< One entry per open container.
    bool pretty_;
};

/**
 * Parsed JSON value. A deliberately plain tagged struct (no variant
 * gymnastics): exactly one of the payload members is meaningful per kind.
 * Object member order is preserved.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup; nullptr when not an object or key absent. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse @p text into @p out. Returns false (and fills @p error with a
 * position-annotated message when non-null) on malformed input. Trailing
 * non-whitespace after the root value is an error.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

} // namespace bxt

#endif // BXT_COMMON_JSON_H
