#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace bxt {

namespace {

/**
 * Pool instruments (DESIGN.md §9). Registered lazily on first enabled
 * dispatch; the references are cached for the process lifetime so the
 * hot path never takes the registry lock.
 */
/**
 * Process-wide pool instruments, pinned to the default registry: the
 * lazy singleton binds on the first dispatch, which must not capture a
 * caller's thread-scoped registry.
 */
struct PoolMetrics
{
    telemetry::Registry &reg = telemetry::defaultRegistry();
    telemetry::Counter &jobs = reg.counter("bxt.pool.jobs");
    telemetry::Counter &indices = reg.counter("bxt.pool.indices");
    telemetry::Counter &chunksClaimed =
        reg.counter("bxt.pool.chunks_claimed");
    telemetry::Gauge &threads = reg.gauge("bxt.pool.threads");
    telemetry::Gauge &queueDepth = reg.gauge("bxt.pool.queue_depth");
    /** Per-chunk body latency, microseconds. */
    telemetry::Histo &taskUs = reg.histogram("bxt.pool.task_us");
    /** Whole-dispatch latency, microseconds. */
    telemetry::Histo &jobUs = reg.histogram("bxt.pool.job_us");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics *metrics = new PoolMetrics();
    return *metrics;
}

} // namespace

unsigned
parseThreadCount(const char *text)
{
    if (text == nullptr || *text == '\0')
        return 0;
    unsigned long value = 0;
    for (const char *p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return 0;
        value = value * 10 + static_cast<unsigned long>(*p - '0');
        if (value > maxThreads)
            return 0;
    }
    return static_cast<unsigned>(value);
}

unsigned
defaultThreadCount()
{
    if (const unsigned env = parseThreadCount(std::getenv("BXT_THREADS")))
        return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * One parallelFor dispatch. Indices are handed out in contiguous chunks
 * from `next`; a worker is "active" between grabbing the job pointer and
 * leaving drain(), and run() only returns once no worker is active and
 * every index has been handed out, so the stack-allocated Job can never
 * be touched after run() returns.
 */
struct ThreadPool::Job
{
    std::atomic<std::size_t> next{0};
    std::size_t count = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)> *body = nullptr;
    std::atomic<unsigned> active{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;
};

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    threads = std::min(threads, maxThreads);
    workers_.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::drain(Job &job)
{
    // One span per worker per job; chunk latencies feed the histogram.
    telemetry::ScopedSpan span("pool.drain", "pool");
    const bool metrics_on = telemetry::metricsEnabled();
    for (;;) {
        const std::size_t begin =
            job.next.fetch_add(job.chunk, std::memory_order_relaxed);
        if (begin >= job.count)
            break;
        if (job.failed.load(std::memory_order_relaxed))
            continue; // Keep handing out indices so the loop terminates.
        const std::size_t end = std::min(begin + job.chunk, job.count);
        const std::uint64_t chunk_start =
            metrics_on ? telemetry::nowMicros() : 0;
        for (std::size_t i = begin; i < end; ++i) {
            try {
                (*job.body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.error_mutex);
                if (!job.error)
                    job.error = std::current_exception();
                job.failed.store(true, std::memory_order_relaxed);
                break;
            }
        }
        if (metrics_on) {
            PoolMetrics &pm = poolMetrics();
            pm.chunksClaimed.add(1);
            pm.taskUs.add(static_cast<double>(telemetry::nowMicros() -
                                              chunk_start));
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        Job *job = job_;
        if (job == nullptr)
            continue;
        job->active.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        drain(*job);
        lock.lock();
        if (job->active.fetch_sub(1, std::memory_order_relaxed) == 1)
            done_.notify_all();
    }
}

void
ThreadPool::run(std::size_t count,
                const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;

    telemetry::ScopedSpan run_span("pool.run", "pool");
    const bool metrics_on = telemetry::metricsEnabled();
    const std::uint64_t run_start =
        metrics_on ? telemetry::nowMicros() : 0;
    if (metrics_on) {
        PoolMetrics &pm = poolMetrics();
        pm.jobs.add(1);
        pm.indices.add(count);
        pm.threads.set(threadCount());
        // Pending work at dispatch — the closest analogue of a queue
        // depth for a chunked index pool.
        pm.queueDepth.set(static_cast<double>(count));
    }

    if (workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i)
            body(i); // Serial pool: propagate exceptions directly.
        if (metrics_on) {
            poolMetrics().jobUs.add(static_cast<double>(
                telemetry::nowMicros() - run_start));
        }
        return;
    }

    Job job;
    job.count = count;
    job.body = &body;
    // Chunks small enough to balance, large enough to amortize the
    // atomic fetch; determinism is unaffected (results go to slot i).
    job.chunk = std::max<std::size_t>(1, count / (threadCount() * 4u));

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++generation_;
    }
    wake_.notify_all();

    drain(job); // The calling thread is a worker too.

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return job.active.load(std::memory_order_relaxed) == 0;
        });
        job_ = nullptr;
    }

    if (metrics_on) {
        poolMetrics().jobUs.add(
            static_cast<double>(telemetry::nowMicros() - run_start));
    }

    if (job.error)
        std::rethrow_exception(job.error);
}

ThreadPool &
globalThreadPool()
{
    static ThreadPool pool;
    return pool;
}

void
parallelFor(std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    globalThreadPool().run(count, body);
}

} // namespace bxt
