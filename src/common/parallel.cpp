#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace bxt {

unsigned
parseThreadCount(const char *text)
{
    if (text == nullptr || *text == '\0')
        return 0;
    unsigned long value = 0;
    for (const char *p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return 0;
        value = value * 10 + static_cast<unsigned long>(*p - '0');
        if (value > maxThreads)
            return 0;
    }
    return static_cast<unsigned>(value);
}

unsigned
defaultThreadCount()
{
    if (const unsigned env = parseThreadCount(std::getenv("BXT_THREADS")))
        return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * One parallelFor dispatch. Indices are handed out in contiguous chunks
 * from `next`; a worker is "active" between grabbing the job pointer and
 * leaving drain(), and run() only returns once no worker is active and
 * every index has been handed out, so the stack-allocated Job can never
 * be touched after run() returns.
 */
struct ThreadPool::Job
{
    std::atomic<std::size_t> next{0};
    std::size_t count = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)> *body = nullptr;
    std::atomic<unsigned> active{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;
};

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    threads = std::min(threads, maxThreads);
    workers_.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::drain(Job &job)
{
    for (;;) {
        const std::size_t begin =
            job.next.fetch_add(job.chunk, std::memory_order_relaxed);
        if (begin >= job.count)
            break;
        if (job.failed.load(std::memory_order_relaxed))
            continue; // Keep handing out indices so the loop terminates.
        const std::size_t end = std::min(begin + job.chunk, job.count);
        for (std::size_t i = begin; i < end; ++i) {
            try {
                (*job.body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(job.error_mutex);
                if (!job.error)
                    job.error = std::current_exception();
                job.failed.store(true, std::memory_order_relaxed);
                break;
            }
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        Job *job = job_;
        if (job == nullptr)
            continue;
        job->active.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        drain(*job);
        lock.lock();
        if (job->active.fetch_sub(1, std::memory_order_relaxed) == 1)
            done_.notify_all();
    }
}

void
ThreadPool::run(std::size_t count,
                const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < count; ++i)
            body(i); // Serial pool: propagate exceptions directly.
        return;
    }

    Job job;
    job.count = count;
    job.body = &body;
    // Chunks small enough to balance, large enough to amortize the
    // atomic fetch; determinism is unaffected (results go to slot i).
    job.chunk = std::max<std::size_t>(1, count / (threadCount() * 4u));

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++generation_;
    }
    wake_.notify_all();

    drain(job); // The calling thread is a worker too.

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return job.active.load(std::memory_order_relaxed) == 0;
        });
        job_ = nullptr;
    }

    if (job.error)
        std::rethrow_exception(job.error);
}

ThreadPool &
globalThreadPool()
{
    static ThreadPool pool;
    return pool;
}

void
parallelFor(std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    globalThreadPool().run(count, body);
}

} // namespace bxt
