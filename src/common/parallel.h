/**
 * @file
 * Minimal data-parallel execution support for the evaluation engine: a
 * fixed-size, work-stealing-free ThreadPool plus a chunked parallelFor.
 *
 * Design constraints (bench/suite_eval.cpp is the primary customer):
 *  - Determinism: parallelFor only distributes *indices*; callers write
 *    results into per-index slots, so output is bit-identical regardless
 *    of thread count or scheduling order.
 *  - No work stealing, no task graph: one job at a time, indices handed
 *    out from a single atomic counter in contiguous chunks. This is all
 *    the suite sweep needs and keeps the concurrency surface auditable.
 *  - The calling thread participates in the loop, so a pool of N threads
 *    applies N+1 workers and `ThreadPool(0)` degrades to a serial loop.
 */

#ifndef BXT_COMMON_PARALLEL_H
#define BXT_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bxt {

/**
 * Number of worker threads to use by default: the `BXT_THREADS`
 * environment variable when set to a positive integer (clamped to
 * maxThreads), otherwise std::thread::hardware_concurrency(), with a
 * floor of 1.
 */
unsigned defaultThreadCount();

/**
 * Parse a BXT_THREADS-style override. Returns 0 when @p text is null,
 * empty, non-numeric, zero, or out of range — callers fall back to the
 * hardware count. Exposed for testing.
 */
unsigned parseThreadCount(const char *text);

/** Upper bound on accepted thread counts (sanity clamp for overrides). */
constexpr unsigned maxThreads = 256;

/**
 * A fixed pool of worker threads executing one parallelFor at a time.
 *
 * The pool is intentionally minimal: run() is the only dispatch
 * primitive, and it blocks the caller until every index has been
 * processed. Exceptions thrown by the body are captured; the first one
 * is rethrown on the calling thread after the loop drains.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total worker count this pool represents, including
     *        the calling thread: the pool spawns `threads - 1` helper
     *        threads. 0 means defaultThreadCount(). A count of 1 spawns
     *        nothing and run() executes inline.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all helper threads. Must not be called during run(). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total worker count (helper threads + the calling thread). */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Invoke `body(i)` for every i in [0, count), distributing indices
     * across the pool in contiguous chunks. Blocks until all indices
     * completed. The body must be safe to call concurrently for distinct
     * indices; result ordering is the caller's job (write by index).
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &body);

  private:
    struct Job;

    void workerLoop();
    static void drain(Job &job);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;   ///< Workers wait for a job here.
    std::condition_variable done_;   ///< run() waits for completion here.
    Job *job_ = nullptr;             ///< Currently dispatched job.
    std::uint64_t generation_ = 0;   ///< Bumped per job; wakes workers.
    bool stop_ = false;
};

/**
 * Run `body(i)` for every i in [0, count) on a process-wide shared pool
 * sized by defaultThreadCount() (so `BXT_THREADS=1` forces every
 * parallelFor in the process to run serially). The shared pool is
 * created on first use and lives for the process lifetime.
 *
 * Not reentrant: do not call parallelFor from inside a parallelFor body.
 */
void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)> &body);

/** The process-wide pool used by the free parallelFor(). */
ThreadPool &globalThreadPool();

} // namespace bxt

#endif // BXT_COMMON_PARALLEL_H
