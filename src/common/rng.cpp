#include "common/rng.h"

#include <cmath>

namespace bxt {
namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    // Box-Muller; rejects u1 == 0 to keep log() finite.
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    const double two_pi = 6.283185307179586;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

Rng
Rng::split()
{
    return Rng(next64());
}

} // namespace bxt
