/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Uses xoshiro256** — fast, high quality, and fully reproducible across
 * platforms (unlike std::mt19937 distributions, whose outputs are not
 * portable across standard-library implementations). All workload
 * generators derive their data streams from this generator so that every
 * experiment in the paper-reproduction harness is bit-reproducible.
 */

#ifndef BXT_COMMON_RNG_H
#define BXT_COMMON_RNG_H

#include <cstdint>

namespace bxt {

/**
 * xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
 *
 * Seeded through splitmix64 so that any 64-bit seed (including 0) yields a
 * well-mixed state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next 64 uniformly distributed bits. */
    std::uint64_t next64();

    /** Next 32 uniformly distributed bits. */
    std::uint32_t next32() { return static_cast<std::uint32_t>(next64() >> 32); }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p) { return nextDouble() < p; }

    /** Standard normal draw (Box-Muller; consumes two uniforms). */
    double nextGaussian();

    /**
     * Derive an independent child generator. Used to give each workload
     * app its own stream from a suite-level master seed.
     */
    Rng split();

  private:
    std::uint64_t state_[4];
};

} // namespace bxt

#endif // BXT_COMMON_RNG_H
