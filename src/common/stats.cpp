#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace bxt {

void
RunningStat::add(double sample)
{
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    BXT_ASSERT(!values.empty());
    double log_sum = 0.0;
    for (double v : values) {
        BXT_ASSERT(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    p = std::clamp(p, 0.0, 100.0);
    const double rank =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const auto below = static_cast<std::size_t>(rank);
    if (below + 1 >= values.size())
        return values.back();
    const double frac = rank - static_cast<double>(below);
    return values[below] + frac * (values[below + 1] - values[below]);
}

std::string
formatPercent(double fraction, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, fraction * 100.0);
    return std::string(buffer);
}

} // namespace bxt
