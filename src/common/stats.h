/**
 * @file
 * Small statistics helpers used by the evaluation harness: running
 * mean/min/max/stddev accumulation, arithmetic and geometric means over
 * vectors, and percentage formatting.
 */

#ifndef BXT_COMMON_STATS_H
#define BXT_COMMON_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace bxt {

/**
 * Incrementally accumulates count/mean/variance/min/max of a sample stream
 * (Welford's algorithm, numerically stable).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Number of samples added so far. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (0 if fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample (0 if empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample (0 if empty). */
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of @p values (0 if empty). */
double mean(const std::vector<double> &values);

/** Geometric mean of @p values; all entries must be positive. */
double geomean(const std::vector<double> &values);

/** Median (interpolated for even counts; 0 if empty). */
double median(std::vector<double> values);

/**
 * Linearly interpolated @p p-th percentile of @p values, p in [0, 100]
 * (clamped); 0 if empty. percentile(v, 50) == median(v). Used by the
 * bxt_loadgen latency report.
 */
double percentile(std::vector<double> values, double p);

/** Format @p fraction (e.g. 0.353) as a percent string like "35.3". */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace bxt

#endif // BXT_COMMON_STATS_H
