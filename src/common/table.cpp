#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/error.h"

namespace bxt {
namespace {

bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    for (char c : cell) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != 'e' && c != 'x') {
            return false;
        }
    }
    return true;
}

} // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    BXT_ASSERT(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    BXT_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::cell(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return std::string(buffer);
}

std::string
Table::cell(std::size_t value)
{
    return std::to_string(value);
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::string &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::size_t pad = widths[c] - row[c].size();
            out += "| ";
            if (looksNumeric(row[c])) {
                out.append(pad, ' ');
                out += row[c];
            } else {
                out += row[c];
                out.append(pad, ' ');
            }
            out += ' ';
        }
        out += "|\n";
    };

    std::string out;
    emit_row(headers_, out);
    for (std::size_t c = 0; c < widths.size(); ++c) {
        out += "|-";
        out.append(widths[c], '-');
        out += '-';
    }
    out += "|\n";
    for (const auto &row : rows_)
        emit_row(row, out);
    return out;
}

std::string
banner(const std::string &title)
{
    std::string out = "\n== ";
    out += title;
    out += " ==\n";
    return out;
}

} // namespace bxt
