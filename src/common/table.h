/**
 * @file
 * ASCII table rendering for the benchmark harness. Every bench binary that
 * regenerates a paper table/figure prints its rows through this printer so
 * output stays uniform and diffable.
 */

#ifndef BXT_COMMON_TABLE_H
#define BXT_COMMON_TABLE_H

#include <cstddef>
#include <string>
#include <vector>

namespace bxt {

/**
 * Column-aligned ASCII table. Columns are sized to the widest cell;
 * numeric-looking cells are right-aligned, text cells left-aligned.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p decimals digits. */
    static std::string cell(double value, int decimals = 1);

    /** Convenience: format an integer cell. */
    static std::string cell(std::size_t value);

    /** Render the table including a header separator line. */
    std::string render() const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner ("== title ==") used between bench outputs. */
std::string banner(const std::string &title);

} // namespace bxt

#endif // BXT_COMMON_TABLE_H
