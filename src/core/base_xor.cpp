#include "core/base_xor.h"

#include <cstring>

#include "common/bitops.h"
#include "common/error.h"
#include "core/simd/simd.h"
#include "core/zdr.h"

namespace bxt {

namespace {

/** ZDR constant C as a little-endian word: zdrConstantByte in byte n-1. */
constexpr std::uint32_t zdrConst32 = 0x40000000u;
constexpr std::uint64_t zdrConst64 = 0x4000000000000000ull;

/** Word-wide ZDR encode of one 4-byte lane. */
inline std::uint32_t
zdrEncode32(std::uint32_t in, std::uint32_t base)
{
    const std::uint32_t x = in ^ base;
    if (in == 0)
        return zdrConst32;
    return x == zdrConst32 ? base : x;
}

/** Word-wide ZDR decode of one 4-byte lane. */
inline std::uint32_t
zdrDecode32(std::uint32_t enc, std::uint32_t base)
{
    if (enc == zdrConst32)
        return 0;
    return enc == base ? (base ^ zdrConst32) : (enc ^ base);
}

/** Word-wide ZDR encode of one 8-byte lane. */
inline std::uint64_t
zdrEncode64(std::uint64_t in, std::uint64_t base)
{
    const std::uint64_t x = in ^ base;
    if (in == 0)
        return zdrConst64;
    return x == zdrConst64 ? base : x;
}

/** Word-wide ZDR decode of one 8-byte lane. */
inline std::uint64_t
zdrDecode64(std::uint64_t enc, std::uint64_t base)
{
    if (enc == zdrConst64)
        return 0;
    return enc == base ? (base ^ zdrConst64) : (enc ^ base);
}

} // namespace

BaseXorCodec::BaseXorCodec(std::size_t base_size, bool zdr,
                           bool adjacent_base)
    : base_size_(base_size), zdr_(zdr), adjacent_base_(adjacent_base)
{
    BXT_ASSERT(isPowerOfTwo(base_size));
    BXT_ASSERT(base_size >= 2 && base_size <= 16);
}

std::string
BaseXorCodec::name() const
{
    std::string n = "xor" + std::to_string(base_size_);
    if (zdr_)
        n += "+zdr";
    if (!adjacent_base_)
        n += "(fixed)";
    return n;
}

void
BaseXorCodec::requireTxSize(std::size_t tx_bytes) const
{
    if (tx_bytes % base_size_ != 0 || tx_bytes <= base_size_) {
        throw CodecSizeError(
            name() + ": " + std::to_string(tx_bytes) +
            "-byte transaction does not split into more than one " +
            std::to_string(base_size_) + "-byte element");
    }
}

Encoded
BaseXorCodec::encode(const Transaction &tx)
{
    Encoded enc;
    encodeInto(tx, enc);
    return enc;
}

Transaction
BaseXorCodec::decode(const Encoded &enc)
{
    Transaction tx(enc.payload.size());
    decodeInto(enc, tx);
    return tx;
}

void
BaseXorCodec::encodeInto(const Transaction &tx, Encoded &enc)
{
    requireTxSize(tx.size());
    enc.payload = Transaction(tx.size());
    enc.meta.clear();
    enc.metaWiresPerBeat = 0;

    const std::uint8_t *in = tx.data();
    std::uint8_t *out = enc.payload.data();
    const std::size_t elements = tx.size() / base_size_;

    // Base element passes through unchanged.
    std::memcpy(out, in, base_size_);

    for (std::size_t e = 1; e < elements; ++e) {
        const std::uint8_t *element = in + e * base_size_;
        const std::uint8_t *base =
            adjacent_base_ ? in + (e - 1) * base_size_ : in;
        std::uint8_t *dst = out + e * base_size_;
        if (zdr_)
            zdrLaneEncode(dst, element, base, base_size_);
        else
            xorLaneEncode(dst, element, base, base_size_);
    }
}

void
BaseXorCodec::decodeInto(const Encoded &enc, Transaction &tx)
{
    const Transaction &payload = enc.payload;
    requireTxSize(payload.size());
    tx = Transaction(payload.size());

    const std::uint8_t *in = payload.data();
    std::uint8_t *out = tx.data();
    const std::size_t elements = payload.size() / base_size_;

    std::memcpy(out, in, base_size_);

    // Decode left to right: each element's base is the already-decoded
    // original value of its neighbour (or element 0 in fixed-base mode).
    for (std::size_t e = 1; e < elements; ++e) {
        const std::uint8_t *encoded = in + e * base_size_;
        const std::uint8_t *base =
            adjacent_base_ ? out + (e - 1) * base_size_ : out;
        std::uint8_t *dst = out + e * base_size_;
        if (zdr_)
            zdrLaneDecode(dst, encoded, base, base_size_);
        else
            xorLaneEncode(dst, encoded, base, base_size_);
    }
}

void
BaseXorCodec::encodeBatchKernel(const TxBatch &in, EncodedBatch &out)
{
    requireTxSize(in.txBytes());
    out.configure(in.txBytes(), 0, 0);
    out.resizeForOverwrite(in.size());
    if (in.empty())
        return;

    const std::size_t tx_bytes = in.txBytes();
    const std::size_t elements = tx_bytes / base_size_;
    const std::uint8_t *src = in.data();
    std::uint8_t *dst = out.payloadData();
    const simd::KernelTable &ops = simd::ops();

    // Adjacent-base encode is elementwise out[e] = f(in[e], in[e-1]), so
    // the entire plane vectorizes as one shifted range op: the output at
    // byte offset base_size onward is f(input there, input one element
    // earlier). Lanes whose "previous element" crosses a transaction
    // boundary compute garbage and are fixed up below by the per-
    // transaction base-element passthrough copy, which together with the
    // range op covers every output byte (no seeding plane memcpy).
    if (adjacent_base_ && (!zdr_ || base_size_ <= 8)) {
        const std::size_t shifted = in.planeBytes() - base_size_;
        if (!zdr_)
            ops.xorRange(dst + base_size_, src + base_size_, src, shifted);
        else if (base_size_ == 2)
            ops.zdrEncode16(dst + base_size_, src + base_size_, src,
                            shifted);
        else if (base_size_ == 4)
            ops.zdrEncode32(dst + base_size_, src + base_size_, src,
                            shifted);
        else
            ops.zdrEncode64(dst + base_size_, src + base_size_, src,
                            shifted);
        // Fixed-width word copies: base_size_ is 2/4/8 here, and a
        // variable-length memcpy per transaction would cost a libc call
        // for every 32-byte row.
        if (base_size_ == 2) {
            for (std::size_t i = 0; i < in.size(); ++i)
                std::memcpy(dst + i * tx_bytes, src + i * tx_bytes, 2);
        } else if (base_size_ == 4) {
            for (std::size_t i = 0; i < in.size(); ++i)
                std::memcpy(dst + i * tx_bytes, src + i * tx_bytes, 4);
        } else if (base_size_ == 8) {
            for (std::size_t i = 0; i < in.size(); ++i)
                std::memcpy(dst + i * tx_bytes, src + i * tx_bytes, 8);
        } else {
            for (std::size_t i = 0; i < in.size(); ++i)
                std::memcpy(dst + i * tx_bytes, src + i * tx_bytes, 16);
        }
        return;
    }

    // Fixed-base (and 16-byte-lane ZDR) forms keep the word path: the
    // base repeats per transaction, which the flat range primitives do
    // not express.
    std::memcpy(dst, src, in.planeBytes());
    for (std::size_t i = 0; i < in.size();
         ++i, src += tx_bytes, dst += tx_bytes) {
        for (std::size_t e = 1; e < elements; ++e) {
            const std::size_t off = e * base_size_;
            const std::size_t base_off =
                adjacent_base_ ? off - base_size_ : 0;
            if (!zdr_) {
                xorBytes(dst + off, src + base_off, base_size_);
            } else if (base_size_ == 4) {
                storeWord32(dst + off,
                            zdrEncode32(loadWord32(src + off),
                                        loadWord32(src + base_off)));
            } else if (base_size_ == 8) {
                storeWord64(dst + off,
                            zdrEncode64(loadWord64(src + off),
                                        loadWord64(src + base_off)));
            } else {
                zdrLaneEncode(dst + off, src + off, src + base_off,
                              base_size_);
            }
        }
    }
}

void
BaseXorCodec::decodeBatchKernel(const EncodedBatch &in, TxBatch &out)
{
    requireTxSize(in.txBytes());
    out.reset(in.txBytes());
    out.resizeForOverwrite(in.size());
    if (in.size() == 0)
        return;

    const std::size_t tx_bytes = in.txBytes();
    const std::size_t elements = tx_bytes / base_size_;
    std::memcpy(out.data(), in.payloadData(), in.payloadBytes());

    const std::uint8_t *src = in.payloadData();
    std::uint8_t *dst = out.data();
    for (std::size_t i = 0; i < in.size();
         ++i, src += tx_bytes, dst += tx_bytes) {
        // Left to right: bases come from the already-decoded output.
        // This serial dependency (element e needs the decoded e-1) is
        // why decode stays on the word path at every dispatch level.
        for (std::size_t e = 1; e < elements; ++e) {
            const std::size_t off = e * base_size_;
            const std::size_t base_off =
                adjacent_base_ ? off - base_size_ : 0;
            if (!zdr_) {
                xorBytes(dst + off, dst + base_off, base_size_);
            } else if (base_size_ == 4) {
                storeWord32(dst + off,
                            zdrDecode32(loadWord32(src + off),
                                        loadWord32(dst + base_off)));
            } else if (base_size_ == 8) {
                storeWord64(dst + off,
                            zdrDecode64(loadWord64(src + off),
                                        loadWord64(dst + base_off)));
            } else {
                zdrLaneDecode(dst + off, src + off, dst + base_off,
                              base_size_);
            }
        }
    }
}

} // namespace bxt
