#include "core/base_xor.h"

#include "common/bitops.h"
#include "common/error.h"
#include "core/zdr.h"

namespace bxt {

BaseXorCodec::BaseXorCodec(std::size_t base_size, bool zdr,
                           bool adjacent_base)
    : base_size_(base_size), zdr_(zdr), adjacent_base_(adjacent_base)
{
    BXT_ASSERT(isPowerOfTwo(base_size));
    BXT_ASSERT(base_size >= 2 && base_size <= 16);
}

std::string
BaseXorCodec::name() const
{
    std::string n = "xor" + std::to_string(base_size_);
    if (zdr_)
        n += "+zdr";
    if (!adjacent_base_)
        n += "(fixed)";
    return n;
}

Encoded
BaseXorCodec::encode(const Transaction &tx)
{
    Encoded enc;
    encodeInto(tx, enc);
    return enc;
}

Transaction
BaseXorCodec::decode(const Encoded &enc)
{
    Transaction tx(enc.payload.size());
    decodeInto(enc, tx);
    return tx;
}

void
BaseXorCodec::encodeInto(const Transaction &tx, Encoded &enc)
{
    BXT_ASSERT(tx.size() % base_size_ == 0 && tx.size() > base_size_);
    enc.payload = Transaction(tx.size());
    enc.meta.clear();
    enc.metaWiresPerBeat = 0;

    const std::uint8_t *in = tx.data();
    std::uint8_t *out = enc.payload.data();
    const std::size_t elements = tx.size() / base_size_;

    // Base element passes through unchanged.
    std::memcpy(out, in, base_size_);

    for (std::size_t e = 1; e < elements; ++e) {
        const std::uint8_t *element = in + e * base_size_;
        const std::uint8_t *base =
            adjacent_base_ ? in + (e - 1) * base_size_ : in;
        std::uint8_t *dst = out + e * base_size_;
        if (zdr_)
            zdrLaneEncode(dst, element, base, base_size_);
        else
            xorLaneEncode(dst, element, base, base_size_);
    }
}

void
BaseXorCodec::decodeInto(const Encoded &enc, Transaction &tx)
{
    const Transaction &payload = enc.payload;
    BXT_ASSERT(payload.size() % base_size_ == 0);
    tx = Transaction(payload.size());

    const std::uint8_t *in = payload.data();
    std::uint8_t *out = tx.data();
    const std::size_t elements = payload.size() / base_size_;

    std::memcpy(out, in, base_size_);

    // Decode left to right: each element's base is the already-decoded
    // original value of its neighbour (or element 0 in fixed-base mode).
    for (std::size_t e = 1; e < elements; ++e) {
        const std::uint8_t *encoded = in + e * base_size_;
        const std::uint8_t *base =
            adjacent_base_ ? out + (e - 1) * base_size_ : out;
        std::uint8_t *dst = out + e * base_size_;
        if (zdr_)
            zdrLaneDecode(dst, encoded, base, base_size_);
        else
            xorLaneEncode(dst, encoded, base, base_size_);
    }
}

} // namespace bxt
