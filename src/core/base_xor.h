/**
 * @file
 * N-byte Base+XOR Transfer (paper §III-B, Figure 4) with optional Zero Data
 * Remapping (§IV-A) and an optional fixed-base variant (the ablation the
 * paper discusses in §V-B: adjacent bases track similarity better than a
 * single fixed base).
 */

#ifndef BXT_CORE_BASE_XOR_H
#define BXT_CORE_BASE_XOR_H

#include <cstddef>

#include "core/codec.h"

namespace bxt {

/**
 * Splits each transaction into base-size elements; element 0 (the base
 * element) passes through unchanged, every other element is sent as the XOR
 * with its left neighbour's original value (adjacent-base mode, the paper's
 * proposal) or with element 0 (fixed-base mode, the lower-latency
 * alternative discussed in §V-B).
 *
 * With ZDR enabled the XOR of each element is replaced by the bijective
 * three-way mapping of core/zdr.h at element granularity.
 */
class BaseXorCodec : public Codec
{
  public:
    /**
     * @param base_size Element size in bytes (2, 4, 8, or 16); must divide
     *        the transaction size.
     * @param zdr Apply Zero Data Remapping to each XORed element.
     * @param adjacent_base XOR against the left neighbour (true, default)
     *        or always against element 0 (false).
     */
    explicit BaseXorCodec(std::size_t base_size, bool zdr = true,
                          bool adjacent_base = true);

    std::string name() const override;
    Encoded encode(const Transaction &tx) override;
    Transaction decode(const Encoded &enc) override;
    void encodeInto(const Transaction &tx, Encoded &out) override;
    void decodeInto(const Encoded &enc, Transaction &out) override;

    /** Element size in bytes. */
    std::size_t baseSize() const { return base_size_; }

    /** Whether Zero Data Remapping is applied. */
    bool zdrEnabled() const { return zdr_; }

  protected:
    void encodeBatchKernel(const TxBatch &in, EncodedBatch &out) override;
    void decodeBatchKernel(const EncodedBatch &in, TxBatch &out) override;

  private:
    /** Throw CodecSizeError unless @p tx_bytes fits this configuration. */
    void requireTxSize(std::size_t tx_bytes) const;

    std::size_t base_size_;
    bool zdr_;
    bool adjacent_base_;
};

} // namespace bxt

#endif // BXT_CORE_BASE_XOR_H
