#include "core/batch.h"

#include <cstring>

#include "common/bitops.h"
#include "common/error.h"

namespace bxt {

namespace {

void
requireValidTxBytes(std::size_t tx_bytes)
{
    if (!isPowerOfTwo(tx_bytes) || tx_bytes < Transaction::minBytes ||
        tx_bytes > Transaction::maxBytes) {
        throw CodecSizeError("batch geometry: " + std::to_string(tx_bytes) +
                             " is not a valid transaction size");
    }
}

} // namespace

TxBatch::TxBatch(std::size_t tx_bytes, std::size_t capacity)
{
    reset(tx_bytes);
    reserve(capacity);
}

void
TxBatch::reset(std::size_t tx_bytes)
{
    requireValidTxBytes(tx_bytes);
    tx_bytes_ = tx_bytes;
    count_ = 0;
    plane_.clear();
}

void
TxBatch::resize(std::size_t count)
{
    requireValidTxBytes(tx_bytes_);
    count_ = count;
    plane_.resize(count * tx_bytes_);
}

void
TxBatch::resizeForOverwrite(std::size_t count)
{
    requireValidTxBytes(tx_bytes_);
    count_ = count;
    plane_.resizeForOverwrite(count * tx_bytes_);
}

void
TxBatch::push(const Transaction &tx)
{
    if (tx.size() != tx_bytes_) {
        throw CodecSizeError(
            "TxBatch::push: " + std::to_string(tx.size()) +
            "-byte transaction into a " + std::to_string(tx_bytes_) +
            "-byte batch");
    }
    plane_.append(tx.data(), tx_bytes_);
    ++count_;
}

void
TxBatch::append(const std::uint8_t *data, std::size_t count)
{
    requireValidTxBytes(tx_bytes_);
    plane_.append(data, count * tx_bytes_);
    count_ += count;
}

std::uint64_t
TxBatch::ones() const
{
    return popcountBytes({plane_.data(), plane_.size()});
}

void
EncodedBatch::configure(std::size_t tx_bytes, unsigned meta_wires_per_beat,
                        std::size_t meta_bits_per_tx)
{
    requireValidTxBytes(tx_bytes);
    if (meta_wires_per_beat == 0 && meta_bits_per_tx != 0) {
        throw CodecSizeError(
            "EncodedBatch::configure: metadata bits without wires");
    }
    tx_bytes_ = tx_bytes;
    meta_wires_per_beat_ = meta_wires_per_beat;
    meta_bits_per_tx_ = meta_bits_per_tx;
    count_ = 0;
    payload_.clear();
    meta_.clear();
}

void
EncodedBatch::resize(std::size_t count)
{
    requireValidTxBytes(tx_bytes_);
    count_ = count;
    payload_.resize(count * tx_bytes_);
    meta_.resize(count * meta_bits_per_tx_);
}

void
EncodedBatch::resizeForOverwrite(std::size_t count)
{
    requireValidTxBytes(tx_bytes_);
    count_ = count;
    payload_.resizeForOverwrite(count * tx_bytes_);
    meta_.resizeForOverwrite(count * meta_bits_per_tx_);
}

std::uint64_t
EncodedBatch::payloadOnes() const
{
    return popcountBytes({payload_.data(), payload_.size()});
}

std::uint64_t
EncodedBatch::metaOnes() const
{
    // Metadata bytes are 0/1, so the popcount is the sum.
    return popcountBytes({meta_.data(), meta_.size()});
}

} // namespace bxt
