/**
 * @file
 * Flat batch containers for the batch-first codec core.
 *
 * TxBatch holds N same-size transactions in one contiguous byte plane;
 * EncodedBatch pairs a payload plane with a shared metadata plane (one
 * byte per metadata bit, beat-major per transaction, transactions
 * concatenated). The batch kernels (Codec::encodeBatch / decodeBatch,
 * Bus::transmitBatch) stream whole planes instead of paying per-
 * transaction virtual dispatch and buffer bookkeeping — the scalar
 * Transaction/Encoded API remains the reference implementation.
 */

#ifndef BXT_CORE_BATCH_H
#define BXT_CORE_BATCH_H

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/byte_buffer.h"
#include "core/transaction.h"

namespace bxt {

/**
 * Cache-block tile size for plane sweeps: encode + transmit + decode of
 * one tile (input plane, payload plane, and metadata all together) stays
 * resident in L1/L2 instead of streaming three full batch-sized planes
 * through the cache between stages. evalBatched and the bench round-trip
 * loops cap their chunks at batchTileTx(); BusStats accumulation is
 * batch-split invariant (tests/test_batch.cpp), so tiling never changes
 * a counter.
 */
constexpr std::size_t kBatchTileBytes = 16 * 1024;

/** Transactions per cache tile for @p tx_bytes (at least 1). */
constexpr std::size_t
batchTileTx(std::size_t tx_bytes)
{
    if (tx_bytes == 0)
        return 1;
    const std::size_t tiles = kBatchTileBytes / tx_bytes;
    return tiles == 0 ? 1 : tiles;
}

/**
 * One contiguous plane of N transactions, all of the same byte size.
 * Transaction i occupies bytes [i * txBytes, (i + 1) * txBytes).
 *
 * The container enforces the geometry: every push / assign of a
 * differently sized transaction throws CodecSizeError (see codec.h)
 * rather than silently resizing, so size bugs surface at the boundary
 * where the wrong-sized data enters the batch.
 */
class TxBatch
{
  public:
    /** An empty batch with no geometry (txBytes() == 0). */
    TxBatch() = default;

    /** An empty batch of @p tx_bytes transactions (a valid Transaction
     *  size), reserving room for @p capacity of them. */
    explicit TxBatch(std::size_t tx_bytes, std::size_t capacity = 0);

    /** Reset the geometry to @p tx_bytes and drop all transactions. */
    void reset(std::size_t tx_bytes);

    /** Drop all transactions; geometry and capacity are kept. */
    void clear() { count_ = 0; plane_.clear(); }

    /** Reserve plane capacity for @p count transactions. */
    void reserve(std::size_t count) { plane_.reserve(count * tx_bytes_); }

    /** Grow/shrink to exactly @p count transactions (new ones zeroed). */
    void resize(std::size_t count);

    /**
     * Grow/shrink to exactly @p count transactions without zeroing new
     * plane bytes — for kernels that overwrite the whole plane before
     * reading it (every batch kernel's first act is a plane memcpy or a
     * full rewrite). resize()'s zero-fill made the cheap codecs slower
     * per transaction at batch 4096 than at 64.
     */
    void resizeForOverwrite(std::size_t count);

    /** Append one transaction; throws CodecSizeError on a size mismatch. */
    void push(const Transaction &tx);

    /** Append @p count raw transactions from a tightly packed plane. */
    void append(const std::uint8_t *data, std::size_t count);

    /** Transactions in the batch. */
    std::size_t size() const { return count_; }

    /** True when the batch holds no transactions. */
    bool empty() const { return count_ == 0; }

    /** Bytes per transaction (0 until a geometry is set). */
    std::size_t txBytes() const { return tx_bytes_; }

    /** Total plane bytes (size() * txBytes()). */
    std::size_t planeBytes() const { return plane_.size(); }

    /** Raw plane pointer (transaction 0, byte 0). */
    std::uint8_t *data() { return plane_.data(); }
    const std::uint8_t *data() const { return plane_.data(); }

    /** Mutable view of transaction @p i's bytes. */
    std::span<std::uint8_t> tx(std::size_t i)
    {
        return {plane_.data() + i * tx_bytes_, tx_bytes_};
    }

    /** Read-only view of transaction @p i's bytes. */
    std::span<const std::uint8_t> tx(std::size_t i) const
    {
        return {plane_.data() + i * tx_bytes_, tx_bytes_};
    }

    /** Copy transaction @p i out into a Transaction. */
    Transaction transaction(std::size_t i) const
    {
        return Transaction(tx(i));
    }

    /** Total `1` bits across the plane. */
    std::uint64_t ones() const;

    /** Geometry and plane bytes both equal. */
    bool operator==(const TxBatch &other) const = default;

  private:
    std::size_t tx_bytes_ = 0;
    std::size_t count_ = 0;
    ByteBuffer plane_;
};

/**
 * The batch analogue of Encoded: a payload plane (same layout as
 * TxBatch) plus one shared metadata plane holding every transaction's
 * beat-major metadata bits back to back — bit (b * metaWiresPerBeat + w)
 * of transaction i is metaPlane[i * metaBitsPerTx + b * wires + w],
 * stored one byte per bit exactly like Encoded::meta.
 */
class EncodedBatch
{
  public:
    EncodedBatch() = default;

    /**
     * Set the geometry: @p tx_bytes payload bytes and @p meta_bits_per_tx
     * metadata bits per transaction on @p meta_wires_per_beat wires.
     * Drops any previous contents.
     */
    void configure(std::size_t tx_bytes, unsigned meta_wires_per_beat,
                   std::size_t meta_bits_per_tx);

    /** Grow/shrink to exactly @p count transactions (new bytes zeroed). */
    void resize(std::size_t count);

    /** resize() without zeroing new bytes (see TxBatch equivalent). */
    void resizeForOverwrite(std::size_t count);

    /** Transactions in the batch. */
    std::size_t size() const { return count_; }

    /** Payload bytes per transaction. */
    std::size_t txBytes() const { return tx_bytes_; }

    /** Metadata bits per transaction (beats * metaWiresPerBeat). */
    std::size_t metaBitsPerTx() const { return meta_bits_per_tx_; }

    /** Dedicated metadata wires per beat (0 for metadata-free codecs). */
    unsigned metaWiresPerBeat() const { return meta_wires_per_beat_; }

    /** Raw payload plane pointer. */
    std::uint8_t *payloadData() { return payload_.data(); }
    const std::uint8_t *payloadData() const { return payload_.data(); }

    /** Raw metadata plane pointer (one byte per bit, 0/1 values). */
    std::uint8_t *metaData() { return meta_.data(); }
    const std::uint8_t *metaData() const { return meta_.data(); }

    /** Mutable view of transaction @p i's payload bytes. */
    std::span<std::uint8_t> payload(std::size_t i)
    {
        return {payload_.data() + i * tx_bytes_, tx_bytes_};
    }

    /** Read-only view of transaction @p i's payload bytes. */
    std::span<const std::uint8_t> payload(std::size_t i) const
    {
        return {payload_.data() + i * tx_bytes_, tx_bytes_};
    }

    /** Mutable view of transaction @p i's metadata bits. */
    std::span<std::uint8_t> meta(std::size_t i)
    {
        return {meta_.data() + i * meta_bits_per_tx_, meta_bits_per_tx_};
    }

    /** Read-only view of transaction @p i's metadata bits. */
    std::span<const std::uint8_t> meta(std::size_t i) const
    {
        return {meta_.data() + i * meta_bits_per_tx_, meta_bits_per_tx_};
    }

    /** Total payload plane bytes. */
    std::size_t payloadBytes() const { return payload_.size(); }

    /** `1` bits across the payload plane. */
    std::uint64_t payloadOnes() const;

    /** `1` values across the metadata plane. */
    std::uint64_t metaOnes() const;

    /** Geometry and both planes equal. */
    bool operator==(const EncodedBatch &other) const = default;

  private:
    std::size_t tx_bytes_ = 0;
    std::size_t count_ = 0;
    std::size_t meta_bits_per_tx_ = 0;
    unsigned meta_wires_per_beat_ = 0;
    ByteBuffer payload_;
    ByteBuffer meta_;
};

} // namespace bxt

#endif // BXT_CORE_BATCH_H
