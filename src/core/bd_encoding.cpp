#include "core/bd_encoding.h"

#include <bit>

#include "common/bitops.h"
#include "common/error.h"

namespace bxt {

BdEncodingCodec::BdEncodingCodec(std::size_t entries, unsigned threshold,
                                 std::size_t bus_bytes)
    : entries_(entries), threshold_(threshold), bus_bytes_(bus_bytes)
{
    BXT_ASSERT(isPowerOfTwo(entries) && entries <= 64);
    BXT_ASSERT(threshold >= 1 && threshold <= 64);
    BXT_ASSERT(bus_bytes == 4 || bus_bytes == 8);
    reset();
}

void
BdEncodingCodec::reset()
{
    encode_repo_ = Repository{};
    decode_repo_ = Repository{};
    encode_repo_.words.assign(entries_, 0);
    decode_repo_.words.assign(entries_, 0);
}

void
BdEncodingCodec::Repository::insert(std::uint64_t word, std::size_t capacity)
{
    words[next] = word;
    next = (next + 1) % capacity;
    if (valid < capacity)
        ++valid;
}

std::size_t
BdEncodingCodec::findBestMatch(const Repository &repo,
                               std::uint64_t word) const
{
    std::size_t best = npos;
    unsigned best_distance = threshold_;
    for (std::size_t i = 0; i < repo.valid; ++i) {
        const auto distance = static_cast<unsigned>(
            std::popcount(repo.words[i] ^ word));
        if (distance < best_distance) {
            best_distance = distance;
            best = i;
        }
    }
    return best;
}

unsigned
BdEncodingCodec::metaWiresPerBeat() const
{
    // 8 metadata bits per 8-byte word = 1 metadata wire per byte lane.
    return static_cast<unsigned>(bus_bytes_);
}

Encoded
BdEncodingCodec::encode(const Transaction &tx)
{
    BXT_ASSERT(tx.size() % 8 == 0);
    Encoded enc;
    enc.payload = Transaction(tx.size());

    const std::size_t words = tx.size() / 8;
    // Metadata layout: each 8-byte word owns 8 metadata bits spread over
    // the beats it occupies — one metadata wire per byte lane, so the flat
    // index w*8+bit is already beat-major for any bus width.
    enc.metaWiresPerBeat = metaWiresPerBeat();
    enc.meta.assign(words * 8, 0);

    for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t word = tx.word64(w * 8);
        const std::size_t match = findBestMatch(encode_repo_, word);
        std::uint8_t meta = 0;
        std::uint64_t sent = word;
        if (match != npos) {
            sent = word ^ encode_repo_.words[match];
            meta = static_cast<std::uint8_t>(0x80u | match);
        }
        enc.payload.setWord64(w * 8, sent);
        for (unsigned bit = 0; bit < 8; ++bit)
            enc.meta[w * 8 + bit] = (meta >> bit) & 1u;
        encode_repo_.insert(word, entries_);
    }
    return enc;
}

Transaction
BdEncodingCodec::decode(const Encoded &enc)
{
    const Transaction &payload = enc.payload;
    BXT_ASSERT(payload.size() % 8 == 0);
    const std::size_t words = payload.size() / 8;
    BXT_ASSERT(enc.meta.size() == words * 8);

    Transaction tx(payload.size());
    for (std::size_t w = 0; w < words; ++w) {
        std::uint8_t meta = 0;
        for (unsigned bit = 0; bit < 8; ++bit)
            meta |= static_cast<std::uint8_t>(enc.meta[w * 8 + bit] << bit);

        std::uint64_t word = payload.word64(w * 8);
        if (meta & 0x80u) {
            const std::size_t index = meta & 0x3fu;
            BXT_ASSERT(index < decode_repo_.valid);
            word ^= decode_repo_.words[index];
        }
        tx.setWord64(w * 8, word);
        decode_repo_.insert(word, entries_);
    }
    return tx;
}

} // namespace bxt
