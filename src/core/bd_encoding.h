/**
 * @file
 * Bitwise Difference Encoding (BD-Encoding), the ISCA 2016 comparison
 * baseline (Seol et al., paper §VI-D).
 *
 * Both ends of the channel keep a repository of the 64 most recently
 * transferred 8-byte words. Each outgoing word is compared against the
 * repository; if the most similar entry differs in fewer than a threshold
 * number of bits (12 in the paper's discussion), the word is sent as the
 * bitwise difference from that entry plus metadata carrying a valid bit and
 * the 6-bit entry index — 8 metadata bits per 8 bytes of data, i.e. four
 * extra wires on a 32-bit bus. The decoder performs the mirrored lookup
 * and both sides insert the *decoded* word, keeping the repositories
 * coherent with no extra synchronization traffic.
 */

#ifndef BXT_CORE_BD_ENCODING_H
#define BXT_CORE_BD_ENCODING_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/codec.h"

namespace bxt {

/** The BD-Encoding channel codec (stateful: call in transmission order). */
class BdEncodingCodec : public Codec
{
  public:
    /**
     * @param entries Repository size (power of two, <= 64 so the index
     *        fits the 6-bit metadata field; default 64 as in the paper).
     * @param threshold Similarity threshold: encode as a difference only
     *        when the best entry differs in strictly fewer bits
     *        (default 12, the paper's example value).
     * @param bus_bytes Bus width in bytes per beat (default 4 = the 32-bit
     *        GDDR5X channel); determines the per-beat metadata wire count
     *        (one metadata wire per byte lane).
     */
    explicit BdEncodingCodec(std::size_t entries = 64, unsigned threshold = 12,
                             std::size_t bus_bytes = 4);

    std::string name() const override { return "bd-encoding"; }
    Encoded encode(const Transaction &tx) override;
    Transaction decode(const Encoded &enc) override;
    unsigned metaWiresPerBeat() const override;
    void reset() override;
    bool stateless() const override { return false; }

  private:
    /** FIFO repository of recently transferred 8-byte words. */
    struct Repository
    {
        std::vector<std::uint64_t> words;
        std::size_t next = 0;
        std::size_t valid = 0;

        void insert(std::uint64_t word, std::size_t capacity);
    };

    /** Index of the most similar valid entry, or npos when none qualifies. */
    std::size_t findBestMatch(const Repository &repo,
                              std::uint64_t word) const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t entries_;
    unsigned threshold_;
    std::size_t bus_bytes_;
    Repository encode_repo_;
    Repository decode_repo_;
};

} // namespace bxt

#endif // BXT_CORE_BD_ENCODING_H
