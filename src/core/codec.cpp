#include "core/codec.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "telemetry/metrics.h"

namespace bxt {

namespace {

/** memcpy that tolerates empty ranges (vector data() may be null). */
void
copyBytes(std::uint8_t *dst, const std::uint8_t *src, std::size_t n)
{
    if (n != 0)
        std::memcpy(dst, src, n);
}

} // namespace

std::size_t
Encoded::ones() const
{
    return payload.ones() + metaOnes();
}

std::size_t
Encoded::metaOnes() const
{
    std::size_t count = 0;
    for (std::uint8_t bit : meta)
        count += bit;
    return count;
}

void
Codec::encodeInto(const Transaction &tx, Encoded &out)
{
    out = encode(tx);
}

void
Codec::decodeInto(const Encoded &enc, Transaction &out)
{
    out = decode(enc);
}

void
Codec::encodeBatch(const TxBatch &in, EncodedBatch &out)
{
    if (in.txBytes() == 0)
        throw CodecSizeError("encodeBatch: batch has no geometry");
    encodeBatchKernel(in, out);
    BXT_ASSERT(out.size() == in.size() && out.txBytes() == in.txBytes());
    if (telemetry::metricsEnabled()) {
        telemetry::histogram("bxt.codec." +
                             telemetry::sanitizeMetricName(name()) +
                             ".batch_size")
            .record(in.size());
    }
}

void
Codec::decodeBatch(const EncodedBatch &in, TxBatch &out)
{
    if (in.txBytes() == 0)
        throw CodecSizeError("decodeBatch: batch has no geometry");
    if (in.metaWiresPerBeat() != metaWiresPerBeat()) {
        throw CodecSizeError(
            "decodeBatch: batch carries " +
            std::to_string(in.metaWiresPerBeat()) +
            " metadata wires/beat but codec " + name() + " expects " +
            std::to_string(metaWiresPerBeat()));
    }
    decodeBatchKernel(in, out);
    BXT_ASSERT(out.size() == in.size() && out.txBytes() == in.txBytes());
}

void
Codec::encodeBatchKernel(const TxBatch &in, EncodedBatch &out)
{
    // Correct-by-construction shim: loop the scalar hot path, learning
    // the metadata geometry from the first encoding (stateful and
    // third-party codecs need no batch-specific code to stay correct).
    const std::size_t tx_bytes = in.txBytes();
    if (in.empty()) {
        out.configure(tx_bytes, metaWiresPerBeat(), 0);
        out.resize(0);
        return;
    }
    Encoded scratch;
    Transaction tx(tx_bytes);
    for (std::size_t i = 0; i < in.size(); ++i) {
        std::memcpy(tx.data(), in.tx(i).data(), tx_bytes);
        encodeInto(tx, scratch);
        if (i == 0) {
            out.configure(tx_bytes, scratch.metaWiresPerBeat,
                          scratch.meta.size());
            out.resizeForOverwrite(in.size());
        }
        if (scratch.payload.size() != tx_bytes ||
            scratch.meta.size() != out.metaBitsPerTx() ||
            scratch.metaWiresPerBeat != out.metaWiresPerBeat()) {
            throw CodecSizeError("encodeBatch: codec " + name() +
                                 " produced inconsistent encoding "
                                 "geometry within one batch");
        }
        copyBytes(out.payload(i).data(), scratch.payload.data(), tx_bytes);
        std::copy(scratch.meta.begin(), scratch.meta.end(),
                  out.meta(i).begin());
    }
}

void
Codec::decodeBatchKernel(const EncodedBatch &in, TxBatch &out)
{
    const std::size_t tx_bytes = in.txBytes();
    out.reset(tx_bytes);
    out.resizeForOverwrite(in.size());
    Encoded scratch;
    scratch.metaWiresPerBeat = in.metaWiresPerBeat();
    Transaction back(tx_bytes);
    for (std::size_t i = 0; i < in.size(); ++i) {
        scratch.payload = Transaction(in.payload(i));
        scratch.meta.assign(in.meta(i).begin(), in.meta(i).end());
        decodeInto(scratch, back);
        if (back.size() != tx_bytes) {
            throw CodecSizeError("decodeBatch: codec " + name() +
                                 " changed the transaction size");
        }
        std::memcpy(out.tx(i).data(), back.data(), tx_bytes);
    }
}

Encoded
IdentityCodec::encode(const Transaction &tx)
{
    Encoded enc;
    encodeInto(tx, enc);
    return enc;
}

Transaction
IdentityCodec::decode(const Encoded &enc)
{
    return enc.payload;
}

void
IdentityCodec::encodeInto(const Transaction &tx, Encoded &out)
{
    out.payload = tx;
    out.meta.clear();
    out.metaWiresPerBeat = 0;
}

void
IdentityCodec::decodeInto(const Encoded &enc, Transaction &out)
{
    out = enc.payload;
}

void
IdentityCodec::encodeBatchKernel(const TxBatch &in, EncodedBatch &out)
{
    // The whole batch is one plane copy (resizeForOverwrite: the copy
    // covers the plane, so no zero-fill pass precedes it).
    out.configure(in.txBytes(), 0, 0);
    out.resizeForOverwrite(in.size());
    copyBytes(out.payloadData(), in.data(), in.planeBytes());
}

void
IdentityCodec::decodeBatchKernel(const EncodedBatch &in, TxBatch &out)
{
    out.reset(in.txBytes());
    out.resizeForOverwrite(in.size());
    copyBytes(out.data(), in.payloadData(), in.payloadBytes());
}

} // namespace bxt
