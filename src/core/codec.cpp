#include "core/codec.h"

#include <numeric>

namespace bxt {

std::size_t
Encoded::ones() const
{
    return payload.ones() + metaOnes();
}

std::size_t
Encoded::metaOnes() const
{
    std::size_t count = 0;
    for (std::uint8_t bit : meta)
        count += bit;
    return count;
}

Encoded
IdentityCodec::encode(const Transaction &tx)
{
    Encoded enc;
    enc.payload = tx;
    return enc;
}

Transaction
IdentityCodec::decode(const Encoded &enc)
{
    return enc.payload;
}

} // namespace bxt
