#include "core/codec.h"

#include <numeric>

namespace bxt {

std::size_t
Encoded::ones() const
{
    return payload.ones() + metaOnes();
}

std::size_t
Encoded::metaOnes() const
{
    std::size_t count = 0;
    for (std::uint8_t bit : meta)
        count += bit;
    return count;
}

void
Codec::encodeInto(const Transaction &tx, Encoded &out)
{
    out = encode(tx);
}

void
Codec::decodeInto(const Encoded &enc, Transaction &out)
{
    out = decode(enc);
}

Encoded
IdentityCodec::encode(const Transaction &tx)
{
    Encoded enc;
    encodeInto(tx, enc);
    return enc;
}

Transaction
IdentityCodec::decode(const Encoded &enc)
{
    return enc.payload;
}

void
IdentityCodec::encodeInto(const Transaction &tx, Encoded &out)
{
    out.payload = tx;
    out.meta.clear();
    out.metaWiresPerBeat = 0;
}

void
IdentityCodec::decodeInto(const Encoded &enc, Transaction &out)
{
    out = enc.payload;
}

} // namespace bxt
