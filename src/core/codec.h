/**
 * @file
 * The Codec interface: transaction-level encode/decode with optional
 * per-beat metadata wires (used by DBI and BD-Encoding; the paper's own
 * Base+XOR schemes are metadata-free).
 */

#ifndef BXT_CORE_CODEC_H
#define BXT_CORE_CODEC_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/batch.h"
#include "core/transaction.h"

namespace bxt {

/**
 * The result of encoding one transaction: the (same-sized) payload that
 * travels on the data wires plus any metadata bits that travel on dedicated
 * extra wires.
 *
 * Metadata is stored beat-major: bit (b * metaWiresPerBeat + w) is the value
 * driven on metadata wire w during beat b. Beats are busWidth-bit slices of
 * the payload in byte order.
 */
struct Encoded
{
    /**
     * Encoded payload; always the same size as the input transaction.
     * Defaults to the minimum transaction size so a default-constructed
     * Encoded can never masquerade as a valid 32-byte GPU encoding —
     * codecs reject mismatched geometry with CodecSizeError instead of
     * silently resizing scratch buffers to whatever they expect.
     */
    Transaction payload{Transaction::minBytes};

    /** Metadata bit values (0/1), beat-major; empty for metadata-free codecs. */
    std::vector<std::uint8_t> meta;

    /** Number of dedicated metadata wires this encoding occupies per beat. */
    unsigned metaWiresPerBeat = 0;

    /** Total `1` values across payload and metadata. */
    std::size_t ones() const;

    /** `1` values on metadata wires only. */
    std::size_t metaOnes() const;
};

/**
 * A transaction encoder/decoder.
 *
 * Codecs may be stateful (BD-Encoding keeps a repository of recent words on
 * each side of the channel); encode() and decode() therefore take the
 * transaction stream in transmission order. Stateless codecs (everything
 * the paper proposes) give identical results in any order.
 */
class Codec
{
  public:
    virtual ~Codec() = default;

    /** Human-readable scheme name, e.g. "universal3+zdr". */
    virtual std::string name() const = 0;

    /** Encode one transaction for transmission / encoded storage. */
    virtual Encoded encode(const Transaction &tx) = 0;

    /** Recover the original transaction from an encoding. */
    virtual Transaction decode(const Encoded &enc) = 0;

    /**
     * Allocation-free encode: write the encoding of @p tx into @p out,
     * reusing its buffers (the metadata vector's capacity is kept across
     * calls). Semantically identical to `out = encode(tx)`; the default
     * implementation is exactly that shim. Hot loops (evalCodecOnStream,
     * the suite sweep workers) keep one scratch Encoded per worker and
     * call this instead of encode(). @p out must not alias @p tx.
     */
    virtual void encodeInto(const Transaction &tx, Encoded &out);

    /**
     * Allocation-free decode: write the decoded transaction into @p out.
     * Semantically identical to `out = decode(enc)` (the default shim).
     * @p out must not alias @p enc.payload.
     */
    virtual void decodeInto(const Encoded &enc, Transaction &out);

    /**
     * Batch encode: encode every transaction of @p in into @p out, which
     * is (re)configured to the batch's geometry. This is the hot path:
     * the non-virtual entry point validates the batch geometry (throwing
     * CodecSizeError on a mismatch), records the
     * `bxt.codec.<spec>.batch_size` histogram, and dispatches to
     * encodeBatchKernel(). The result is bit-identical to looping
     * encodeInto per transaction — the default kernel is exactly that
     * shim, and the hand-written kernels are differentially verified
     * against it (src/verify/batch_check.h).
     *
     * Stateful codecs advance their channel state per transaction in
     * batch order, exactly as a scalar loop would.
     */
    void encodeBatch(const TxBatch &in, EncodedBatch &out);

    /**
     * Batch decode: recover every original transaction of @p in into
     * @p out. Inverse of encodeBatch; same validation, dispatch, and
     * bit-identity contract as encodeBatch.
     */
    void decodeBatch(const EncodedBatch &in, TxBatch &out);

    /**
     * Number of dedicated metadata wires this codec drives per beat. This
     * is a static property of the codec's configuration (its group size and
     * the bus width it was configured for), so channel models can size the
     * bus before any data flows.
     */
    virtual unsigned metaWiresPerBeat() const { return 0; }

    /** Reset any channel-history state (repositories); default no-op. */
    virtual void reset() {}

    /**
     * True when encoding a transaction depends only on that transaction
     * (everything the paper proposes). Stateless, metadata-free codecs can
     * store their encoded form directly in DRAM; stateful link codecs
     * (BD-Encoding) cannot, because decode depends on transfer history.
     */
    virtual bool stateless() const { return true; }

  protected:
    /**
     * Batch-encode kernel. The default implementation is the correct
     * shim: it loops encodeInto over the batch, discovering the metadata
     * geometry from the first encoding. Word-wide overrides exist for
     * Identity, BaseXor(+ZDR), Universal(+ZDR), DBI-DC, and Pipeline;
     * every override must be bit-identical to the shim.
     */
    virtual void encodeBatchKernel(const TxBatch &in, EncodedBatch &out);

    /** Batch-decode kernel; default shim loops decodeInto. */
    virtual void decodeBatchKernel(const EncodedBatch &in, TxBatch &out);
};

/** Owning codec handle. */
using CodecPtr = std::unique_ptr<Codec>;

/**
 * The trivial codec: transmits data unchanged. This is the paper's
 * "baseline" conventional transfer scheme.
 */
class IdentityCodec : public Codec
{
  public:
    std::string name() const override { return "baseline"; }
    Encoded encode(const Transaction &tx) override;
    Transaction decode(const Encoded &enc) override;
    void encodeInto(const Transaction &tx, Encoded &out) override;
    void decodeInto(const Encoded &enc, Transaction &out) override;

  protected:
    void encodeBatchKernel(const TxBatch &in, EncodedBatch &out) override;
    void decodeBatchKernel(const EncodedBatch &in, TxBatch &out) override;
};

} // namespace bxt

#endif // BXT_CORE_CODEC_H
