#include "core/codec_factory.h"

#include <cctype>

#include "adaptive/adaptive_codec.h"
#include "common/error.h"
#include "core/base_xor.h"
#include "core/bd_encoding.h"
#include "core/dbi.h"
#include "core/pipeline.h"
#include "core/universal_xor.h"

namespace bxt {
namespace {

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            parts.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return parts;
}

/**
 * Build one pipeline stage; on a malformed token sets @p err and returns
 * nullptr (the tryMakeCodec contract — makeCodec escalates to fatal()).
 */
CodecPtr
makeStage(const std::string &token, std::size_t bus_bytes, std::string &err)
{
    const std::vector<std::string> parts = splitOn(token, '+');
    const std::string &head = parts[0];

    bool zdr = false;
    bool fixed = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        if (parts[i] == "zdr") {
            zdr = true;
        } else if (parts[i] == "fixed") {
            fixed = true;
        } else {
            err = "makeCodec: unknown flag '+" + parts[i] + "' in '" +
                  token + "'";
            return nullptr;
        }
    }

    bool bad_suffix = false;
    auto numeric_suffix = [&](std::size_t prefix_len) -> long {
        if (head.size() == prefix_len)
            return -1;
        long value = 0;
        for (std::size_t i = prefix_len; i < head.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(head[i]))) {
                bad_suffix = true;
                return -1;
            }
            value = value * 10 + (head[i] - '0');
        }
        return value;
    };

    if (head == "baseline" || head == "identity") {
        if (zdr || fixed) {
            err = "makeCodec: baseline takes no flags";
            return nullptr;
        }
        return std::make_unique<IdentityCodec>();
    }
    if (head.rfind("xor", 0) == 0) {
        const long n = numeric_suffix(3);
        if (bad_suffix || (n != 2 && n != 4 && n != 8 && n != 16)) {
            err = "makeCodec: xor base size must be 2/4/8/16 in '" + token +
                  "'";
            return nullptr;
        }
        return std::make_unique<BaseXorCodec>(static_cast<std::size_t>(n),
                                              zdr, !fixed);
    }
    if (head.rfind("universal", 0) == 0) {
        long stages = numeric_suffix(9);
        if (stages == -1 && !bad_suffix)
            stages = 3;
        if (bad_suffix || stages < 1 || stages > 5) {
            err = "makeCodec: universal stages must be 1..5 in '" + token +
                  "'";
            return nullptr;
        }
        if (fixed) {
            err = "makeCodec: universal takes no '+fixed' flag";
            return nullptr;
        }
        return std::make_unique<UniversalXorCodec>(
            static_cast<unsigned>(stages), zdr);
    }
    if (head.rfind("dbi-ac", 0) == 0) {
        const long g = numeric_suffix(6);
        if (bad_suffix || (g != 1 && g != 2 && g != 4 && g != 8)) {
            err = "makeCodec: dbi-ac group must be 1/2/4/8 in '" + token +
                  "'";
            return nullptr;
        }
        if (zdr || fixed) {
            err = "makeCodec: dbi-ac takes no flags";
            return nullptr;
        }
        return std::make_unique<DbiAcCodec>(static_cast<std::size_t>(g),
                                            bus_bytes);
    }
    if (head.rfind("dbi", 0) == 0) {
        const long g = numeric_suffix(3);
        if (bad_suffix || (g != 1 && g != 2 && g != 4 && g != 8)) {
            err = "makeCodec: dbi group must be 1/2/4/8 in '" + token + "'";
            return nullptr;
        }
        if (zdr || fixed) {
            err = "makeCodec: dbi takes no flags";
            return nullptr;
        }
        return std::make_unique<DbiCodec>(static_cast<std::size_t>(g),
                                          bus_bytes);
    }
    if (head == "bd") {
        if (zdr || fixed) {
            err = "makeCodec: bd takes no flags";
            return nullptr;
        }
        return std::make_unique<BdEncodingCodec>(64, 12, bus_bytes);
    }
    err = "makeCodec: unknown stage '" + token + "'";
    return nullptr;
}

} // namespace

CodecPtr
tryMakeCodec(const std::string &spec, std::size_t bus_bytes,
             std::string &err)
{
    if (spec.empty()) {
        err = "makeCodec: empty spec";
        return nullptr;
    }
    // The adaptive meta-codec owns its own grammar (its candidate list
    // may itself contain '|' pipelines), so intercept it before the
    // pipeline split.
    if (adaptive::isAdaptiveSpec(spec))
        return adaptive::tryMakeAdaptiveCodec(spec, bus_bytes, err);
    std::vector<std::string> tokens = splitOn(spec, '|');
    if (tokens.size() == 1)
        return makeStage(tokens[0], bus_bytes, err);

    std::vector<CodecPtr> stages;
    stages.reserve(tokens.size());
    for (const auto &token : tokens) {
        CodecPtr stage = makeStage(token, bus_bytes, err);
        if (!stage)
            return nullptr;
        stages.push_back(std::move(stage));
    }
    return std::make_unique<PipelineCodec>(std::move(stages));
}

CodecPtr
makeCodec(const std::string &spec, std::size_t bus_bytes)
{
    std::string err;
    CodecPtr codec = tryMakeCodec(spec, bus_bytes, err);
    if (!codec)
        fatal(err);
    return codec;
}

std::vector<std::string>
paperSchemeSpecs()
{
    return {
        "baseline",
        "dbi4",
        "dbi2",
        "dbi1",
        "universal3+zdr",
        "universal3+zdr|dbi4",
        "universal3+zdr|dbi2",
        "universal3+zdr|dbi1",
        "bd",
    };
}

} // namespace bxt
