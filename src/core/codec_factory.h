/**
 * @file
 * String-spec codec construction, used by the examples, benches, and the
 * simulator configuration so a scheme can be named on a command line.
 *
 * Grammar (stages separated by '|', applied left to right on encode):
 *
 *   spec    := stage ('|' stage)*
 *   stage   := "baseline" | "identity"
 *            | "xor" N ["+zdr"] ["+fixed"]         N in {2,4,8,16}
 *            | "universal" [S] ["+zdr"]            S in 1..5, default 3
 *            | "dbi" G                             G in {1,2,4,8}
 *            | "dbi-ac" G                          toggle-minimizing DBI
 *            | "bd"
 *
 * Examples: "universal3+zdr", "xor4+zdr", "universal3+zdr|dbi1", "bd".
 *
 * One spec escapes this grammar: "adaptive[:item,item,...]" builds the
 * online-selection meta-codec (src/adaptive/). Items are either knobs
 * (w=WINDOW, p=PERIOD, h=HYSTERESIS_PCT) or concrete candidate specs in
 * the grammar above ('|' pipelines allowed; ',' separates items; all
 * candidates must be stateless and agree on metaWiresPerBeat). Bare
 * "adaptive" uses the default metadata-free candidate ladder. Example:
 * "adaptive:xor4+zdr,universal3+zdr,baseline,w=64,p=256,h=10".
 */

#ifndef BXT_CORE_CODEC_FACTORY_H
#define BXT_CORE_CODEC_FACTORY_H

#include <string>
#include <vector>

#include "core/codec.h"

namespace bxt {

/**
 * Build a codec from @p spec. @p bus_bytes configures the per-beat bus
 * width for beat-oriented codecs (DBI, BD-Encoding). Calls fatal() on a
 * malformed spec.
 */
CodecPtr makeCodec(const std::string &spec, std::size_t bus_bytes = 4);

/**
 * Non-fatal variant of makeCodec for callers handling untrusted specs
 * (the bxtd request path): returns nullptr and fills @p err instead of
 * terminating the process on a malformed spec.
 */
CodecPtr tryMakeCodec(const std::string &spec, std::size_t bus_bytes,
                      std::string &err);

/** The specs evaluated throughout the paper's figures, in plot order. */
std::vector<std::string> paperSchemeSpecs();

} // namespace bxt

#endif // BXT_CORE_CODEC_FACTORY_H
