#include "core/dbi.h"

#include <cstring>
#include <vector>

#include "common/bitops.h"
#include "common/error.h"

namespace bxt {

DbiCodec::DbiCodec(std::size_t group_bytes, std::size_t bus_bytes)
    : group_bytes_(group_bytes), bus_bytes_(bus_bytes)
{
    BXT_ASSERT(group_bytes == 1 || group_bytes == 2 || group_bytes == 4 ||
               group_bytes == 8);
    BXT_ASSERT(bus_bytes % group_bytes == 0);
}

std::string
DbiCodec::name() const
{
    return "dbi" + std::to_string(group_bytes_);
}

unsigned
DbiCodec::metaWiresPerBeat() const
{
    return static_cast<unsigned>(bus_bytes_ / group_bytes_);
}

Encoded
DbiCodec::encode(const Transaction &tx)
{
    Encoded enc;
    encodeInto(tx, enc);
    return enc;
}

Transaction
DbiCodec::decode(const Encoded &enc)
{
    Transaction tx(enc.payload.size());
    decodeInto(enc, tx);
    return tx;
}

void
DbiCodec::encodeInto(const Transaction &tx, Encoded &enc)
{
    BXT_ASSERT(tx.size() % bus_bytes_ == 0);
    enc.payload = tx;
    enc.metaWiresPerBeat =
        static_cast<unsigned>(bus_bytes_ / group_bytes_);

    std::uint8_t *data = enc.payload.data();
    const std::size_t beats = tx.size() / bus_bytes_;
    const std::size_t half_bits = group_bytes_ * 8 / 2;
    enc.meta.clear();
    enc.meta.reserve(beats * enc.metaWiresPerBeat);

    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            std::uint8_t *group = data + beat * bus_bytes_ + g;
            const std::size_t ones =
                popcountBytes({group, group_bytes_});
            const bool invert = ones > half_bits;
            if (invert) {
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    group[i] = static_cast<std::uint8_t>(~group[i]);
            }
            enc.meta.push_back(invert ? 1 : 0);
        }
    }
}

void
DbiCodec::decodeInto(const Encoded &enc, Transaction &tx)
{
    tx = enc.payload;
    BXT_ASSERT(tx.size() % bus_bytes_ == 0);
    const std::size_t beats = tx.size() / bus_bytes_;
    const std::size_t groups_per_beat = bus_bytes_ / group_bytes_;
    BXT_ASSERT(enc.meta.size() == beats * groups_per_beat);

    std::uint8_t *data = tx.data();
    std::size_t meta_index = 0;
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            if (enc.meta[meta_index++]) {
                std::uint8_t *group = data + beat * bus_bytes_ + g;
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    group[i] = static_cast<std::uint8_t>(~group[i]);
            }
        }
    }
}

DbiAcCodec::DbiAcCodec(std::size_t group_bytes, std::size_t bus_bytes)
    : group_bytes_(group_bytes), bus_bytes_(bus_bytes)
{
    BXT_ASSERT(group_bytes == 1 || group_bytes == 2 || group_bytes == 4 ||
               group_bytes == 8);
    BXT_ASSERT(bus_bytes % group_bytes == 0);
}

std::string
DbiAcCodec::name() const
{
    return "dbi-ac" + std::to_string(group_bytes_);
}

unsigned
DbiAcCodec::metaWiresPerBeat() const
{
    return static_cast<unsigned>(bus_bytes_ / group_bytes_);
}

Encoded
DbiAcCodec::encode(const Transaction &tx)
{
    BXT_ASSERT(tx.size() % bus_bytes_ == 0);
    Encoded enc;
    enc.payload = tx;
    enc.metaWiresPerBeat = metaWiresPerBeat();

    std::uint8_t *data = enc.payload.data();
    const std::size_t beats = tx.size() / bus_bytes_;
    const std::size_t half_bits = group_bytes_ * 8 / 2;
    enc.meta.reserve(beats * enc.metaWiresPerBeat);

    // prev holds the *encoded* previous beat (what the wires carried);
    // the bus idles at zero before beat 0.
    std::vector<std::uint8_t> prev(bus_bytes_, 0);
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            std::uint8_t *group = data + beat * bus_bytes_ + g;
            std::size_t transitions = 0;
            for (std::size_t i = 0; i < group_bytes_; ++i) {
                transitions += static_cast<std::size_t>(popcount64(
                    static_cast<std::uint8_t>(group[i] ^ prev[g + i])));
            }
            const bool invert = transitions > half_bits;
            if (invert) {
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    group[i] = static_cast<std::uint8_t>(~group[i]);
            }
            enc.meta.push_back(invert ? 1 : 0);
            for (std::size_t i = 0; i < group_bytes_; ++i)
                prev[g + i] = group[i];
        }
    }
    return enc;
}

Transaction
DbiAcCodec::decode(const Encoded &enc)
{
    Transaction tx = enc.payload;
    BXT_ASSERT(tx.size() % bus_bytes_ == 0);
    const std::size_t beats = tx.size() / bus_bytes_;
    const std::size_t groups_per_beat = bus_bytes_ / group_bytes_;
    BXT_ASSERT(enc.meta.size() == beats * groups_per_beat);

    std::uint8_t *data = tx.data();
    std::size_t meta_index = 0;
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            if (enc.meta[meta_index++]) {
                std::uint8_t *group = data + beat * bus_bytes_ + g;
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    group[i] = static_cast<std::uint8_t>(~group[i]);
            }
        }
    }
    return tx;
}

} // namespace bxt
