#include "core/dbi.h"

#include <cstring>
#include <vector>

#include "common/bitops.h"
#include "common/error.h"
#include "core/simd/simd.h"

namespace bxt {

DbiCodec::DbiCodec(std::size_t group_bytes, std::size_t bus_bytes)
    : group_bytes_(group_bytes), bus_bytes_(bus_bytes)
{
    BXT_ASSERT(group_bytes == 1 || group_bytes == 2 || group_bytes == 4 ||
               group_bytes == 8);
    BXT_ASSERT(bus_bytes % group_bytes == 0);
}

std::string
DbiCodec::name() const
{
    return "dbi" + std::to_string(group_bytes_);
}

unsigned
DbiCodec::metaWiresPerBeat() const
{
    return static_cast<unsigned>(bus_bytes_ / group_bytes_);
}

void
DbiCodec::requireTxSize(std::size_t tx_bytes) const
{
    if (tx_bytes == 0 || tx_bytes % bus_bytes_ != 0) {
        throw CodecSizeError(
            name() + ": " + std::to_string(tx_bytes) +
            "-byte transaction is not a whole number of " +
            std::to_string(bus_bytes_) + "-byte beats");
    }
}

Encoded
DbiCodec::encode(const Transaction &tx)
{
    Encoded enc;
    encodeInto(tx, enc);
    return enc;
}

Transaction
DbiCodec::decode(const Encoded &enc)
{
    Transaction tx(enc.payload.size());
    decodeInto(enc, tx);
    return tx;
}

void
DbiCodec::encodeInto(const Transaction &tx, Encoded &enc)
{
    requireTxSize(tx.size());
    enc.payload = tx;
    enc.metaWiresPerBeat =
        static_cast<unsigned>(bus_bytes_ / group_bytes_);

    std::uint8_t *data = enc.payload.data();
    const std::size_t beats = tx.size() / bus_bytes_;
    const std::size_t half_bits = group_bytes_ * 8 / 2;
    enc.meta.clear();
    enc.meta.reserve(beats * enc.metaWiresPerBeat);

    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            std::uint8_t *group = data + beat * bus_bytes_ + g;
            const std::size_t ones =
                popcountBytes({group, group_bytes_});
            const bool invert = ones > half_bits;
            if (invert) {
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    group[i] = static_cast<std::uint8_t>(~group[i]);
            }
            enc.meta.push_back(invert ? 1 : 0);
        }
    }
}

void
DbiCodec::decodeInto(const Encoded &enc, Transaction &tx)
{
    tx = enc.payload;
    requireTxSize(tx.size());
    const std::size_t beats = tx.size() / bus_bytes_;
    const std::size_t groups_per_beat = bus_bytes_ / group_bytes_;
    if (enc.meta.size() != beats * groups_per_beat) {
        throw CodecSizeError(name() + ": encoding carries " +
                             std::to_string(enc.meta.size()) +
                             " metadata bits, expected " +
                             std::to_string(beats * groups_per_beat));
    }

    std::uint8_t *data = tx.data();
    std::size_t meta_index = 0;
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            if (enc.meta[meta_index++]) {
                std::uint8_t *group = data + beat * bus_bytes_ + g;
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    group[i] = static_cast<std::uint8_t>(~group[i]);
            }
        }
    }
}

void
DbiCodec::encodeBatchKernel(const TxBatch &in, EncodedBatch &out)
{
    requireTxSize(in.txBytes());
    const std::size_t tx_bytes = in.txBytes();
    const std::size_t beats = tx_bytes / bus_bytes_;
    const unsigned wires = metaWiresPerBeat();
    out.configure(tx_bytes, wires, beats * wires);
    out.resizeForOverwrite(in.size());
    if (in.empty())
        return;

    // Payload plane starts as a copy; the group tiling is contiguous
    // across beats and transactions (tx_bytes is a whole number of
    // beats, beats a whole number of groups) and the meta plane lays its
    // polarity bytes out in exactly that group order, so the entire
    // batch is one dispatched plane call.
    std::memcpy(out.payloadData(), in.data(), in.planeBytes());
    const std::size_t total_groups =
        in.planeBytes() / group_bytes_;
    simd::ops().dbiEncodePlane(out.payloadData(), out.metaData(),
                               total_groups, group_bytes_);
}

void
DbiCodec::decodeBatchKernel(const EncodedBatch &in, TxBatch &out)
{
    requireTxSize(in.txBytes());
    const std::size_t tx_bytes = in.txBytes();
    const std::size_t beats = tx_bytes / bus_bytes_;
    const std::size_t groups_per_beat = bus_bytes_ / group_bytes_;
    if (in.metaBitsPerTx() != beats * groups_per_beat) {
        throw CodecSizeError(name() + ": batch carries " +
                             std::to_string(in.metaBitsPerTx()) +
                             " metadata bits per transaction, expected " +
                             std::to_string(beats * groups_per_beat));
    }
    out.reset(tx_bytes);
    out.resizeForOverwrite(in.size());
    if (in.size() == 0)
        return;

    std::memcpy(out.data(), in.payloadData(), in.payloadBytes());
    const std::size_t total_groups = in.payloadBytes() / group_bytes_;
    simd::ops().dbiDecodePlane(out.data(), in.metaData(), total_groups,
                               group_bytes_);
}

DbiAcCodec::DbiAcCodec(std::size_t group_bytes, std::size_t bus_bytes)
    : group_bytes_(group_bytes), bus_bytes_(bus_bytes)
{
    BXT_ASSERT(group_bytes == 1 || group_bytes == 2 || group_bytes == 4 ||
               group_bytes == 8);
    BXT_ASSERT(bus_bytes % group_bytes == 0);
}

std::string
DbiAcCodec::name() const
{
    return "dbi-ac" + std::to_string(group_bytes_);
}

unsigned
DbiAcCodec::metaWiresPerBeat() const
{
    return static_cast<unsigned>(bus_bytes_ / group_bytes_);
}

Encoded
DbiAcCodec::encode(const Transaction &tx)
{
    if (tx.size() % bus_bytes_ != 0) {
        throw CodecSizeError(
            name() + ": " + std::to_string(tx.size()) +
            "-byte transaction is not a whole number of " +
            std::to_string(bus_bytes_) + "-byte beats");
    }
    Encoded enc;
    enc.payload = tx;
    enc.metaWiresPerBeat = metaWiresPerBeat();

    std::uint8_t *data = enc.payload.data();
    const std::size_t beats = tx.size() / bus_bytes_;
    const std::size_t half_bits = group_bytes_ * 8 / 2;
    enc.meta.reserve(beats * enc.metaWiresPerBeat);

    // prev holds the *encoded* previous beat (what the wires carried);
    // the bus idles at zero before beat 0.
    std::vector<std::uint8_t> prev(bus_bytes_, 0);
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            std::uint8_t *group = data + beat * bus_bytes_ + g;
            std::size_t transitions = 0;
            for (std::size_t i = 0; i < group_bytes_; ++i) {
                transitions += static_cast<std::size_t>(popcount64(
                    static_cast<std::uint8_t>(group[i] ^ prev[g + i])));
            }
            const bool invert = transitions > half_bits;
            if (invert) {
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    group[i] = static_cast<std::uint8_t>(~group[i]);
            }
            enc.meta.push_back(invert ? 1 : 0);
            for (std::size_t i = 0; i < group_bytes_; ++i)
                prev[g + i] = group[i];
        }
    }
    return enc;
}

Transaction
DbiAcCodec::decode(const Encoded &enc)
{
    Transaction tx = enc.payload;
    if (tx.size() % bus_bytes_ != 0) {
        throw CodecSizeError(
            name() + ": " + std::to_string(tx.size()) +
            "-byte payload is not a whole number of " +
            std::to_string(bus_bytes_) + "-byte beats");
    }
    const std::size_t beats = tx.size() / bus_bytes_;
    const std::size_t groups_per_beat = bus_bytes_ / group_bytes_;
    if (enc.meta.size() != beats * groups_per_beat) {
        throw CodecSizeError(name() + ": encoding carries " +
                             std::to_string(enc.meta.size()) +
                             " metadata bits, expected " +
                             std::to_string(beats * groups_per_beat));
    }

    std::uint8_t *data = tx.data();
    std::size_t meta_index = 0;
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            if (enc.meta[meta_index++]) {
                std::uint8_t *group = data + beat * bus_bytes_ + g;
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    group[i] = static_cast<std::uint8_t>(~group[i]);
            }
        }
    }
    return tx;
}

} // namespace bxt
