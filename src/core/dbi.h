/**
 * @file
 * Dynamic Bus Inversion, DC mode (paper §II-B), the encoding that already
 * exists in GDDR5/GDDR5X.
 *
 * The serialized transaction is viewed as bus-width beats; each beat is
 * divided into groups of `group_bytes` bytes. A group with more than half
 * of its bits set is transmitted inverted, with the inversion recorded as a
 * polarity bit on a dedicated metadata wire (one wire per group). GDDR5X
 * uses 1-byte groups (four DBI wires on a 32-bit channel).
 *
 * DBI-DC guarantees at most half the bits of any group are `1`, which also
 * bounds simultaneous-switching noise — the reason the paper keeps DBI
 * alongside Base+XOR rather than replacing it.
 */

#ifndef BXT_CORE_DBI_H
#define BXT_CORE_DBI_H

#include <cstddef>

#include "core/codec.h"

namespace bxt {

/** DBI-DC encoder over bus-width beats. */
class DbiCodec : public Codec
{
  public:
    /**
     * @param group_bytes Inversion granularity in bytes (1, 2, or 4);
     *        must divide the bus width.
     * @param bus_bytes Bus width in bytes per beat (default 4 = the 32-bit
     *        GDDR5X channel); must divide the transaction size.
     */
    explicit DbiCodec(std::size_t group_bytes, std::size_t bus_bytes = 4);

    std::string name() const override;
    Encoded encode(const Transaction &tx) override;
    Transaction decode(const Encoded &enc) override;
    void encodeInto(const Transaction &tx, Encoded &out) override;
    void decodeInto(const Encoded &enc, Transaction &out) override;
    unsigned metaWiresPerBeat() const override;

    /** Inversion group size in bytes. */
    std::size_t groupBytes() const { return group_bytes_; }

  protected:
    void encodeBatchKernel(const TxBatch &in, EncodedBatch &out) override;
    void decodeBatchKernel(const EncodedBatch &in, TxBatch &out) override;

  private:
    /** Throw CodecSizeError unless @p tx_bytes is a whole number of beats. */
    void requireTxSize(std::size_t tx_bytes) const;

    std::size_t group_bytes_;
    std::size_t bus_bytes_;
};

/**
 * DBI-AC: the toggle-minimizing variant of bus inversion (paper footnote
 * 3). Each group is inverted when more than half of its wires would
 * *switch* relative to the previously transmitted beat (idle zero before
 * beat 0), bounding simultaneous switching instead of the `1` count.
 * GDDR5/5X uses DBI-DC because termination current, not switching,
 * dominates a POD interface — this codec exists to demonstrate that
 * trade-off (see bench_ablation).
 *
 * Encoding is self-contained per transaction (the reference beat is
 * reconstructible by the decoder), so the codec is stateless.
 */
class DbiAcCodec : public Codec
{
  public:
    /** @param group_bytes / @param bus_bytes as for DbiCodec. */
    explicit DbiAcCodec(std::size_t group_bytes, std::size_t bus_bytes = 4);

    std::string name() const override;
    Encoded encode(const Transaction &tx) override;
    Transaction decode(const Encoded &enc) override;
    unsigned metaWiresPerBeat() const override;

  private:
    std::size_t group_bytes_;
    std::size_t bus_bytes_;
};

} // namespace bxt

#endif // BXT_CORE_DBI_H
