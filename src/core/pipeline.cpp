#include "core/pipeline.h"

#include <cstring>

#include "common/error.h"
#include "telemetry/metrics.h"

namespace bxt {

PipelineCodec::PipelineCodec(std::vector<CodecPtr> stages)
    : stages_(std::move(stages))
{
    BXT_ASSERT(!stages_.empty());
    for (const auto &stage : stages_)
        BXT_ASSERT(stage != nullptr);
}

PipelineCodec::PipelineCodec(CodecPtr first, CodecPtr second)
{
    BXT_ASSERT(first != nullptr && second != nullptr);
    stages_.push_back(std::move(first));
    stages_.push_back(std::move(second));
}

std::string
PipelineCodec::name() const
{
    std::string n;
    for (const auto &stage : stages_) {
        if (!n.empty())
            n += "|";
        n += stage->name();
    }
    return n;
}

unsigned
PipelineCodec::metaWiresPerBeat() const
{
    unsigned wires = 0;
    for (const auto &stage : stages_)
        wires += stage->metaWiresPerBeat();
    return wires;
}

Encoded
PipelineCodec::encode(const Transaction &tx)
{
    Encoded result;
    encodeInto(tx, result);
    return result;
}

Transaction
PipelineCodec::decode(const Encoded &enc)
{
    Transaction payload(enc.payload.size());
    decodeInto(enc, payload);
    return payload;
}

void
PipelineCodec::encodeInto(const Transaction &tx, Encoded &result)
{
    // Each stage encodes the previous stage's payload; metadata streams are
    // interleaved per beat in stage order when the bus serializes them, so
    // here we simply concatenate per-beat blocks. Stage outputs land in the
    // per-stage scratch slots, whose buffers persist across calls.
    scratch_.resize(stages_.size());
    const Transaction *payload = &tx;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        stages_[s]->encodeInto(*payload, scratch_[s]);
        payload = &scratch_[s].payload;
    }
    result.payload = *payload;
    result.meta.clear();

    if (telemetry::metricsEnabled())
        recordStageMetrics(tx);

    unsigned total_meta_wires = 0;
    for (const Encoded &enc : scratch_)
        total_meta_wires += enc.metaWiresPerBeat;
    result.metaWiresPerBeat = total_meta_wires;
    if (total_meta_wires == 0)
        return;

    // All stages see the same beat count (payload size is preserved).
    std::size_t beats = 0;
    for (const Encoded &enc : scratch_) {
        if (enc.metaWiresPerBeat > 0) {
            const std::size_t stage_beats =
                enc.meta.size() / enc.metaWiresPerBeat;
            BXT_ASSERT(beats == 0 || beats == stage_beats);
            beats = stage_beats;
        }
    }

    result.meta.reserve(beats * total_meta_wires);
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (const Encoded &enc : scratch_) {
            for (unsigned w = 0; w < enc.metaWiresPerBeat; ++w)
                result.meta.push_back(
                    enc.meta[beat * enc.metaWiresPerBeat + w]);
        }
    }
}

void
PipelineCodec::bindStageCounters()
{
    if (!stage_counters_.empty())
        return;
    const std::string pipeline = telemetry::sanitizeMetricName(name());
    stage_counters_.reserve(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const std::string prefix =
            "bxt.codec." + pipeline + ".stage" + std::to_string(s) + "." +
            telemetry::sanitizeMetricName(stages_[s]->name()) + ".";
        StageCounters c;
        c.onesIn = &telemetry::counter(prefix + "ones_in");
        c.onesOut = &telemetry::counter(prefix + "ones_out");
        c.metaOnes = &telemetry::counter(prefix + "meta_ones");
        c.bytes = &telemetry::counter(prefix + "bytes");
        stage_counters_.push_back(c);
    }
}

void
PipelineCodec::recordStageMetrics(const Transaction &tx)
{
    bindStageCounters();

    std::size_t ones_in = tx.ones();
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const std::size_t payload_ones = scratch_[s].payload.ones();
        const std::size_t meta_ones = scratch_[s].metaOnes();
        const StageCounters &c = stage_counters_[s];
        c.onesIn->add(ones_in);
        c.onesOut->add(payload_ones + meta_ones);
        c.metaOnes->add(meta_ones);
        c.bytes->add(tx.size());
        ones_in = payload_ones;
    }
}

void
PipelineCodec::decodeInto(const Encoded &enc, Transaction &out)
{
    // Split the concatenated per-beat metadata back into per-stage streams
    // using each stage's configuration-static wire count.
    scratch_.resize(stages_.size());
    unsigned total = 0;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        scratch_[s].metaWiresPerBeat = stages_[s]->metaWiresPerBeat();
        scratch_[s].meta.clear();
        total += scratch_[s].metaWiresPerBeat;
    }
    if (total != enc.metaWiresPerBeat) {
        throw CodecSizeError(
            name() + ": encoding carries " +
            std::to_string(enc.metaWiresPerBeat) +
            " metadata wires/beat but the pipeline stages expect " +
            std::to_string(total));
    }

    const std::size_t beats =
        total == 0 ? 0 : enc.meta.size() / total;
    for (std::size_t s = 0; s < stages_.size(); ++s)
        scratch_[s].meta.reserve(beats * scratch_[s].metaWiresPerBeat);
    for (std::size_t beat = 0; beat < beats; ++beat) {
        std::size_t offset = beat * total;
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            const unsigned wires = scratch_[s].metaWiresPerBeat;
            for (unsigned w = 0; w < wires; ++w)
                scratch_[s].meta.push_back(enc.meta[offset + w]);
            offset += wires;
        }
    }

    // Decode stages in reverse order. A scratch Transaction ping-pongs
    // through the stages; each stage's decodeInto writes a fresh output.
    out = enc.payload;
    Transaction tmp;
    for (std::size_t s = stages_.size(); s-- > 0;) {
        scratch_[s].payload = out;
        stages_[s]->decodeInto(scratch_[s], tmp);
        out = tmp;
    }
}

void
PipelineCodec::recordStageMetricsBatch(const TxBatch &in)
{
    bindStageCounters();

    std::size_t ones_in = in.ones();
    const std::size_t bytes = in.planeBytes();
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const std::size_t payload_ones = batch_scratch_[s].payloadOnes();
        const std::size_t meta_ones = batch_scratch_[s].metaOnes();
        const StageCounters &c = stage_counters_[s];
        c.onesIn->add(ones_in);
        c.onesOut->add(payload_ones + meta_ones);
        c.metaOnes->add(meta_ones);
        c.bytes->add(bytes);
        ones_in = payload_ones;
    }
}

void
PipelineCodec::encodeBatchKernel(const TxBatch &in, EncodedBatch &out)
{
    const std::size_t tx_bytes = in.txBytes();
    if (in.empty()) {
        out.configure(tx_bytes, metaWiresPerBeat(), 0);
        out.resize(0);
        return;
    }

    // Stage 0 encodes the input plane; every later stage encodes the
    // previous stage's payload plane via the ping-pong input batch.
    batch_scratch_.resize(stages_.size());
    stages_[0]->encodeBatch(in, batch_scratch_[0]);
    for (std::size_t s = 1; s < stages_.size(); ++s) {
        batch_stage_in_.reset(tx_bytes);
        batch_stage_in_.resizeForOverwrite(in.size());
        std::memcpy(batch_stage_in_.data(),
                    batch_scratch_[s - 1].payloadData(),
                    batch_scratch_[s - 1].payloadBytes());
        stages_[s]->encodeBatch(batch_stage_in_, batch_scratch_[s]);
    }

    if (telemetry::metricsEnabled())
        recordStageMetricsBatch(in);

    // All stages see the same beat count (payload size is preserved).
    unsigned total_wires = 0;
    std::size_t beats = 0;
    for (const EncodedBatch &eb : batch_scratch_) {
        total_wires += eb.metaWiresPerBeat();
        if (eb.metaWiresPerBeat() > 0) {
            const std::size_t stage_beats =
                eb.metaBitsPerTx() / eb.metaWiresPerBeat();
            BXT_ASSERT(beats == 0 || beats == stage_beats);
            beats = stage_beats;
        }
    }

    out.configure(tx_bytes, total_wires, beats * total_wires);
    out.resizeForOverwrite(in.size());
    std::memcpy(out.payloadData(), batch_scratch_.back().payloadData(),
                out.payloadBytes());
    if (total_wires == 0)
        return;

    // Interleave stage metadata per beat in stage order, exactly as the
    // scalar encodeInto concatenates per-beat blocks.
    for (std::size_t i = 0; i < in.size(); ++i) {
        std::uint8_t *dst = out.metaData() + i * out.metaBitsPerTx();
        for (std::size_t beat = 0; beat < beats; ++beat) {
            for (const EncodedBatch &eb : batch_scratch_) {
                const unsigned wires = eb.metaWiresPerBeat();
                if (wires == 0)
                    continue;
                std::memcpy(dst,
                            eb.metaData() + i * eb.metaBitsPerTx() +
                                beat * wires,
                            wires);
                dst += wires;
            }
        }
    }
}

void
PipelineCodec::decodeBatchKernel(const EncodedBatch &in, TxBatch &out)
{
    const std::size_t tx_bytes = in.txBytes();
    out.reset(tx_bytes);
    out.resize(in.size());
    if (in.size() == 0)
        return;

    // decodeBatch() already verified the total wire count matches.
    const unsigned total = in.metaWiresPerBeat();
    const std::size_t beats =
        total == 0 ? 0 : in.metaBitsPerTx() / total;

    // Decode stages in reverse, splitting each stage's metadata wires
    // back out of the interleaved beat blocks.
    batch_scratch_.resize(stages_.size());
    const std::uint8_t *payload = in.payloadData();
    std::size_t payload_bytes = in.payloadBytes();
    unsigned stage_offset = total;
    for (std::size_t s = stages_.size(); s-- > 0;) {
        EncodedBatch &eb = batch_scratch_[s];
        const unsigned wires = stages_[s]->metaWiresPerBeat();
        stage_offset -= wires;
        eb.configure(tx_bytes, wires, beats * wires);
        eb.resizeForOverwrite(in.size());
        std::memcpy(eb.payloadData(), payload, payload_bytes);
        if (wires > 0) {
            for (std::size_t i = 0; i < in.size(); ++i) {
                const std::uint8_t *src =
                    in.metaData() + i * in.metaBitsPerTx() + stage_offset;
                std::uint8_t *dst = eb.metaData() + i * eb.metaBitsPerTx();
                for (std::size_t beat = 0; beat < beats; ++beat)
                    std::memcpy(dst + beat * wires, src + beat * total,
                                wires);
            }
        }
        stages_[s]->decodeBatch(eb, s == 0 ? out : batch_stage_in_);
        if (s != 0) {
            payload = batch_stage_in_.data();
            payload_bytes = batch_stage_in_.planeBytes();
        }
    }
}

void
PipelineCodec::reset()
{
    for (auto &stage : stages_)
        stage->reset();
}

bool
PipelineCodec::stateless() const
{
    for (const auto &stage : stages_) {
        if (!stage->stateless())
            return false;
    }
    return true;
}

} // namespace bxt
