#include "core/pipeline.h"

#include "common/error.h"
#include "telemetry/metrics.h"

namespace bxt {

PipelineCodec::PipelineCodec(std::vector<CodecPtr> stages)
    : stages_(std::move(stages))
{
    BXT_ASSERT(!stages_.empty());
    for (const auto &stage : stages_)
        BXT_ASSERT(stage != nullptr);
}

PipelineCodec::PipelineCodec(CodecPtr first, CodecPtr second)
{
    BXT_ASSERT(first != nullptr && second != nullptr);
    stages_.push_back(std::move(first));
    stages_.push_back(std::move(second));
}

std::string
PipelineCodec::name() const
{
    std::string n;
    for (const auto &stage : stages_) {
        if (!n.empty())
            n += "|";
        n += stage->name();
    }
    return n;
}

unsigned
PipelineCodec::metaWiresPerBeat() const
{
    unsigned wires = 0;
    for (const auto &stage : stages_)
        wires += stage->metaWiresPerBeat();
    return wires;
}

Encoded
PipelineCodec::encode(const Transaction &tx)
{
    Encoded result;
    encodeInto(tx, result);
    return result;
}

Transaction
PipelineCodec::decode(const Encoded &enc)
{
    Transaction payload(enc.payload.size());
    decodeInto(enc, payload);
    return payload;
}

void
PipelineCodec::encodeInto(const Transaction &tx, Encoded &result)
{
    // Each stage encodes the previous stage's payload; metadata streams are
    // interleaved per beat in stage order when the bus serializes them, so
    // here we simply concatenate per-beat blocks. Stage outputs land in the
    // per-stage scratch slots, whose buffers persist across calls.
    scratch_.resize(stages_.size());
    const Transaction *payload = &tx;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        stages_[s]->encodeInto(*payload, scratch_[s]);
        payload = &scratch_[s].payload;
    }
    result.payload = *payload;
    result.meta.clear();

    if (telemetry::metricsEnabled())
        recordStageMetrics(tx);

    unsigned total_meta_wires = 0;
    for (const Encoded &enc : scratch_)
        total_meta_wires += enc.metaWiresPerBeat;
    result.metaWiresPerBeat = total_meta_wires;
    if (total_meta_wires == 0)
        return;

    // All stages see the same beat count (payload size is preserved).
    std::size_t beats = 0;
    for (const Encoded &enc : scratch_) {
        if (enc.metaWiresPerBeat > 0) {
            const std::size_t stage_beats =
                enc.meta.size() / enc.metaWiresPerBeat;
            BXT_ASSERT(beats == 0 || beats == stage_beats);
            beats = stage_beats;
        }
    }

    result.meta.reserve(beats * total_meta_wires);
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (const Encoded &enc : scratch_) {
            for (unsigned w = 0; w < enc.metaWiresPerBeat; ++w)
                result.meta.push_back(
                    enc.meta[beat * enc.metaWiresPerBeat + w]);
        }
    }
}

void
PipelineCodec::recordStageMetrics(const Transaction &tx)
{
    if (stage_counters_.empty()) {
        const std::string pipeline = telemetry::sanitizeMetricName(name());
        stage_counters_.reserve(stages_.size());
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            const std::string prefix =
                "bxt.codec." + pipeline + ".stage" + std::to_string(s) +
                "." + telemetry::sanitizeMetricName(stages_[s]->name()) +
                ".";
            StageCounters c;
            c.onesIn = &telemetry::counter(prefix + "ones_in");
            c.onesOut = &telemetry::counter(prefix + "ones_out");
            c.metaOnes = &telemetry::counter(prefix + "meta_ones");
            c.bytes = &telemetry::counter(prefix + "bytes");
            stage_counters_.push_back(c);
        }
    }

    std::size_t ones_in = tx.ones();
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const std::size_t payload_ones = scratch_[s].payload.ones();
        const std::size_t meta_ones = scratch_[s].metaOnes();
        const StageCounters &c = stage_counters_[s];
        c.onesIn->add(ones_in);
        c.onesOut->add(payload_ones + meta_ones);
        c.metaOnes->add(meta_ones);
        c.bytes->add(tx.size());
        ones_in = payload_ones;
    }
}

void
PipelineCodec::decodeInto(const Encoded &enc, Transaction &out)
{
    // Split the concatenated per-beat metadata back into per-stage streams
    // using each stage's configuration-static wire count.
    scratch_.resize(stages_.size());
    unsigned total = 0;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        scratch_[s].metaWiresPerBeat = stages_[s]->metaWiresPerBeat();
        scratch_[s].meta.clear();
        total += scratch_[s].metaWiresPerBeat;
    }
    BXT_ASSERT(total == enc.metaWiresPerBeat);

    const std::size_t beats =
        total == 0 ? 0 : enc.meta.size() / total;
    for (std::size_t s = 0; s < stages_.size(); ++s)
        scratch_[s].meta.reserve(beats * scratch_[s].metaWiresPerBeat);
    for (std::size_t beat = 0; beat < beats; ++beat) {
        std::size_t offset = beat * total;
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            const unsigned wires = scratch_[s].metaWiresPerBeat;
            for (unsigned w = 0; w < wires; ++w)
                scratch_[s].meta.push_back(enc.meta[offset + w]);
            offset += wires;
        }
    }

    // Decode stages in reverse order. A scratch Transaction ping-pongs
    // through the stages; each stage's decodeInto writes a fresh output.
    out = enc.payload;
    Transaction tmp;
    for (std::size_t s = stages_.size(); s-- > 0;) {
        scratch_[s].payload = out;
        stages_[s]->decodeInto(scratch_[s], tmp);
        out = tmp;
    }
}

void
PipelineCodec::reset()
{
    for (auto &stage : stages_)
        stage->reset();
}

bool
PipelineCodec::stateless() const
{
    for (const auto &stage : stages_) {
        if (!stage->stateless())
            return false;
    }
    return true;
}

} // namespace bxt
