#include "core/pipeline.h"

#include "common/error.h"

namespace bxt {

PipelineCodec::PipelineCodec(std::vector<CodecPtr> stages)
    : stages_(std::move(stages))
{
    BXT_ASSERT(!stages_.empty());
    for (const auto &stage : stages_)
        BXT_ASSERT(stage != nullptr);
}

PipelineCodec::PipelineCodec(CodecPtr first, CodecPtr second)
{
    BXT_ASSERT(first != nullptr && second != nullptr);
    stages_.push_back(std::move(first));
    stages_.push_back(std::move(second));
}

std::string
PipelineCodec::name() const
{
    std::string n;
    for (const auto &stage : stages_) {
        if (!n.empty())
            n += "|";
        n += stage->name();
    }
    return n;
}

unsigned
PipelineCodec::metaWiresPerBeat() const
{
    unsigned wires = 0;
    for (const auto &stage : stages_)
        wires += stage->metaWiresPerBeat();
    return wires;
}

Encoded
PipelineCodec::encode(const Transaction &tx)
{
    // Each stage encodes the previous stage's payload; metadata streams are
    // interleaved per beat in stage order when the bus serializes them, so
    // here we simply concatenate per-beat blocks.
    Encoded result;
    result.payload = tx;

    std::vector<Encoded> stage_outputs;
    stage_outputs.reserve(stages_.size());
    for (auto &stage : stages_) {
        Encoded enc = stage->encode(result.payload);
        result.payload = enc.payload;
        stage_outputs.push_back(std::move(enc));
    }

    unsigned total_meta_wires = 0;
    for (const auto &enc : stage_outputs)
        total_meta_wires += enc.metaWiresPerBeat;
    result.metaWiresPerBeat = total_meta_wires;
    if (total_meta_wires == 0)
        return result;

    // All stages see the same beat count (payload size is preserved).
    std::size_t beats = 0;
    for (const auto &enc : stage_outputs) {
        if (enc.metaWiresPerBeat > 0) {
            const std::size_t stage_beats =
                enc.meta.size() / enc.metaWiresPerBeat;
            BXT_ASSERT(beats == 0 || beats == stage_beats);
            beats = stage_beats;
        }
    }

    result.meta.reserve(beats * total_meta_wires);
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (const auto &enc : stage_outputs) {
            for (unsigned w = 0; w < enc.metaWiresPerBeat; ++w)
                result.meta.push_back(
                    enc.meta[beat * enc.metaWiresPerBeat + w]);
        }
    }
    return result;
}

Transaction
PipelineCodec::decode(const Encoded &enc)
{
    // Split the concatenated per-beat metadata back into per-stage streams
    // using each stage's configuration-static wire count.
    std::vector<unsigned> stage_wires(stages_.size(), 0);
    unsigned total = 0;
    std::vector<Encoded> stage_encs(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        stage_wires[s] = stages_[s]->metaWiresPerBeat();
        total += stage_wires[s];
    }
    BXT_ASSERT(total == enc.metaWiresPerBeat);

    const std::size_t beats =
        total == 0 ? 0 : enc.meta.size() / total;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        stage_encs[s].metaWiresPerBeat = stage_wires[s];
        stage_encs[s].meta.reserve(beats * stage_wires[s]);
    }
    for (std::size_t beat = 0; beat < beats; ++beat) {
        std::size_t offset = beat * total;
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            for (unsigned w = 0; w < stage_wires[s]; ++w)
                stage_encs[s].meta.push_back(enc.meta[offset + w]);
            offset += stage_wires[s];
        }
    }

    // Decode stages in reverse order.
    Transaction payload = enc.payload;
    for (std::size_t s = stages_.size(); s-- > 0;) {
        stage_encs[s].payload = payload;
        payload = stages_[s]->decode(stage_encs[s]);
    }
    return payload;
}

void
PipelineCodec::reset()
{
    for (auto &stage : stages_)
        stage->reset();
}

bool
PipelineCodec::stateless() const
{
    for (const auto &stage : stages_) {
        if (!stage->stateless())
            return false;
    }
    return true;
}

} // namespace bxt
