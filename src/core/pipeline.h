/**
 * @file
 * PipelineCodec: sequential composition of codecs, used for the paper's
 * combined scheme "Universal Base+XOR Transfer with ZDR followed by DBI"
 * (§VI-D): the second stage encodes the first stage's payload, and their
 * metadata wires are concatenated.
 */

#ifndef BXT_CORE_PIPELINE_H
#define BXT_CORE_PIPELINE_H

#include <vector>

#include "core/codec.h"

namespace bxt {

namespace telemetry {
class Counter;
} // namespace telemetry

/**
 * Applies member codecs in order on encode and in reverse order on decode.
 * Metadata restrictions: every stage must preserve payload size (all codecs
 * here do); stage metadata is concatenated per beat in stage order.
 */
class PipelineCodec : public Codec
{
  public:
    /** Compose @p stages; at least one stage is required. */
    explicit PipelineCodec(std::vector<CodecPtr> stages);

    /** Convenience two-stage constructor (e.g. Universal+ZDR then DBI). */
    PipelineCodec(CodecPtr first, CodecPtr second);

    std::string name() const override;
    Encoded encode(const Transaction &tx) override;
    Transaction decode(const Encoded &enc) override;
    void encodeInto(const Transaction &tx, Encoded &out) override;
    void decodeInto(const Encoded &enc, Transaction &out) override;
    unsigned metaWiresPerBeat() const override;
    void reset() override;
    bool stateless() const override;

  protected:
    void encodeBatchKernel(const TxBatch &in, EncodedBatch &out) override;
    void decodeBatchKernel(const EncodedBatch &in, TxBatch &out) override;

  private:
    /**
     * Cached per-stage telemetry counters (DESIGN.md §9): for stage s of
     * pipeline P the names are
     * `bxt.codec.<P>.stage<s>.<name>.{ones_in,ones_out,meta_ones,bytes}`
     * with P and name run through telemetry::sanitizeMetricName. ones_in
     * is the payload entering the stage, ones_out the stage's payload
     * plus metadata ones, so `ones_in - ones_out` is the stage's net
     * wire-ones removal and the removals telescope: raw ones minus the
     * summed removals equals the encoding's total (bus-visible) ones.
     */
    struct StageCounters
    {
        telemetry::Counter *onesIn = nullptr;
        telemetry::Counter *onesOut = nullptr;
        telemetry::Counter *metaOnes = nullptr;
        telemetry::Counter *bytes = nullptr;
    };

    /** Bind (once) the counter set above; no-op when already bound. */
    void bindStageCounters();

    /** Record per-stage attribution for one encoded transaction. */
    void recordStageMetrics(const Transaction &tx);

    /**
     * Record per-stage attribution for a whole encoded batch. Counters are
     * additive, so adding the batch aggregates (summed input ones, summed
     * stage output ones, total bytes) leaves every counter with exactly the
     * value a scalar encode loop would have produced — the telescoping
     * invariant checked by test_telemetry holds on either path.
     */
    void recordStageMetricsBatch(const TxBatch &in);

    std::vector<CodecPtr> stages_;
    /** Per-stage scratch encodings reused across encodeInto/decodeInto
     *  calls (one slot per stage; capacities persist). Makes the codec
     *  non-reentrant, like any stateful codec — workers own their codec. */
    std::vector<Encoded> scratch_;
    /** Batch counterpart of scratch_: stage output batches plus the
     *  ping-pong input batch that feeds each stage after the first. */
    std::vector<EncodedBatch> batch_scratch_;
    TxBatch batch_stage_in_;
    /** Lazily bound counter set; empty until first enabled encode. */
    std::vector<StageCounters> stage_counters_;
};

} // namespace bxt

#endif // BXT_CORE_PIPELINE_H
