/**
 * @file
 * PipelineCodec: sequential composition of codecs, used for the paper's
 * combined scheme "Universal Base+XOR Transfer with ZDR followed by DBI"
 * (§VI-D): the second stage encodes the first stage's payload, and their
 * metadata wires are concatenated.
 */

#ifndef BXT_CORE_PIPELINE_H
#define BXT_CORE_PIPELINE_H

#include <vector>

#include "core/codec.h"

namespace bxt {

/**
 * Applies member codecs in order on encode and in reverse order on decode.
 * Metadata restrictions: every stage must preserve payload size (all codecs
 * here do); stage metadata is concatenated per beat in stage order.
 */
class PipelineCodec : public Codec
{
  public:
    /** Compose @p stages; at least one stage is required. */
    explicit PipelineCodec(std::vector<CodecPtr> stages);

    /** Convenience two-stage constructor (e.g. Universal+ZDR then DBI). */
    PipelineCodec(CodecPtr first, CodecPtr second);

    std::string name() const override;
    Encoded encode(const Transaction &tx) override;
    Transaction decode(const Encoded &enc) override;
    void encodeInto(const Transaction &tx, Encoded &out) override;
    void decodeInto(const Encoded &enc, Transaction &out) override;
    unsigned metaWiresPerBeat() const override;
    void reset() override;
    bool stateless() const override;

  private:
    std::vector<CodecPtr> stages_;
    /** Per-stage scratch encodings reused across encodeInto/decodeInto
     *  calls (one slot per stage; capacities persist). Makes the codec
     *  non-reentrant, like any stateful codec — workers own their codec. */
    std::vector<Encoded> scratch_;
};

} // namespace bxt

#endif // BXT_CORE_PIPELINE_H
