/**
 * @file
 * Runtime SIMD dispatch: CPU feature detection (CPUID leaf 7 plus the
 * XGETBV/XCR0 OS-state check for AVX register saving), BXT_SIMD
 * environment resolution, and the atomic active-table pointer the hot
 * kernels read through ops().
 */

#include "core/simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "core/simd/kernels.h"
#include "telemetry/metrics.h"

#if defined(__x86_64__)
#include <cpuid.h>
#endif

namespace bxt::simd {

namespace detail {

namespace {

#if defined(__x86_64__)

/** XCR0 via XGETBV: the OS must save xmm/ymm (and zmm for AVX-512). */
std::uint64_t
readXcr0()
{
    std::uint32_t eax = 0, edx = 0;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

struct CpuFeatures
{
    bool avx2 = false;
    bool avx512 = false;
};

CpuFeatures
detectCpu()
{
    CpuFeatures features;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0)
        return features;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    if (!osxsave)
        return features;
    const std::uint64_t xcr0 = readXcr0();
    const bool ymm_saved = (xcr0 & 0x6) == 0x6;         // XMM + YMM
    const bool zmm_saved = (xcr0 & 0xe6) == 0xe6;       // + opmask/ZMM
    if (!ymm_saved)
        return features;

    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0)
        return features;
    features.avx2 = (ebx & (1u << 5)) != 0;
    const bool f = (ebx & (1u << 16)) != 0;
    const bool bw = (ebx & (1u << 30)) != 0;
    const bool vl = (ebx & (1u << 31)) != 0;
    const bool vpopcntdq = (ecx & (1u << 14)) != 0;
    features.avx512 = zmm_saved && f && bw && vl && vpopcntdq;
    return features;
}

const CpuFeatures &
cpu()
{
    static const CpuFeatures features = detectCpu();
    return features;
}

#endif // __x86_64__

/** The installable table for @p level, or nullptr when unsupported. */
const KernelTable *
tableFor(Level level)
{
    switch (level) {
    case Level::Scalar:
        return &scalarTable();
    case Level::Word:
        return &wordTable();
    case Level::Neon:
        return neonTableOrNull();
    case Level::Avx2:
        return cpuHasAvx2() ? avx2TableOrNull() : nullptr;
    case Level::Avx512:
        return cpuHasAvx512() ? avx512TableOrNull() : nullptr;
    }
    return nullptr;
}

std::atomic<const KernelTable *> active_table{nullptr};

void
publishLevelGauge(Level level)
{
    telemetry::gauge("bxt.simd.level").set(static_cast<double>(level));
}

/** Install @p level (must be supported) and mirror it into telemetry. */
const KernelTable *
install(Level level)
{
    const KernelTable *table = tableFor(level);
    active_table.store(table, std::memory_order_release);
    publishLevelGauge(level);
    return table;
}

/** One-time env-driven init; returns the installed table. */
const KernelTable *
initialize()
{
    std::string warning;
    const Level level =
        resolveRequestedLevel(std::getenv("BXT_SIMD"), &warning);
    if (!warning.empty())
        std::fprintf(stderr, "bxt: %s\n", warning.c_str());
    return install(level);
}

} // namespace

bool
cpuHasAvx2()
{
#if defined(__x86_64__)
    return cpu().avx2;
#else
    return false;
#endif
}

bool
cpuHasAvx512()
{
#if defined(__x86_64__)
    return cpu().avx512;
#else
    return false;
#endif
}

} // namespace detail

const KernelTable &
ops()
{
    const KernelTable *table =
        detail::active_table.load(std::memory_order_acquire);
    if (table == nullptr)
        table = detail::initialize();
    return *table;
}

Level
activeLevel()
{
    return ops().level;
}

Level
setActiveLevel(Level level)
{
    // Clamp an unsupported request to the best supported level ranked at
    // or below it (mirrors resolveRequestedLevel's env semantics).
    while (detail::tableFor(level) == nullptr &&
           level != Level::Scalar)
        level = static_cast<Level>(static_cast<int>(level) - 1);
    detail::install(level);
    return level;
}

Level
bestLevel()
{
    for (Level level : {Level::Avx512, Level::Avx2, Level::Neon,
                        Level::Word})
        if (detail::tableFor(level) != nullptr)
            return level;
    return Level::Scalar;
}

bool
levelSupported(Level level)
{
    return detail::tableFor(level) != nullptr;
}

std::vector<Level>
supportedLevels()
{
    std::vector<Level> levels;
    for (Level level : {Level::Scalar, Level::Word, Level::Neon,
                        Level::Avx2, Level::Avx512})
        if (detail::tableFor(level) != nullptr)
            levels.push_back(level);
    return levels;
}

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::Word:
        return "word";
    case Level::Neon:
        return "neon";
    case Level::Avx2:
        return "avx2";
    case Level::Avx512:
        return "avx512";
    }
    return "unknown";
}

std::optional<Level>
parseLevel(std::string_view name)
{
    std::string lowered(name);
    for (char &ch : lowered)
        ch = static_cast<char>(
            ch >= 'A' && ch <= 'Z' ? ch - 'A' + 'a' : ch);
    for (Level level : {Level::Scalar, Level::Word, Level::Neon,
                        Level::Avx2, Level::Avx512})
        if (lowered == levelName(level))
            return level;
    return std::nullopt;
}

Level
resolveRequestedLevel(const char *value, std::string *warning)
{
    if (warning != nullptr)
        warning->clear();
    if (value == nullptr || *value == '\0')
        return bestLevel();
    const std::optional<Level> requested = parseLevel(value);
    if (!requested.has_value()) {
        if (warning != nullptr)
            *warning = std::string("BXT_SIMD=") + value +
                       " is not a recognized level "
                       "(scalar/word/neon/avx2/avx512); "
                       "falling back to scalar";
        return Level::Scalar;
    }
    Level level = *requested;
    while (detail::tableFor(level) == nullptr && level != Level::Scalar)
        level = static_cast<Level>(static_cast<int>(level) - 1);
    if (level != *requested && warning != nullptr)
        *warning = std::string("BXT_SIMD=") + value +
                   " is not supported on this CPU/build; using " +
                   levelName(level);
    return level;
}

std::optional<Level>
envForcedLevel()
{
    const char *value = std::getenv("BXT_SIMD");
    if (value == nullptr || *value == '\0')
        return std::nullopt;
    return parseLevel(value);
}

} // namespace bxt::simd
