/**
 * @file
 * Shared scalar/word building blocks for the SIMD kernel tiers.
 *
 * Every vector translation unit falls back to these for range tails
 * (the final bytes that do not fill a vector register), and the Word
 * tier's table is built entirely from them. They are the single source
 * of truth for the ZDR lane algebra at word width — the vector code
 * must match them bit for bit.
 */

#ifndef BXT_CORE_SIMD_KERNEL_COMMON_H
#define BXT_CORE_SIMD_KERNEL_COMMON_H

#include <cstddef>
#include <cstdint>

#include "common/bitops.h"

namespace bxt::simd::detail {

/** ZDR constant C as a little-endian lane word (core/zdr.h: the single
 *  zdrConstantByte = 0x40 sits in the lane's most-significant byte). */
constexpr std::uint16_t zdrConst16 = 0x4000u;
constexpr std::uint32_t zdrConst32 = 0x40000000u;
constexpr std::uint64_t zdrConst64 = 0x4000000000000000ull;

inline std::uint16_t
loadWord16(const std::uint8_t *src)
{
    std::uint16_t word;
    std::memcpy(&word, src, 2);
    return word;
}

inline void
storeWord16(std::uint8_t *dst, std::uint16_t word)
{
    std::memcpy(dst, &word, 2);
}

/** Word-wide ZDR encode of one lane: 0 → C, base⊕C → base, else ⊕base. */
template <typename Word>
inline Word
zdrEncodeWord(Word in, Word base, Word constant)
{
    const Word x = static_cast<Word>(in ^ base);
    if (in == 0)
        return constant;
    return x == constant ? base : x;
}

/** Word-wide ZDR decode of one lane (inverse of zdrEncodeWord). */
template <typename Word>
inline Word
zdrDecodeWord(Word enc, Word base, Word constant)
{
    if (enc == constant)
        return 0;
    return enc == base ? static_cast<Word>(base ^ constant)
                       : static_cast<Word>(enc ^ base);
}

inline void
xorWordRange(std::uint8_t *out, const std::uint8_t *in,
             const std::uint8_t *base, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        storeWord64(out + i, loadWord64(in + i) ^ loadWord64(base + i));
    for (; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(in[i] ^ base[i]);
}

inline void
zdrEncode16WordRange(std::uint8_t *out, const std::uint8_t *in,
                     const std::uint8_t *base, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 2)
        storeWord16(out + i, zdrEncodeWord(loadWord16(in + i),
                                           loadWord16(base + i),
                                           zdrConst16));
}

inline void
zdrEncode32WordRange(std::uint8_t *out, const std::uint8_t *in,
                     const std::uint8_t *base, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 4)
        storeWord32(out + i, zdrEncodeWord(loadWord32(in + i),
                                           loadWord32(base + i),
                                           zdrConst32));
}

inline void
zdrEncode64WordRange(std::uint8_t *out, const std::uint8_t *in,
                     const std::uint8_t *base, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 8)
        storeWord64(out + i, zdrEncodeWord(loadWord64(in + i),
                                           loadWord64(base + i),
                                           zdrConst64));
}

inline void
zdrDecode16WordRange(std::uint8_t *out, const std::uint8_t *in,
                     const std::uint8_t *base, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 2)
        storeWord16(out + i, zdrDecodeWord(loadWord16(in + i),
                                           loadWord16(base + i),
                                           zdrConst16));
}

inline void
zdrDecode32WordRange(std::uint8_t *out, const std::uint8_t *in,
                     const std::uint8_t *base, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 4)
        storeWord32(out + i, zdrDecodeWord(loadWord32(in + i),
                                           loadWord32(base + i),
                                           zdrConst32));
}

inline void
zdrDecode64WordRange(std::uint8_t *out, const std::uint8_t *in,
                     const std::uint8_t *base, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 8)
        storeWord64(out + i, zdrDecodeWord(loadWord64(in + i),
                                           loadWord64(base + i),
                                           zdrConst64));
}

/** DBI-DC encode one group (invert iff popcount > group_bits / 2). */
inline void
dbiEncodeGroupWord(std::uint8_t *group, std::uint8_t *meta_out,
                   std::size_t group_bytes)
{
    const std::size_t ones = popcountBytes({group, group_bytes});
    const bool invert = ones > group_bytes * 4;
    if (invert) {
        for (std::size_t i = 0; i < group_bytes; ++i)
            group[i] = static_cast<std::uint8_t>(~group[i]);
    }
    *meta_out = invert ? 1 : 0;
}

inline void
dbiDecodeGroupWord(std::uint8_t *group, std::uint8_t meta,
                   std::size_t group_bytes)
{
    if (meta == 0)
        return;
    for (std::size_t i = 0; i < group_bytes; ++i)
        group[i] = static_cast<std::uint8_t>(~group[i]);
}

inline void
dbiEncodePlaneWord(std::uint8_t *data, std::uint8_t *meta,
                   std::size_t groups, std::size_t group_bytes)
{
    for (std::size_t g = 0; g < groups; ++g)
        dbiEncodeGroupWord(data + g * group_bytes, meta + g, group_bytes);
}

inline void
dbiDecodePlaneWord(std::uint8_t *data, const std::uint8_t *meta,
                   std::size_t groups, std::size_t group_bytes)
{
    for (std::size_t g = 0; g < groups; ++g)
        dbiDecodeGroupWord(data + g * group_bytes, meta[g], group_bytes);
}

inline std::uint64_t
popcountWordRange(const std::uint8_t *src, std::size_t n)
{
    std::uint64_t count = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        count += static_cast<std::uint64_t>(popcount64(loadWord64(src + i)));
    for (; i < n; ++i)
        count += static_cast<std::uint64_t>(
            popcount64(static_cast<std::uint64_t>(src[i])));
    return count;
}

inline std::uint64_t
popcountXorWordRange(const std::uint8_t *a, const std::uint8_t *b,
                     std::size_t n)
{
    std::uint64_t count = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        count += static_cast<std::uint64_t>(
            popcount64(loadWord64(a + i) ^ loadWord64(b + i)));
    for (; i < n; ++i)
        count += static_cast<std::uint64_t>(
            popcount64(static_cast<std::uint64_t>(a[i] ^ b[i])));
    return count;
}

} // namespace bxt::simd::detail

#endif // BXT_CORE_SIMD_KERNEL_COMMON_H
