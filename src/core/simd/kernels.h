/**
 * @file
 * Internal: per-tier kernel table accessors for the dispatcher.
 *
 * The vector translation units are always part of the build; when the
 * toolchain or target architecture cannot produce a tier (no -mavx2
 * support, non-x86 target), the TU compiles to a stub whose accessor
 * returns nullptr. The dispatcher combines these link-time nulls with
 * runtime CPUID checks to decide what is actually installable.
 */

#ifndef BXT_CORE_SIMD_KERNELS_H
#define BXT_CORE_SIMD_KERNELS_H

#include "core/simd/simd.h"

namespace bxt::simd::detail {

/** Always available. */
const KernelTable &scalarTable();
const KernelTable &wordTable();

/** Null when the binary was built without the tier's instructions. */
const KernelTable *avx2TableOrNull();
const KernelTable *avx512TableOrNull();
const KernelTable *neonTableOrNull();

/** Runtime CPU support for the x86 tiers (always false off-x86). */
bool cpuHasAvx2();
bool cpuHasAvx512();

} // namespace bxt::simd::detail

#endif // BXT_CORE_SIMD_KERNELS_H
