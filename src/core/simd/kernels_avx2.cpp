/**
 * @file
 * AVX2 tier. Compiled with -mavx2 via a per-file flag (see
 * src/core/CMakeLists.txt); when the toolchain or target cannot build
 * it the TU degrades to a stub returning nullptr, and the dispatcher
 * additionally gates installation on runtime CPUID support.
 *
 * Byte popcounts use the Mula pshufb nibble-LUT with _mm256_sad_epu8 /
 * maddubs reductions (AVX2 has no vector popcount instruction); ZDR
 * lane remaps are branchless compare-and-blend chains whose blend order
 * reproduces the scalar precedence (zero-lane wins on encode, the
 * constant lane wins on decode).
 */

#include "core/simd/kernels.h"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include "core/simd/kernel_common.h"

namespace bxt::simd::detail {

namespace {

inline __m256i
load256(const std::uint8_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
store256(std::uint8_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

/** Per-byte popcount (Mula): nibble LUT via pshufb, summed per byte. */
inline __m256i
popcountBytes256(__m256i v)
{
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

inline std::uint64_t
reduceAdd64(__m256i acc)
{
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    const __m128i sum = _mm_add_epi64(lo, hi);
    return static_cast<std::uint64_t>(_mm_cvtsi128_si64(sum)) +
           static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1));
}

void
xorRangeAvx2(std::uint8_t *out, const std::uint8_t *in,
             const std::uint8_t *base, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32)
        store256(out + i,
                 _mm256_xor_si256(load256(in + i), load256(base + i)));
    xorWordRange(out + i, in + i, base + i, n - i);
}

void
zdrEncode16Avx2(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i c = _mm256_set1_epi16(
        static_cast<short>(zdrConst16));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = load256(in + i);
        const __m256i b = load256(base + i);
        const __m256i x = _mm256_xor_si256(v, b);
        const __m256i is_zero = _mm256_cmpeq_epi16(v, zero);
        const __m256i is_c = _mm256_cmpeq_epi16(x, c);
        __m256i r = _mm256_blendv_epi8(x, b, is_c);
        r = _mm256_blendv_epi8(r, c, is_zero);
        store256(out + i, r);
    }
    zdrEncode16WordRange(out + i, in + i, base + i, n - i);
}

void
zdrEncode32Avx2(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i c =
        _mm256_set1_epi32(static_cast<int>(zdrConst32));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = load256(in + i);
        const __m256i b = load256(base + i);
        const __m256i x = _mm256_xor_si256(v, b);
        const __m256i is_zero = _mm256_cmpeq_epi32(v, zero);
        const __m256i is_c = _mm256_cmpeq_epi32(x, c);
        __m256i r = _mm256_blendv_epi8(x, b, is_c);
        r = _mm256_blendv_epi8(r, c, is_zero);
        store256(out + i, r);
    }
    zdrEncode32WordRange(out + i, in + i, base + i, n - i);
}

void
zdrEncode64Avx2(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i c = _mm256_set1_epi64x(
        static_cast<long long>(zdrConst64));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = load256(in + i);
        const __m256i b = load256(base + i);
        const __m256i x = _mm256_xor_si256(v, b);
        const __m256i is_zero = _mm256_cmpeq_epi64(v, zero);
        const __m256i is_c = _mm256_cmpeq_epi64(x, c);
        __m256i r = _mm256_blendv_epi8(x, b, is_c);
        r = _mm256_blendv_epi8(r, c, is_zero);
        store256(out + i, r);
    }
    zdrEncode64WordRange(out + i, in + i, base + i, n - i);
}

void
zdrDecode16Avx2(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i c = _mm256_set1_epi16(
        static_cast<short>(zdrConst16));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = load256(in + i);
        const __m256i b = load256(base + i);
        const __m256i x = _mm256_xor_si256(v, b);
        const __m256i is_c = _mm256_cmpeq_epi16(v, c);
        const __m256i is_b = _mm256_cmpeq_epi16(v, b);
        __m256i r = _mm256_blendv_epi8(x, _mm256_xor_si256(b, c), is_b);
        r = _mm256_blendv_epi8(r, zero, is_c);
        store256(out + i, r);
    }
    zdrDecode16WordRange(out + i, in + i, base + i, n - i);
}

void
zdrDecode32Avx2(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i c =
        _mm256_set1_epi32(static_cast<int>(zdrConst32));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = load256(in + i);
        const __m256i b = load256(base + i);
        const __m256i x = _mm256_xor_si256(v, b);
        const __m256i is_c = _mm256_cmpeq_epi32(v, c);
        const __m256i is_b = _mm256_cmpeq_epi32(v, b);
        __m256i r = _mm256_blendv_epi8(x, _mm256_xor_si256(b, c), is_b);
        r = _mm256_blendv_epi8(r, zero, is_c);
        store256(out + i, r);
    }
    zdrDecode32WordRange(out + i, in + i, base + i, n - i);
}

void
zdrDecode64Avx2(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const __m256i zero = _mm256_setzero_si256();
    const __m256i c = _mm256_set1_epi64x(
        static_cast<long long>(zdrConst64));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = load256(in + i);
        const __m256i b = load256(base + i);
        const __m256i x = _mm256_xor_si256(v, b);
        const __m256i is_c = _mm256_cmpeq_epi64(v, c);
        const __m256i is_b = _mm256_cmpeq_epi64(v, b);
        __m256i r = _mm256_blendv_epi8(x, _mm256_xor_si256(b, c), is_b);
        r = _mm256_blendv_epi8(r, zero, is_c);
        store256(out + i, r);
    }
    zdrDecode64WordRange(out + i, in + i, base + i, n - i);
}

void
dbiEncodePlaneAvx2(std::uint8_t *data, std::uint8_t *meta,
                   std::size_t groups, std::size_t group_bytes)
{
    const std::size_t per_vec = 32 / group_bytes;
    const __m256i one = _mm256_set1_epi8(1);
    std::size_t g = 0;
    for (; g + per_vec <= groups; g += per_vec) {
        std::uint8_t *block = data + g * group_bytes;
        const __m256i v = load256(block);
        const __m256i cnt = popcountBytes256(v);
        __m256i mask;
        if (group_bytes == 1) {
            mask = _mm256_cmpgt_epi8(cnt, _mm256_set1_epi8(4));
            store256(meta + g, _mm256_and_si256(mask, one));
        } else if (group_bytes == 2) {
            const __m256i sums = _mm256_maddubs_epi16(cnt, one);
            mask = _mm256_cmpgt_epi16(sums, _mm256_set1_epi16(8));
            const __m128i lo = _mm256_castsi256_si128(mask);
            const __m128i hi = _mm256_extracti128_si256(mask, 1);
            const __m128i bytes = _mm_and_si128(_mm_packs_epi16(lo, hi),
                                                _mm_set1_epi8(1));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(meta + g), bytes);
        } else if (group_bytes == 4) {
            const __m256i sums16 = _mm256_maddubs_epi16(cnt, one);
            const __m256i sums =
                _mm256_madd_epi16(sums16, _mm256_set1_epi16(1));
            mask = _mm256_cmpgt_epi32(sums, _mm256_set1_epi32(16));
            const __m128i lo = _mm256_castsi256_si128(mask);
            const __m128i hi = _mm256_extracti128_si256(mask, 1);
            const __m128i words = _mm_packs_epi32(lo, hi);
            const __m128i bytes =
                _mm_and_si128(_mm_packs_epi16(words, _mm_setzero_si128()),
                              _mm_set1_epi8(1));
            _mm_storel_epi64(reinterpret_cast<__m128i *>(meta + g), bytes);
        } else { // group_bytes == 8
            const __m256i sums =
                _mm256_sad_epu8(cnt, _mm256_setzero_si256());
            mask = _mm256_cmpgt_epi64(sums, _mm256_set1_epi64x(32));
            alignas(32) std::uint64_t lanes[4];
            store256(reinterpret_cast<std::uint8_t *>(lanes), mask);
            for (std::size_t j = 0; j < 4; ++j)
                meta[g + j] = static_cast<std::uint8_t>(lanes[j] & 1);
        }
        store256(block, _mm256_xor_si256(v, mask));
    }
    dbiEncodePlaneWord(data + g * group_bytes, meta + g, groups - g,
                       group_bytes);
}

void
dbiDecodePlaneAvx2(std::uint8_t *data, const std::uint8_t *meta,
                   std::size_t groups, std::size_t group_bytes)
{
    const std::size_t per_vec = 32 / group_bytes;
    const __m256i zero = _mm256_setzero_si256();
    std::size_t g = 0;
    for (; g + per_vec <= groups; g += per_vec) {
        std::uint8_t *block = data + g * group_bytes;
        __m256i mask;
        if (group_bytes == 1) {
            mask = _mm256_cmpgt_epi8(load256(meta + g), zero);
        } else if (group_bytes == 2) {
            const __m128i bytes = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(meta + g));
            mask = _mm256_cmpgt_epi16(_mm256_cvtepu8_epi16(bytes), zero);
        } else if (group_bytes == 4) {
            const __m128i bytes = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(meta + g));
            mask = _mm256_cmpgt_epi32(_mm256_cvtepu8_epi32(bytes), zero);
        } else { // group_bytes == 8
            std::uint32_t four;
            std::memcpy(&four, meta + g, 4);
            const __m128i bytes = _mm_cvtsi32_si128(
                static_cast<int>(four));
            mask = _mm256_cmpgt_epi64(_mm256_cvtepu8_epi64(bytes), zero);
        }
        store256(block, _mm256_xor_si256(load256(block), mask));
    }
    dbiDecodePlaneWord(data + g * group_bytes, meta + g, groups - g,
                       group_bytes);
}

std::uint64_t
popcountRangeAvx2(const std::uint8_t *src, std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32)
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(popcountBytes256(load256(src + i)), zero));
    return reduceAdd64(acc) + popcountWordRange(src + i, n - i);
}

std::uint64_t
popcountXorRangeAvx2(const std::uint8_t *a, const std::uint8_t *b,
                     std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i x = _mm256_xor_si256(load256(a + i), load256(b + i));
        acc = _mm256_add_epi64(acc,
                               _mm256_sad_epu8(popcountBytes256(x), zero));
    }
    return reduceAdd64(acc) + popcountXorWordRange(a + i, b + i, n - i);
}

} // namespace

const KernelTable *
avx2TableOrNull()
{
    static const KernelTable table = {
        Level::Avx2,
        xorRangeAvx2,
        zdrEncode16Avx2,
        zdrEncode32Avx2,
        zdrEncode64Avx2,
        zdrDecode16Avx2,
        zdrDecode32Avx2,
        zdrDecode64Avx2,
        dbiEncodePlaneAvx2,
        dbiDecodePlaneAvx2,
        popcountRangeAvx2,
        popcountXorRangeAvx2,
    };
    return &table;
}

} // namespace bxt::simd::detail

#else // !(__AVX2__ && __x86_64__)

namespace bxt::simd::detail {

const KernelTable *
avx2TableOrNull()
{
    return nullptr;
}

} // namespace bxt::simd::detail

#endif
