/**
 * @file
 * AVX-512 tier (F + BW + VL + VPOPCNTDQ together; the dispatcher treats
 * the quartet as one feature). Compiled with per-file -mavx512* flags;
 * degrades to a nullptr stub when the toolchain cannot build it.
 *
 * Dword/qword popcounts use VPOPCNTDQ directly; byte/word group sums
 * fall back to the pshufb nibble LUT (BW). Lane selection runs on
 * kmask registers: compare-to-mask, maskz_set1 to materialize invert
 * masks, and masked loads/stores to handle range tails without a
 * scalar loop.
 */

#include "core/simd/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VL__) && defined(__AVX512VPOPCNTDQ__) && \
    defined(__x86_64__)

#include <immintrin.h>

#include "core/simd/kernel_common.h"

namespace bxt::simd::detail {

namespace {

inline __m512i
load512(const std::uint8_t *p)
{
    return _mm512_loadu_si512(p);
}

inline void
store512(std::uint8_t *p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

/** Per-byte popcount via the pshufb nibble LUT (no BITALG in the set). */
inline __m512i
popcountBytes512(__m512i v)
{
    // The 16-byte nibble LUT {0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4} repeated
    // per 128-bit lane, spelled as little-endian 64-bit halves (GCC's
    // _mm512_broadcast_i32x4 expands through _mm512_undefined_epi32 and
    // trips -Wmaybe-uninitialized under -Werror).
    const long long lut_lo = 0x0302020102010100ll;
    const long long lut_hi = 0x0403030203020201ll;
    const __m512i lut = _mm512_set_epi64(lut_hi, lut_lo, lut_hi, lut_lo,
                                         lut_hi, lut_lo, lut_hi, lut_lo);
    const __m512i low = _mm512_set1_epi8(0x0f);
    const __m512i lo = _mm512_and_si512(v, low);
    const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low);
    return _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                           _mm512_shuffle_epi8(lut, hi));
}

/** Sum the eight 64-bit lanes via a stack spill (GCC implements
 *  _mm512_reduce_add_epi64 through an _mm256_undefined_si256 placeholder
 *  that -Werror=uninitialized rejects when inlined). */
inline std::uint64_t
reduceAdd64(__m512i acc)
{
    alignas(64) std::uint64_t lanes[8];
    _mm512_store_si512(lanes, acc);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
           lanes[5] + lanes[6] + lanes[7];
}

void
xorRangeAvx512(std::uint8_t *out, const std::uint8_t *in,
               const std::uint8_t *base, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64)
        store512(out + i,
                 _mm512_xor_si512(load512(in + i), load512(base + i)));
    const std::size_t rem = n - i;
    if (rem != 0) {
        const __mmask64 k = (~std::uint64_t{0}) >> (64 - rem);
        const __m512i v = _mm512_maskz_loadu_epi8(k, in + i);
        const __m512i b = _mm512_maskz_loadu_epi8(k, base + i);
        _mm512_mask_storeu_epi8(out + i, k, _mm512_xor_si512(v, b));
    }
}

/** One masked ZDR-encode step over up to 32 16-bit lanes. */
inline void
zdrEncode16Masked(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, __mmask32 k, __m512i c)
{
    const __m512i v = _mm512_maskz_loadu_epi16(k, in);
    const __m512i b = _mm512_maskz_loadu_epi16(k, base);
    const __m512i x = _mm512_xor_si512(v, b);
    const __mmask32 mz = _mm512_cmpeq_epi16_mask(v, _mm512_setzero_si512());
    const __mmask32 mc = _mm512_cmpeq_epi16_mask(x, c);
    __m512i r = _mm512_mask_blend_epi16(mc, x, b);
    r = _mm512_mask_blend_epi16(mz, r, c);
    _mm512_mask_storeu_epi16(out, k, r);
}

void
zdrEncode16Avx512(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, std::size_t n)
{
    const __m512i c = _mm512_set1_epi16(static_cast<short>(zdrConst16));
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64)
        zdrEncode16Masked(out + i, in + i, base + i,
                          static_cast<__mmask32>(~0u), c);
    const std::size_t lanes = (n - i) / 2;
    if (lanes != 0)
        zdrEncode16Masked(out + i, in + i, base + i,
                          static_cast<__mmask32>((1u << lanes) - 1u), c);
}

inline void
zdrEncode32Masked(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, __mmask16 k, __m512i c)
{
    const __m512i v = _mm512_maskz_loadu_epi32(k, in);
    const __m512i b = _mm512_maskz_loadu_epi32(k, base);
    const __m512i x = _mm512_xor_si512(v, b);
    const __mmask16 mz = _mm512_cmpeq_epi32_mask(v, _mm512_setzero_si512());
    const __mmask16 mc = _mm512_cmpeq_epi32_mask(x, c);
    __m512i r = _mm512_mask_blend_epi32(mc, x, b);
    r = _mm512_mask_blend_epi32(mz, r, c);
    _mm512_mask_storeu_epi32(out, k, r);
}

void
zdrEncode32Avx512(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, std::size_t n)
{
    const __m512i c = _mm512_set1_epi32(static_cast<int>(zdrConst32));
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64)
        zdrEncode32Masked(out + i, in + i, base + i,
                          static_cast<__mmask16>(0xffffu), c);
    const std::size_t lanes = (n - i) / 4;
    if (lanes != 0)
        zdrEncode32Masked(out + i, in + i, base + i,
                          static_cast<__mmask16>((1u << lanes) - 1u), c);
}

inline void
zdrEncode64Masked(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, __mmask8 k, __m512i c)
{
    const __m512i v = _mm512_maskz_loadu_epi64(k, in);
    const __m512i b = _mm512_maskz_loadu_epi64(k, base);
    const __m512i x = _mm512_xor_si512(v, b);
    const __mmask8 mz = _mm512_cmpeq_epi64_mask(v, _mm512_setzero_si512());
    const __mmask8 mc = _mm512_cmpeq_epi64_mask(x, c);
    __m512i r = _mm512_mask_blend_epi64(mc, x, b);
    r = _mm512_mask_blend_epi64(mz, r, c);
    _mm512_mask_storeu_epi64(out, k, r);
}

void
zdrEncode64Avx512(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, std::size_t n)
{
    const __m512i c =
        _mm512_set1_epi64(static_cast<long long>(zdrConst64));
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64)
        zdrEncode64Masked(out + i, in + i, base + i,
                          static_cast<__mmask8>(0xffu), c);
    const std::size_t lanes = (n - i) / 8;
    if (lanes != 0)
        zdrEncode64Masked(out + i, in + i, base + i,
                          static_cast<__mmask8>((1u << lanes) - 1u), c);
}

inline void
zdrDecode16Masked(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, __mmask32 k, __m512i c)
{
    const __m512i v = _mm512_maskz_loadu_epi16(k, in);
    const __m512i b = _mm512_maskz_loadu_epi16(k, base);
    const __m512i x = _mm512_xor_si512(v, b);
    const __mmask32 mc = _mm512_cmpeq_epi16_mask(v, c);
    const __mmask32 mb = _mm512_cmpeq_epi16_mask(v, b);
    __m512i r = _mm512_mask_blend_epi16(mb, x, _mm512_xor_si512(b, c));
    r = _mm512_mask_blend_epi16(mc, r, _mm512_setzero_si512());
    _mm512_mask_storeu_epi16(out, k, r);
}

void
zdrDecode16Avx512(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, std::size_t n)
{
    const __m512i c = _mm512_set1_epi16(static_cast<short>(zdrConst16));
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64)
        zdrDecode16Masked(out + i, in + i, base + i,
                          static_cast<__mmask32>(~0u), c);
    const std::size_t lanes = (n - i) / 2;
    if (lanes != 0)
        zdrDecode16Masked(out + i, in + i, base + i,
                          static_cast<__mmask32>((1u << lanes) - 1u), c);
}

inline void
zdrDecode32Masked(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, __mmask16 k, __m512i c)
{
    const __m512i v = _mm512_maskz_loadu_epi32(k, in);
    const __m512i b = _mm512_maskz_loadu_epi32(k, base);
    const __m512i x = _mm512_xor_si512(v, b);
    const __mmask16 mc = _mm512_cmpeq_epi32_mask(v, c);
    const __mmask16 mb = _mm512_cmpeq_epi32_mask(v, b);
    __m512i r = _mm512_mask_blend_epi32(mb, x, _mm512_xor_si512(b, c));
    r = _mm512_mask_blend_epi32(mc, r, _mm512_setzero_si512());
    _mm512_mask_storeu_epi32(out, k, r);
}

void
zdrDecode32Avx512(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, std::size_t n)
{
    const __m512i c = _mm512_set1_epi32(static_cast<int>(zdrConst32));
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64)
        zdrDecode32Masked(out + i, in + i, base + i,
                          static_cast<__mmask16>(0xffffu), c);
    const std::size_t lanes = (n - i) / 4;
    if (lanes != 0)
        zdrDecode32Masked(out + i, in + i, base + i,
                          static_cast<__mmask16>((1u << lanes) - 1u), c);
}

inline void
zdrDecode64Masked(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, __mmask8 k, __m512i c)
{
    const __m512i v = _mm512_maskz_loadu_epi64(k, in);
    const __m512i b = _mm512_maskz_loadu_epi64(k, base);
    const __m512i x = _mm512_xor_si512(v, b);
    const __mmask8 mc = _mm512_cmpeq_epi64_mask(v, c);
    const __mmask8 mb = _mm512_cmpeq_epi64_mask(v, b);
    __m512i r = _mm512_mask_blend_epi64(mb, x, _mm512_xor_si512(b, c));
    r = _mm512_mask_blend_epi64(mc, r, _mm512_setzero_si512());
    _mm512_mask_storeu_epi64(out, k, r);
}

void
zdrDecode64Avx512(std::uint8_t *out, const std::uint8_t *in,
                  const std::uint8_t *base, std::size_t n)
{
    const __m512i c =
        _mm512_set1_epi64(static_cast<long long>(zdrConst64));
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64)
        zdrDecode64Masked(out + i, in + i, base + i,
                          static_cast<__mmask8>(0xffu), c);
    const std::size_t lanes = (n - i) / 8;
    if (lanes != 0)
        zdrDecode64Masked(out + i, in + i, base + i,
                          static_cast<__mmask8>((1u << lanes) - 1u), c);
}

void
dbiEncodePlaneAvx512(std::uint8_t *data, std::uint8_t *meta,
                     std::size_t groups, std::size_t group_bytes)
{
    const std::size_t per_vec = 64 / group_bytes;
    std::size_t g = 0;
    for (; g + per_vec <= groups; g += per_vec) {
        std::uint8_t *block = data + g * group_bytes;
        const __m512i v = load512(block);
        __m512i invert;
        if (group_bytes == 1) {
            const __m512i cnt = popcountBytes512(v);
            const __mmask64 k =
                _mm512_cmpgt_epi8_mask(cnt, _mm512_set1_epi8(4));
            invert = _mm512_maskz_set1_epi8(k, -1);
            _mm512_storeu_si512(meta + g, _mm512_maskz_set1_epi8(k, 1));
        } else if (group_bytes == 2) {
            const __m512i cnt = popcountBytes512(v);
            const __m512i sums =
                _mm512_maddubs_epi16(cnt, _mm512_set1_epi8(1));
            const __mmask32 k =
                _mm512_cmpgt_epi16_mask(sums, _mm512_set1_epi16(8));
            invert = _mm512_maskz_set1_epi16(k, -1);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(meta + g),
                                _mm256_maskz_set1_epi8(k, 1));
        } else if (group_bytes == 4) {
            const __m512i cnt = _mm512_popcnt_epi32(v);
            const __mmask16 k =
                _mm512_cmpgt_epi32_mask(cnt, _mm512_set1_epi32(16));
            invert = _mm512_maskz_set1_epi32(k, -1);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(meta + g),
                             _mm_maskz_set1_epi8(k, 1));
        } else { // group_bytes == 8
            const __m512i cnt = _mm512_popcnt_epi64(v);
            const __mmask8 k =
                _mm512_cmpgt_epi64_mask(cnt, _mm512_set1_epi64(32));
            invert = _mm512_maskz_set1_epi64(k, -1);
            _mm_storel_epi64(
                reinterpret_cast<__m128i *>(meta + g),
                _mm_maskz_set1_epi8(static_cast<__mmask16>(k), 1));
        }
        store512(block, _mm512_xor_si512(v, invert));
    }
    dbiEncodePlaneWord(data + g * group_bytes, meta + g, groups - g,
                       group_bytes);
}

void
dbiDecodePlaneAvx512(std::uint8_t *data, const std::uint8_t *meta,
                     std::size_t groups, std::size_t group_bytes)
{
    const std::size_t per_vec = 64 / group_bytes;
    std::size_t g = 0;
    for (; g + per_vec <= groups; g += per_vec) {
        std::uint8_t *block = data + g * group_bytes;
        __m512i invert;
        if (group_bytes == 1) {
            const __m512i mb = _mm512_loadu_si512(meta + g);
            invert = _mm512_maskz_set1_epi8(
                _mm512_test_epi8_mask(mb, mb), -1);
        } else if (group_bytes == 2) {
            const __m256i mb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(meta + g));
            invert = _mm512_maskz_set1_epi16(
                _mm256_test_epi8_mask(mb, mb), -1);
        } else if (group_bytes == 4) {
            const __m128i mb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(meta + g));
            invert = _mm512_maskz_set1_epi32(
                _mm_test_epi8_mask(mb, mb), -1);
        } else { // group_bytes == 8
            const __m128i mb = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(meta + g));
            invert = _mm512_maskz_set1_epi64(
                static_cast<__mmask8>(_mm_test_epi8_mask(mb, mb)), -1);
        }
        store512(block, _mm512_xor_si512(load512(block), invert));
    }
    dbiDecodePlaneWord(data + g * group_bytes, meta + g, groups - g,
                       group_bytes);
}

std::uint64_t
popcountRangeAvx512(const std::uint8_t *src, std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64)
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(load512(src + i)));
    const std::size_t rem = n - i;
    if (rem != 0) {
        const __mmask64 k = (~std::uint64_t{0}) >> (64 - rem);
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi8(k, src + i)));
    }
    return reduceAdd64(acc);
}

std::uint64_t
popcountXorRangeAvx512(const std::uint8_t *a, const std::uint8_t *b,
                       std::size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(
                     _mm512_xor_si512(load512(a + i), load512(b + i))));
    const std::size_t rem = n - i;
    if (rem != 0) {
        const __mmask64 k = (~std::uint64_t{0}) >> (64 - rem);
        const __m512i x =
            _mm512_xor_si512(_mm512_maskz_loadu_epi8(k, a + i),
                             _mm512_maskz_loadu_epi8(k, b + i));
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
    }
    return reduceAdd64(acc);
}

} // namespace

const KernelTable *
avx512TableOrNull()
{
    static const KernelTable table = {
        Level::Avx512,
        xorRangeAvx512,
        zdrEncode16Avx512,
        zdrEncode32Avx512,
        zdrEncode64Avx512,
        zdrDecode16Avx512,
        zdrDecode32Avx512,
        zdrDecode64Avx512,
        dbiEncodePlaneAvx512,
        dbiDecodePlaneAvx512,
        popcountRangeAvx512,
        popcountXorRangeAvx512,
    };
    return &table;
}

} // namespace bxt::simd::detail

#else // missing AVX-512 feature set

namespace bxt::simd::detail {

const KernelTable *
avx512TableOrNull()
{
    return nullptr;
}

} // namespace bxt::simd::detail

#endif
