/**
 * @file
 * NEON tier for aarch64 builds (128-bit, always present on aarch64, so
 * no runtime feature check is needed). Compiles to a nullptr stub on
 * every other target. vcntq_u8 supplies byte popcounts; widening
 * pairwise adds (vpaddlq) build the per-group sums, and vbslq selects
 * reproduce the scalar ZDR precedence.
 */

#include "core/simd/kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include "core/simd/kernel_common.h"

namespace bxt::simd::detail {

namespace {

inline uint8x16_t
load128(const std::uint8_t *p)
{
    return vld1q_u8(p);
}

inline void
store128(std::uint8_t *p, uint8x16_t v)
{
    vst1q_u8(p, v);
}

void
xorRangeNeon(std::uint8_t *out, const std::uint8_t *in,
             const std::uint8_t *base, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        store128(out + i, veorq_u8(load128(in + i), load128(base + i)));
    xorWordRange(out + i, in + i, base + i, n - i);
}

void
zdrEncode16Neon(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const uint16x8_t zero = vdupq_n_u16(0);
    const uint16x8_t c = vdupq_n_u16(zdrConst16);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint16x8_t v = vreinterpretq_u16_u8(load128(in + i));
        const uint16x8_t b = vreinterpretq_u16_u8(load128(base + i));
        const uint16x8_t x = veorq_u16(v, b);
        uint16x8_t r = vbslq_u16(vceqq_u16(x, c), b, x);
        r = vbslq_u16(vceqq_u16(v, zero), c, r);
        store128(out + i, vreinterpretq_u8_u16(r));
    }
    zdrEncode16WordRange(out + i, in + i, base + i, n - i);
}

void
zdrEncode32Neon(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const uint32x4_t zero = vdupq_n_u32(0);
    const uint32x4_t c = vdupq_n_u32(zdrConst32);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint32x4_t v = vreinterpretq_u32_u8(load128(in + i));
        const uint32x4_t b = vreinterpretq_u32_u8(load128(base + i));
        const uint32x4_t x = veorq_u32(v, b);
        uint32x4_t r = vbslq_u32(vceqq_u32(x, c), b, x);
        r = vbslq_u32(vceqq_u32(v, zero), c, r);
        store128(out + i, vreinterpretq_u8_u32(r));
    }
    zdrEncode32WordRange(out + i, in + i, base + i, n - i);
}

void
zdrEncode64Neon(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const uint64x2_t zero = vdupq_n_u64(0);
    const uint64x2_t c = vdupq_n_u64(zdrConst64);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint64x2_t v = vreinterpretq_u64_u8(load128(in + i));
        const uint64x2_t b = vreinterpretq_u64_u8(load128(base + i));
        const uint64x2_t x = veorq_u64(v, b);
        uint64x2_t r = vbslq_u64(vceqq_u64(x, c), b, x);
        r = vbslq_u64(vceqq_u64(v, zero), c, r);
        store128(out + i, vreinterpretq_u8_u64(r));
    }
    zdrEncode64WordRange(out + i, in + i, base + i, n - i);
}

void
zdrDecode16Neon(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const uint16x8_t zero = vdupq_n_u16(0);
    const uint16x8_t c = vdupq_n_u16(zdrConst16);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint16x8_t v = vreinterpretq_u16_u8(load128(in + i));
        const uint16x8_t b = vreinterpretq_u16_u8(load128(base + i));
        const uint16x8_t x = veorq_u16(v, b);
        uint16x8_t r = vbslq_u16(vceqq_u16(v, b), veorq_u16(b, c), x);
        r = vbslq_u16(vceqq_u16(v, c), zero, r);
        store128(out + i, vreinterpretq_u8_u16(r));
    }
    zdrDecode16WordRange(out + i, in + i, base + i, n - i);
}

void
zdrDecode32Neon(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const uint32x4_t zero = vdupq_n_u32(0);
    const uint32x4_t c = vdupq_n_u32(zdrConst32);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint32x4_t v = vreinterpretq_u32_u8(load128(in + i));
        const uint32x4_t b = vreinterpretq_u32_u8(load128(base + i));
        const uint32x4_t x = veorq_u32(v, b);
        uint32x4_t r = vbslq_u32(vceqq_u32(v, b), veorq_u32(b, c), x);
        r = vbslq_u32(vceqq_u32(v, c), zero, r);
        store128(out + i, vreinterpretq_u8_u32(r));
    }
    zdrDecode32WordRange(out + i, in + i, base + i, n - i);
}

void
zdrDecode64Neon(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    const uint64x2_t zero = vdupq_n_u64(0);
    const uint64x2_t c = vdupq_n_u64(zdrConst64);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint64x2_t v = vreinterpretq_u64_u8(load128(in + i));
        const uint64x2_t b = vreinterpretq_u64_u8(load128(base + i));
        const uint64x2_t x = veorq_u64(v, b);
        uint64x2_t r = vbslq_u64(vceqq_u64(v, b), veorq_u64(b, c), x);
        r = vbslq_u64(vceqq_u64(v, c), zero, r);
        store128(out + i, vreinterpretq_u8_u64(r));
    }
    zdrDecode64WordRange(out + i, in + i, base + i, n - i);
}

void
dbiEncodePlaneNeon(std::uint8_t *data, std::uint8_t *meta,
                   std::size_t groups, std::size_t group_bytes)
{
    const std::size_t per_vec = 16 / group_bytes;
    std::size_t g = 0;
    for (; g + per_vec <= groups; g += per_vec) {
        std::uint8_t *block = data + g * group_bytes;
        const uint8x16_t v = load128(block);
        const uint8x16_t cnt = vcntq_u8(v);
        uint8x16_t invert;
        if (group_bytes == 1) {
            const uint8x16_t mask = vcgtq_u8(cnt, vdupq_n_u8(4));
            invert = mask;
            store128(meta + g, vandq_u8(mask, vdupq_n_u8(1)));
        } else if (group_bytes == 2) {
            const uint16x8_t sums = vpaddlq_u8(cnt);
            const uint16x8_t mask = vcgtq_u16(sums, vdupq_n_u16(8));
            invert = vreinterpretq_u8_u16(mask);
            const uint8x8_t bytes =
                vand_u8(vmovn_u16(mask), vdup_n_u8(1));
            vst1_u8(meta + g, bytes);
        } else if (group_bytes == 4) {
            const uint32x4_t sums = vpaddlq_u16(vpaddlq_u8(cnt));
            const uint32x4_t mask = vcgtq_u32(sums, vdupq_n_u32(16));
            invert = vreinterpretq_u8_u32(mask);
            const uint16x4_t n16 = vmovn_u32(mask);
            const uint8x8_t bytes = vand_u8(
                vmovn_u16(vcombine_u16(n16, vdup_n_u16(0))),
                vdup_n_u8(1));
            std::uint8_t tmp[8];
            vst1_u8(tmp, bytes);
            std::memcpy(meta + g, tmp, 4);
        } else { // group_bytes == 8
            const uint64x2_t sums =
                vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt)));
            const uint64x2_t mask = vcgtq_u64(sums, vdupq_n_u64(32));
            invert = vreinterpretq_u8_u64(mask);
            meta[g] =
                static_cast<std::uint8_t>(vgetq_lane_u64(mask, 0) & 1);
            meta[g + 1] =
                static_cast<std::uint8_t>(vgetq_lane_u64(mask, 1) & 1);
        }
        store128(block, veorq_u8(v, invert));
    }
    dbiEncodePlaneWord(data + g * group_bytes, meta + g, groups - g,
                       group_bytes);
}

void
dbiDecodePlaneNeon(std::uint8_t *data, const std::uint8_t *meta,
                   std::size_t groups, std::size_t group_bytes)
{
    const std::size_t per_vec = 16 / group_bytes;
    std::size_t g = 0;
    for (; g + per_vec <= groups; g += per_vec) {
        std::uint8_t *block = data + g * group_bytes;
        uint8x16_t invert;
        if (group_bytes == 1) {
            invert = vcgtq_u8(load128(meta + g), vdupq_n_u8(0));
        } else if (group_bytes == 2) {
            const uint16x8_t wide = vmovl_u8(vld1_u8(meta + g));
            invert = vreinterpretq_u8_u16(vcgtq_u16(wide, vdupq_n_u16(0)));
        } else if (group_bytes == 4) {
            std::uint8_t tmp[8] = {0, 0, 0, 0, 0, 0, 0, 0};
            std::memcpy(tmp, meta + g, 4);
            const uint32x4_t wide =
                vmovl_u16(vget_low_u16(vmovl_u8(vld1_u8(tmp))));
            invert = vreinterpretq_u8_u32(vcgtq_u32(wide, vdupq_n_u32(0)));
        } else { // group_bytes == 8
            const uint64x2_t mask = vcombine_u64(
                vdup_n_u64(meta[g] != 0 ? ~std::uint64_t{0} : 0),
                vdup_n_u64(meta[g + 1] != 0 ? ~std::uint64_t{0} : 0));
            invert = vreinterpretq_u8_u64(mask);
        }
        store128(block, veorq_u8(load128(block), invert));
    }
    dbiDecodePlaneWord(data + g * group_bytes, meta + g, groups - g,
                       group_bytes);
}

std::uint64_t
popcountRangeNeon(const std::uint8_t *src, std::size_t n)
{
    uint64x2_t acc = vdupq_n_u64(0);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t cnt = vcntq_u8(load128(src + i));
        acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
    }
    return vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1) +
           popcountWordRange(src + i, n - i);
}

std::uint64_t
popcountXorRangeNeon(const std::uint8_t *a, const std::uint8_t *b,
                     std::size_t n)
{
    uint64x2_t acc = vdupq_n_u64(0);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const uint8x16_t cnt =
            vcntq_u8(veorq_u8(load128(a + i), load128(b + i)));
        acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
    }
    return vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1) +
           popcountXorWordRange(a + i, b + i, n - i);
}

} // namespace

const KernelTable *
neonTableOrNull()
{
    static const KernelTable table = {
        Level::Neon,
        xorRangeNeon,
        zdrEncode16Neon,
        zdrEncode32Neon,
        zdrEncode64Neon,
        zdrDecode16Neon,
        zdrDecode32Neon,
        zdrDecode64Neon,
        dbiEncodePlaneNeon,
        dbiDecodePlaneNeon,
        popcountRangeNeon,
        popcountXorRangeNeon,
    };
    return &table;
}

} // namespace bxt::simd::detail

#else // not an aarch64 NEON target

namespace bxt::simd::detail {

const KernelTable *
neonTableOrNull()
{
    return nullptr;
}

} // namespace bxt::simd::detail

#endif
