/**
 * @file
 * Scalar tier: strict byte-at-a-time loops. This is the reference every
 * other tier must match bit for bit; it deliberately avoids word loads
 * so a bug in the word/vector paths cannot hide in shared code.
 */

#include "core/simd/kernels.h"

namespace bxt::simd::detail {

namespace {

constexpr std::uint8_t zdrByte = 0x40; // core/zdr.h zdrConstantByte

void
xorRangeScalar(std::uint8_t *out, const std::uint8_t *in,
               const std::uint8_t *base, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(in[i] ^ base[i]);
}

/** Lane classification without word loads: the ZDR constant is zdrByte
 *  in the most-significant (last little-endian) byte, zero elsewhere. */
bool
laneIsZero(const std::uint8_t *lane, std::size_t bytes)
{
    for (std::size_t i = 0; i < bytes; ++i) {
        if (lane[i] != 0)
            return false;
    }
    return true;
}

bool
laneXorIsConstant(const std::uint8_t *a, const std::uint8_t *b,
                  std::size_t bytes)
{
    for (std::size_t i = 0; i + 1 < bytes; ++i) {
        if ((a[i] ^ b[i]) != 0)
            return false;
    }
    return (a[bytes - 1] ^ b[bytes - 1]) == zdrByte;
}

template <std::size_t Bytes>
void
zdrEncodeScalar(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    for (std::size_t off = 0; off < n; off += Bytes) {
        const std::uint8_t *lane = in + off;
        const std::uint8_t *b = base + off;
        std::uint8_t *dst = out + off;
        if (laneIsZero(lane, Bytes)) {
            for (std::size_t i = 0; i + 1 < Bytes; ++i)
                dst[i] = 0;
            dst[Bytes - 1] = zdrByte;
        } else if (laneXorIsConstant(lane, b, Bytes)) {
            for (std::size_t i = 0; i < Bytes; ++i)
                dst[i] = b[i];
        } else {
            for (std::size_t i = 0; i < Bytes; ++i)
                dst[i] = static_cast<std::uint8_t>(lane[i] ^ b[i]);
        }
    }
}

template <std::size_t Bytes>
void
zdrDecodeScalar(std::uint8_t *out, const std::uint8_t *in,
                const std::uint8_t *base, std::size_t n)
{
    for (std::size_t off = 0; off < n; off += Bytes) {
        const std::uint8_t *lane = in + off;
        const std::uint8_t *b = base + off;
        std::uint8_t *dst = out + off;
        bool is_constant = lane[Bytes - 1] == zdrByte;
        bool is_base = lane[Bytes - 1] == b[Bytes - 1];
        for (std::size_t i = 0; i + 1 < Bytes; ++i) {
            is_constant = is_constant && lane[i] == 0;
            is_base = is_base && lane[i] == b[i];
        }
        if (is_constant) {
            for (std::size_t i = 0; i < Bytes; ++i)
                dst[i] = 0;
        } else if (is_base) {
            for (std::size_t i = 0; i + 1 < Bytes; ++i)
                dst[i] = b[i];
            dst[Bytes - 1] = static_cast<std::uint8_t>(b[Bytes - 1] ^
                                                       zdrByte);
        } else {
            for (std::size_t i = 0; i < Bytes; ++i)
                dst[i] = static_cast<std::uint8_t>(lane[i] ^ b[i]);
        }
    }
}

int
popcountByte(std::uint8_t value)
{
    int count = 0;
    for (; value != 0; value = static_cast<std::uint8_t>(value >> 1))
        count += value & 1;
    return count;
}

void
dbiEncodePlaneScalar(std::uint8_t *data, std::uint8_t *meta,
                     std::size_t groups, std::size_t group_bytes)
{
    for (std::size_t g = 0; g < groups; ++g) {
        std::uint8_t *group = data + g * group_bytes;
        std::size_t ones = 0;
        for (std::size_t i = 0; i < group_bytes; ++i)
            ones += static_cast<std::size_t>(popcountByte(group[i]));
        const bool invert = ones > group_bytes * 4;
        if (invert) {
            for (std::size_t i = 0; i < group_bytes; ++i)
                group[i] = static_cast<std::uint8_t>(~group[i]);
        }
        meta[g] = invert ? 1 : 0;
    }
}

void
dbiDecodePlaneScalar(std::uint8_t *data, const std::uint8_t *meta,
                     std::size_t groups, std::size_t group_bytes)
{
    for (std::size_t g = 0; g < groups; ++g) {
        if (meta[g] == 0)
            continue;
        std::uint8_t *group = data + g * group_bytes;
        for (std::size_t i = 0; i < group_bytes; ++i)
            group[i] = static_cast<std::uint8_t>(~group[i]);
    }
}

std::uint64_t
popcountRangeScalar(const std::uint8_t *src, std::size_t n)
{
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += static_cast<std::uint64_t>(popcountByte(src[i]));
    return count;
}

std::uint64_t
popcountXorRangeScalar(const std::uint8_t *a, const std::uint8_t *b,
                       std::size_t n)
{
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += static_cast<std::uint64_t>(
            popcountByte(static_cast<std::uint8_t>(a[i] ^ b[i])));
    return count;
}

} // namespace

const KernelTable &
scalarTable()
{
    static const KernelTable table = {
        Level::Scalar,
        xorRangeScalar,
        zdrEncodeScalar<2>,
        zdrEncodeScalar<4>,
        zdrEncodeScalar<8>,
        zdrDecodeScalar<2>,
        zdrDecodeScalar<4>,
        zdrDecodeScalar<8>,
        dbiEncodePlaneScalar,
        dbiDecodePlaneScalar,
        popcountRangeScalar,
        popcountXorRangeScalar,
    };
    return table;
}

} // namespace bxt::simd::detail
