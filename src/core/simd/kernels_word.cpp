/**
 * @file
 * Word tier: the 64-bit-word formulations the batch kernels used before
 * runtime dispatch existed (PR 5). Always available; serves as the
 * baseline the bench level sweep measures the vector tiers against.
 */

#include "core/simd/kernel_common.h"
#include "core/simd/kernels.h"

namespace bxt::simd::detail {

const KernelTable &
wordTable()
{
    static const KernelTable table = {
        Level::Word,
        xorWordRange,
        zdrEncode16WordRange,
        zdrEncode32WordRange,
        zdrEncode64WordRange,
        zdrDecode16WordRange,
        zdrDecode32WordRange,
        zdrDecode64WordRange,
        dbiEncodePlaneWord,
        dbiDecodePlaneWord,
        popcountWordRange,
        popcountXorWordRange,
    };
    return table;
}

} // namespace bxt::simd::detail
