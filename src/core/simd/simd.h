/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the batch codec core.
 *
 * The batch kernels (Base+XOR cascade, ZDR word remap, Universal fold,
 * DBI popcount-and-invert) and the bus ones/toggle accounting all reduce
 * to a small set of plane-level primitives. This module provides those
 * primitives behind a function-pointer table selected once at runtime:
 *
 *   Level::Scalar  byte-at-a-time loops (the differential reference)
 *   Level::Word    64-bit word loops (the PR 5 hand-written kernels)
 *   Level::Neon    128-bit NEON (aarch64 builds only)
 *   Level::Avx2    256-bit AVX2 (x86-64, detected via CPUID + XGETBV)
 *   Level::Avx512  512-bit AVX-512 F+BW+VL+VPOPCNTDQ
 *
 * One binary carries every level its compiler could build (the vector
 * translation units get per-file -m flags; see src/core/CMakeLists.txt)
 * and picks the best one the running CPU supports. The `BXT_SIMD`
 * environment variable forces a level by name ("scalar", "word", "neon",
 * "avx2", "avx512"); an unsupported request clamps down to the best
 * supported level at or below it, and an unrecognized value falls back
 * to Scalar — both with a one-line warning on stderr, never an abort.
 *
 * Every level is bit-identical to Scalar by contract; tests/test_simd.cpp
 * checks the primitives directly and replays the golden corpus plus the
 * batch differential fuzzer at every supported level.
 */

#ifndef BXT_CORE_SIMD_SIMD_H
#define BXT_CORE_SIMD_SIMD_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bxt::simd {

/** Kernel implementation tiers, in dispatch-preference order. */
enum class Level : int
{
    Scalar = 0, ///< Byte loops; always available, the reference tier.
    Word = 1,   ///< 64-bit word loops; always available.
    Neon = 2,   ///< 128-bit NEON (aarch64 builds).
    Avx2 = 3,   ///< 256-bit AVX2.
    Avx512 = 4, ///< 512-bit AVX-512 (F+BW+VL+VPOPCNTDQ).
};

/**
 * The primitive set every level implements. All ranges are byte counts;
 * `out` may alias `in` (in-place), but `base` must not overlap `out`.
 * The zdr* entries require `n` to be a multiple of the lane size
 * (2/4/8 bytes); lanes are little-endian words exactly as in core/zdr.h.
 */
struct KernelTable
{
    Level level = Level::Scalar;

    /** out[i] = in[i] ^ base[i]. */
    void (*xorRange)(std::uint8_t *out, const std::uint8_t *in,
                     const std::uint8_t *base, std::size_t n);

    /** ZDR-encode each lane of @p in against the matching lane of
     *  @p base (input == 0 -> C, input == base^C -> base, else XOR). */
    void (*zdrEncode16)(std::uint8_t *out, const std::uint8_t *in,
                        const std::uint8_t *base, std::size_t n);
    void (*zdrEncode32)(std::uint8_t *out, const std::uint8_t *in,
                        const std::uint8_t *base, std::size_t n);
    void (*zdrEncode64)(std::uint8_t *out, const std::uint8_t *in,
                        const std::uint8_t *base, std::size_t n);

    /** Inverse of the matching zdrEncode given the same @p base. */
    void (*zdrDecode16)(std::uint8_t *out, const std::uint8_t *in,
                        const std::uint8_t *base, std::size_t n);
    void (*zdrDecode32)(std::uint8_t *out, const std::uint8_t *in,
                        const std::uint8_t *base, std::size_t n);
    void (*zdrDecode64)(std::uint8_t *out, const std::uint8_t *in,
                        const std::uint8_t *base, std::size_t n);

    /**
     * DBI-DC over a contiguous plane of @p groups groups of
     * @p group_bytes (1/2/4/8) bytes each: invert a group in place when
     * its popcount exceeds group_bytes*4, writing one 0/1 polarity byte
     * per group into @p meta.
     */
    void (*dbiEncodePlane)(std::uint8_t *data, std::uint8_t *meta,
                           std::size_t groups, std::size_t group_bytes);

    /** Inverse: re-invert every group whose @p meta byte is nonzero. */
    void (*dbiDecodePlane)(std::uint8_t *data, const std::uint8_t *meta,
                           std::size_t groups, std::size_t group_bytes);

    /** Total `1` bits in @p src. */
    std::uint64_t (*popcountRange)(const std::uint8_t *src, std::size_t n);

    /** Total `1` bits in a[i] ^ b[i] (the toggle count of two beats). */
    std::uint64_t (*popcountXorRange)(const std::uint8_t *a,
                                      const std::uint8_t *b, std::size_t n);
};

/**
 * The active kernel table. First use resolves the level: `BXT_SIMD` if
 * set (see resolveRequestedLevel), otherwise the best the CPU supports.
 * The resolved level is exported as the `bxt.simd.level` telemetry gauge
 * (numeric Level value) so snapshots and bxtd Stats report it.
 */
const KernelTable &ops();

/** The level ops() currently dispatches to. */
Level activeLevel();

/**
 * Force the active level (tests and the bench level sweep). Unsupported
 * levels clamp to the best supported level ranked at or below the
 * request. Returns the level actually installed.
 */
Level setActiveLevel(Level level);

/** Best level supported by this binary on this CPU. */
Level bestLevel();

/** True when this binary can run @p level on this CPU. */
bool levelSupported(Level level);

/** Every supported level, Scalar first. */
std::vector<Level> supportedLevels();

/** Lower-case level name ("scalar", "word", "neon", "avx2", "avx512"). */
const char *levelName(Level level);

/** Parse a level name (case-insensitive); nullopt when unrecognized. */
std::optional<Level> parseLevel(std::string_view name);

/**
 * Resolve a `BXT_SIMD` request to an installable level: nullptr/empty
 * means bestLevel(); an unsupported-but-valid name clamps down; an
 * unrecognized value yields Level::Scalar. When the request could not be
 * honored exactly, @p warning (if non-null) receives a one-line
 * explanation, otherwise it is left empty.
 */
Level resolveRequestedLevel(const char *value, std::string *warning);

/** The level forced via BXT_SIMD, if that variable is set and valid. */
std::optional<Level> envForcedLevel();

} // namespace bxt::simd

#endif // BXT_CORE_SIMD_SIMD_H
