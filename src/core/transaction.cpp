#include "core/transaction.h"

#include <cctype>
#include <cstring>

#include "common/bitops.h"
#include "common/error.h"

namespace bxt {
namespace {

bool
validSize(std::size_t size)
{
    return isPowerOfTwo(size) && size >= Transaction::minBytes &&
           size <= Transaction::maxBytes;
}

} // namespace

Transaction::Transaction(std::size_t size) : size_(size)
{
    BXT_ASSERT(validSize(size));
    data_.fill(0);
}

Transaction::Transaction(std::span<const std::uint8_t> bytes)
    : size_(bytes.size())
{
    BXT_ASSERT(validSize(size_));
    data_.fill(0);
    std::memcpy(data_.data(), bytes.data(), size_);
}

Transaction
Transaction::fromWords32(std::initializer_list<std::uint32_t> words)
{
    Transaction tx(words.size() * 4);
    std::size_t offset = 0;
    for (std::uint32_t w : words) {
        tx.setWord32(offset, w);
        offset += 4;
    }
    return tx;
}

Transaction
Transaction::fromWords64(std::initializer_list<std::uint64_t> words)
{
    Transaction tx(words.size() * 8);
    std::size_t offset = 0;
    for (std::uint64_t w : words) {
        tx.setWord64(offset, w);
        offset += 8;
    }
    return tx;
}

Transaction
Transaction::fromHex(const std::string &hex)
{
    std::string digits;
    digits.reserve(hex.size());
    for (char c : hex) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            fatal("Transaction::fromHex: non-hex character in input");
        digits += c;
    }
    if (digits.size() % 2 != 0 || !validSize(digits.size() / 2))
        fatal("Transaction::fromHex: bad input length");

    auto nibble = [](char c) -> std::uint8_t {
        if (c >= '0' && c <= '9')
            return static_cast<std::uint8_t>(c - '0');
        if (c >= 'a' && c <= 'f')
            return static_cast<std::uint8_t>(c - 'a' + 10);
        return static_cast<std::uint8_t>(c - 'A' + 10);
    };

    Transaction tx(digits.size() / 2);
    for (std::size_t i = 0; i < tx.size(); ++i) {
        tx.data()[i] = static_cast<std::uint8_t>(
            (nibble(digits[2 * i]) << 4) | nibble(digits[2 * i + 1]));
    }
    return tx;
}

std::size_t
Transaction::ones() const
{
    return popcountBytes(bytes());
}

bool
Transaction::isZero() const
{
    return allZero(data_.data(), size_);
}

std::uint32_t
Transaction::word32(std::size_t offset) const
{
    BXT_ASSERT(offset + 4 <= size_);
    return loadWord32(data_.data() + offset);
}

void
Transaction::setWord32(std::size_t offset, std::uint32_t value)
{
    BXT_ASSERT(offset + 4 <= size_);
    storeWord32(data_.data() + offset, value);
}

std::uint64_t
Transaction::word64(std::size_t offset) const
{
    BXT_ASSERT(offset + 8 <= size_);
    return loadWord64(data_.data() + offset);
}

void
Transaction::setWord64(std::size_t offset, std::uint64_t value)
{
    BXT_ASSERT(offset + 8 <= size_);
    storeWord64(data_.data() + offset, value);
}

std::string
Transaction::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(size_ * 2 + size_ / 4);
    for (std::size_t i = 0; i < size_; ++i) {
        if (i != 0 && i % 4 == 0)
            out += ' ';
        out += digits[data_[i] >> 4];
        out += digits[data_[i] & 0xf];
    }
    return out;
}

bool
Transaction::operator==(const Transaction &other) const
{
    return size_ == other.size_ &&
           std::memcmp(data_.data(), other.data_.data(), size_) == 0;
}

} // namespace bxt
