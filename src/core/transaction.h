/**
 * @file
 * Transaction: the unit of data the encoders operate on.
 *
 * In the paper's GPU system a DRAM transaction is one 32-byte cache sector
 * sent over a 32-bit GDDR5X channel in eight beats. The CPU evaluation
 * (Figure 18) uses 64-byte DDR4 cachelines. Transaction therefore supports
 * any power-of-two size from 8 to 64 bytes, stored inline (no heap).
 */

#ifndef BXT_CORE_TRANSACTION_H
#define BXT_CORE_TRANSACTION_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

namespace bxt {

/**
 * A fixed-size block of bytes transferred over the DRAM channel in one
 * burst. Byte 0 is the first byte on the wire (little-endian word layout:
 * a 32-bit element's bytes appear in memory order, so the paper's value
 * 0x390c9bfb occupies bytes {fb, 9b, 0c, 39}).
 */
class Transaction
{
  public:
    /** Largest supported transaction (a 64-byte CPU cacheline). */
    static constexpr std::size_t maxBytes = 64;

    /** Smallest supported transaction. */
    static constexpr std::size_t minBytes = 8;

    /** Construct an all-zero transaction of @p size bytes (power of two). */
    explicit Transaction(std::size_t size = 32);

    /** Construct from raw bytes; @p bytes.size() must be a valid size. */
    explicit Transaction(std::span<const std::uint8_t> bytes);

    /**
     * Build a transaction from 32-bit words given in logical (hex-literal)
     * form, e.g. {0x390c9bfb, ...}; words are stored little-endian in
     * ascending byte order. Convenient for reproducing the paper's figures.
     */
    static Transaction fromWords32(std::initializer_list<std::uint32_t> words);

    /** Build from 64-bit words, analogous to fromWords32(). */
    static Transaction fromWords64(std::initializer_list<std::uint64_t> words);

    /**
     * Parse from a hex string of 2·size() digits (whitespace allowed),
     * byte 0 first: "fb9b0c39..." — aborts the program on bad input length
     * or non-hex characters via fatal().
     */
    static Transaction fromHex(const std::string &hex);

    /** Transaction size in bytes. */
    std::size_t size() const { return size_; }

    /** Mutable view of the payload bytes. */
    std::span<std::uint8_t> bytes() { return {data_.data(), size_}; }

    /** Read-only view of the payload bytes. */
    std::span<const std::uint8_t> bytes() const
    {
        return {data_.data(), size_};
    }

    /** Raw pointer to byte 0. */
    std::uint8_t *data() { return data_.data(); }

    /** Raw const pointer to byte 0. */
    const std::uint8_t *data() const { return data_.data(); }

    /** Number of `1` bits in the payload. */
    std::size_t ones() const;

    /** True iff every payload byte is zero. */
    bool isZero() const;

    /** Read the 32-bit little-endian word at byte offset @p offset. */
    std::uint32_t word32(std::size_t offset) const;

    /** Write the 32-bit little-endian word at byte offset @p offset. */
    void setWord32(std::size_t offset, std::uint32_t value);

    /** Read the 64-bit little-endian word at byte offset @p offset. */
    std::uint64_t word64(std::size_t offset) const;

    /** Write the 64-bit little-endian word at byte offset @p offset. */
    void setWord64(std::size_t offset, std::uint64_t value);

    /** Hex rendering, byte 0 first, one space every 4 bytes. */
    std::string toHex() const;

    bool operator==(const Transaction &other) const;

  private:
    std::size_t size_;
    alignas(8) std::array<std::uint8_t, maxBytes> data_;
};

} // namespace bxt

#endif // BXT_CORE_TRANSACTION_H
