#include "core/universal_xor.h"

#include <algorithm>
#include <cstring>

#include "common/bitops.h"
#include "common/error.h"
#include "core/simd/kernel_common.h"
#include "core/simd/simd.h"
#include "core/zdr.h"

namespace bxt {

UniversalXorCodec::UniversalXorCodec(unsigned stages, bool zdr,
                                     std::size_t zdr_lane)
    : stages_(stages), zdr_(zdr), zdr_lane_(zdr_lane)
{
    BXT_ASSERT(stages >= 1 && stages <= 5);
    BXT_ASSERT(isPowerOfTwo(zdr_lane) && zdr_lane >= 2 && zdr_lane <= 16);
}

std::string
UniversalXorCodec::name() const
{
    std::string n = "universal" + std::to_string(stages_);
    if (zdr_)
        n += "+zdr";
    return n;
}

unsigned
UniversalXorCodec::clampedStages(std::size_t tx_bytes) const
{
    // After s stages the base is tx_bytes >> s; keep it >= 2 bytes.
    unsigned max_stages = 0;
    while ((tx_bytes >> (max_stages + 1)) >= 2)
        ++max_stages;
    return std::min(stages_, max_stages);
}

std::size_t
UniversalXorCodec::effectiveBaseBytes(std::size_t tx_bytes) const
{
    return tx_bytes >> clampedStages(tx_bytes);
}

void
UniversalXorCodec::foldInPlace(std::uint8_t *data, std::size_t size) const
{
    std::size_t half = size / 2;
    const unsigned stages = clampedStages(size);
    for (unsigned s = 0; s < stages; ++s, half /= 2) {
        const std::uint8_t *left = data;
        std::uint8_t *right = data + half;
        if (!zdr_) {
            xorBytes(right, left, half);
            continue;
        }
        const std::size_t lane = std::min(zdr_lane_, half);
        for (std::size_t off = 0; off < half; off += lane)
            zdrLaneEncode(right + off, right + off, left + off, lane);
    }
}

void
UniversalXorCodec::unfoldInPlace(std::uint8_t *data, std::size_t size) const
{
    // Undo stages in reverse: each stage only read the (untouched) left
    // half, so once inner stages have restored that prefix the right half
    // can be decoded against it.
    const unsigned stages = clampedStages(size);
    for (unsigned s = stages; s-- > 0;) {
        const std::size_t half = size >> (s + 1);
        const std::uint8_t *left = data;
        std::uint8_t *right = data + half;
        if (!zdr_) {
            xorBytes(right, left, half);
            continue;
        }
        const std::size_t lane = std::min(zdr_lane_, half);
        for (std::size_t off = 0; off < half; off += lane)
            zdrLaneDecode(right + off, right + off, left + off, lane);
    }
}

Encoded
UniversalXorCodec::encode(const Transaction &tx)
{
    Encoded enc;
    encodeInto(tx, enc);
    return enc;
}

Transaction
UniversalXorCodec::decode(const Encoded &enc)
{
    Transaction tx = enc.payload;
    unfoldInPlace(tx.data(), tx.size());
    return tx;
}

void
UniversalXorCodec::encodeInto(const Transaction &tx, Encoded &enc)
{
    enc.payload = tx;
    enc.meta.clear();
    enc.metaWiresPerBeat = 0;
    foldInPlace(enc.payload.data(), enc.payload.size());
}

void
UniversalXorCodec::decodeInto(const Encoded &enc, Transaction &tx)
{
    tx = enc.payload;
    unfoldInPlace(tx.data(), tx.size());
}

namespace {

/** Halves narrower than one vector register pay more in dispatch call
 *  overhead and tail masking than the vector kernels return; they take
 *  the inline word helpers instead (the outer fold stages of 32-byte
 *  transactions are 16/8/4 bytes wide). */
constexpr std::size_t kStageSimdMinBytes = 32;

/** One fold/unfold stage over [right, right+half) against the left half,
 *  routed through the dispatched range primitives. Every stage is
 *  elementwise over contiguous equal-width lanes (the left half is
 *  untouched while a stage runs), so both directions vectorize. */
void
stageOp(std::uint8_t *right, const std::uint8_t *left, std::size_t half,
        bool zdr, std::size_t zdr_lane, bool encode,
        const simd::KernelTable &ops)
{
    namespace kd = simd::detail;
    const bool narrow = half < kStageSimdMinBytes;
    if (!zdr) {
        if (narrow)
            kd::xorWordRange(right, right, left, half);
        else
            ops.xorRange(right, right, left, half);
        return;
    }
    const std::size_t lane = std::min(zdr_lane, half);
    if (lane == 2) {
        if (narrow)
            (encode ? kd::zdrEncode16WordRange
                    : kd::zdrDecode16WordRange)(right, right, left, half);
        else
            (encode ? ops.zdrEncode16 : ops.zdrDecode16)(right, right,
                                                         left, half);
    } else if (lane == 4) {
        if (narrow)
            (encode ? kd::zdrEncode32WordRange
                    : kd::zdrDecode32WordRange)(right, right, left, half);
        else
            (encode ? ops.zdrEncode32 : ops.zdrDecode32)(right, right,
                                                         left, half);
    } else if (lane == 8) {
        if (narrow)
            (encode ? kd::zdrEncode64WordRange
                    : kd::zdrDecode64WordRange)(right, right, left, half);
        else
            (encode ? ops.zdrEncode64 : ops.zdrDecode64)(right, right,
                                                         left, half);
    } else {
        for (std::size_t off = 0; off < half; off += lane) {
            if (encode)
                zdrLaneEncode(right + off, right + off, left + off, lane);
            else
                zdrLaneDecode(right + off, right + off, left + off, lane);
        }
    }
}

} // namespace

void
UniversalXorCodec::encodeBatchKernel(const TxBatch &in, EncodedBatch &out)
{
    // The fold cascade runs in place, so the batch is one plane copy
    // followed by per-slice folds — no per-transaction scratch Encoded.
    out.configure(in.txBytes(), 0, 0);
    out.resizeForOverwrite(in.size());
    if (in.empty())
        return;
    std::memcpy(out.payloadData(), in.data(), in.planeBytes());
    const std::size_t tx_bytes = in.txBytes();
    const unsigned stages = clampedStages(tx_bytes);
    const simd::KernelTable &ops = simd::ops();
    std::uint8_t *slice = out.payloadData();
    for (std::size_t i = 0; i < in.size(); ++i, slice += tx_bytes) {
        std::size_t half = tx_bytes / 2;
        for (unsigned s = 0; s < stages; ++s, half /= 2)
            stageOp(slice + half, slice, half, zdr_, zdr_lane_,
                    /*encode=*/true, ops);
    }
}

void
UniversalXorCodec::decodeBatchKernel(const EncodedBatch &in, TxBatch &out)
{
    out.reset(in.txBytes());
    out.resizeForOverwrite(in.size());
    if (in.size() == 0)
        return;
    std::memcpy(out.data(), in.payloadData(), in.payloadBytes());
    const std::size_t tx_bytes = in.txBytes();
    const unsigned stages = clampedStages(tx_bytes);
    const simd::KernelTable &ops = simd::ops();
    std::uint8_t *slice = out.data();
    for (std::size_t i = 0; i < in.size(); ++i, slice += tx_bytes) {
        // Stages in reverse: inner stages restore the left prefix first.
        for (unsigned s = stages; s-- > 0;) {
            const std::size_t half = tx_bytes >> (s + 1);
            stageOp(slice + half, slice, half, zdr_, zdr_lane_,
                    /*encode=*/false, ops);
        }
    }
}

} // namespace bxt
