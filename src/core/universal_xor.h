/**
 * @file
 * Universal Base+XOR Transfer (paper §IV-C, Figures 7-8).
 *
 * Rather than committing to one base size, the transaction is folded by a
 * logarithmic cascade: stage 0 XORs the right half of the transaction with
 * the left half; stage 1 recurses into the left half; and so on for S
 * stages. Similarity at any power-of-two element granularity makes the
 * corresponding XORed region mostly zero, and the surviving prefix is the
 * paper's "effective base element". All stages can evaluate in parallel in
 * hardware (Figure 9b); software here applies them in order.
 *
 * With ZDR enabled, each stage's XOR is replaced by the lane-wise bijective
 * remap of core/zdr.h: the XORed half is processed in fixed-width lanes
 * (default 4 bytes, Table II's "ZDR ... 4B base" configuration, clamped to
 * the half width for small halves) with the corresponding lane of the left
 * half as the lane base. Lane-wise application is what lets zero *elements*
 * interspersed in a non-zero half still hit the remap.
 */

#ifndef BXT_CORE_UNIVERSAL_XOR_H
#define BXT_CORE_UNIVERSAL_XOR_H

#include <cstddef>

#include "core/codec.h"

namespace bxt {

/**
 * The paper's final proposal: Universal Base+XOR Transfer with optional
 * lane-wise Zero Data Remapping.
 */
class UniversalXorCodec : public Codec
{
  public:
    /**
     * @param stages Number of fold stages (1..5). Three stages on a 32-byte
     *        transaction leave a 4-byte effective base (Table II's config);
     *        four stages reach a 2-byte base. Stage counts that would fold
     *        below a 2-byte base are clamped per transaction.
     * @param zdr Apply lane-wise Zero Data Remapping at each stage.
     * @param zdr_lane ZDR lane width in bytes (power of two; default 4).
     */
    explicit UniversalXorCodec(unsigned stages = 3, bool zdr = true,
                               std::size_t zdr_lane = 4);

    std::string name() const override;
    Encoded encode(const Transaction &tx) override;
    Transaction decode(const Encoded &enc) override;
    void encodeInto(const Transaction &tx, Encoded &out) override;
    void decodeInto(const Encoded &enc, Transaction &out) override;

    /** Configured stage count. */
    unsigned stages() const { return stages_; }

    /** Effective base size for a transaction of @p tx_bytes bytes. */
    std::size_t effectiveBaseBytes(std::size_t tx_bytes) const;

  protected:
    void encodeBatchKernel(const TxBatch &in, EncodedBatch &out) override;
    void decodeBatchKernel(const EncodedBatch &in, TxBatch &out) override;

  private:
    /** Stage count clamped so the base never folds below 2 bytes. */
    unsigned clampedStages(std::size_t tx_bytes) const;

    /** Apply the fold cascade in place over @p size bytes at @p data. */
    void foldInPlace(std::uint8_t *data, std::size_t size) const;

    /** Invert the fold cascade in place (stages in reverse order). */
    void unfoldInPlace(std::uint8_t *data, std::size_t size) const;

    unsigned stages_;
    bool zdr_;
    std::size_t zdr_lane_;
};

} // namespace bxt

#endif // BXT_CORE_UNIVERSAL_XOR_H
