#include "core/zdr.h"

#include <cstring>

#include "common/bitops.h"

namespace bxt {

void
xorLaneEncode(std::uint8_t *out, const std::uint8_t *in,
              const std::uint8_t *base, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(in[i] ^ base[i]);
}

bool
laneIsZdrConstant(const std::uint8_t *in, std::size_t n)
{
    if (in[n - 1] != zdrConstantByte)
        return false;
    return n == 1 || allZero(in, n - 1);
}

bool
laneIsBaseXorConstant(const std::uint8_t *in, const std::uint8_t *base,
                      std::size_t n)
{
    if ((in[n - 1] ^ base[n - 1]) != zdrConstantByte)
        return false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (in[i] != base[i])
            return false;
    }
    return true;
}

void
zdrLaneEncode(std::uint8_t *out, const std::uint8_t *in,
              const std::uint8_t *base, std::size_t n)
{
    if (allZero(in, n)) {
        // Zero data element: emit the low-weight constant C.
        std::memset(out, 0, n);
        out[n - 1] = zdrConstantByte;
    } else if (laneIsBaseXorConstant(in, base, n)) {
        // The input whose plain encoding would have been C gets the
        // output a zero element would have had (the base itself).
        std::memcpy(out, base, n);
    } else {
        xorLaneEncode(out, in, base, n);
    }
}

void
zdrLaneDecode(std::uint8_t *out, const std::uint8_t *in,
              const std::uint8_t *base, std::size_t n)
{
    if (laneIsZdrConstant(in, n)) {
        std::memset(out, 0, n);
    } else if (bytesEqual(in, base, n)) {
        // Encoded value == base ⟹ original was base ⊕ C.
        std::memcpy(out, base, n);
        out[n - 1] = static_cast<std::uint8_t>(out[n - 1] ^ zdrConstantByte);
    } else {
        xorLaneEncode(out, in, base, n);
    }
}

} // namespace bxt
