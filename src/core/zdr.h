/**
 * @file
 * Zero Data Remapping (ZDR) lane primitives (paper §IV-A, Figure 10).
 *
 * Plain XOR encoding maps a zero element to a copy of its base (bad: it
 * re-sends every `1` bit of the base) and maps an element equal to
 * base ⊕ C to the low-weight constant C. ZDR swaps those two outputs:
 *
 *     input == 0        → output C        (one `1` bit)
 *     input == base ⊕ C → output base     (the rare case pays)
 *     otherwise         → output input ⊕ base
 *
 * The swap is a bijection for every base value (including base == 0 and
 * base == C), so decoding needs no metadata. The constant C has a single
 * `1` in the most-significant byte of the lane — 0x4000 for 2-byte lanes,
 * 0x40000000 for 4-byte lanes (the paper's choice), 0x40000000'00000000
 * for 8-byte lanes.
 */

#ifndef BXT_CORE_ZDR_H
#define BXT_CORE_ZDR_H

#include <cstddef>
#include <cstdint>

namespace bxt {

/** The single constant byte placed in the lane's most-significant byte. */
constexpr std::uint8_t zdrConstantByte = 0x40;

/**
 * Plain XOR lane encode: out = in ⊕ base. @p out may alias @p in but not
 * @p base. All pointers reference @p n bytes.
 */
void xorLaneEncode(std::uint8_t *out, const std::uint8_t *in,
                   const std::uint8_t *base, std::size_t n);

/**
 * ZDR lane encode (see file comment). @p out may alias @p in but not
 * @p base. All pointers reference @p n bytes.
 */
void zdrLaneEncode(std::uint8_t *out, const std::uint8_t *in,
                   const std::uint8_t *base, std::size_t n);

/**
 * ZDR lane decode: inverse of zdrLaneEncode() given the same @p base.
 * @p out may alias @p in but not @p base.
 */
void zdrLaneDecode(std::uint8_t *out, const std::uint8_t *in,
                   const std::uint8_t *base, std::size_t n);

/** True iff lane @p in equals the ZDR constant C for @p n byte lanes. */
bool laneIsZdrConstant(const std::uint8_t *in, std::size_t n);

/** True iff lane @p in equals base ⊕ C. */
bool laneIsBaseXorConstant(const std::uint8_t *in, const std::uint8_t *base,
                           std::size_t n);

} // namespace bxt

#endif // BXT_CORE_ZDR_H
