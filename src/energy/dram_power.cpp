#include "energy/dram_power.h"

#include <cstdio>

#include "common/error.h"

namespace bxt {

DramPowerParams
DramPowerParams::gddr5x()
{
    DramPowerParams p;
    p.io = PodIoParams::gddr5x();
    return p;
}

DramPowerParams
DramPowerParams::ddr4()
{
    DramPowerParams p;
    p.io = PodIoParams::ddr4();
    // DDR4 moves data more slowly: background dominates more, core costs
    // are similar per byte, activation energy is lower (smaller pages).
    p.bgPowerPerByteFull = 25.0e-12;
    p.actEnergy = 1.7e-9;
    p.corePerByte = 13.0e-12;
    p.ioFixedPerByte = 5.0e-12;
    p.utilization = 0.40;
    return p;
}

DramPowerParams
DramPowerParams::hbm2()
{
    DramPowerParams p;
    p.io = PodIoParams::hbm2();
    p.bgPowerPerByteFull = 10.0e-12;
    p.actEnergy = 0.9e-9; // Smaller pages.
    p.corePerByte = 12.0e-12;
    p.ioFixedPerByte = 1.5e-12;
    p.utilization = 0.70;
    return p;
}

std::string
EnergyBreakdown::report() const
{
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "background : %12.3f pJ\n"
        "activate   : %12.3f pJ\n"
        "core rd/wr : %12.3f pJ\n"
        "I/O fixed  : %12.3f pJ\n"
        "I/O ones   : %12.3f pJ\n"
        "I/O toggles: %12.3f pJ\n"
        "total      : %12.3f pJ\n",
        background * 1e12, activate * 1e12, core * 1e12, ioFixed * 1e12,
        ioOnes * 1e12, ioToggles * 1e12, total() * 1e12);
    return std::string(buffer);
}

DramPowerModel::DramPowerModel(DramPowerParams params) : params_(params)
{
    BXT_ASSERT(params_.utilization > 0.0 && params_.utilization <= 1.0);
}

EnergyBreakdown
DramPowerModel::compute(const BusStats &bus, std::uint64_t activates) const
{
    const double bytes = static_cast<double>(bus.dataBits) / 8.0;

    EnergyBreakdown e;
    // Background power burns for the full wall-clock window; at partial
    // utilization the same traffic takes 1/utilization longer.
    e.background =
        bytes * params_.bgPowerPerByteFull / params_.utilization;
    e.activate = static_cast<double>(activates) * params_.actEnergy;
    e.core = bytes * params_.corePerByte;
    e.ioFixed = bytes * params_.ioFixedPerByte;
    e.ioOnes = static_cast<double>(bus.ones()) * params_.io.energyPerOne();
    e.ioToggles =
        static_cast<double>(bus.toggles()) * params_.io.energyPerToggle();
    return e;
}

EnergyBreakdown
DramPowerModel::computeSimple(const BusStats &bus,
                              std::uint64_t bytes_per_act) const
{
    BXT_ASSERT(bytes_per_act > 0);
    const std::uint64_t bytes = bus.dataBits / 8;
    return compute(bus, bytes / bytes_per_act);
}

} // namespace bxt
