/**
 * @file
 * Micron-calculator-style DRAM memory-system energy model (paper §V-A and
 * §VI-F). Total energy is split into background (leakage, clocking, DLL),
 * row activation, core read/write, fixed I/O, and the two data-dependent
 * I/O components (termination `1`s and capacitive toggles) computed from
 * BusStats via the POD electrical model.
 */

#ifndef BXT_ENERGY_DRAM_POWER_H
#define BXT_ENERGY_DRAM_POWER_H

#include <cstdint>
#include <string>

#include "channel/bus.h"
#include "energy/pod_io.h"

namespace bxt {

/** Per-event energy constants for one memory system. */
struct DramPowerParams
{
    PodIoParams io;                  ///< Electrical I/O model.
    double bgPowerPerByteFull = 18.0e-12; ///< Background energy per byte at 100 % utilization [J/B].
    double actEnergy = 2.3e-9;       ///< Energy per row activation [J].
    double corePerByte = 15.0e-12;   ///< Array/core read-write energy [J/B].
    double ioFixedPerByte = 7.3e-12; ///< Data-independent I/O (CK/WCK, DQS, RX bias) [J/B].
    double utilization = 0.70;       ///< Channel bandwidth utilization (paper §VI-F assumes 70 %).

    /** GDDR5X-class parameters (Table I system). */
    static DramPowerParams gddr5x();

    /** DDR4-class parameters for the CPU evaluation. */
    static DramPowerParams ddr4();

    /**
     * HBM2-class parameters (the paper's future-work target): no
     * termination energy, small switched capacitance, lower background
     * and I/O-fixed costs per byte thanks to the wide slow interface.
     */
    static DramPowerParams hbm2();
};

/** Energy totals per component [J]. */
struct EnergyBreakdown
{
    double background = 0.0;
    double activate = 0.0;
    double core = 0.0;
    double ioFixed = 0.0;
    double ioOnes = 0.0;
    double ioToggles = 0.0;

    /** Sum of all components [J]. */
    double total() const
    {
        return background + activate + core + ioFixed + ioOnes + ioToggles;
    }

    /** Multi-line component report (picojoule units). */
    std::string report() const;
};

/**
 * Computes the memory-system energy of a measured activity window.
 */
class DramPowerModel
{
  public:
    explicit DramPowerModel(DramPowerParams params);

    /**
     * Energy for transferring the traffic summarized by @p bus with
     * @p activates row activations. Bytes transferred are derived from the
     * data wire-slots in @p bus; background energy scales inversely with
     * the configured utilization (the bus is powered whether or not it is
     * transferring).
     */
    EnergyBreakdown compute(const BusStats &bus,
                            std::uint64_t activates) const;

    /**
     * Convenience for encoder studies where row activations are not
     * simulated: assumes one activation per @p bytes_per_act bytes
     * (default: one 2 KiB row per 4 KiB of traffic, i.e. half the row is
     * used before a conflict — a representative GPU streaming mix).
     */
    EnergyBreakdown computeSimple(const BusStats &bus,
                                  std::uint64_t bytes_per_act = 4096) const;

    const DramPowerParams &params() const { return params_; }

  private:
    DramPowerParams params_;
};

} // namespace bxt

#endif // BXT_ENERGY_DRAM_POWER_H
