#include "energy/gddr_trend.h"

#include "common/error.h"

namespace bxt {

std::vector<GddrGeneration>
gddrGenerations()
{
    // Energy/bit values are representative of published GDDR5/GDDR5X
    // figures and reproduce the normalized annotations of paper Figure 1.
    return {
        {"GDDR5 6Gbps", 6.0, 13.00},
        {"GDDR5 7Gbps", 7.0, 12.40},
        {"GDDR5X 10Gbps", 10.0, 11.20},
        {"GDDR5X 12Gbps", 12.0, 10.53},
    };
}

std::vector<GddrTrendPoint>
computeGddrTrend(const std::vector<GddrGeneration> &generations,
                 unsigned bus_pins)
{
    BXT_ASSERT(!generations.empty());
    const GddrGeneration &base = generations.front();
    const double base_power =
        base.energyPerBitPj * base.dataRateGbps * bus_pins;

    std::vector<GddrTrendPoint> points;
    points.reserve(generations.size());
    for (const auto &gen : generations) {
        GddrTrendPoint p;
        p.name = gen.name;
        p.energyPerBitPct = gen.energyPerBitPj / base.energyPerBitPj * 100.0;
        p.bandwidthPct = gen.dataRateGbps / base.dataRateGbps * 100.0;
        p.peakPowerPct = gen.energyPerBitPj * gen.dataRateGbps * bus_pins /
                         base_power * 100.0;
        points.push_back(p);
    }
    return points;
}

} // namespace bxt
