/**
 * @file
 * The GDDR5 → GDDR5X generational trend of paper Figure 1: per-access
 * energy has fallen far more slowly than bandwidth has grown, so peak DRAM
 * power keeps rising — the paper's motivation.
 */

#ifndef BXT_ENERGY_GDDR_TREND_H
#define BXT_ENERGY_GDDR_TREND_H

#include <string>
#include <vector>

namespace bxt {

/** One GDDR generation / speed grade. */
struct GddrGeneration
{
    std::string name;        ///< e.g. "GDDR5 6Gbps".
    double dataRateGbps;     ///< Per-pin data rate.
    double energyPerBitPj;   ///< Total interface+core energy per bit moved.
};

/** Figure 1's normalized view of one generation. */
struct GddrTrendPoint
{
    std::string name;
    double energyPerBitPct;  ///< Energy/bit vs the first generation [%].
    double bandwidthPct;     ///< Peak bandwidth vs the first generation [%].
    double peakPowerPct;     ///< Peak power vs the first generation [%].
};

/**
 * The four speed grades plotted in Figure 1 with representative energy
 * figures (chosen so the end points match the paper's annotations:
 * 81 % energy/bit, 200 % bandwidth, 163 % peak power at GDDR5X 12 Gbps).
 */
std::vector<GddrGeneration> gddrGenerations();

/**
 * Normalize @p generations against the first entry on a @p bus_pins wide
 * interface (384 for the Table I GPU).
 */
std::vector<GddrTrendPoint>
computeGddrTrend(const std::vector<GddrGeneration> &generations,
                 unsigned bus_pins = 384);

} // namespace bxt

#endif // BXT_ENERGY_GDDR_TREND_H
