#include "energy/pod_io.h"

namespace bxt {

PodIoParams
PodIoParams::gddr5x()
{
    return PodIoParams{};
}

PodIoParams
PodIoParams::ddr4()
{
    PodIoParams p;
    p.vdd = 1.2;
    p.rTerm = 48.0;
    p.rPullDown = 34.0;
    p.dataRateGbps = 3.2;
    p.cChannel = 10.0e-12; // Multi-drop DIMM channel: heavier load.
    return p;
}

PodIoParams
PodIoParams::hbm2()
{
    PodIoParams p;
    p.vdd = 1.2;
    p.rTerm = 1.0e9; // Unterminated.
    p.rPullDown = 40.0;
    p.dataRateGbps = 2.0;
    p.cChannel = 0.8e-12; // Short in-package interposer traces.
    return p;
}

double
PodIoParams::onePenaltyFraction(double fixed_energy_per_bit) const
{
    return energyPerOne() / (fixed_energy_per_bit + energyPerToggle());
}

} // namespace bxt
