/**
 * @file
 * Electrical model of a Pseudo Open Drain (POD) terminated I/O interface
 * (paper §II-A, Figure 2, and §V-A).
 *
 * A POD driver pulls the wire to 0 V through an NMOS of resistance Rdn
 * against a termination resistor RT to VDD. Logical `1` is driven as 0 V
 * (the paper's convention), so every `1` bit sustains a static current
 * I = VDD / (RT + Rdn) for the bit period — 13.5 mA and 1.82 pJ per bit at
 * the GDDR5X operating point (1.35 V, 60 Ω + 40 Ω, 100 ps). Transitions
 * additionally charge/discharge the effective channel capacitance through
 * the reduced POD swing Vsw = VDD · Rdn / (RT + Rdn).
 */

#ifndef BXT_ENERGY_POD_IO_H
#define BXT_ENERGY_POD_IO_H

namespace bxt {

/** Electrical parameters of one POD I/O pin. */
struct PodIoParams
{
    double vdd = 1.35;           ///< Supply voltage [V].
    double rTerm = 60.0;         ///< Termination resistor RT [Ohm].
    double rPullDown = 40.0;     ///< Driver pull-down on-resistance [Ohm].
    double dataRateGbps = 10.0;  ///< Per-pin data rate [Gbit/s].

    /**
     * Effective switched capacitance per transition [F]: pad + package +
     * trace + pre-driver chain. Calibrated (DESIGN.md §6) so the toggle-
     * dependent share of DRAM energy matches the split implied by the
     * paper's Figures 16-17.
     */
    double cChannel = 7.0e-12;

    /** GDDR5X operating point (Table I). */
    static PodIoParams gddr5x();

    /** DDR4-like operating point for the CPU evaluation (Figure 18). */
    static PodIoParams ddr4();

    /**
     * HBM2-like operating point (the paper's future-work target): an
     * unterminated, short-reach interface where rTerm -> infinity makes
     * the `1`-value termination current vanish and capacitive switching
     * dominates the data-dependent energy.
     */
    static PodIoParams hbm2();

    /** True when the interface is terminated (rTerm finite). */
    bool terminated() const { return rTerm < 1.0e6; }

    /** Bit period [s]. */
    double bitTime() const { return 1.0e-9 / dataRateGbps; }

    /** Static current while driving a `1` [A] (13.5 mA for GDDR5X). */
    double currentPerOne() const
    {
        return terminated() ? vdd / (rTerm + rPullDown) : 0.0;
    }

    /** Energy drawn from VDD per transmitted `1` bit [J] (1.82 pJ). */
    double energyPerOne() const
    {
        return vdd * currentPerOne() * bitTime();
    }

    /** Voltage swing [V]: reduced by the terminator (0.54 V for GDDR5X),
     *  full rail on an unterminated interface. */
    double swingVoltage() const
    {
        return terminated() ? vdd * rPullDown / (rTerm + rPullDown) : vdd;
    }

    /** Energy per wire transition [J]: ½ · C · Vsw². */
    double energyPerToggle() const
    {
        const double vsw = swingVoltage();
        return 0.5 * cChannel * vsw * vsw;
    }

    /**
     * Extra energy of a `1` relative to a `0`, as a fraction of the `0`
     * cost; the paper quotes "37 % more energy" for GDDR5X when the fixed
     * per-bit costs (clocking, receiver) are included.
     */
    double onePenaltyFraction(double fixed_energy_per_bit) const;
};

} // namespace bxt

#endif // BXT_ENERGY_POD_IO_H
