#include "gatecost/encoder_costs.h"

#include <cmath>

#include "common/bitops.h"
#include "common/error.h"

namespace bxt {
namespace {

double
log2Bytes(std::size_t bytes)
{
    return std::log2(static_cast<double>(bytes));
}

/** Depth of a balanced OR-reduction tree over @p bits inputs. */
unsigned
orTreeDepth(std::size_t bits)
{
    unsigned depth = 0;
    std::size_t width = 1;
    while (width < bits) {
        width *= 2;
        ++depth;
    }
    return depth;
}

} // namespace

SchemeCost
baseXorCost(const GateLibrary &lib, std::size_t tx_bytes,
            std::size_t base_bytes)
{
    BXT_ASSERT(tx_bytes % base_bytes == 0 && tx_bytes > base_bytes);
    const std::size_t elements = tx_bytes / base_bytes;
    const std::size_t xor_bits = (elements - 1) * base_bytes * 8;

    GateCounts counts;
    counts.xor2 = xor_bits;
    const double wire_units =
        static_cast<double>(xor_bits) * log2Bytes(base_bytes);

    SchemeCost cost;
    cost.mechanism = std::to_string(base_bytes) + "-byte XOR";
    // Encode: every element XORs its (original) neighbour in parallel.
    cost.encode = evaluateNetlist(lib, counts, wire_units, wire_units,
                                  lib.xor2.delayPs);
    // Decode: element i needs element i-1 *decoded* first -> a chain.
    cost.decode = evaluateNetlist(
        lib, counts, wire_units, wire_units,
        static_cast<double>(elements - 1) * lib.xor2.delayPs);
    return cost;
}

SchemeCost
universalXorCost(const GateLibrary &lib, std::size_t tx_bytes,
                 unsigned stages)
{
    BXT_ASSERT(stages >= 1 && (tx_bytes >> stages) >= 2);

    std::size_t xor_bits = 0;
    for (unsigned s = 0; s < stages; ++s)
        xor_bits += (tx_bytes >> (s + 1)) * 8;

    GateCounts counts;
    counts.xor2 = xor_bits;

    // Asymmetric trunk routing (Figure 9b): every source byte of the first
    // stage's base half routes to its farthest consumer; inner-stage
    // consumers tee off the same trunk. Multi-consumer sources need fanout
    // buffers.
    const std::size_t trunk_bytes = tx_bytes / 2;
    const double wire_units = static_cast<double>(trunk_bytes * 8) *
                              log2Bytes(trunk_bytes);
    std::size_t buffers = 0;
    for (unsigned s = 1; s < stages; ++s)
        buffers += (tx_bytes >> (s + 1)) * 8;
    counts.not1 += buffers;

    SchemeCost cost;
    cost.mechanism = "Universal XOR";
    cost.config = std::to_string(stages) + " stage";
    cost.encode = evaluateNetlist(lib, counts, wire_units, wire_units,
                                  lib.xor2.delayPs);
    cost.decode = evaluateNetlist(lib, counts, wire_units, wire_units,
                                  static_cast<double>(stages) *
                                      lib.xor2.delayPs);
    return cost;
}

SchemeCost
zdrCost(const GateLibrary &lib, std::size_t lanes, std::size_t lane_bytes)
{
    BXT_ASSERT(lanes >= 1 && lane_bytes >= 2);
    const std::size_t bits = lane_bytes * 8;

    // Per lane (paper Figure 10): a zero detector (OR tree + inverter), a
    // base XOR const equality detector (bitwise XOR + OR tree + inverter +
    // one inverter to form base XOR const), and a two-level output mux.
    GateCounts per_lane;
    per_lane.or2 = 2 * (bits - 1);
    per_lane.not1 = 3;
    per_lane.xor2 = bits;
    per_lane.mux2 = 2 * bits;

    GateCounts counts;
    for (std::size_t i = 0; i < lanes; ++i)
        counts += per_lane;

    // Comparator nets add routed area but switch rarely (remap hits are
    // uncommon), so they contribute no wire term to dynamic energy.
    const double wire_area_units =
        static_cast<double>(lanes * bits) * log2Bytes(lane_bytes);

    const double delay = orTreeDepth(bits) * lib.or2.delayPs +
                         lib.not1.delayPs + 2.0 * lib.mux2.delayPs;

    SchemeCost cost;
    cost.mechanism = "ZDR";
    cost.config = std::to_string(lane_bytes) + "B base";
    cost.encode = evaluateNetlist(lib, counts, wire_area_units, 0.0, delay);
    cost.decode = cost.encode; // The decoder mirrors the same detectors.
    return cost;
}

std::vector<SchemeCost>
tableTwoCosts(const GateLibrary &lib, std::size_t tx_bytes)
{
    const SchemeCost xor2b = baseXorCost(lib, tx_bytes, 2);
    const SchemeCost xor4b = baseXorCost(lib, tx_bytes, 4);
    const SchemeCost xor8b = baseXorCost(lib, tx_bytes, 8);
    const SchemeCost universal = universalXorCost(lib, tx_bytes, 3);

    // ZDR lanes: a 4-byte-base codec XOR-encodes (elements-1) 4-byte lanes;
    // a 3-stage universal codec XOR-encodes (tx/2 + tx/4 + tx/8) bytes,
    // which is the same number of 4-byte lanes for 32-byte transactions.
    const std::size_t lanes = tx_bytes / 4 - 1;
    const SchemeCost zdr = zdrCost(lib, lanes, 4);

    auto combine = [](const std::string &name, const SchemeCost &a,
                      const SchemeCost &b) {
        SchemeCost c;
        c.mechanism = name;
        c.config = b.config.empty() ? a.config : b.config;
        c.encode = a.encode;
        c.encode += b.encode;
        c.decode = a.decode;
        c.decode += b.decode;
        return c;
    };

    SchemeCost xor4_zdr = combine("4-byte XOR+ZDR", xor4b, zdr);
    xor4_zdr.config = "";
    SchemeCost universal_zdr =
        combine("Universal XOR+ZDR", universal, zdr);
    universal_zdr.config = "3 stage";

    return {xor2b,     xor4b,    xor8b,         universal,
            zdr,       xor4_zdr, universal_zdr};
}

double
gpuTotalAreaMm2(const SchemeCost &scheme, unsigned channels)
{
    const double per_channel = scheme.encode.areaUm2 + scheme.decode.areaUm2;
    return per_channel * static_cast<double>(channels) * 1e-6;
}

} // namespace bxt
