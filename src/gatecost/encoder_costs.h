/**
 * @file
 * Netlists and evaluated implementation costs for every encoder/decoder
 * configuration in paper Table II, built from the gate model of gates.h.
 */

#ifndef BXT_GATECOST_ENCODER_COSTS_H
#define BXT_GATECOST_ENCODER_COSTS_H

#include <cstddef>
#include <string>
#include <vector>

#include "gatecost/gates.h"

namespace bxt {

/** One Table II row: a mechanism with its encode and decode costs. */
struct SchemeCost
{
    std::string mechanism; ///< e.g. "4-byte XOR".
    std::string config;    ///< e.g. "3 stage" / "4B base".
    CostEstimate encode;
    CostEstimate decode;
};

/**
 * Cost of N-byte Base+XOR logic over @p tx_bytes transactions.
 * Encode is one XOR level; decode chains (elements−1) XOR levels because
 * each element needs its neighbour's *decoded* value.
 */
SchemeCost baseXorCost(const GateLibrary &lib, std::size_t tx_bytes,
                       std::size_t base_bytes);

/**
 * Cost of Universal Base+XOR with @p stages stages: the same XOR count as
 * a fixed-base encoder covering the same bytes, with tee'd trunk routing
 * for the asymmetric base fan-out (paper Figure 9b) and a decode chain of
 * @p stages XOR levels.
 */
SchemeCost universalXorCost(const GateLibrary &lib, std::size_t tx_bytes,
                            unsigned stages);

/**
 * Cost of the Zero Data Remapping blocks alone for @p lanes lanes of
 * @p lane_bytes bytes: per lane a zero-detector (OR tree), a
 * base⊕const equality detector (XOR + OR tree), and a two-level output
 * mux (paper Figure 10).
 */
SchemeCost zdrCost(const GateLibrary &lib, std::size_t lanes,
                   std::size_t lane_bytes);

/** All rows of paper Table II for @p tx_bytes transactions. */
std::vector<SchemeCost> tableTwoCosts(const GateLibrary &lib,
                                      std::size_t tx_bytes = 32);

/**
 * Total extra die area for a GPU with @p channels DRAM channels, in mm²
 * (the paper quotes 0.027 mm² for twelve 32-bit channels with the most
 * sophisticated mechanism, <0.01 % of the die).
 */
double gpuTotalAreaMm2(const SchemeCost &scheme, unsigned channels);

} // namespace bxt

#endif // BXT_GATECOST_ENCODER_COSTS_H
