#include "gatecost/gates.h"

namespace bxt {

GateCounts &
GateCounts::operator+=(const GateCounts &other)
{
    xor2 += other.xor2;
    or2 += other.or2;
    and2 += other.and2;
    not1 += other.not1;
    mux2 += other.mux2;
    return *this;
}

CostEstimate &
CostEstimate::operator+=(const CostEstimate &other)
{
    areaUm2 += other.areaUm2;
    energyFj += other.energyFj;
    delayPs += other.delayPs;
    return *this;
}

CostEstimate
evaluateNetlist(const GateLibrary &lib, const GateCounts &counts,
                double wire_area_units, double wire_energy_units,
                double critical_path_ps)
{
    CostEstimate cost;
    cost.areaUm2 = static_cast<double>(counts.xor2) * lib.xor2.areaUm2 +
                   static_cast<double>(counts.or2) * lib.or2.areaUm2 +
                   static_cast<double>(counts.and2) * lib.and2.areaUm2 +
                   static_cast<double>(counts.not1) * lib.not1.areaUm2 +
                   static_cast<double>(counts.mux2) * lib.mux2.areaUm2 +
                   wire_area_units * lib.wireAreaCoeff;
    cost.energyFj = static_cast<double>(counts.xor2) * lib.xor2.energyFj +
                    static_cast<double>(counts.or2) * lib.or2.energyFj +
                    static_cast<double>(counts.and2) * lib.and2.energyFj +
                    static_cast<double>(counts.not1) * lib.not1.energyFj +
                    static_cast<double>(counts.mux2) * lib.mux2.energyFj +
                    wire_energy_units * lib.wireEnergyCoeff;
    cost.delayPs = critical_path_ps;
    return cost;
}

} // namespace bxt
