/**
 * @file
 * Gate-level cost model used to regenerate paper Table II (area / energy /
 * latency of the encode and decode logic in a 16 nm FinFET class process).
 *
 * The model counts the actual gates of each encoder netlist (XOR2 per
 * encoded bit, OR-trees and muxes for ZDR) plus a wiring term proportional
 * to routed bit-count × log2(route span in bytes). Per-gate constants are
 * calibrated once against the published 2/4/8-byte XOR rows of Table II
 * (the fit reproduces those rows to within a few percent) and then applied
 * unchanged to every other configuration.
 */

#ifndef BXT_GATECOST_GATES_H
#define BXT_GATECOST_GATES_H

#include <cstddef>

namespace bxt {

/** Area / switching-energy / delay of one gate type. */
struct GateParams
{
    double areaUm2;   ///< Placed area including cell overhead [µm²].
    double energyFj;  ///< Average switching energy per evaluation [fJ].
    double delayPs;   ///< Propagation delay [ps].
};

/** Gate counts of a netlist. */
struct GateCounts
{
    std::size_t xor2 = 0;
    std::size_t or2 = 0;
    std::size_t and2 = 0;
    std::size_t not1 = 0;
    std::size_t mux2 = 0;

    GateCounts &operator+=(const GateCounts &other);

    /** Total gates of all types. */
    std::size_t total() const
    {
        return xor2 + or2 + and2 + not1 + mux2;
    }
};

/** The process library with routing coefficients. */
struct GateLibrary
{
    GateParams xor2{0.49, 0.0325, 24.0};
    GateParams or2{0.35, 0.080, 25.0};
    GateParams and2{0.35, 0.080, 25.0};
    GateParams not1{0.15, 0.020, 4.0};
    GateParams mux2{0.75, 0.125, 18.0};

    /** Routing area per routed bit per log2(span bytes) [µm²]. */
    double wireAreaCoeff = 0.40;

    /** Routing energy per routed bit per log2(span bytes) [fJ]. */
    double wireEnergyCoeff = 0.1467;

    /** 16 nm FinFET class constants (TSMC16-calibrated; see file comment). */
    static GateLibrary tsmc16() { return GateLibrary{}; }
};

/** Evaluated cost of one netlist. */
struct CostEstimate
{
    double areaUm2 = 0.0;
    double energyFj = 0.0;
    double delayPs = 0.0;

    CostEstimate &operator+=(const CostEstimate &other);
};

/**
 * Evaluate @p counts at @p critical_path_ps under library @p lib.
 *
 * Routing is accounted separately for area and energy because they scale
 * differently: @p wire_area_units charges placed routing (Σ routed bits ×
 * log2(span bytes)); @p wire_energy_units charges *switched* routing —
 * comparator nets that rarely toggle (the ZDR remap detectors) contribute
 * area but negligible dynamic energy.
 */
CostEstimate evaluateNetlist(const GateLibrary &lib, const GateCounts &counts,
                             double wire_area_units,
                             double wire_energy_units,
                             double critical_path_ps);

} // namespace bxt

#endif // BXT_GATECOST_GATES_H
