#include "gpusim/cache.h"

#include "common/bitops.h"
#include "common/error.h"

namespace bxt {

SectoredCache::SectoredCache(std::size_t capacity_bytes, unsigned ways,
                             std::size_t line_bytes,
                             std::size_t sector_bytes)
    : line_bytes_(line_bytes), sector_bytes_(sector_bytes),
      sectors_per_line_(line_bytes / sector_bytes),
      sets_(capacity_bytes / (line_bytes * ways)), ways_(ways)
{
    BXT_ASSERT(isPowerOfTwo(line_bytes) && isPowerOfTwo(sector_bytes));
    BXT_ASSERT(line_bytes % sector_bytes == 0);
    BXT_ASSERT(sets_ > 0 && isPowerOfTwo(sets_));
    BXT_ASSERT(ways_ > 0);

    lines_.resize(sets_ * ways_);
    for (Line &line : lines_) {
        line.sectorValid.assign(sectors_per_line_, false);
        line.sectorDirty.assign(sectors_per_line_, false);
        line.sectorData.assign(sectors_per_line_,
                               Transaction(sector_bytes_));
    }
}

void
SectoredCache::evict(Line &line, std::uint64_t set_index,
                     MemoryBackend &backend)
{
    if (!line.valid)
        return;
    ++stats_.lineEvictions;
    const std::uint64_t line_addr =
        (line.tag * sets_ + set_index) * line_bytes_;
    for (std::size_t s = 0; s < sectors_per_line_; ++s) {
        if (line.sectorValid[s] && line.sectorDirty[s]) {
            backend.writeSector(line_addr + s * sector_bytes_,
                                line.sectorData[s]);
            ++stats_.writebacks;
        }
        line.sectorValid[s] = false;
        line.sectorDirty[s] = false;
    }
    line.valid = false;
}

SectoredCache::Line &
SectoredCache::findOrAllocate(std::uint64_t line_addr,
                              MemoryBackend &backend)
{
    const std::uint64_t line_index = line_addr / line_bytes_;
    const std::uint64_t set = line_index % sets_;
    const std::uint64_t tag = line_index / sets_;

    Line *lru = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = lines_[set * ways_ + w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++lru_clock_;
            return line;
        }
        if (lru == nullptr || !line.valid ||
            (lru->valid && line.lruStamp < lru->lruStamp)) {
            if (lru == nullptr || lru->valid)
                lru = &line;
        }
    }

    BXT_ASSERT(lru != nullptr);
    evict(*lru, set, backend);
    lru->valid = true;
    lru->tag = tag;
    lru->lruStamp = ++lru_clock_;
    return *lru;
}

void
SectoredCache::read(std::uint64_t addr, Transaction &out,
                    MemoryBackend &backend)
{
    ++stats_.accesses;
    const std::uint64_t sector_addr = addr & ~(sector_bytes_ - 1);
    const std::uint64_t line_addr = addr & ~(line_bytes_ - 1);
    const std::size_t sector = (sector_addr - line_addr) / sector_bytes_;

    Line &line = findOrAllocate(line_addr, backend);
    if (line.sectorValid[sector]) {
        ++stats_.sectorHits;
    } else {
        ++stats_.sectorMisses;
        line.sectorData[sector] = backend.readSector(sector_addr);
        line.sectorValid[sector] = true;
        line.sectorDirty[sector] = false;
    }
    out = line.sectorData[sector];
}

void
SectoredCache::write(std::uint64_t addr, const Transaction &data,
                     MemoryBackend &backend)
{
    BXT_ASSERT(data.size() == sector_bytes_);
    ++stats_.accesses;
    const std::uint64_t sector_addr = addr & ~(sector_bytes_ - 1);
    const std::uint64_t line_addr = addr & ~(line_bytes_ - 1);
    const std::size_t sector = (sector_addr - line_addr) / sector_bytes_;

    Line &line = findOrAllocate(line_addr, backend);
    if (line.sectorValid[sector])
        ++stats_.sectorHits;
    else
        ++stats_.writeValidates; // Write-validate: no fetch on write miss.
    line.sectorData[sector] = data;
    line.sectorValid[sector] = true;
    line.sectorDirty[sector] = true;
}

void
SectoredCache::flush(MemoryBackend &backend)
{
    for (std::size_t set = 0; set < sets_; ++set) {
        for (unsigned w = 0; w < ways_; ++w)
            evict(lines_[set * ways_ + w], set, backend);
    }
}

} // namespace bxt
