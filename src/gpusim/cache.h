/**
 * @file
 * Sectored, set-associative, write-back last-level cache. GPU LLCs are
 * sectored (Table I: four 32-byte sectors per 128-byte line): a miss
 * fetches only the referenced sector, and writes validate a sector without
 * fetching it (write-validate), which is what makes the 32-byte sector the
 * DRAM transaction unit this paper encodes.
 */

#ifndef BXT_GPUSIM_CACHE_H
#define BXT_GPUSIM_CACHE_H

#include <cstdint>
#include <vector>

#include "core/transaction.h"

namespace bxt {

/** Where the cache fills from and spills to (the memory controller). */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /** Fetch the sector containing @p sector_addr (sector aligned). */
    virtual Transaction readSector(std::uint64_t sector_addr) = 0;

    /** Write back one dirty sector (sector aligned). */
    virtual void writeSector(std::uint64_t sector_addr,
                             const Transaction &data) = 0;
};

/** Hit/miss/traffic counters. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t sectorHits = 0;
    std::uint64_t sectorMisses = 0;   ///< Sector fetches from memory.
    std::uint64_t writeValidates = 0; ///< Writes that allocated a sector.
    std::uint64_t lineEvictions = 0;
    std::uint64_t writebacks = 0;     ///< Dirty sectors written to memory.

    /** Sector hit rate over all accesses. */
    double hitRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(sectorHits) /
                         static_cast<double>(accesses);
    }
};

/**
 * The LLC model. Addresses are byte addresses; every access touches one
 * whole sector (the GPU coalescer has already formed sector requests).
 */
class SectoredCache
{
  public:
    /**
     * @param capacity_bytes Total capacity; must be divisible into sets.
     * @param ways Associativity.
     * @param line_bytes Line size; must be a multiple of @p sector_bytes.
     * @param sector_bytes Sector (transaction) size.
     */
    SectoredCache(std::size_t capacity_bytes, unsigned ways,
                  std::size_t line_bytes, std::size_t sector_bytes);

    /**
     * Read the sector containing @p addr into @p out, filling from
     * @p backend on a miss.
     */
    void read(std::uint64_t addr, Transaction &out, MemoryBackend &backend);

    /**
     * Write @p data to the sector containing @p addr (write-validate:
     * allocates without fetching), spilling evictions to @p backend.
     */
    void write(std::uint64_t addr, const Transaction &data,
               MemoryBackend &backend);

    /** Write all dirty sectors back to @p backend and invalidate. */
    void flush(MemoryBackend &backend);

    /** Counters since construction. */
    const CacheStats &stats() const { return stats_; }

    /** Number of sets. */
    std::size_t numSets() const { return sets_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lruStamp = 0;
        std::vector<bool> sectorValid;
        std::vector<bool> sectorDirty;
        std::vector<Transaction> sectorData;
    };

    /** Locate (or allocate, evicting LRU) the line for @p line_addr. */
    Line &findOrAllocate(std::uint64_t line_addr, MemoryBackend &backend);

    /** Write back and invalidate @p line (set index needed for address). */
    void evict(Line &line, std::uint64_t set_index, MemoryBackend &backend);

    std::size_t line_bytes_;
    std::size_t sector_bytes_;
    std::size_t sectors_per_line_;
    std::size_t sets_;
    unsigned ways_;
    std::uint64_t lru_clock_ = 0;
    std::vector<Line> lines_; ///< sets_ * ways_, row-major by set.
    CacheStats stats_;
};

} // namespace bxt

#endif // BXT_GPUSIM_CACHE_H
