#include "gpusim/gpu_config.h"

#include <cstdio>

namespace bxt {

std::string
GpuConfig::report() const
{
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "Compute Units   : %u stream multiprocessors\n"
        "Last-Level Cache: %zu MB total, %u-way, %zu B lines, "
        "%zu x %zu B sectors\n"
        "Memory System   : %u bit total bus, %zu GB GDDR5X\n"
        "                  %.0f GBps total channel bandwidth\n"
        "                  %zu 32-byte sectors per cacheline\n"
        "GDDR5X          : %.0f Gbps per pin, %u channels x %u bit\n"
        "                  %u banks/channel, %zu B rows\n"
        "Encoding        : %s\n",
        numSms, llcBytes >> 20, llcWays, lineBytes,
        lineBytes / sectorBytes, sectorBytes,
        channels * busBitsPerChannel, dramBytes >> 30,
        peakBandwidthGBps(), lineBytes / sectorBytes, dataRateGbps,
        channels, busBitsPerChannel, banksPerChannel, rowBytes,
        codecSpec.c_str());
    return std::string(buffer);
}

} // namespace bxt
