/**
 * @file
 * Configuration of the evaluated GPU system (paper Table I): an NVIDIA
 * Titan X (Pascal)-class part with 56 SMs, a 4 MB sectored LLC, and twelve
 * 32-bit GDDR5X channels at 10 Gbps/pin (480 GB/s aggregate).
 */

#ifndef BXT_GPUSIM_GPU_CONFIG_H
#define BXT_GPUSIM_GPU_CONFIG_H

#include <cstddef>
#include <string>

namespace bxt {

/** Full system configuration for the trace-driven GPU simulator. */
struct GpuConfig
{
    // Compute / cache hierarchy.
    unsigned numSms = 56;             ///< Streaming multiprocessors.
    std::size_t llcBytes = 4u << 20;  ///< Last-level cache capacity.
    unsigned llcWays = 16;            ///< LLC associativity.
    std::size_t lineBytes = 128;      ///< LLC line size.
    std::size_t sectorBytes = 32;     ///< Sector (DRAM transaction) size.

    // Memory system.
    unsigned channels = 12;             ///< Independent GDDR5X channels.
    unsigned busBitsPerChannel = 32;    ///< Data wires per channel.
    unsigned banksPerChannel = 16;      ///< DRAM banks per channel.
    std::size_t rowBytes = 2048;        ///< DRAM row (page) size per bank.
    std::size_t channelInterleave = 256;///< Address interleave granularity.
    double dataRateGbps = 10.0;         ///< Per-pin data rate.
    std::size_t dramBytes = 12ull << 30;///< Total DRAM capacity.

    // Simplified timing (in nanoseconds).
    double tRowMissNs = 30.0; ///< Added precharge+activate delay.

    /** Bus idle-gap fraction for wire-parking toggles (1 - utilization). */
    double busIdleFraction = 0.3;

    // Encoding scheme applied at the memory controller.
    std::string codecSpec = "universal3+zdr";

    /** Energy-model preset: "gddr5x", "ddr4", or "hbm2". */
    std::string powerPreset = "gddr5x";

    /** The Table I configuration. */
    static GpuConfig titanXPascal() { return GpuConfig{}; }

    /**
     * The paper's CPU evaluation system (§VI-G): a single core with a
     * 4 MB LLC and one DDR4 channel moving whole 64-byte lines.
     */
    static GpuConfig cpuDdr4()
    {
        GpuConfig c;
        c.numSms = 1;
        c.lineBytes = 64;
        c.sectorBytes = 64; // Unsectored: the line is the transaction.
        c.channels = 1;
        c.busBitsPerChannel = 64;
        c.banksPerChannel = 16;
        c.rowBytes = 8192;
        c.channelInterleave = 64;
        c.dataRateGbps = 3.2;
        c.dramBytes = 16ull << 30;
        c.tRowMissNs = 45.0;
        c.busIdleFraction = 0.6; // CPUs run DRAM at lower utilization.
        c.powerPreset = "ddr4";
        return c;
    }

    /** Peak aggregate bandwidth in GB/s (480 for Table I). */
    double peakBandwidthGBps() const
    {
        return static_cast<double>(channels) * busBitsPerChannel / 8.0 *
               dataRateGbps;
    }

    /** Time of one bus beat in nanoseconds. */
    double beatTimeNs() const { return 1.0 / dataRateGbps; }

    /** Render the Table I configuration block. */
    std::string report() const;
};

} // namespace bxt

#endif // BXT_GPUSIM_GPU_CONFIG_H
