#include "gpusim/gpu_system.h"

#include <cstdio>

#include "common/error.h"

namespace bxt {

double
GpuRunReport::energyPerBytePj() const
{
    const double bytes = static_cast<double>(bus.dataBits) / 8.0;
    return bytes == 0.0 ? 0.0 : energy.total() * 1e12 / bytes;
}

std::string
GpuRunReport::report() const
{
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "kernel %s with codec %s\n"
        "  LLC: %llu accesses, %.1f %% sector hit rate, %llu writebacks\n"
        "  DRAM: %llu reads, %llu writes, %llu activates, "
        "%.1f %% row hits, %.1f %% bus utilization\n"
        "  wires: %llu ones / %llu bits (%.1f %%), %llu toggles\n"
        "  energy: %.3f uJ total, %.2f pJ per DRAM byte\n",
        kernel.c_str(), codec.c_str(),
        static_cast<unsigned long long>(cache.accesses),
        cache.hitRate() * 100.0,
        static_cast<unsigned long long>(cache.writebacks),
        static_cast<unsigned long long>(mem.reads),
        static_cast<unsigned long long>(mem.writes),
        static_cast<unsigned long long>(mem.activates),
        mem.reads + mem.writes == 0
            ? 0.0
            : 100.0 * static_cast<double>(mem.rowHits) /
                  static_cast<double>(mem.reads + mem.writes),
        mem.utilization() * 100.0,
        static_cast<unsigned long long>(bus.ones()),
        static_cast<unsigned long long>(bus.dataBits + bus.metaBits),
        bus.dataBits + bus.metaBits == 0
            ? 0.0
            : 100.0 * static_cast<double>(bus.ones()) /
                  static_cast<double>(bus.dataBits + bus.metaBits),
        static_cast<unsigned long long>(bus.toggles()),
        energy.total() * 1e6, energyPerBytePj());
    return std::string(buffer);
}

GpuSystem::GpuSystem(const GpuConfig &config)
    : config_(config),
      cache_(config.llcBytes, config.llcWays, config.lineBytes,
             config.sectorBytes),
      memctrl_(config)
{
}

GpuRunReport
GpuSystem::run(GpuKernel &kernel)
{
    BXT_ASSERT(kernel.dataPattern != nullptr);
    BXT_ASSERT(kernel.footprintBytes % config_.sectorBytes == 0);

    Rng rng(kernel.seed);
    const std::uint64_t sectors =
        kernel.footprintBytes / config_.sectorBytes;
    BXT_ASSERT(sectors > 0);

    auto fill_tx = [&]() {
        Transaction tx(config_.sectorBytes);
        kernel.dataPattern->fill(rng, tx.bytes());
        return tx;
    };

    // Producer pass: populate the footprint with pattern data.
    for (std::uint64_t s = 0; s < sectors; ++s)
        cache_.write(s * config_.sectorBytes, fill_tx(), memctrl_);

    // Main access mix: streaming walk with occasional random accesses.
    std::uint64_t stream_pos = 0;
    Transaction read_buffer(config_.sectorBytes);
    for (std::size_t i = 0; i < kernel.accesses; ++i) {
        std::uint64_t sector;
        if (rng.nextBool(kernel.randomFraction)) {
            sector = rng.nextBounded(sectors);
        } else {
            sector = stream_pos;
            stream_pos = (stream_pos + 1) % sectors;
        }
        const std::uint64_t addr = sector * config_.sectorBytes;
        if (rng.nextBool(kernel.writeFraction))
            cache_.write(addr, fill_tx(), memctrl_);
        else
            cache_.read(addr, read_buffer, memctrl_);
    }

    // Drain dirty data so every store is priced.
    cache_.flush(memctrl_);

    GpuRunReport report;
    report.kernel = kernel.name;
    report.codec = memctrl_.codecName();
    report.cache = cache_.stats();
    report.mem = memctrl_.stats();
    report.bus = memctrl_.busStats();

    DramPowerParams params = DramPowerParams::gddr5x();
    if (config_.powerPreset == "ddr4")
        params = DramPowerParams::ddr4();
    else if (config_.powerPreset == "hbm2")
        params = DramPowerParams::hbm2();
    else if (config_.powerPreset != "gddr5x")
        fatal("unknown power preset: " + config_.powerPreset);
    params.io.dataRateGbps = config_.dataRateGbps;
    const double measured = report.mem.utilization();
    if (measured > 0.0)
        params.utilization = measured;
    report.energy =
        DramPowerModel(params).compute(report.bus, report.mem.activates);
    return report;
}

std::vector<GpuKernel>
makeReferenceKernels(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<GpuKernel> kernels;

    {
        GpuKernel k;
        k.name = "stream-triad-fp32";
        k.footprintBytes = 8u << 20;
        k.accesses = 300000;
        k.writeFraction = 0.33;
        k.randomFraction = 0.0;
        k.dataPattern = makeSoaFloatPattern(1.0e3, 1.0e-3, rng.next64(),
                                            12);
        k.seed = rng.next64();
        kernels.push_back(std::move(k));
    }
    {
        GpuKernel k;
        k.name = "graph-traversal";
        k.footprintBytes = 16u << 20;
        k.accesses = 300000;
        k.writeFraction = 0.1;
        k.randomFraction = 0.8;
        std::vector<std::pair<PatternPtr, double>> members;
        members.emplace_back(
            makeIntStridePattern(4, 2, 4, rng.next64()), 0.6);
        members.emplace_back(
            makePointerPattern(0x0000700000000000ull, 1u << 24,
                               rng.next64()),
            0.4);
        k.dataPattern = makeMixPattern(std::move(members), 0.9, rng.next64());
        k.seed = rng.next64();
        kernels.push_back(std::move(k));
    }
    {
        GpuKernel k;
        k.name = "sparse-amr-fp32";
        k.footprintBytes = 8u << 20;
        k.accesses = 250000;
        k.writeFraction = 0.4;
        k.randomFraction = 0.2;
        k.dataPattern = makeZeroMixedPattern(
            makeSoaFloatPattern(1.0, 1.0e-2, rng.next64(), 14), 4, 0.45,
            rng.next64());
        k.seed = rng.next64();
        kernels.push_back(std::move(k));
    }
    {
        GpuKernel k;
        k.name = "framebuffer-blend";
        k.footprintBytes = 8u << 20;
        k.accesses = 300000;
        k.writeFraction = 0.5;
        k.randomFraction = 0.05;
        k.dataPattern = makeRgbaPixelPattern(8, 0xff, rng.next64());
        k.seed = rng.next64();
        kernels.push_back(std::move(k));
    }
    {
        GpuKernel k;
        k.name = "incompressible";
        k.footprintBytes = 8u << 20;
        k.accesses = 200000;
        k.writeFraction = 0.3;
        k.randomFraction = 0.5;
        k.dataPattern = makeRandomPattern(rng.next64());
        k.seed = rng.next64();
        kernels.push_back(std::move(k));
    }
    return kernels;
}

} // namespace bxt
