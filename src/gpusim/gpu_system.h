/**
 * @file
 * End-to-end system driver: a GPU kernel's access stream runs through the
 * sectored LLC into the encoding memory controller, and the resulting DRAM
 * activity is priced by the energy model. This is the full pipeline the
 * paper's §VI-F energy numbers come from.
 */

#ifndef BXT_GPUSIM_GPU_SYSTEM_H
#define BXT_GPUSIM_GPU_SYSTEM_H

#include <cstdint>
#include <string>
#include <vector>

#include "energy/dram_power.h"
#include "gpusim/cache.h"
#include "gpusim/gpu_config.h"
#include "gpusim/memctrl.h"
#include "workloads/patterns.h"

namespace bxt {

/** A kernel-level workload for the full-system simulator. */
struct GpuKernel
{
    std::string name;
    std::size_t footprintBytes = 16u << 20; ///< Touched memory region.
    std::size_t accesses = 200000;          ///< Sector accesses to issue.
    double writeFraction = 0.3;             ///< Stores / all accesses.
    double randomFraction = 0.1;            ///< Random vs streaming access.
    PatternPtr dataPattern;                 ///< Payload for stores & init.
    std::uint64_t seed = 1;
};

/** Everything measured by one full-system run. */
struct GpuRunReport
{
    std::string kernel;
    std::string codec;
    CacheStats cache;
    MemCtrlStats mem;
    BusStats bus;
    EnergyBreakdown energy;

    /** DRAM energy per byte of DRAM traffic [pJ/B]. */
    double energyPerBytePj() const;

    /** Multi-line human-readable report. */
    std::string report() const;
};

/** The assembled system: LLC + memory controller + energy model. */
class GpuSystem
{
  public:
    explicit GpuSystem(const GpuConfig &config);

    /**
     * Run @p kernel to completion: an initialization sweep writes the
     * footprint with pattern data (the producer kernel), then the access
     * mix executes, then the LLC is flushed so all dirty data reaches
     * DRAM. Returns the accumulated measurements.
     */
    GpuRunReport run(GpuKernel &kernel);

    /** The system configuration in use. */
    const GpuConfig &config() const { return config_; }

  private:
    GpuConfig config_;
    SectoredCache cache_;
    MemoryController memctrl_;
};

/**
 * Representative kernels for the end-to-end energy study (streaming fp32
 * triad, graph traversal, sparse AMR, framebuffer blend, incompressible).
 */
std::vector<GpuKernel> makeReferenceKernels(std::uint64_t seed);

} // namespace bxt

#endif // BXT_GPUSIM_GPU_SYSTEM_H
