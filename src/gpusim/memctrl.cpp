#include "gpusim/memctrl.h"

#include "common/error.h"
#include "core/codec_factory.h"
#include "telemetry/metrics.h"

namespace bxt {

namespace {

/** Per-request DRAM counters (all controllers/channels aggregate). */
struct MemCtrlMetrics
{
    telemetry::Counter &reads =
        telemetry::counter("bxt.gpusim.memctrl.reads");
    telemetry::Counter &writes =
        telemetry::counter("bxt.gpusim.memctrl.writes");
    telemetry::Counter &activates =
        telemetry::counter("bxt.gpusim.memctrl.activates");
    telemetry::Counter &rowHits =
        telemetry::counter("bxt.gpusim.memctrl.row_hits");
    telemetry::Counter &bytes =
        telemetry::counter("bxt.gpusim.memctrl.bytes");
};

MemCtrlMetrics &
memCtrlMetrics()
{
    static MemCtrlMetrics *metrics = new MemCtrlMetrics();
    return *metrics;
}

} // namespace

MemoryController::MemoryController(const GpuConfig &config) : config_(config)
{
    channels_.resize(config.channels);
    for (auto &channel : channels_) {
        channel.codec = makeCodec(config.codecSpec,
                                  config.busBitsPerChannel / 8);
        channel.bus = std::make_unique<Bus>(
            config.busBitsPerChannel, channel.codec->metaWiresPerBeat(),
            config.busIdleFraction);
        channel.openRow.assign(config.banksPerChannel, -1);
        channel.encodedStorage = channel.codec->stateless() &&
                                 channel.codec->metaWiresPerBeat() == 0;
    }
}

std::size_t
MemoryController::channelOf(std::uint64_t sector_addr) const
{
    return (sector_addr / config_.channelInterleave) % config_.channels;
}

void
MemoryController::touchRow(Channel &channel, std::uint64_t sector_addr)
{
    // Strip the channel-interleave bits to form the channel-local address.
    const std::uint64_t block = sector_addr / config_.channelInterleave;
    const std::uint64_t local = (block / config_.channels) *
                                    config_.channelInterleave +
                                sector_addr % config_.channelInterleave;

    const std::uint64_t bank =
        (local / config_.rowBytes) % config_.banksPerChannel;
    const auto row = static_cast<std::int64_t>(
        local / (config_.rowBytes * config_.banksPerChannel));

    if (channel.openRow[bank] != row) {
        channel.openRow[bank] = row;
        ++channel.stats.activates;
        channel.stats.totalTimeNs += config_.tRowMissNs;
        if (telemetry::metricsEnabled())
            memCtrlMetrics().activates.add(1);
    } else {
        ++channel.stats.rowHits;
        if (telemetry::metricsEnabled())
            memCtrlMetrics().rowHits.add(1);
    }

    const double beats = static_cast<double>(config_.sectorBytes * 8) /
                         config_.busBitsPerChannel;
    const double transfer_ns = beats * config_.beatTimeNs();
    channel.stats.busyTimeNs += transfer_ns;
    channel.stats.totalTimeNs += transfer_ns;
}

Transaction
MemoryController::readSector(std::uint64_t sector_addr)
{
    BXT_ASSERT(sector_addr % config_.sectorBytes == 0);
    Channel &channel = channels_[channelOf(sector_addr)];
    touchRow(channel, sector_addr);
    ++channel.stats.reads;
    if (telemetry::metricsEnabled()) {
        MemCtrlMetrics &mm = memCtrlMetrics();
        mm.reads.add(1);
        mm.bytes.add(config_.sectorBytes);
    }

    auto shadow_it = channel.shadow.find(sector_addr);
    if (shadow_it == channel.shadow.end()) {
        // Untouched DRAM reads as zeros (cleared at allocation).
        const Transaction zeros(config_.sectorBytes);
        shadow_it = channel.shadow.emplace(sector_addr, zeros).first;
        if (channel.encodedStorage) {
            channel.storage.emplace(sector_addr,
                                    channel.codec->encode(zeros).payload);
        } else {
            channel.storage.emplace(sector_addr, zeros);
        }
    }

    Encoded enc;
    const Transaction &stored = channel.storage.at(sector_addr);
    if (channel.encodedStorage) {
        // The DRAM array holds the encoded form; the wire carries it as-is
        // and the controller decodes after the transfer.
        enc.payload = stored;
    } else {
        // Link-layer codec: the device-side encoder processes the raw
        // array data onto the wire.
        enc = channel.codec->encode(stored);
    }
    channel.bus->transmit(enc);
    const Transaction decoded = channel.codec->decode(enc);
    if (!(decoded == shadow_it->second))
        panic("memory controller read corruption at address " +
              std::to_string(sector_addr));
    return decoded;
}

void
MemoryController::writeSector(std::uint64_t sector_addr,
                              const Transaction &data)
{
    BXT_ASSERT(sector_addr % config_.sectorBytes == 0);
    BXT_ASSERT(data.size() == config_.sectorBytes);
    Channel &channel = channels_[channelOf(sector_addr)];
    touchRow(channel, sector_addr);
    ++channel.stats.writes;
    if (telemetry::metricsEnabled()) {
        MemCtrlMetrics &mm = memCtrlMetrics();
        mm.writes.add(1);
        mm.bytes.add(config_.sectorBytes);
    }

    const Encoded enc = channel.codec->encode(data);
    channel.bus->transmit(enc);
    // The device-side decoder runs on every write (it keeps stateful link
    // codecs' repositories coherent); verify the round trip.
    const Transaction decoded = channel.codec->decode(enc);
    if (!(decoded == data))
        panic("memory controller write corruption at address " +
              std::to_string(sector_addr));

    channel.storage[sector_addr] =
        channel.encodedStorage ? enc.payload : data;
    channel.shadow[sector_addr] = data;
}

BusStats
MemoryController::busStats() const
{
    BusStats total;
    for (const auto &channel : channels_)
        total += channel.bus->stats();
    return total;
}

MemCtrlStats
MemoryController::stats() const
{
    MemCtrlStats total;
    for (const auto &channel : channels_) {
        total.reads += channel.stats.reads;
        total.writes += channel.stats.writes;
        total.activates += channel.stats.activates;
        total.rowHits += channel.stats.rowHits;
        total.busyTimeNs += channel.stats.busyTimeNs;
        total.totalTimeNs += channel.stats.totalTimeNs;
    }
    return total;
}

std::string
MemoryController::codecName() const
{
    return channels_.empty() ? "" : channels_.front().codec->name();
}

} // namespace bxt
