/**
 * @file
 * Memory controller with the encode/decode pipeline of the paper (§V-B
 * "System Organization"): data is encoded before leaving the controller on
 * a write, stored in encoded form in DRAM (for the metadata-free Base+XOR
 * schemes), and decoded in the controller after a read. Link-layer codecs
 * with metadata (DBI, BD-Encoding) store raw data, as real GDDR devices
 * decode DBI at their pads.
 *
 * The controller also models the DRAM bank/row structure per channel
 * (activations for the energy model, a simple open-page timing estimate)
 * and drives one Bus per channel for wire-activity accounting.
 */

#ifndef BXT_GPUSIM_MEMCTRL_H
#define BXT_GPUSIM_MEMCTRL_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "channel/bus.h"
#include "core/codec.h"
#include "gpusim/cache.h"
#include "gpusim/gpu_config.h"

namespace bxt {

/** Per-controller DRAM traffic and timing counters. */
struct MemCtrlStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t activates = 0;
    std::uint64_t rowHits = 0;
    double busyTimeNs = 0.0;  ///< Beat time spent transferring data.
    double totalTimeNs = 0.0; ///< Busy time plus row-miss stalls.

    /** Achieved channel utilization in [0, 1]. */
    double utilization() const
    {
        return totalTimeNs == 0.0 ? 0.0 : busyTimeNs / totalTimeNs;
    }
};

/**
 * The memory controller + DRAM device model behind the LLC. Implements
 * MemoryBackend so a SectoredCache can fill from and spill to it.
 */
class MemoryController : public MemoryBackend
{
  public:
    /** Build from the system config (one codec and bus per channel). */
    explicit MemoryController(const GpuConfig &config);

    Transaction readSector(std::uint64_t sector_addr) override;
    void writeSector(std::uint64_t sector_addr,
                     const Transaction &data) override;

    /** Aggregate wire activity over all channels. */
    BusStats busStats() const;

    /** Aggregate traffic/timing counters over all channels. */
    MemCtrlStats stats() const;

    /** The codec name in use. */
    std::string codecName() const;

  private:
    struct Channel
    {
        CodecPtr codec;
        std::unique_ptr<Bus> bus;
        std::vector<std::int64_t> openRow; ///< Per bank; -1 = closed.
        MemCtrlStats stats;
        /** DRAM cell contents, keyed by sector address. Holds the encoded
         *  payload for metadata-free stateless codecs, raw data otherwise. */
        std::unordered_map<std::uint64_t, Transaction> storage;
        /** Shadow of the original data, for end-to-end verification. */
        std::unordered_map<std::uint64_t, Transaction> shadow;
        bool encodedStorage = false;
    };

    /** Channel index for @p sector_addr. */
    std::size_t channelOf(std::uint64_t sector_addr) const;

    /** Account bank/row activity and timing for one transfer. */
    void touchRow(Channel &channel, std::uint64_t sector_addr);

    GpuConfig config_;
    std::vector<Channel> channels_;
};

} // namespace bxt

#endif // BXT_GPUSIM_MEMCTRL_H
