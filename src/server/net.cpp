#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bxt::net {
namespace {

std::string
errnoString(const std::string &what)
{
    return what + ": " + std::strerror(errno);
}

} // namespace

void
UniqueFd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

UniqueFd
listenTcp(const std::string &host, int port, std::string &err,
          bool reuse_port)
{
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        err = errnoString("socket");
        return {};
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (reuse_port &&
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
        err = errnoString("setsockopt SO_REUSEPORT");
        return {};
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        err = "listenTcp: bad IPv4 host literal '" + host + "'";
        return {};
    }
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = errnoString("bind " + host + ":" + std::to_string(port));
        return {};
    }
    if (::listen(fd.get(), SOMAXCONN) != 0) {
        err = errnoString("listen");
        return {};
    }
    return fd;
}

UniqueFd
listenUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "listenUnix: path too long: " + path;
        return {};
    }
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        err = errnoString("socket");
        return {};
    }
    ::unlink(path.c_str()); // Stale socket from a previous run.
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = errnoString("bind " + path);
        return {};
    }
    if (::listen(fd.get(), SOMAXCONN) != 0) {
        err = errnoString("listen");
        return {};
    }
    return fd;
}

UniqueFd
connectTcp(const std::string &host, int port, std::string &err)
{
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        err = errnoString("socket");
        return {};
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        err = "connectTcp: bad IPv4 host literal '" + host + "'";
        return {};
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = errnoString("connect " + host + ":" + std::to_string(port));
        return {};
    }
    return fd;
}

UniqueFd
connectUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "connectUnix: path too long: " + path;
        return {};
    }
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        err = errnoString("socket");
        return {};
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = errnoString("connect " + path);
        return {};
    }
    return fd;
}

int
boundTcpPort(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0)
        return -1;
    return static_cast<int>(ntohs(addr.sin_port));
}

bool
writeAll(int fd, const void *data, std::size_t n, std::string &err)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t w =
            ::send(fd, bytes + sent, n - sent, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            err = errnoString("write");
            return false;
        }
        sent += static_cast<std::size_t>(w);
    }
    return true;
}

long
readSome(int fd, void *data, std::size_t n, std::string &err)
{
    for (;;) {
        const ssize_t r = ::read(fd, data, n);
        if (r >= 0)
            return static_cast<long>(r);
        if (errno == EINTR)
            continue;
        err = errnoString("read");
        return -1;
    }
}

bool
setNonBlocking(int fd, std::string &err)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        err = errnoString("fcntl O_NONBLOCK");
        return false;
    }
    return true;
}

long
tryRead(int fd, void *data, std::size_t n, bool &would_block,
        std::string &err)
{
    would_block = false;
    for (;;) {
        const ssize_t r = ::read(fd, data, n);
        if (r >= 0)
            return static_cast<long>(r);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            would_block = true;
            return -1;
        }
        err = errnoString("read");
        return -1;
    }
}

long
tryWrite(int fd, const void *data, std::size_t n, bool &would_block,
         std::string &err)
{
    would_block = false;
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t w =
            ::send(fd, bytes + sent, n - sent, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                would_block = true;
                break;
            }
            err = errnoString("write");
            return -1;
        }
        sent += static_cast<std::size_t>(w);
    }
    return static_cast<long>(sent);
}

PollResult
pollIn(int fd, int aux_fd, int timeout_ms)
{
    pollfd fds[2];
    nfds_t count = 0;
    int fd_slot = -1;
    int aux_slot = -1;
    if (fd >= 0) {
        fd_slot = static_cast<int>(count);
        fds[count++] = {fd, POLLIN, 0};
    }
    if (aux_fd >= 0) {
        aux_slot = static_cast<int>(count);
        fds[count++] = {aux_fd, POLLIN, 0};
    }
    for (;;) {
        const int r = ::poll(fds, count, timeout_ms);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return PollResult::Error;
        }
        if (r == 0)
            return PollResult::Timeout;
        // The stop-pipe takes precedence: a shutdown mid-request should
        // win over more incoming traffic.
        if (aux_slot >= 0 && (fds[aux_slot].revents & POLLIN) != 0)
            return PollResult::Aux;
        if (fd_slot >= 0 && fds[fd_slot].revents != 0)
            return PollResult::Readable;
        return PollResult::Error;
    }
}

} // namespace bxt::net
