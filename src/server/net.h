/**
 * @file
 * Thin POSIX socket helpers shared by the bxtd server and the client
 * library: RAII fd ownership, TCP (IPv4) and Unix-domain listen/connect,
 * and retrying read/write/poll wrappers. Everything reports errors via an
 * out-parameter string instead of errno spelunking at call sites.
 */

#ifndef BXT_SERVER_NET_H
#define BXT_SERVER_NET_H

#include <cstddef>
#include <string>
#include <utility>

namespace bxt::net {

/** Owning file-descriptor handle (closes on destruction; movable). */
class UniqueFd
{
  public:
    UniqueFd() = default;
    explicit UniqueFd(int fd) : fd_(fd) {}
    ~UniqueFd() { reset(); }

    UniqueFd(UniqueFd &&other) noexcept : fd_(other.release()) {}
    UniqueFd &operator=(UniqueFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    UniqueFd(const UniqueFd &) = delete;
    UniqueFd &operator=(const UniqueFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int release()
    {
        return std::exchange(fd_, -1);
    }

    /** Close the held fd (if any). */
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Create a listening TCP socket bound to @p host (an IPv4 literal such as
 * "127.0.0.1" or "0.0.0.0") and @p port (0 picks an ephemeral port).
 * With @p reuse_port the socket also sets SO_REUSEPORT, so N listeners
 * (one per bxtd shard) can bind the same address and let the kernel
 * load-balance accepts across them. Returns an invalid fd and fills
 * @p err on failure.
 */
UniqueFd listenTcp(const std::string &host, int port, std::string &err,
                   bool reuse_port = false);

/**
 * Create a listening Unix-domain socket at @p path. A stale socket file
 * from a previous run is unlinked first. Fails when @p path exceeds the
 * sockaddr_un limit (~107 bytes).
 */
UniqueFd listenUnix(const std::string &path, std::string &err);

/** Connect to a TCP endpoint (IPv4 literal host). */
UniqueFd connectTcp(const std::string &host, int port, std::string &err);

/** Connect to a Unix-domain socket. */
UniqueFd connectUnix(const std::string &path, std::string &err);

/** Local port a bound TCP socket ended up on (resolves port 0), -1 on error. */
int boundTcpPort(int fd);

/**
 * Write all @p n bytes (retrying on EINTR / short writes). SIGPIPE is
 * suppressed per-call (MSG_NOSIGNAL); a closed peer is an error, not a
 * process signal. False + @p err on failure.
 */
bool writeAll(int fd, const void *data, std::size_t n, std::string &err);

/**
 * Read up to @p n bytes once readable. Returns the byte count, 0 on
 * orderly EOF, or -1 with @p err set on error. Retries EINTR.
 */
long readSome(int fd, void *data, std::size_t n, std::string &err);

/** Put @p fd into nonblocking mode (the shard event-loop sockets). */
bool setNonBlocking(int fd, std::string &err);

/**
 * One nonblocking read. Returns the byte count, 0 on orderly EOF, or
 * -1: with @p would_block set when the socket simply has no data
 * (EAGAIN/EWOULDBLOCK), or with @p err set on a real error. Retries
 * EINTR.
 */
long tryRead(int fd, void *data, std::size_t n, bool &would_block,
             std::string &err);

/**
 * One nonblocking write pass: send as much of @p data as the socket
 * accepts. Returns bytes written (possibly 0 when the send buffer is
 * full — @p would_block set), or -1 with @p err on a real error.
 * SIGPIPE is suppressed per-call (MSG_NOSIGNAL). Retries EINTR.
 */
long tryWrite(int fd, const void *data, std::size_t n, bool &would_block,
              std::string &err);

/** pollIn() outcomes. */
enum class PollResult { Readable, Timeout, Aux, Error };

/**
 * Wait until @p fd is readable, @p timeout_ms elapses (< 0 waits forever),
 * or @p aux_fd (ignored when < 0) becomes readable — the server threads
 * use the aux slot for the stop-pipe so shutdown interrupts every wait.
 * @p fd itself may also be < 0 to wait on the aux fd alone.
 */
PollResult pollIn(int fd, int aux_fd, int timeout_ms);

} // namespace bxt::net

#endif // BXT_SERVER_NET_H
