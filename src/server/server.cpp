#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "common/parallel.h"
#include "server/shard.h"
#include "server/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

namespace bxt::server {
namespace {

/** Best-effort: send one frame and ignore failures (peer may be gone). */
void
sendFrameBestEffort(int fd, const wire::Frame &frame)
{
    const std::vector<std::uint8_t> bytes = wire::serializeFrame(frame);
    std::string err;
    net::writeAll(fd, bytes.data(), bytes.size(), err);
}

/**
 * Rename hook for the per-shard breakdown merge. Only the
 * connection-layer instruments the shard event loop itself owns are
 * broken out — the load-balance signals bxt_top's shard rows read.
 * The per-stream and per-spec subtrees stay fleet-only: breaking them
 * out would multiply the snapshot by the shard count, and consumers
 * that telescope suffix sums (e.g. `*.ones_in` across specs) must not
 * see a second copy of every leaf.
 */
std::string
shardRename(std::size_t shard_index, const std::string &name)
{
    static constexpr const char *breakout[] = {
        "bxt.server.requests",       "bxt.server.errors",
        "bxt.server.tx_encoded",     "bxt.server.tx_decoded",
        "bxt.server.connections",    "bxt.server.rejected_busy",
        "bxt.server.active_connections", "bxt.server.queue_depth",
        "bxt.server.threads",        "bxt.server.batch_size",
        "bxt.server.request_us",
    };
    for (const char *keep : breakout) {
        if (name == keep) {
            constexpr std::size_t prefix_len =
                sizeof("bxt.server.") - 1;
            return "bxt.server.shard." + std::to_string(shard_index) +
                   "." + name.substr(prefix_len);
        }
    }
    return std::string(); // Skip.
}

} // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server()
{
    if (!options_.unixPath.empty() && unix_listener_.valid())
        ::unlink(options_.unixPath.c_str());
}

bool
Server::start(std::string &err)
{
    if (options_.tcpPort < 0 && options_.unixPath.empty()) {
        err = "no listener configured (need a TCP port or a Unix path)";
        return false;
    }
    int fds[2];
    if (::pipe(fds) != 0) {
        err = "pipe: failed to create stop pipe";
        return false;
    }
    stop_read_ = net::UniqueFd(fds[0]);
    stop_write_ = net::UniqueFd(fds[1]);

    const unsigned shard_count =
        options_.shards != 0
            ? options_.shards
            : (options_.threads != 0 ? options_.threads
                                     : defaultThreadCount());
    shards_.reserve(shard_count);
    for (unsigned i = 0; i < shard_count; ++i)
        shards_.push_back(std::make_unique<Shard>(i, options_));

    // TCP: shard 0 binds first (resolving port 0 to a concrete
    // ephemeral port), then every other shard binds the resolved port —
    // SO_REUSEPORT turns the set of listeners into the kernel-load-
    // balanced accept slice.
    int tcp_port = options_.tcpPort;
    for (auto &shard : shards_) {
        if (!shard->start(options_.tcpHost, tcp_port, err))
            return false;
        if (tcp_port == 0) {
            tcp_port = shard->tcpPort();
            if (tcp_port <= 0) {
                err = "getsockname: failed to resolve ephemeral port";
                return false;
            }
        }
    }
    if (tcp_port >= 0)
        resolved_tcp_port_ = tcp_port;

    if (!options_.unixPath.empty()) {
        unix_listener_ = net::listenUnix(options_.unixPath, err);
        if (!unix_listener_.valid())
            return false;
    }

    // The fleet Stats/Snapshot view is served by whichever shard owns
    // the connection; the provider closes over the Server, which
    // outlives every shard loop (serve() joins them before returning).
    for (auto &shard : shards_) {
        shard->service().setStatsProvider(
            [this] { return mergedSnapshotJson(); });
    }
    telemetry::defaultRegistry()
        .gauge("bxt.server.shards")
        .set(static_cast<double>(shards_.size()));
    return true;
}

void
Server::requestStop()
{
    stopping_.store(true, std::memory_order_relaxed);
    const int fd = stop_write_.get();
    if (fd >= 0) {
        const char byte = 's';
        // Async-signal-safe; a full pipe still leaves earlier bytes
        // readable, so the wakeup is never lost.
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
    for (auto &shard : shards_)
        shard->requestStop();
}

std::string
Server::mergedSnapshotJson() const
{
    telemetry::Registry merged;
    // Process-wide instruments first (span ring, bus, pool, codec-layer
    // counters pinned to the default registry).
    merged.mergeFrom(telemetry::defaultRegistry());
    for (const auto &shard : shards_) {
        // Fleet totals: every shard instrument summed verbatim...
        merged.mergeFrom(shard->registry());
        // ...plus the per-shard breakdown under bxt.server.shard.<i>.*,
        // so totals telescope exactly to the sum of the breakdowns.
        const std::size_t index = shard->index();
        merged.mergeFrom(shard->registry(),
                         [index](const std::string &name) {
                             return shardRename(index, name);
                         });
    }
    return telemetry::snapshotJson(merged, false);
}

void
Server::unixAcceptLoop()
{
    std::size_t next = 0;
    for (;;) {
        const net::PollResult ready = net::pollIn(
            unix_listener_.get(), stop_read_.get(), -1);
        if (ready == net::PollResult::Aux ||
            ready == net::PollResult::Error)
            break;
        if (ready != net::PollResult::Readable)
            continue;
        net::UniqueFd conn(::accept(unix_listener_.get(), nullptr,
                                    nullptr));
        if (!conn.valid())
            continue; // Transient (ECONNABORTED, EINTR); keep going.
        if (stopping_.load(std::memory_order_relaxed)) {
            sendFrameBestEffort(
                conn.get(),
                wire::makeErrorFrame(wire::ErrorCode::ShuttingDown,
                                     "server is draining"));
            continue;
        }
        // Round-robin handoff: the acceptor never serves, so a stalled
        // shard delays only its own inbox.
        shards_[next % shards_.size()]->enqueue(std::move(conn));
        ++next;
    }
}

void
Server::serve()
{
    if (unix_listener_.valid())
        unix_acceptor_ = std::thread([this] { unixAcceptLoop(); });

    // Shards 1..N-1 on dedicated threads; shard 0 on the calling
    // thread, so serve() blocks until the stop request.
    for (std::size_t i = 1; i < shards_.size(); ++i) {
        shard_threads_.emplace_back(
            [shard = shards_[i].get()] { shard->run(); });
    }
    if (!shards_.empty())
        shards_[0]->run();

    // Drain barrier: every shard's run() has answered and flushed its
    // in-flight work before serve() returns.
    for (std::thread &t : shard_threads_)
        t.join();
    shard_threads_.clear();
    if (unix_acceptor_.joinable())
        unix_acceptor_.join();

    // The drain is complete; remove the Unix socket path now so a caller
    // that observes serve() returning sees no stale socket file. The
    // destructor also unlinks, covering start()-without-serve() paths.
    if (!options_.unixPath.empty() && unix_listener_.valid()) {
        ::unlink(options_.unixPath.c_str());
        unix_listener_.reset();
    }
}

} // namespace bxt::server
