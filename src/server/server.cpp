#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "server/service.h"
#include "server/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/spanring.h"
#include "telemetry/trace.h"

namespace bxt::server {
namespace {

/** Listener/queue instruments (DESIGN.md §10). */
struct ServerMetrics
{
    telemetry::Counter &connections =
        telemetry::counter("bxt.server.connections");
    telemetry::Counter &rejectedBusy =
        telemetry::counter("bxt.server.rejected_busy");
    telemetry::Gauge &queueDepth =
        telemetry::gauge("bxt.server.queue_depth");
    telemetry::Gauge &threads = telemetry::gauge("bxt.server.threads");
    /** Frames coalesced per read pass. */
    telemetry::Histo &batchSize =
        telemetry::histogram("bxt.server.batch_size");
    /**
     * Whole request lifecycle, microseconds: last socket feed that
     * completed the frame to response bytes written. Recorded here in
     * the connection layer — not the Service — so parse-error replies
     * and busy rejections are measured too, and so the value telescopes
     * exactly to the per-phase spans (DESIGN.md §9).
     */
    telemetry::Histo &requestUs =
        telemetry::histogram("bxt.server.request_us");
};

ServerMetrics &
serverMetrics()
{
    static ServerMetrics *metrics = new ServerMetrics();
    return *metrics;
}

/** Best-effort: send one frame and ignore failures (peer may be gone). */
void
sendFrameBestEffort(int fd, const wire::Frame &frame)
{
    const std::vector<std::uint8_t> bytes = wire::serializeFrame(frame);
    std::string err;
    net::writeAll(fd, bytes.data(), bytes.size(), err);
}

} // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server()
{
    if (!options_.unixPath.empty() && unix_listener_.valid())
        ::unlink(options_.unixPath.c_str());
}

bool
Server::start(std::string &err)
{
    if (options_.tcpPort < 0 && options_.unixPath.empty()) {
        err = "no listener configured (need a TCP port or a Unix path)";
        return false;
    }
    int fds[2];
    if (::pipe(fds) != 0) {
        err = "pipe: failed to create stop pipe";
        return false;
    }
    stop_read_ = net::UniqueFd(fds[0]);
    stop_write_ = net::UniqueFd(fds[1]);

    if (options_.tcpPort >= 0) {
        tcp_listener_ =
            net::listenTcp(options_.tcpHost, options_.tcpPort, err);
        if (!tcp_listener_.valid())
            return false;
        resolved_tcp_port_ = net::boundTcpPort(tcp_listener_.get());
    }
    if (!options_.unixPath.empty()) {
        unix_listener_ = net::listenUnix(options_.unixPath, err);
        if (!unix_listener_.valid())
            return false;
    }
    return true;
}

void
Server::requestStop()
{
    stopping_.store(true, std::memory_order_relaxed);
    const int fd = stop_write_.get();
    if (fd >= 0) {
        const char byte = 's';
        // Async-signal-safe; a full pipe still leaves earlier bytes
        // readable, so the wakeup is never lost.
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
}

void
Server::acceptLoop(int listen_fd)
{
    for (;;) {
        const net::PollResult ready =
            net::pollIn(listen_fd, stop_read_.get(), -1);
        if (ready == net::PollResult::Aux || ready == net::PollResult::Error)
            break;
        if (ready != net::PollResult::Readable)
            continue;
        net::UniqueFd conn(::accept(listen_fd, nullptr, nullptr));
        if (!conn.valid())
            continue; // Transient (ECONNABORTED, EINTR); keep accepting.

        bool queued = false;
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            if (pending_.size() < options_.maxPending &&
                !stopping_.load(std::memory_order_relaxed)) {
                pending_.push_back(std::move(conn));
                serverMetrics().queueDepth.set(
                    static_cast<double>(pending_.size()));
                queued = true;
            }
        }
        if (queued) {
            serverMetrics().connections.add(1);
            queue_cv_.notify_one();
        } else {
            const bool metrics_on = telemetry::metricsEnabled();
            const std::uint64_t t_reject =
                metrics_on ? telemetry::nowMicros() : 0;
            serverMetrics().rejectedBusy.add(1);
            sendFrameBestEffort(
                conn.get(),
                wire::makeErrorFrame(wire::ErrorCode::Busy,
                                     "accept queue full; retry later"));
            // Busy rejections are requests too: charge the reply write
            // to request_us so overload latency is visible, even though
            // no frame (hence no trace context) ever existed.
            if (metrics_on) {
                serverMetrics().requestUs.record(telemetry::nowMicros() -
                                                 t_reject);
            }
        }
    }
    // Wake every worker so shutdown never races a missed notify (the
    // stop path must not rely on signal-unsafe condition variables).
    queue_cv_.notify_all();
}

net::UniqueFd
Server::popConnection()
{
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait(lock, [&] {
        return !pending_.empty() ||
               stopping_.load(std::memory_order_relaxed);
    });
    if (pending_.empty())
        return {};
    net::UniqueFd fd = std::move(pending_.front());
    pending_.pop_front();
    serverMetrics().queueDepth.set(static_cast<double>(pending_.size()));
    return fd;
}

void
Server::serveConnection(net::UniqueFd fd)
{
    wire::FrameParser parser;
    Service service;
    std::vector<std::uint8_t> read_buf(64 * 1024);
    ServerMetrics &metrics = serverMetrics();

    /**
     * Per-frame phase timestamps held until the batch write lands, so
     * every phase span — and the request_us total they telescope to —
     * ends at the same write-completion instant (DESIGN.md §9):
     *   queue_wait = tParseStart − tFeed   (buffered, awaiting worker)
     *   parse      = tParseEnd − tParseStart
     *   codec      = tHandleEnd − tParseEnd (service dispatch)
     *   reply      = tWriteEnd − tHandleEnd (serialize + write)
     *   request    = tWriteEnd − tFeed     (exact sum of the above)
     */
    struct PendingSpan
    {
        std::uint64_t traceId = 0;
        std::uint64_t spanId = 0;
        std::uint64_t tParseStart = 0;
        std::uint64_t tParseEnd = 0;
        std::uint64_t tHandleEnd = 0;
        std::uint8_t opcode = 0;
        std::uint16_t streamId = 0;
        std::uint32_t txCount = 0;
        bool sampled = false;
    };
    std::vector<PendingSpan> batch_spans;
    std::uint64_t t_feed = telemetry::nowMicros();

    bool draining = false;
    for (;;) {
        // Serve everything already buffered, coalescing up to maxBatch
        // frames into one response write.
        const bool metrics_on = telemetry::metricsEnabled();
        std::vector<std::uint8_t> out;
        std::size_t batch = 0;
        bool close_after_flush = false;
        batch_spans.clear();
        while (batch < options_.maxBatch) {
            const std::uint64_t t_parse_start =
                metrics_on ? telemetry::nowMicros() : 0;
            wire::Frame request;
            wire::WireError parse_err;
            const wire::FrameParser::Status st =
                parser.next(request, parse_err);
            if (st == wire::FrameParser::Status::NeedMore)
                break;
            if (st == wire::FrameParser::Status::Bad) {
                // Framing is untrustworthy after a structural error:
                // answer with the typed error, then drop the stream.
                // The reply still charges request_us (an unparseable
                // frame has no trace context, so no phase spans).
                const std::vector<std::uint8_t> reply =
                    wire::serializeFrame(wire::makeErrorFrame(
                        parse_err.code, parse_err.detail));
                out.insert(out.end(), reply.begin(), reply.end());
                close_after_flush = true;
                if (metrics_on) {
                    PendingSpan pending;
                    pending.tParseStart = t_parse_start;
                    pending.tParseEnd = pending.tHandleEnd =
                        telemetry::nowMicros();
                    batch_spans.push_back(pending);
                }
                break;
            }
            const std::uint64_t t_parse_end =
                metrics_on ? telemetry::nowMicros() : 0;
            const wire::Frame response = service.handle(request);
            const std::uint64_t t_handle_end =
                metrics_on ? telemetry::nowMicros() : 0;
            const std::vector<std::uint8_t> reply =
                wire::serializeFrame(response);
            out.insert(out.end(), reply.begin(), reply.end());
            ++batch;
            if (metrics_on) {
                PendingSpan pending;
                pending.traceId = request.traceId;
                pending.spanId = request.spanId;
                pending.tParseStart = t_parse_start;
                pending.tParseEnd = t_parse_end;
                pending.tHandleEnd = t_handle_end;
                pending.opcode =
                    static_cast<std::uint8_t>(request.opcode);
                pending.streamId = request.streamId;
                pending.txCount = requestTxCount(request);
                pending.sampled = request.traceSampled;
                batch_spans.push_back(pending);
            }
        }
        if (batch > 0)
            metrics.batchSize.record(batch);
        if (!out.empty()) {
            std::string err;
            if (!net::writeAll(fd.get(), out.data(), out.size(), err))
                return; // Peer vanished mid-response.
        }
        if (metrics_on && !batch_spans.empty()) {
            const std::uint64_t t_write_end = telemetry::nowMicros();
            const std::uint32_t tid = telemetry::currentThreadId();
            for (const PendingSpan &pending : batch_spans) {
                metrics.requestUs.record(t_write_end - t_feed);
                if (!pending.sampled || pending.traceId == 0)
                    continue;
                telemetry::ServerSpan span;
                span.traceId = pending.traceId;
                span.spanId = pending.spanId;
                span.phase = telemetry::ServerPhase::Request;
                span.opcode = pending.opcode;
                span.streamId = pending.streamId;
                span.tid = tid;
                span.txCount = pending.txCount;
                const auto emit = [&span](telemetry::ServerPhase phase,
                                          std::uint64_t start,
                                          std::uint64_t end) {
                    span.phase = phase;
                    span.startUs = start;
                    span.durUs = end - start;
                    telemetry::recordServerSpan(span);
                };
                emit(telemetry::ServerPhase::Request, t_feed,
                     t_write_end);
                emit(telemetry::ServerPhase::QueueWait, t_feed,
                     pending.tParseStart);
                emit(telemetry::ServerPhase::Parse, pending.tParseStart,
                     pending.tParseEnd);
                emit(telemetry::ServerPhase::Codec, pending.tParseEnd,
                     pending.tHandleEnd);
                emit(telemetry::ServerPhase::Reply, pending.tHandleEnd,
                     t_write_end);
            }
        }
        if (close_after_flush)
            return;
        if (batch == options_.maxBatch)
            continue; // More frames may already be buffered.
        if (draining)
            return; // Buffered frames served; drain complete.

        const net::PollResult ready = net::pollIn(
            fd.get(), stop_read_.get(), options_.idleTimeoutMs);
        if (ready == net::PollResult::Timeout ||
            ready == net::PollResult::Error) {
            return;
        }
        if (ready == net::PollResult::Aux) {
            // Graceful drain: serve whatever is already buffered on this
            // connection, then close without reading more.
            draining = true;
            continue;
        }
        std::string err;
        const long n = net::readSome(fd.get(), read_buf.data(),
                                     read_buf.size(), err);
        if (n <= 0)
            return; // EOF or socket error.
        parser.feed(read_buf.data(), static_cast<std::size_t>(n));
        t_feed = telemetry::nowMicros(); // Request clock starts here.
    }
}

void
Server::workerLoop()
{
    for (;;) {
        net::UniqueFd conn = popConnection();
        if (!conn.valid()) {
            if (stopping_.load(std::memory_order_relaxed))
                return;
            continue; // Spurious empty pop; wait again.
        }
        if (stopping_.load(std::memory_order_relaxed)) {
            // Accepted but never served: tell the peer we are going away
            // rather than silently dropping the connection.
            sendFrameBestEffort(
                conn.get(),
                wire::makeErrorFrame(wire::ErrorCode::ShuttingDown,
                                     "server is draining"));
            continue;
        }
        serveConnection(std::move(conn));
    }
}

void
Server::serve()
{
    if (tcp_listener_.valid()) {
        acceptors_.emplace_back(
            [this, fd = tcp_listener_.get()] { acceptLoop(fd); });
    }
    if (unix_listener_.valid()) {
        acceptors_.emplace_back(
            [this, fd = unix_listener_.get()] { acceptLoop(fd); });
    }

    const unsigned threads =
        options_.threads == 0 ? defaultThreadCount() : options_.threads;
    serverMetrics().threads.set(static_cast<double>(threads));
    ThreadPool pool(threads);
    // Each index is one worker loop that blocks until shutdown; with
    // count == thread count the pool degrades into a plain worker pool
    // (the calling thread participates, so serve() blocks here).
    pool.run(threads, [this](std::size_t) { workerLoop(); });

    for (std::thread &acceptor : acceptors_)
        acceptor.join();
    acceptors_.clear();

    // Drain connections that were queued but never claimed by a worker.
    for (;;) {
        net::UniqueFd conn;
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            if (pending_.empty())
                break;
            conn = std::move(pending_.front());
            pending_.pop_front();
        }
        sendFrameBestEffort(
            conn.get(),
            wire::makeErrorFrame(wire::ErrorCode::ShuttingDown,
                                 "server is draining"));
    }

    // The drain is complete; remove the Unix socket path now so a caller
    // that observes serve() returning sees no stale socket file. The
    // destructor also unlinks, covering start()-without-serve() paths.
    if (!options_.unixPath.empty() && unix_listener_.valid()) {
        ::unlink(options_.unixPath.c_str());
        unix_listener_.reset();
    }
}

} // namespace bxt::server
