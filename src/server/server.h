/**
 * @file
 * The bxtd server: a fleet of shared-nothing worker shards plus the
 * thin orchestration around them (DESIGN.md §14).
 *
 * Threading model:
 *  - `shards` worker shards (see shard.h), each a single-threaded
 *    poll() event loop with its own accept slice, Service (codec +
 *    adaptive-controller cache), and private telemetry::Registry.
 *    Shard 0 runs on the thread that calls serve(); the rest get a
 *    dedicated std::thread each.
 *  - TCP: every shard binds the same address with SO_REUSEPORT, so the
 *    kernel spreads connections across shard listeners with no shared
 *    accept lock.
 *  - Unix-domain: one Server-owned acceptor thread hands accepted fds
 *    to shards round-robin through each shard's inbox (mutex + wake
 *    pipe — the only cross-shard handoff, off the request path).
 *  - Stats/Snapshot requests are answered by whichever shard owns the
 *    connection, but the response is fleet-wide: the shard merges every
 *    shard registry (plus the process-default registry) into totals and
 *    `bxt.server.shard.<i>.*` breakdowns.
 *  - requestStop() is async-signal-safe (atomic stores + pipe writes),
 *    so a SIGTERM handler may call it directly. Shutdown drains
 *    gracefully on every shard: listeners close first, queued-but-
 *    unserved connections get a ShuttingDown error, in-flight
 *    connections have their already-sent frames answered and flushed,
 *    then serve() joins all shards and returns — the drain barrier.
 */

#ifndef BXT_SERVER_SERVER_H
#define BXT_SERVER_SERVER_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/net.h"

namespace bxt::server {

class Shard;

/** bxtd configuration (tools/bxtd flags map 1:1 onto these). */
struct ServerOptions
{
    /** TCP listen address (IPv4 literal). */
    std::string tcpHost = "127.0.0.1";

    /** TCP port; < 0 disables TCP, 0 picks an ephemeral port. */
    int tcpPort = -1;

    /** Unix-domain socket path; empty disables the Unix listener. */
    std::string unixPath;

    /**
     * Worker shards (0 = defer to `threads`, then
     * defaultThreadCount()). Kept distinct from `threads` so callers
     * that sized a worker pool keep the same parallelism as a shard
     * count.
     */
    unsigned shards = 0;

    /** Legacy worker-thread count; used as the shard count when
     *  `shards` is 0 (0 = defaultThreadCount()). */
    unsigned threads = 0;

    /** Max frames coalesced per connection read pass. */
    std::size_t maxBatch = 64;

    /** Per-connection idle timeout; < 0 waits forever. */
    int idleTimeoutMs = 30000;

    /**
     * Per-shard concurrent-connection bound. At the cap a shard still
     * accepts, answers with a typed Busy error, and closes (0 = reject
     * every connection; the Busy-backpressure test uses this).
     */
    std::size_t maxPending = 64;
};

/**
 * A running bxtd instance. Lifecycle: construct, start() (binds
 * listeners), serve() (blocks until requestStop()), destruct.
 */
class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Create the shards and bind their listeners plus the stop pipe.
     * False + @p err on failure (port in use, bad path, no listener
     * configured). Does not serve yet.
     */
    bool start(std::string &err);

    /**
     * Accept and serve until requestStop(). The calling thread runs
     * shard 0's event loop; returns after every shard's graceful drain
     * completes.
     */
    void serve();

    /**
     * Ask serve() to drain and return. Async-signal-safe: relaxed
     * atomic stores plus one write() per wake pipe.
     */
    void requestStop();

    /** True once requestStop() was called. */
    bool stopping() const
    {
        return stopping_.load(std::memory_order_relaxed);
    }

    /** Resolved TCP port after start() (-1 when TCP is disabled). */
    int tcpPort() const { return resolved_tcp_port_; }

    const ServerOptions &options() const { return options_; }

    /** Shards actually running (resolved from options after start()). */
    std::size_t shardCount() const { return shards_.size(); }

    /**
     * Fleet-wide metrics JSON: every shard registry merged with the
     * process-default registry into totals, plus per-shard
     * `bxt.server.shard.<i>.*` breakdowns. This is what Stats/Snapshot
     * frames return.
     */
    std::string mergedSnapshotJson() const;

  private:
    void unixAcceptLoop();

    ServerOptions options_;
    net::UniqueFd unix_listener_;
    int resolved_tcp_port_ = -1;

    net::UniqueFd stop_read_;
    net::UniqueFd stop_write_;
    std::atomic<bool> stopping_{false};

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> shard_threads_;
    std::thread unix_acceptor_;
};

} // namespace bxt::server

#endif // BXT_SERVER_SERVER_H
