/**
 * @file
 * The bxtd server: listeners (TCP and/or Unix-domain), a bounded queue of
 * accepted connections, and a worker pool (bxt::ThreadPool) of
 * frame-serving loops (DESIGN.md §10).
 *
 * Threading model:
 *  - One acceptor std::thread per listener. Each polls its listen socket
 *    and the stop pipe; accepted connections go into a bounded pending
 *    queue. When the queue is full the acceptor answers with a typed
 *    Busy error frame and closes — backpressure is explicit, never
 *    unbounded buffering.
 *  - `threads` workers run inside ThreadPool::run (the calling thread
 *    participates, so serve() blocks until shutdown). Each worker pops
 *    one connection at a time and serves it to completion: frames are
 *    coalesced up to maxBatch per read pass and their responses written
 *    back in one send.
 *  - requestStop() is async-signal-safe (atomic store + pipe write), so
 *    a SIGTERM handler may call it directly. Shutdown drains gracefully:
 *    in-flight connections finish every frame already buffered, queued
 *    but unserved connections get a ShuttingDown error, then serve()
 *    returns.
 */

#ifndef BXT_SERVER_SERVER_H
#define BXT_SERVER_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "server/net.h"

namespace bxt::server {

/** bxtd configuration (tools/bxtd flags map 1:1 onto these). */
struct ServerOptions
{
    /** TCP listen address (IPv4 literal). */
    std::string tcpHost = "127.0.0.1";

    /** TCP port; < 0 disables TCP, 0 picks an ephemeral port. */
    int tcpPort = -1;

    /** Unix-domain socket path; empty disables the Unix listener. */
    std::string unixPath;

    /** Worker threads (0 = defaultThreadCount()). */
    unsigned threads = 0;

    /** Max frames coalesced per connection read pass. */
    std::size_t maxBatch = 64;

    /** Per-connection idle timeout; < 0 waits forever. */
    int idleTimeoutMs = 30000;

    /** Accepted-but-unserved connection bound (0 = reject when no worker
     *  is immediately available; the Busy-backpressure test uses this). */
    std::size_t maxPending = 64;
};

/**
 * A running bxtd instance. Lifecycle: construct, start() (binds
 * listeners), serve() (blocks until requestStop()), destruct.
 */
class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind listeners and the stop pipe. False + @p err on failure (port
     * in use, bad path, no listener configured). Does not serve yet.
     */
    bool start(std::string &err);

    /**
     * Accept and serve until requestStop(). The calling thread becomes
     * one of the workers; returns after the graceful drain completes.
     */
    void serve();

    /**
     * Ask serve() to drain and return. Async-signal-safe: one relaxed
     * atomic store plus one write() on the stop pipe.
     */
    void requestStop();

    /** True once requestStop() was called. */
    bool stopping() const
    {
        return stopping_.load(std::memory_order_relaxed);
    }

    /** Resolved TCP port after start() (-1 when TCP is disabled). */
    int tcpPort() const { return resolved_tcp_port_; }

    const ServerOptions &options() const { return options_; }

  private:
    void acceptLoop(int listen_fd);
    void workerLoop();
    void serveConnection(net::UniqueFd fd);

    /** Pop one pending connection; invalid fd means "shut down". */
    net::UniqueFd popConnection();

    ServerOptions options_;
    net::UniqueFd tcp_listener_;
    net::UniqueFd unix_listener_;
    int resolved_tcp_port_ = -1;

    net::UniqueFd stop_read_;
    net::UniqueFd stop_write_;
    std::atomic<bool> stopping_{false};

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<net::UniqueFd> pending_;

    std::vector<std::thread> acceptors_;
};

} // namespace bxt::server

#endif // BXT_SERVER_SERVER_H
