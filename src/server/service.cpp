#include "server/service.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <exception>
#include <map>
#include <mutex>
#include <span>

#include "common/error.h"
#include "common/json.h"
#include "core/codec_factory.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"
#include "telemetry/trace.h"

namespace bxt::server {
namespace {

/** Fraction of zero 32-bit words in @p data (1.0 for an empty plane). */
double
zeroWordFraction(const std::uint8_t *data, std::size_t bytes)
{
    const std::size_t words = bytes / 4;
    if (words == 0)
        return 1.0;
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < words; ++i) {
        std::uint32_t word;
        std::memcpy(&word, data + i * 4, 4);
        zeros += word == 0 ? 1 : 0;
    }
    return static_cast<double>(zeros) / static_cast<double>(words);
}

/**
 * Mean fraction of bits toggling between adjacent transactions of the
 * request (popcount(tx_i XOR tx_{i-1}) / bits). 0 when the request
 * carries fewer than two transactions.
 */
double
xorToggleWeight(const std::uint8_t *data, std::size_t count,
                std::size_t tx_bytes)
{
    if (count < 2 || tx_bytes == 0)
        return 0.0;
    std::uint64_t toggled = 0;
    for (std::size_t i = 1; i < count; ++i) {
        const std::uint8_t *prev = data + (i - 1) * tx_bytes;
        const std::uint8_t *cur = data + i * tx_bytes;
        std::size_t at = 0;
        for (; at + 8 <= tx_bytes; at += 8) {
            std::uint64_t a, b;
            std::memcpy(&a, prev + at, 8);
            std::memcpy(&b, cur + at, 8);
            toggled += static_cast<std::uint64_t>(std::popcount(a ^ b));
        }
        for (; at < tx_bytes; ++at) {
            toggled += static_cast<std::uint64_t>(
                std::popcount(static_cast<unsigned>(prev[at] ^ cur[at])));
        }
    }
    return static_cast<double>(toggled) /
           static_cast<double>((count - 1) * tx_bytes * 8);
}

/** Bits of metadata one transaction carries for this geometry. */
std::size_t
metaBitsPerTx(std::uint32_t tx_bytes, std::uint32_t bus_bits,
              unsigned meta_wires_per_beat)
{
    const std::size_t beats = tx_bytes * 8u / bus_bits;
    return beats * meta_wires_per_beat;
}

/** Pack beat-major 0/1 metadata values LSB-first into @p writer. */
void
packMeta(wire::BodyWriter &writer, std::span<const std::uint8_t> meta,
         std::size_t packed_bytes)
{
    std::vector<std::uint8_t> packed(packed_bytes, 0);
    for (std::size_t j = 0; j < meta.size(); ++j) {
        if (meta[j] != 0)
            packed[j / 8] |= static_cast<std::uint8_t>(1u << (j % 8));
    }
    writer.bytes(packed.data(), packed.size());
}

/** Unpack LSB-first packed metadata into @p bits 0/1 values. */
void
unpackMeta(const std::uint8_t *packed, std::span<std::uint8_t> bits)
{
    for (std::size_t j = 0; j < bits.size(); ++j)
        bits[j] = (packed[j / 8] >> (j % 8)) & 1u;
}

} // namespace

Service::Service(telemetry::Registry *registry)
    : reg_(registry != nullptr ? *registry : telemetry::currentRegistry()),
      requests_(reg_.counter("bxt.server.requests")),
      errors_(reg_.counter("bxt.server.errors")),
      txEncoded_(reg_.counter("bxt.server.tx_encoded")),
      txDecoded_(reg_.counter("bxt.server.tx_decoded"))
{
}

Service::StreamCounters::StreamCounters(telemetry::Registry &reg,
                                        const std::string &base)
    : requests(reg.counter(base + ".requests")),
      txEncoded(reg.counter(base + ".tx_encoded")),
      onesIn(reg.counter(base + ".ones_in")),
      onesOut(reg.counter(base + ".ones_out")),
      windowZeroFrac(reg.gauge(base + ".window_zero_frac")),
      windowXorWeight(reg.gauge(base + ".window_xor_weight"))
{
}

void
Service::StreamCounters::observe(double zero_frac, double xor_weight)
{
    zeroFrac[windowNext] = zero_frac;
    xorWeight[windowNext] = xor_weight;
    windowNext = (windowNext + 1) % windowSize;
    windowCount = std::min(windowCount + 1, windowSize);
    double zero_sum = 0.0;
    double xor_sum = 0.0;
    for (std::size_t i = 0; i < windowCount; ++i) {
        zero_sum += zeroFrac[i];
        xor_sum += xorWeight[i];
    }
    const double n = static_cast<double>(windowCount);
    windowZeroFrac.set(zero_sum / n);
    windowXorWeight.set(xor_sum / n);
}

Service::StreamCounters &
Service::streamCounters(std::uint16_t stream_id)
{
    auto it = streams_.find(stream_id);
    if (it == streams_.end()) {
        const std::string base =
            "bxt.server.stream." + std::to_string(stream_id);
        it = streams_
                 .emplace(stream_id,
                          std::make_unique<StreamCounters>(reg_, base))
                 .first;
    }
    return *it->second;
}

wire::Frame
Service::errorResponse(wire::ErrorCode code, const std::string &detail)
{
    errors_.add(1);
    return wire::makeErrorFrame(code, detail);
}

std::string
validateGeometry(std::uint32_t tx_bytes, std::uint32_t bus_bits)
{
    if (tx_bytes < Transaction::minBytes ||
        tx_bytes > Transaction::maxBytes ||
        (tx_bytes & (tx_bytes - 1)) != 0) {
        return "txBytes " + std::to_string(tx_bytes) +
               " is not a power of two in [" +
               std::to_string(Transaction::minBytes) + ", " +
               std::to_string(Transaction::maxBytes) + "]";
    }
    if (bus_bits != 32 && bus_bits != 64)
        return "busBits " + std::to_string(bus_bits) + " is not 32 or 64";
    if (tx_bytes * 8u % bus_bits != 0) {
        return "txBytes " + std::to_string(tx_bytes) +
               " is not a whole number of " + std::to_string(bus_bits) +
               "-bit beats";
    }
    return {};
}

Service::Entry *
Service::entryFor(const std::string &spec, std::uint32_t tx_bytes,
                  std::uint32_t bus_bits, std::uint16_t stream_id,
                  std::string &err)
{
    // Concrete codecs are shared across streams; adaptive entries are
    // keyed per stream so each stream runs its own controller.
    const bool is_adaptive = adaptive::isAdaptiveSpec(spec);
    const Key key{spec, tx_bytes, bus_bits,
                  is_adaptive ? stream_id : std::uint16_t{0}};
    auto it = codecs_.find(key);
    if (it != codecs_.end())
        return &it->second;

    CodecPtr codec = tryMakeCodec(spec, bus_bits / 8u, err);
    if (!codec)
        return nullptr;
    Entry entry;
    entry.codec = std::move(codec);
    if (is_adaptive)
        entry.adaptive =
            dynamic_cast<adaptive::AdaptiveCodec *>(entry.codec.get());
    return &codecs_.emplace(key, std::move(entry)).first->second;
}

void
Service::announceAdaptive(Entry &entry, std::uint16_t stream_id,
                          wire::Frame &response)
{
    const adaptive::Controller &controller = entry.adaptive->controller();
    // The reply's spec field doubles as stream metadata: the concrete
    // spec currently chosen plus the switch epoch, so clients can decode
    // cross-epoch payloads with the right codec and watch the choice
    // migrate. ';' cannot appear in the spec grammar, so old clients
    // that echo the field verbatim stay unambiguous.
    response.spec = controller.activeSpec() + ";epoch=" +
                    std::to_string(controller.epoch());

    if (!telemetry::metricsEnabled() || stream_id == 0)
        return;
    const std::string base = "bxt.server.stream." +
                             std::to_string(stream_id) + ".adaptive";
    reg_.gauge(base + ".epoch")
        .set(static_cast<double>(controller.epoch()));
    if (controller.epoch() > entry.lastEpoch) {
        reg_.counter(base + ".switches")
            .add(controller.epoch() - entry.lastEpoch);
        entry.lastEpoch = controller.epoch();
    }
    const std::string choice =
        base + ".choice." +
        telemetry::sanitizeMetricName(controller.activeSpec());
    if (choice != entry.lastChoiceMetric) {
        if (!entry.lastChoiceMetric.empty())
            reg_.gauge(entry.lastChoiceMetric).set(0.0);
        reg_.gauge(choice).set(1.0);
        entry.lastChoiceMetric = choice;
    }
}

wire::Frame
Service::handleEncode(const wire::Frame &request)
{
    wire::BodyReader reader(request.body);
    std::uint32_t tx_bytes = 0;
    std::uint32_t bus_bits = 0;
    std::uint64_t count = 0;
    if (!reader.u32(tx_bytes) || !reader.u32(bus_bits) ||
        !reader.u64(count)) {
        return errorResponse(wire::ErrorCode::Malformed,
                             "encode: truncated request header");
    }
    const std::string geometry = validateGeometry(tx_bytes, bus_bits);
    if (!geometry.empty())
        return errorResponse(wire::ErrorCode::Malformed, "encode: " + geometry);
    if (count > wire::maxTxPerRequest) {
        return errorResponse(wire::ErrorCode::Malformed,
                             "encode: count " + std::to_string(count) +
                                 " exceeds " +
                                 std::to_string(wire::maxTxPerRequest));
    }
    if (reader.remaining() != count * tx_bytes) {
        return errorResponse(wire::ErrorCode::Malformed,
                             "encode: body size does not match count");
    }

    std::string err;
    Entry *entry =
        entryFor(request.spec, tx_bytes, bus_bits, request.streamId, err);
    if (entry == nullptr)
        return errorResponse(wire::ErrorCode::BadSpec, err);

    const unsigned meta_wires = entry->codec->metaWiresPerBeat();
    const std::size_t meta_bits =
        metaBitsPerTx(tx_bytes, bus_bits, meta_wires);
    const std::size_t meta_bytes = (meta_bits + 7) / 8;

    wire::Frame response;
    response.opcode = wire::Opcode::Encode;
    response.spec = request.spec;
    wire::BodyWriter writer;
    writer.u32(tx_bytes);
    writer.u32(bus_bits);
    writer.u32(meta_wires);
    writer.u32(static_cast<std::uint32_t>(meta_bytes));
    writer.u64(count);

    // The whole request body becomes one TxBatch (a single plane copy)
    // and one encodeBatch call — the codec's batch kernel does the rest.
    const std::uint8_t *raw = nullptr;
    reader.view(raw, count * tx_bytes); // Size pre-validated above.
    TxBatch &batch = entry->scratchIn;
    batch.reset(tx_bytes);
    batch.append(raw, count);
    EncodedBatch &enc = entry->scratchEnc;
    entry->codec->encodeBatch(batch, enc);
    if (count != 0 && enc.metaBitsPerTx() != meta_bits) {
        return errorResponse(
            wire::ErrorCode::Internal,
            "encode: codec produced " +
                std::to_string(enc.metaBitsPerTx()) +
                " metadata bits/tx, geometry expects " +
                std::to_string(meta_bits));
    }

    // The ones tallies travel in the response so clients can print
    // ones-on-bus deltas without re-popcounting payloads.
    const std::uint64_t input_ones = batch.ones();
    const std::uint64_t payload_ones = enc.payloadOnes();
    const std::uint64_t meta_ones = enc.metaOnes();
    writer.u64(input_ones);
    writer.u64(payload_ones);
    writer.u64(meta_ones);
    writer.bytes(enc.payloadData(), enc.payloadBytes());
    wire::BodyWriter meta_writer;
    for (std::uint64_t i = 0; i < count; ++i)
        packMeta(meta_writer, enc.meta(i), meta_bytes);
    const std::vector<std::uint8_t> meta_packed = meta_writer.take();
    writer.bytes(meta_packed.data(), meta_packed.size());
    response.body = writer.take();

    if (telemetry::metricsEnabled()) {
        txEncoded_.add(count);
        const std::string base =
            "bxt.server." + telemetry::sanitizeMetricName(request.spec);
        reg_.counter(base + ".ones_in").add(input_ones);
        reg_.counter(base + ".ones_out").add(payload_ones + meta_ones);
        const std::uint64_t out = payload_ones + meta_ones;
        reg_.counter(base + ".ones_removed")
            .add(input_ones > out ? input_ones - out : 0);
        // Per-tenant accounting: stream-tagged encodes telescope to the
        // aggregate counters (sum over streams == bxt.server.tx_encoded
        // when every request carries a tag).
        if (request.streamId != 0) {
            StreamCounters &stream = streamCounters(request.streamId);
            stream.txEncoded.add(count);
            stream.onesIn.add(input_ones);
            stream.onesOut.add(payload_ones + meta_ones);
            // Windowed value statistics over the raw input plane — the
            // adaptive-codec sensor (see StreamCounters).
            stream.observe(
                zeroWordFraction(raw, count * tx_bytes),
                xorToggleWeight(raw, count, tx_bytes));
        }
    }
    entry->onesIn += input_ones;
    entry->onesOut += payload_ones + meta_ones;
    if (entry->adaptive != nullptr)
        announceAdaptive(*entry, request.streamId, response);
    return response;
}

wire::Frame
Service::handleDecode(const wire::Frame &request)
{
    wire::BodyReader reader(request.body);
    std::uint32_t tx_bytes = 0;
    std::uint32_t bus_bits = 0;
    std::uint32_t meta_wires = 0;
    std::uint32_t meta_bytes = 0;
    std::uint64_t count = 0;
    if (!reader.u32(tx_bytes) || !reader.u32(bus_bits) ||
        !reader.u32(meta_wires) || !reader.u32(meta_bytes) ||
        !reader.u64(count)) {
        return errorResponse(wire::ErrorCode::Malformed,
                             "decode: truncated request header");
    }
    const std::string geometry = validateGeometry(tx_bytes, bus_bits);
    if (!geometry.empty())
        return errorResponse(wire::ErrorCode::Malformed, "decode: " + geometry);
    if (count > wire::maxTxPerRequest) {
        return errorResponse(wire::ErrorCode::Malformed,
                             "decode: count " + std::to_string(count) +
                                 " exceeds " +
                                 std::to_string(wire::maxTxPerRequest));
    }

    std::string err;
    Entry *entry =
        entryFor(request.spec, tx_bytes, bus_bits, request.streamId, err);
    if (entry == nullptr)
        return errorResponse(wire::ErrorCode::BadSpec, err);

    const unsigned codec_meta_wires = entry->codec->metaWiresPerBeat();
    const std::size_t meta_bits =
        metaBitsPerTx(tx_bytes, bus_bits, codec_meta_wires);
    const std::size_t expected_meta_bytes = (meta_bits + 7) / 8;
    if (meta_wires != codec_meta_wires ||
        meta_bytes != expected_meta_bytes) {
        return errorResponse(
            wire::ErrorCode::Malformed,
            "decode: metadata geometry does not match codec '" +
                request.spec + "' (expects " +
                std::to_string(codec_meta_wires) + " wires/beat)");
    }
    if (reader.remaining() !=
        count * (static_cast<std::uint64_t>(tx_bytes) + meta_bytes)) {
        return errorResponse(wire::ErrorCode::Malformed,
                             "decode: body size does not match count");
    }

    wire::Frame response;
    response.opcode = wire::Opcode::Decode;
    response.spec = request.spec;
    wire::BodyWriter writer;
    writer.u32(tx_bytes);
    writer.u64(count);

    const std::uint8_t *payloads = nullptr;
    const std::uint8_t *metas = nullptr;
    reader.view(payloads, count * tx_bytes); // Sizes pre-validated above.
    reader.view(metas, count * meta_bytes);

    // Rebuild the encoded batch (payload plane copy + per-transaction
    // metadata unpack) and decode it with one decodeBatch call.
    EncodedBatch &enc = entry->scratchEnc;
    enc.configure(tx_bytes, codec_meta_wires, meta_bits);
    enc.resize(count);
    if (count != 0)
        std::memcpy(enc.payloadData(), payloads, count * tx_bytes);
    for (std::uint64_t i = 0; i < count; ++i)
        unpackMeta(metas + i * meta_bytes, enc.meta(i));
    TxBatch &decoded = entry->scratchOut;
    entry->codec->decodeBatch(enc, decoded);
    writer.bytes(decoded.data(), decoded.planeBytes());
    response.body = writer.take();

    if (telemetry::metricsEnabled())
        txDecoded_.add(count);
    if (entry->adaptive != nullptr)
        announceAdaptive(*entry, request.streamId, response);
    return response;
}

wire::Frame
Service::handleStats()
{
    wire::Frame response;
    response.opcode = wire::Opcode::Stats;
    // The provider is the fleet-wide merged view when sharded; a bare
    // Service answers from its own registry.
    const std::string snapshot = stats_provider_
                                     ? stats_provider_()
                                     : telemetry::snapshotJson(reg_, false);
    response.body.assign(snapshot.begin(), snapshot.end());
    return response;
}

wire::Frame
Service::handleSnapshot()
{
    // The live-introspection op (bxt_top): the full schema-2 telemetry
    // document plus the server clock, so pollers can compute rates from
    // counter deltas without trusting their own timestamps.
    wire::Frame response;
    response.opcode = wire::Opcode::Snapshot;
    JsonWriter w(false);
    w.beginObject();
    w.kv("uptime_us", telemetry::nowMicros());
    w.kvRaw("metrics", stats_provider_
                           ? stats_provider_()
                           : telemetry::snapshotJson(reg_, false));
    w.endObject();
    const std::string body = w.str();
    response.body.assign(body.begin(), body.end());
    return response;
}

wire::Frame
Service::handle(const wire::Frame &request)
{
    requests_.add(1);
    const bool metrics_on = telemetry::metricsEnabled();
    if (metrics_on && request.streamId != 0)
        streamCounters(request.streamId).requests.add(1);

    wire::Frame response;
    try {
        switch (request.opcode) {
        case wire::Opcode::Ping:
            response.opcode = wire::Opcode::Ping;
            break;
        case wire::Opcode::Encode:
            response = handleEncode(request);
            break;
        case wire::Opcode::Decode:
            response = handleDecode(request);
            break;
        case wire::Opcode::Stats:
            response = handleStats();
            break;
        case wire::Opcode::Snapshot:
            response = handleSnapshot();
            break;
        case wire::Opcode::Error:
            response = errorResponse(wire::ErrorCode::Malformed,
                                     "error frames are response-only");
            break;
        default:
            response = errorResponse(
                wire::ErrorCode::UnknownOpcode,
                "unknown opcode " +
                    std::to_string(static_cast<unsigned>(request.opcode)));
            break;
        }
    } catch (const CodecSizeError &e) {
        // Geometry the codec rejects (e.g. xor8 on an 8-byte transaction)
        // is a client mistake, not a server fault.
        response = errorResponse(wire::ErrorCode::Malformed, e.what());
    } catch (const std::exception &e) {
        response = errorResponse(wire::ErrorCode::Internal, e.what());
    } catch (...) {
        response = errorResponse(wire::ErrorCode::Internal,
                                 "unknown exception");
    }

    // Echo the stream tag so pipelining clients can demux responses,
    // and the trace context so traced clients can stitch client-side
    // spans onto the same trace.
    response.streamId = request.streamId;
    response.traceId = request.traceId;
    response.spanId = request.spanId;
    response.traceSampled = request.traceSampled;
    return response;
}

std::uint32_t
requestTxCount(const wire::Frame &request)
{
    // Encode bodies lead with u32 txBytes, u32 busBits; Decode bodies
    // add u32 metaWires, u32 metaBytes. Both are followed by the u64
    // count this reads (wire.h body tables).
    std::size_t lead_u32s = 0;
    switch (request.opcode) {
    case wire::Opcode::Encode:
        lead_u32s = 2;
        break;
    case wire::Opcode::Decode:
        lead_u32s = 4;
        break;
    default:
        return 0;
    }
    wire::BodyReader reader(request.body);
    std::uint32_t skipped = 0;
    for (std::size_t i = 0; i < lead_u32s; ++i) {
        if (!reader.u32(skipped))
            return 0;
    }
    std::uint64_t count = 0;
    if (!reader.u64(count))
        return 0;
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(count, wire::maxTxPerRequest));
}

} // namespace bxt::server
