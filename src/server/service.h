/**
 * @file
 * The bxtd request service: maps one parsed wire frame to one response
 * frame, independent of any socket, so the loopback tests and the frame
 * fuzzer can drive the full dispatch path in-process.
 *
 * A Service instance is per-shard state (DESIGN.md §14): it caches one
 * codec (plus allocation-free scratch batches) per (spec, txBytes,
 * busBits) it has seen, so a shard streaming one spec pays codec
 * construction once and every request body runs through the batch hot
 * path — the frame's transactions become one TxBatch and one
 * encodeBatch/decodeBatch call. Adaptive specs key their entry by
 * streamId as well, so every stream runs its own controller. A Service
 * is single-threaded: one shard event loop (or one test) drives it.
 *
 * All instruments resolve against the registry bound at construction —
 * a shard passes its private registry; the default constructor binds
 * the calling thread's current registry, so socket-free tests see the
 * process-wide instruments unchanged.
 */

#ifndef BXT_SERVER_SERVICE_H
#define BXT_SERVER_SERVICE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "adaptive/adaptive_codec.h"
#include "core/codec.h"
#include "server/wire.h"
#include "telemetry/metrics.h"

namespace bxt::server {

/**
 * Per-shard request dispatcher. handle() never throws and never
 * calls fatal(): every failure becomes a typed Error frame.
 */
class Service
{
  public:
    /** Bind instruments to @p registry (null = currentRegistry()). */
    explicit Service(telemetry::Registry *registry = nullptr);

    /** Process one request frame; returns the response frame. */
    wire::Frame handle(const wire::Frame &request);

    /** Codec instances cached so far (test/diagnostic hook). */
    std::size_t cachedCodecs() const { return codecs_.size(); }

    /**
     * Install the document source for Stats/Snapshot responses: a
     * callable returning the metrics JSON object. The sharded server
     * installs the fleet-wide merge (all shard registries unioned with
     * `bxt.server.shard.<i>.*` breakdowns); without one, the service
     * snapshots its own registry — the single-registry behavior the
     * socket-free tests pin.
     */
    void setStatsProvider(std::function<std::string()> provider)
    {
        stats_provider_ = std::move(provider);
    }

  private:
    struct Entry
    {
        CodecPtr codec;
        /** Non-null when codec is the adaptive meta-codec (the spec
         *  named `adaptive[:...]`); the view used to announce the
         *  active concrete choice + epoch and export choice telemetry. */
        adaptive::AdaptiveCodec *adaptive = nullptr;
        TxBatch scratchIn;       ///< Request-body plane, reused.
        EncodedBatch scratchEnc; ///< encodeBatch target / decode input.
        TxBatch scratchOut;      ///< decodeBatch target, reused.
        std::uint64_t onesIn = 0; ///< Per-connection running tallies.
        std::uint64_t onesOut = 0;
        std::uint64_t lastEpoch = 0; ///< Last exported switch count.
        std::string lastChoiceMetric; ///< One-hot gauge currently at 1.
    };

    /**
     * Codec cache key. The trailing stream id is 0 for concrete specs
     * (all streams on a connection share the codec instance) and the
     * frame's streamId for adaptive specs, so every stream gets its own
     * controller — per-stream selection is the whole point.
     */
    using Key = std::tuple<std::string, std::uint32_t, std::uint32_t,
                           std::uint16_t>;

    /**
     * Per-stream (tenant) instruments, keyed by the frame's streamId.
     * Beyond the telescoping counters, each stream keeps a sliding
     * window of per-request value statistics — the zero-word fraction
     * of the raw input plane and the adjacent-transaction XOR toggle
     * weight — exported as gauges: the sensors the adaptive controller
     * cost model reads (DESIGN.md §13).
     */
    struct StreamCounters
    {
        /** Per-request samples retained in the sliding window. */
        static constexpr std::size_t windowSize = 64;

        telemetry::Counter &requests;
        telemetry::Counter &txEncoded;
        telemetry::Counter &onesIn;
        telemetry::Counter &onesOut;
        telemetry::Gauge &windowZeroFrac;
        telemetry::Gauge &windowXorWeight;

        StreamCounters(telemetry::Registry &reg, const std::string &base);

        std::array<double, windowSize> zeroFrac{};
        std::array<double, windowSize> xorWeight{};
        std::size_t windowNext = 0;
        std::size_t windowCount = 0;

        /** Push one request's samples; refresh the windowed gauges. */
        void observe(double zero_frac, double xor_weight);
    };

    wire::Frame handleEncode(const wire::Frame &request);
    wire::Frame handleDecode(const wire::Frame &request);
    wire::Frame handleStats();
    wire::Frame handleSnapshot();
    wire::Frame errorResponse(wire::ErrorCode code,
                              const std::string &detail);
    StreamCounters &streamCounters(std::uint16_t stream_id);

    /**
     * Look up / build the codec for (spec, txBytes, busBits) — plus
     * @p stream_id when the spec is adaptive. Returns nullptr with
     * @p err filled (BadSpec detail) when the spec or the geometry is
     * invalid.
     */
    Entry *entryFor(const std::string &spec, std::uint32_t tx_bytes,
                    std::uint32_t bus_bits, std::uint16_t stream_id,
                    std::string &err);

    /** Stamp the adaptive announcement (`spec;epoch=N`) on @p response
     *  and refresh the per-stream choice/switch telemetry. */
    void announceAdaptive(Entry &entry, std::uint16_t stream_id,
                          wire::Frame &response);

    telemetry::Registry &reg_;
    telemetry::Counter &requests_;
    telemetry::Counter &errors_;
    telemetry::Counter &txEncoded_;
    telemetry::Counter &txDecoded_;
    // Note: bxt.server.request_us lives in the connection layer
    // (shard.cpp) so its samples cover the whole lifecycle — feed to
    // reply write — and include busy/parse-error responses.
    std::map<Key, Entry> codecs_;
    std::map<std::uint16_t, std::unique_ptr<StreamCounters>> streams_;
    std::function<std::string()> stats_provider_;
};

/**
 * Validate the (txBytes, busBits) geometry shared by encode and decode
 * requests; returns an explanation or empty when valid. Exposed for the
 * client library's preflight checks.
 */
std::string validateGeometry(std::uint32_t tx_bytes, std::uint32_t bus_bits);

/**
 * Transactions claimed by an Encode/Decode request body (the count
 * header field, clamped to maxTxPerRequest); 0 for other opcodes or a
 * truncated body. Used by the connection layer to annotate spans
 * without re-parsing the body.
 */
std::uint32_t requestTxCount(const wire::Frame &request);

} // namespace bxt::server

#endif // BXT_SERVER_SERVICE_H
