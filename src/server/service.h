/**
 * @file
 * The bxtd request service: maps one parsed wire frame to one response
 * frame, independent of any socket, so the loopback tests and the frame
 * fuzzer can drive the full dispatch path in-process.
 *
 * A Service instance is per-connection state: it caches one codec (plus
 * allocation-free scratch batches) per (spec, txBytes, busBits) it has
 * seen, so a connection streaming one spec pays codec construction once
 * and every request body runs through the batch hot path — the frame's
 * transactions become one TxBatch and one encodeBatch/decodeBatch call.
 * Stateful codecs (bd) therefore behave like one side of a channel per
 * connection: requests on the same connection share repository history,
 * exactly like transactions sharing a link (batch kernels advance state
 * in batch order, identical to the scalar loop).
 */

#ifndef BXT_SERVER_SERVICE_H
#define BXT_SERVER_SERVICE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "adaptive/adaptive_codec.h"
#include "core/codec.h"
#include "server/wire.h"

namespace bxt::server {

/**
 * Per-connection request dispatcher. handle() never throws and never
 * calls fatal(): every failure becomes a typed Error frame.
 */
class Service
{
  public:
    Service() = default;

    /** Process one request frame; returns the response frame. */
    wire::Frame handle(const wire::Frame &request);

    /** Codec instances cached so far (test/diagnostic hook). */
    std::size_t cachedCodecs() const { return codecs_.size(); }

  private:
    struct Entry
    {
        CodecPtr codec;
        /** Non-null when codec is the adaptive meta-codec (the spec
         *  named `adaptive[:...]`); the view used to announce the
         *  active concrete choice + epoch and export choice telemetry. */
        adaptive::AdaptiveCodec *adaptive = nullptr;
        TxBatch scratchIn;       ///< Request-body plane, reused.
        EncodedBatch scratchEnc; ///< encodeBatch target / decode input.
        TxBatch scratchOut;      ///< decodeBatch target, reused.
        std::uint64_t onesIn = 0; ///< Per-connection running tallies.
        std::uint64_t onesOut = 0;
        std::uint64_t lastEpoch = 0; ///< Last exported switch count.
        std::string lastChoiceMetric; ///< One-hot gauge currently at 1.
    };

    /**
     * Codec cache key. The trailing stream id is 0 for concrete specs
     * (all streams on a connection share the codec instance) and the
     * frame's streamId for adaptive specs, so every stream gets its own
     * controller — per-stream selection is the whole point.
     */
    using Key = std::tuple<std::string, std::uint32_t, std::uint32_t,
                           std::uint16_t>;

    wire::Frame handleEncode(const wire::Frame &request);
    wire::Frame handleDecode(const wire::Frame &request);
    wire::Frame handleStats();
    wire::Frame handleSnapshot();

    /**
     * Look up / build the codec for (spec, txBytes, busBits) — plus
     * @p stream_id when the spec is adaptive. Returns nullptr with
     * @p err filled (BadSpec detail) when the spec or the geometry is
     * invalid.
     */
    Entry *entryFor(const std::string &spec, std::uint32_t tx_bytes,
                    std::uint32_t bus_bits, std::uint16_t stream_id,
                    std::string &err);

    /** Stamp the adaptive announcement (`spec;epoch=N`) on @p response
     *  and refresh the per-stream choice/switch telemetry. */
    void announceAdaptive(Entry &entry, std::uint16_t stream_id,
                          wire::Frame &response);

    std::map<Key, Entry> codecs_;
};

/**
 * Validate the (txBytes, busBits) geometry shared by encode and decode
 * requests; returns an explanation or empty when valid. Exposed for the
 * client library's preflight checks.
 */
std::string validateGeometry(std::uint32_t tx_bytes, std::uint32_t bus_bits);

/**
 * Transactions claimed by an Encode/Decode request body (the count
 * header field, clamped to maxTxPerRequest); 0 for other opcodes or a
 * truncated body. Used by the connection layer to annotate spans
 * without re-parsing the body.
 */
std::uint32_t requestTxCount(const wire::Frame &request);

} // namespace bxt::server

#endif // BXT_SERVER_SERVICE_H
