#include "server/shard.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "server/server.h"
#include "telemetry/spanring.h"
#include "telemetry/trace.h"

namespace bxt::server {
namespace {

/** Best-effort: send one frame and ignore failures (peer may be gone). */
void
sendFrameBestEffort(int fd, const wire::Frame &frame)
{
    const std::vector<std::uint8_t> bytes = wire::serializeFrame(frame);
    std::string err;
    net::writeAll(fd, bytes.data(), bytes.size(), err);
}

/** Cap on the final read sweep during drain (per connection). */
constexpr std::size_t drainSweepReads = 256;

/** Cap on waiting for a slow peer to take its drain flush, ms. */
constexpr int drainFlushTimeoutMs = 5000;

} // namespace

/**
 * One nonblocking connection: socket, frame parser, and the output
 * buffer that decouples response production from a slow peer.
 *
 * Per-frame phase timestamps held until the batch flush lands, so
 * every phase span — and the request_us total they telescope to —
 * ends at the same write instant (DESIGN.md §9):
 *   queue_wait = tParseStart − tFeed   (buffered, awaiting service)
 *   parse      = tParseEnd − tParseStart
 *   codec      = tHandleEnd − tParseEnd (service dispatch)
 *   reply      = tWriteEnd − tHandleEnd (serialize + write)
 *   request    = tWriteEnd − tFeed     (exact sum of the above)
 */
struct Shard::Conn
{
    struct PendingSpan
    {
        std::uint64_t traceId = 0;
        std::uint64_t spanId = 0;
        std::uint64_t tParseStart = 0;
        std::uint64_t tParseEnd = 0;
        std::uint64_t tHandleEnd = 0;
        std::uint8_t opcode = 0;
        std::uint16_t streamId = 0;
        std::uint32_t txCount = 0;
        bool sampled = false;
    };

    net::UniqueFd fd;
    wire::FrameParser parser;
    /** Response bytes not yet accepted by the socket. */
    std::vector<std::uint8_t> out;
    std::size_t outPos = 0;
    bool closeAfterFlush = false;
    std::uint64_t lastActivityUs = 0;
    /** Request clock: set by the read that fed the parser. */
    std::uint64_t tFeed = 0;
    std::vector<PendingSpan> batchSpans;

    std::size_t pendingOut() const { return out.size() - outPos; }
};

Shard::Shard(std::size_t index, const ServerOptions &options)
    : index_(index), options_(options), service_(&registry_),
      connections_(registry_.counter("bxt.server.connections")),
      rejectedBusy_(registry_.counter("bxt.server.rejected_busy")),
      activeConns_(registry_.gauge("bxt.server.active_connections")),
      queueDepth_(registry_.gauge("bxt.server.queue_depth")),
      threads_(registry_.gauge("bxt.server.threads")),
      batchSize_(registry_.histogram("bxt.server.batch_size")),
      requestUs_(registry_.histogram("bxt.server.request_us"))
{
}

Shard::~Shard() = default;

bool
Shard::start(const std::string &tcp_host, int tcp_port, std::string &err)
{
    int fds[2];
    if (::pipe(fds) != 0) {
        err = "pipe: failed to create shard wake pipe";
        return false;
    }
    wake_read_ = net::UniqueFd(fds[0]);
    wake_write_ = net::UniqueFd(fds[1]);

    if (tcp_port >= 0) {
        // Every shard binds the same resolved address; SO_REUSEPORT
        // makes the kernel spread incoming connections across the
        // shard listeners (the accept slice).
        listener_ = net::listenTcp(tcp_host, tcp_port, err,
                                   /*reuse_port=*/true);
        if (!listener_.valid())
            return false;
        if (!net::setNonBlocking(listener_.get(), err))
            return false;
    }
    return true;
}

int
Shard::tcpPort() const
{
    return listener_.valid() ? net::boundTcpPort(listener_.get()) : -1;
}

void
Shard::requestStop()
{
    stopping_.store(true, std::memory_order_relaxed);
    const int fd = wake_write_.get();
    if (fd >= 0) {
        const char byte = 's';
        // Async-signal-safe; a full pipe still leaves earlier bytes
        // readable, so the wakeup is never lost.
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
}

void
Shard::enqueue(net::UniqueFd fd)
{
    {
        std::lock_guard<std::mutex> lock(inbox_mutex_);
        inbox_.push_back(std::move(fd));
    }
    const int wake = wake_write_.get();
    if (wake >= 0) {
        const char byte = 'c';
        [[maybe_unused]] const ssize_t n = ::write(wake, &byte, 1);
    }
}

void
Shard::refreshGauges()
{
    activeConns_.set(static_cast<double>(conns_.size()));
    std::size_t backlog = 0;
    for (const auto &conn : conns_)
        backlog += conn->pendingOut() > 0 ? 1 : 0;
    queueDepth_.set(static_cast<double>(backlog));
}

void
Shard::adoptConnection(net::UniqueFd fd)
{
    // maxPending is the per-shard concurrent-connection bound; at the
    // cap the shard still accepts, answers with a typed Busy error,
    // and closes — backpressure is explicit, never unbounded buffering.
    if (conns_.size() >= options_.maxPending) {
        const bool metrics_on = telemetry::metricsEnabled();
        const std::uint64_t t_reject =
            metrics_on ? telemetry::nowMicros() : 0;
        rejectedBusy_.add(1);
        sendFrameBestEffort(
            fd.get(),
            wire::makeErrorFrame(wire::ErrorCode::Busy,
                                 "shard connection limit; retry later"));
        // Busy rejections are requests too: charge the reply write to
        // request_us so overload latency is visible, even though no
        // frame (hence no trace context) ever existed.
        if (metrics_on)
            requestUs_.record(telemetry::nowMicros() - t_reject);
        return;
    }
    std::string err;
    if (!net::setNonBlocking(fd.get(), err))
        return; // Pathological; drop the connection.
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(fd);
    conn->lastActivityUs = telemetry::nowMicros();
    conn->tFeed = conn->lastActivityUs;
    conns_.push_back(std::move(conn));
    connections_.add(1);
    refreshGauges();
}

void
Shard::acceptReady()
{
    for (;;) {
        net::UniqueFd conn(::accept(listener_.get(), nullptr, nullptr));
        if (!conn.valid()) {
            // EAGAIN: slice drained. Anything else is transient
            // (ECONNABORTED, EINTR); keep accepting next loop.
            break;
        }
        adoptConnection(std::move(conn));
    }
}

void
Shard::drainInbox(bool shutting_down)
{
    for (;;) {
        net::UniqueFd fd;
        {
            std::lock_guard<std::mutex> lock(inbox_mutex_);
            if (inbox_.empty())
                break;
            fd = std::move(inbox_.front());
            inbox_.pop_front();
        }
        if (shutting_down) {
            // Accepted but never served: tell the peer we are going
            // away rather than silently dropping the connection.
            sendFrameBestEffort(
                fd.get(),
                wire::makeErrorFrame(wire::ErrorCode::ShuttingDown,
                                     "server is draining"));
            continue;
        }
        adoptConnection(std::move(fd));
    }
}

bool
Shard::flushOut(Conn &conn)
{
    if (conn.pendingOut() == 0)
        return true;
    bool would_block = false;
    std::string err;
    const long n =
        net::tryWrite(conn.fd.get(), conn.out.data() + conn.outPos,
                      conn.pendingOut(), would_block, err);
    if (n < 0)
        return false; // Peer vanished mid-response.
    conn.outPos += static_cast<std::size_t>(n);
    if (conn.outPos == conn.out.size()) {
        conn.out.clear();
        conn.outPos = 0;
    }
    return true;
}

bool
Shard::processFrames(Conn &conn)
{
    const bool metrics_on = telemetry::metricsEnabled();
    for (;;) {
        std::size_t batch = 0;
        bool bad_stream = false;
        conn.batchSpans.clear();
        const std::size_t out_before = conn.out.size();
        while (batch < options_.maxBatch) {
            const std::uint64_t t_parse_start =
                metrics_on ? telemetry::nowMicros() : 0;
            wire::Frame request;
            wire::WireError parse_err;
            const wire::FrameParser::Status st =
                conn.parser.next(request, parse_err);
            if (st == wire::FrameParser::Status::NeedMore)
                break;
            if (st == wire::FrameParser::Status::Bad) {
                // Framing is untrustworthy after a structural error:
                // answer with the typed error, then drop the stream.
                // The reply still charges request_us (an unparseable
                // frame has no trace context, so no phase spans).
                const std::vector<std::uint8_t> reply =
                    wire::serializeFrame(wire::makeErrorFrame(
                        parse_err.code, parse_err.detail));
                conn.out.insert(conn.out.end(), reply.begin(),
                                reply.end());
                conn.closeAfterFlush = true;
                bad_stream = true;
                if (metrics_on) {
                    Conn::PendingSpan pending;
                    pending.tParseStart = t_parse_start;
                    pending.tParseEnd = pending.tHandleEnd =
                        telemetry::nowMicros();
                    conn.batchSpans.push_back(pending);
                }
                break;
            }
            const std::uint64_t t_parse_end =
                metrics_on ? telemetry::nowMicros() : 0;
            const wire::Frame response = service_.handle(request);
            const std::uint64_t t_handle_end =
                metrics_on ? telemetry::nowMicros() : 0;
            const std::vector<std::uint8_t> reply =
                wire::serializeFrame(response);
            conn.out.insert(conn.out.end(), reply.begin(), reply.end());
            ++batch;
            if (metrics_on) {
                Conn::PendingSpan pending;
                pending.traceId = request.traceId;
                pending.spanId = request.spanId;
                pending.tParseStart = t_parse_start;
                pending.tParseEnd = t_parse_end;
                pending.tHandleEnd = t_handle_end;
                pending.opcode =
                    static_cast<std::uint8_t>(request.opcode);
                pending.streamId = request.streamId;
                pending.txCount = requestTxCount(request);
                pending.sampled = request.traceSampled;
                conn.batchSpans.push_back(pending);
            }
        }
        if (batch > 0)
            batchSize_.record(batch);
        // Push the batch at the socket right away; whatever the peer
        // does not take waits in the out-buffer under POLLOUT, so a
        // slow client costs memory, not shard time.
        if (conn.out.size() > out_before && !flushOut(conn))
            return false;
        if (metrics_on && !conn.batchSpans.empty()) {
            const std::uint64_t t_write_end = telemetry::nowMicros();
            const std::uint32_t tid = telemetry::currentThreadId();
            for (const Conn::PendingSpan &pending : conn.batchSpans) {
                requestUs_.record(t_write_end - conn.tFeed);
                if (!pending.sampled || pending.traceId == 0)
                    continue;
                telemetry::ServerSpan span;
                span.traceId = pending.traceId;
                span.spanId = pending.spanId;
                span.phase = telemetry::ServerPhase::Request;
                span.opcode = pending.opcode;
                span.streamId = pending.streamId;
                span.tid = tid;
                span.txCount = pending.txCount;
                const auto emit = [&span](telemetry::ServerPhase phase,
                                          std::uint64_t start,
                                          std::uint64_t end) {
                    span.phase = phase;
                    span.startUs = start;
                    span.durUs = end - start;
                    telemetry::recordServerSpan(span);
                };
                emit(telemetry::ServerPhase::Request, conn.tFeed,
                     t_write_end);
                emit(telemetry::ServerPhase::QueueWait, conn.tFeed,
                     pending.tParseStart);
                emit(telemetry::ServerPhase::Parse, pending.tParseStart,
                     pending.tParseEnd);
                emit(telemetry::ServerPhase::Codec, pending.tParseEnd,
                     pending.tHandleEnd);
                emit(telemetry::ServerPhase::Reply, pending.tHandleEnd,
                     t_write_end);
            }
        }
        if (bad_stream)
            return conn.pendingOut() == 0 ? false : true;
        if (batch < options_.maxBatch)
            return true; // Parser exhausted.
    }
}

bool
Shard::readReady(Conn &conn)
{
    // One bounded read per readiness event: a hot connection with a
    // full socket buffer re-reports readable on the next poll pass, so
    // its shard-mates still interleave.
    std::uint8_t buf[64 * 1024];
    bool would_block = false;
    std::string err;
    const long n =
        net::tryRead(conn.fd.get(), buf, sizeof(buf), would_block, err);
    if (would_block)
        return true;
    if (n <= 0)
        return false; // EOF or socket error.
    conn.parser.feed(buf, static_cast<std::size_t>(n));
    conn.tFeed = telemetry::nowMicros(); // Request clock starts here.
    conn.lastActivityUs = conn.tFeed;
    return processFrames(conn);
}

void
Shard::drainAndClose(Conn &conn)
{
    // Final read sweep: every frame the peer already put on the wire
    // deserves an answer. Bounded so an endless producer cannot wedge
    // the drain barrier.
    for (std::size_t pass = 0; pass < drainSweepReads; ++pass) {
        std::uint8_t buf[64 * 1024];
        bool would_block = false;
        std::string err;
        const long n = net::tryRead(conn.fd.get(), buf, sizeof(buf),
                                    would_block, err);
        if (would_block || n <= 0)
            break;
        conn.parser.feed(buf, static_cast<std::size_t>(n));
        conn.tFeed = telemetry::nowMicros();
    }
    if (!processFrames(conn))
        return;
    // Flush synchronously, bounded: the drain barrier must not hang on
    // a peer that stopped reading.
    const std::uint64_t deadline =
        telemetry::nowMicros() +
        static_cast<std::uint64_t>(drainFlushTimeoutMs) * 1000;
    while (conn.pendingOut() > 0) {
        pollfd pfd{conn.fd.get(), POLLOUT, 0};
        const std::uint64_t now = telemetry::nowMicros();
        if (now >= deadline)
            break;
        const int r = ::poll(
            &pfd, 1,
            static_cast<int>((deadline - now) / 1000) + 1);
        if (r < 0 && errno == EINTR)
            continue;
        if (r <= 0)
            break;
        if (!flushOut(conn))
            break;
    }
}

void
Shard::closeConn(std::size_t at)
{
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(at));
    refreshGauges();
}

void
Shard::run()
{
    // Every instrument the request path touches — codec construction,
    // per-spec ones counters, adaptive controller gauges — resolves
    // against this shard's registry for the lifetime of the loop.
    telemetry::ScopedRegistry scoped(registry_);
    threads_.set(1.0);

    std::vector<pollfd> fds;
    std::vector<std::size_t> conn_slots;
    for (;;) {
        if (stopping_.load(std::memory_order_relaxed))
            break;

        fds.clear();
        conn_slots.clear();
        fds.push_back({wake_read_.get(), POLLIN, 0});
        const std::size_t listener_slot = fds.size();
        const bool poll_listener = listener_.valid();
        if (poll_listener)
            fds.push_back({listener_.get(), POLLIN, 0});
        for (std::size_t i = 0; i < conns_.size(); ++i) {
            short events = POLLIN;
            if (conns_[i]->pendingOut() > 0)
                events |= POLLOUT;
            conn_slots.push_back(fds.size());
            fds.push_back({conns_[i]->fd.get(), events, 0});
        }

        // Poll timeout tracks the nearest idle deadline.
        int timeout_ms = -1;
        if (options_.idleTimeoutMs >= 0 && !conns_.empty()) {
            const std::uint64_t now = telemetry::nowMicros();
            std::uint64_t oldest = now;
            for (const auto &conn : conns_)
                oldest = std::min(oldest, conn->lastActivityUs);
            const std::uint64_t idle_us = now - oldest;
            const std::uint64_t limit_us =
                static_cast<std::uint64_t>(options_.idleTimeoutMs) *
                1000;
            timeout_ms =
                idle_us >= limit_us
                    ? 0
                    : static_cast<int>((limit_us - idle_us) / 1000) + 1;
        }

        const int r =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   timeout_ms);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break; // Pathological poll failure; drain and exit.
        }

        if ((fds[0].revents & POLLIN) != 0) {
            std::uint8_t scratch[256];
            bool would_block = false;
            std::string err;
            net::tryRead(wake_read_.get(), scratch, sizeof(scratch),
                         would_block, err);
            if (stopping_.load(std::memory_order_relaxed))
                break;
            drainInbox(/*shutting_down=*/false);
        }
        if (poll_listener && (fds[listener_slot].revents & POLLIN) != 0)
            acceptReady();

        // Serve readiness back-to-front so closes keep earlier indices
        // valid.
        for (std::size_t i = conn_slots.size(); i-- > 0;) {
            const pollfd &pfd = fds[conn_slots[i]];
            if (pfd.revents == 0)
                continue;
            Conn &conn = *conns_[i];
            bool alive = true;
            if ((pfd.revents & POLLOUT) != 0)
                alive = flushOut(conn);
            if (alive && (pfd.revents &
                          (POLLIN | POLLERR | POLLHUP)) != 0) {
                alive = readReady(conn);
                if (!alive && conn.pendingOut() > 0) {
                    // EOF with queued replies (client sent its burst
                    // and shut down its write side): push the backlog
                    // out before closing.
                    drainAndClose(conn);
                }
            }
            if (alive && conn.closeAfterFlush && conn.pendingOut() == 0)
                alive = false;
            if (!alive)
                closeConn(i);
        }
        refreshGauges();

        // Idle sweep.
        if (options_.idleTimeoutMs >= 0 && !conns_.empty()) {
            const std::uint64_t now = telemetry::nowMicros();
            const std::uint64_t limit_us =
                static_cast<std::uint64_t>(options_.idleTimeoutMs) *
                1000;
            for (std::size_t i = conns_.size(); i-- > 0;) {
                if (now - conns_[i]->lastActivityUs >= limit_us)
                    closeConn(i);
            }
        }
    }

    // Graceful drain: close the accept slice first (no new work), turn
    // away queued handoffs, then give every live connection one final
    // read sweep and answer everything complete before closing. The
    // Server's serve() joins every shard, forming the cross-shard
    // drain barrier.
    listener_.reset();
    drainInbox(/*shutting_down=*/true);
    for (const auto &conn : conns_)
        drainAndClose(*conn);
    conns_.clear();
    refreshGauges();
}

} // namespace bxt::server
