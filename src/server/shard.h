/**
 * @file
 * One shared-nothing bxtd worker shard (DESIGN.md §14). A shard owns:
 *
 *  - an accept slice: its own SO_REUSEPORT TCP listener (the kernel
 *    load-balances connections across shard listeners) and/or an inbox
 *    of connections handed off round-robin by the server's Unix-domain
 *    acceptor;
 *  - a poll()-based event loop driving every connection it accepted as
 *    a nonblocking socket — reads feed a per-connection FrameParser,
 *    responses queue in a per-connection output buffer flushed under
 *    POLLOUT, so a slow client stalls only its own buffer, never the
 *    shard;
 *  - one Service (codec + adaptive-controller cache keyed by spec,
 *    geometry, and streamId) shared by the shard's connections;
 *  - a private telemetry::Registry the event-loop thread installs via
 *    ScopedRegistry, so every instrument the request path touches is
 *    shard-local. The server merges shard registries on Stats/Snapshot
 *    into fleet totals plus `bxt.server.shard.<i>.*` breakdowns.
 *
 * Nothing is shared between shards: no locks, no pools, no common
 * caches — a hot spec, a slow client, or an adaptive re-evaluation on
 * one shard cannot serialize another. The only cross-shard touchpoints
 * are the wake pipe (stop requests, inbox handoffs) and the
 * merge-on-Stats read path, both off the request hot path.
 */

#ifndef BXT_SERVER_SHARD_H
#define BXT_SERVER_SHARD_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/net.h"
#include "server/service.h"
#include "server/wire.h"
#include "telemetry/metrics.h"

namespace bxt::server {

struct ServerOptions;

/**
 * One worker shard. Lifecycle: construct, optionally adopt a TCP
 * listener (start()), then run() on a dedicated thread until
 * requestStop(); run() returns after the shard's graceful drain.
 */
class Shard
{
  public:
    /** @p options is owned by the Server and outlives the shard. */
    Shard(std::size_t index, const ServerOptions &options);
    ~Shard();

    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    /**
     * Create the wake pipe and, when @p tcp_port >= 0, bind this
     * shard's SO_REUSEPORT accept slice on @p tcp_host:@p tcp_port.
     */
    bool start(const std::string &tcp_host, int tcp_port,
               std::string &err);

    /**
     * The event loop: accepts, reads, serves, and flushes until
     * requestStop(), then drains — listener closed first, in-flight
     * connections get one final read sweep, every complete buffered
     * frame is answered and flushed, then everything closes.
     */
    void run();

    /** Async-signal-safe stop: one byte on the wake pipe. */
    void requestStop();

    /**
     * Hand off an accepted connection (round-robin Unix accepts).
     * Thread-safe; never blocks the acceptor on shard progress.
     */
    void enqueue(net::UniqueFd fd);

    std::size_t index() const { return index_; }
    telemetry::Registry &registry() { return registry_; }
    const telemetry::Registry &registry() const { return registry_; }
    Service &service() { return service_; }

    /** Resolved port of this shard's TCP listener (-1 when none). */
    int tcpPort() const;

  private:
    struct Conn;

    void adoptConnection(net::UniqueFd fd);
    void acceptReady();
    void drainInbox(bool shutting_down);
    /** Read until EAGAIN/EOF; false = connection is gone. */
    bool readReady(Conn &conn);
    /** Serve every complete buffered frame; false = close conn. */
    bool processFrames(Conn &conn);
    /** Nonblocking flush pass; false = connection is gone. */
    bool flushOut(Conn &conn);
    void closeConn(std::size_t at);
    void drainAndClose(Conn &conn);
    void refreshGauges();

    const std::size_t index_;
    const ServerOptions &options_;

    // Destruction order matters: the registry must outlive the Service
    // and the instrument references below, so it is declared first.
    telemetry::Registry registry_;
    Service service_;

    telemetry::Counter &connections_;
    telemetry::Counter &rejectedBusy_;
    telemetry::Gauge &activeConns_;
    telemetry::Gauge &queueDepth_;
    telemetry::Gauge &threads_;
    telemetry::Histo &batchSize_;
    telemetry::Histo &requestUs_;

    net::UniqueFd listener_;
    net::UniqueFd wake_read_;
    net::UniqueFd wake_write_;
    std::atomic<bool> stopping_{false};

    std::mutex inbox_mutex_;
    std::deque<net::UniqueFd> inbox_;

    std::vector<std::unique_ptr<Conn>> conns_;
};

} // namespace bxt::server

#endif // BXT_SERVER_SHARD_H
