#include "server/wire.h"

#include <cstring>

#include "common/bitops.h"
#include "common/checksum.h"
#include "common/rng.h"

namespace bxt::wire {

bool
opcodeKnown(std::uint8_t op)
{
    switch (static_cast<Opcode>(op)) {
    case Opcode::Ping:
    case Opcode::Encode:
    case Opcode::Decode:
    case Opcode::Stats:
    case Opcode::Snapshot:
    case Opcode::Error:
        return true;
    }
    return false;
}

std::string
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::None: return "none";
    case ErrorCode::BadMagic: return "bad-magic";
    case ErrorCode::BadVersion: return "bad-version";
    case ErrorCode::BadCrc: return "bad-crc";
    case ErrorCode::UnknownOpcode: return "unknown-opcode";
    case ErrorCode::FrameTooLarge: return "frame-too-large";
    case ErrorCode::Malformed: return "malformed";
    case ErrorCode::BadSpec: return "bad-spec";
    case ErrorCode::Busy: return "busy";
    case ErrorCode::ShuttingDown: return "shutting-down";
    case ErrorCode::Internal: return "internal";
    }
    return "unknown-error-" +
           std::to_string(static_cast<std::uint32_t>(code));
}

std::vector<std::uint8_t>
serializeFrame(const Frame &frame)
{
    const std::size_t spec_len = frame.spec.size();
    const std::size_t body_len = frame.body.size();
    // Untraced frames stay byte-identical version-1 frames, so a client
    // that never sets a trace context interoperates with pre-trace
    // servers (and vice versa).
    const std::size_t trace_len = frame.traced() ? traceBlockBytes : 0;
    std::vector<std::uint8_t> out(headerBytes + trace_len + spec_len +
                                  body_len + crcBytes);

    storeWord32(out.data(), frameMagic);
    out[4] = frame.traced() ? wireVersionTraced : wireVersion;
    out[5] = static_cast<std::uint8_t>(frame.opcode);
    out[6] = static_cast<std::uint8_t>(frame.streamId & 0xff);
    out[7] = static_cast<std::uint8_t>(frame.streamId >> 8);
    storeWord32(out.data() + 8, static_cast<std::uint32_t>(spec_len));
    storeWord32(out.data() + 12, static_cast<std::uint32_t>(body_len));
    if (frame.traced()) {
        storeWord64(out.data() + 16, frame.traceId);
        storeWord64(out.data() + 24, frame.spanId);
        storeWord32(out.data() + 32,
                    frame.traceSampled ? traceFlagSampled : 0u);
    }
    const std::size_t payload_off = headerBytes + trace_len;
    if (spec_len > 0)
        std::memcpy(out.data() + payload_off, frame.spec.data(), spec_len);
    if (body_len > 0) {
        std::memcpy(out.data() + payload_off + spec_len, frame.body.data(),
                    body_len);
    }
    const std::size_t crc_off = payload_off + spec_len + body_len;
    storeWord32(out.data() + crc_off,
                crc32({out.data(), crc_off}));
    return out;
}

Frame
makeErrorFrame(ErrorCode code, const std::string &message)
{
    Frame frame;
    frame.opcode = Opcode::Error;
    BodyWriter body;
    body.u32(static_cast<std::uint32_t>(code));
    body.bytes(reinterpret_cast<const std::uint8_t *>(message.data()),
               message.size());
    frame.body = body.take();
    return frame;
}

bool
parseErrorFrame(const Frame &frame, ErrorCode &code, std::string &message)
{
    if (frame.opcode != Opcode::Error || frame.body.size() < 4)
        return false;
    code = static_cast<ErrorCode>(loadWord32(frame.body.data()));
    message.assign(frame.body.begin() + 4, frame.body.end());
    return true;
}

void
FrameParser::feed(const std::uint8_t *data, std::size_t n)
{
    if (failed() || n == 0)
        return;
    // Reclaim the consumed prefix before growing, so a long-lived
    // connection's buffer stays proportional to one in-flight frame.
    if (consumed_ > 0 && consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
    } else if (consumed_ > 4096) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + n);
}

FrameParser::Status
FrameParser::fail(ErrorCode code, const std::string &detail, WireError &err)
{
    error_ = {code, detail};
    err = error_;
    return Status::Bad;
}

FrameParser::Status
FrameParser::next(Frame &out, WireError &err)
{
    if (failed()) {
        err = error_;
        return Status::Bad;
    }
    const std::uint8_t *base = buffer_.data() + consumed_;
    const std::size_t avail = buffered();
    if (avail < headerBytes)
        return Status::NeedMore;

    if (loadWord32(base) != frameMagic)
        return fail(ErrorCode::BadMagic, "frame magic is not 'BXTP'", err);
    if (base[4] != wireVersion && base[4] != wireVersionTraced) {
        return fail(ErrorCode::BadVersion,
                    "unsupported wire version " + std::to_string(base[4]),
                    err);
    }
    const std::size_t trace_len =
        base[4] == wireVersionTraced ? traceBlockBytes : 0;
    if (!opcodeKnown(base[5])) {
        return fail(ErrorCode::UnknownOpcode,
                    "unknown opcode " + std::to_string(base[5]), err);
    }
    const std::uint32_t spec_len = loadWord32(base + 8);
    const std::uint32_t body_len = loadWord32(base + 12);
    if (spec_len > maxSpecLen) {
        return fail(ErrorCode::FrameTooLarge,
                    "spec length " + std::to_string(spec_len) +
                        " exceeds " + std::to_string(maxSpecLen),
                    err);
    }
    if (body_len > maxBodyLen) {
        return fail(ErrorCode::FrameTooLarge,
                    "body length " + std::to_string(body_len) +
                        " exceeds " + std::to_string(maxBodyLen),
                    err);
    }

    const std::size_t total =
        headerBytes + trace_len + spec_len + body_len + crcBytes;
    if (avail < total)
        return Status::NeedMore;

    const std::uint32_t stored_crc = loadWord32(base + total - crcBytes);
    const std::uint32_t computed_crc = crc32({base, total - crcBytes});
    if (stored_crc != computed_crc)
        return fail(ErrorCode::BadCrc, "frame CRC32 mismatch", err);

    out.traceId = 0;
    out.spanId = 0;
    out.traceSampled = false;
    if (trace_len > 0) {
        const std::uint32_t flags = loadWord32(base + 32);
        if ((flags & ~traceFlagSampled) != 0) {
            return fail(ErrorCode::Malformed,
                        "reserved trace-flag bits set: " +
                            std::to_string(flags),
                        err);
        }
        out.traceId = loadWord64(base + 16);
        // traceId 0 means "no trace context"; canonicalize the whole
        // block away so re-serializing yields a version-1 frame.
        if (out.traceId != 0) {
            out.spanId = loadWord64(base + 24);
            out.traceSampled = (flags & traceFlagSampled) != 0;
        }
    }
    out.opcode = static_cast<Opcode>(base[5]);
    out.streamId = static_cast<std::uint16_t>(
        base[6] | (static_cast<std::uint16_t>(base[7]) << 8));
    const std::uint8_t *payload = base + headerBytes + trace_len;
    out.spec.assign(reinterpret_cast<const char *>(payload), spec_len);
    out.body.assign(payload + spec_len, payload + spec_len + body_len);
    consumed_ += total;
    return Status::Ready;
}

void
BodyWriter::u32(std::uint32_t v)
{
    const std::size_t at = out_.size();
    out_.resize(at + 4);
    storeWord32(out_.data() + at, v);
}

void
BodyWriter::u64(std::uint64_t v)
{
    const std::size_t at = out_.size();
    out_.resize(at + 8);
    storeWord64(out_.data() + at, v);
}

void
BodyWriter::bytes(const std::uint8_t *data, std::size_t n)
{
    if (n > 0)
        out_.insert(out_.end(), data, data + n);
}

bool
BodyReader::u32(std::uint32_t &v)
{
    if (!ok_ || remaining() < 4) {
        ok_ = false;
        return false;
    }
    v = loadWord32(data_ + pos_);
    pos_ += 4;
    return true;
}

bool
BodyReader::u64(std::uint64_t &v)
{
    if (!ok_ || remaining() < 8) {
        ok_ = false;
        return false;
    }
    v = loadWord64(data_ + pos_);
    pos_ += 8;
    return true;
}

bool
BodyReader::bytes(std::uint8_t *out, std::size_t n)
{
    if (!ok_ || remaining() < n) {
        ok_ = false;
        return false;
    }
    // n == 0 must not reach memcpy: an empty destination vector hands us
    // a null `out`, and memcpy's arguments are declared nonnull.
    if (n > 0)
        std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
}

bool
BodyReader::view(const std::uint8_t *&out, std::size_t n)
{
    if (!ok_ || remaining() < n) {
        ok_ = false;
        return false;
    }
    out = data_ + pos_;
    pos_ += n;
    return true;
}

namespace {

Frame
randomFrame(Rng &rng)
{
    static const Opcode opcodes[] = {Opcode::Ping, Opcode::Encode,
                                     Opcode::Decode, Opcode::Stats,
                                     Opcode::Snapshot, Opcode::Error};
    Frame frame;
    frame.opcode = opcodes[rng.nextBounded(6)];
    frame.streamId = static_cast<std::uint16_t>(rng.nextBounded(0x10000));
    if (rng.nextBounded(2) == 1) {
        // Traced (version-2) frame: traceId must be nonzero to carry a
        // trace block at all.
        frame.traceId = rng.next64() | 1;
        frame.spanId = rng.next64();
        frame.traceSampled = rng.nextBounded(2) == 1;
    }
    const std::size_t spec_len = rng.nextBounded(13);
    static const char charset[] =
        "abcdefghijklmnopqrstuvwxyz0123456789+|";
    for (std::size_t i = 0; i < spec_len; ++i)
        frame.spec += charset[rng.nextBounded(sizeof(charset) - 1)];
    const std::size_t body_len = rng.nextBounded(65);
    frame.body.resize(body_len);
    for (std::size_t i = 0; i < body_len; ++i)
        frame.body[i] = static_cast<std::uint8_t>(rng.nextBounded(256));
    return frame;
}

} // namespace

FrameFuzzReport
fuzzFrameParser(std::uint64_t seed, std::uint64_t iterations)
{
    FrameFuzzReport report;
    report.iterations = iterations;
    Rng rng(seed ^ 0xf8a3e5ull);

    for (std::uint64_t iter = 0; iter < iterations; ++iter) {
        const Frame frame = randomFrame(rng);
        const std::vector<std::uint8_t> bytes = serializeFrame(frame);
        const auto record = [&](const std::string &what) {
            if (report.failures.size() < 32) {
                report.failures.push_back(
                    "iter " + std::to_string(iter) + ": " + what);
            }
        };

        const std::uint64_t mode = rng.nextBounded(4);
        FrameParser parser;
        Frame parsed;
        WireError err;
        if (mode == 0) {
            // Clean single feed: must round-trip byte-identically.
            parser.feed(bytes.data(), bytes.size());
            if (parser.next(parsed, err) != FrameParser::Status::Ready)
                record("clean frame did not parse");
            else if (!(parsed == frame))
                record("clean frame round-trip mismatch");
            else
                ++report.framesParsed;
        } else if (mode == 1) {
            // Random chunk boundaries: same result as one feed.
            std::size_t fed = 0;
            bool done = false;
            while (fed < bytes.size()) {
                const std::size_t chunk = 1 + rng.nextBounded(7);
                const std::size_t n =
                    std::min(chunk, bytes.size() - fed);
                parser.feed(bytes.data() + fed, n);
                fed += n;
                const FrameParser::Status st = parser.next(parsed, err);
                if (st == FrameParser::Status::Bad) {
                    record("chunked clean frame reported " +
                           errorCodeName(err.code));
                    done = true;
                    break;
                }
                if (st == FrameParser::Status::Ready) {
                    if (fed < bytes.size())
                        record("frame parsed before all bytes arrived");
                    else if (!(parsed == frame))
                        record("chunked round-trip mismatch");
                    else
                        ++report.framesParsed;
                    done = true;
                    break;
                }
            }
            if (!done)
                record("chunked clean frame never completed");
        } else if (mode == 2) {
            // Truncation: a clean prefix must only ever ask for more.
            const std::size_t keep = rng.nextBounded(bytes.size());
            parser.feed(bytes.data(), keep);
            if (parser.next(parsed, err) != FrameParser::Status::NeedMore)
                record("truncated frame did not report NeedMore");
        } else {
            // Single-byte corruption: CRC (or a structural check) must
            // reject it — a corrupted frame may stall (NeedMore, when a
            // length field grew) but must never parse as Ready.
            std::vector<std::uint8_t> mutated = bytes;
            const std::size_t at = rng.nextBounded(mutated.size());
            const auto flip = static_cast<std::uint8_t>(
                1 + rng.nextBounded(255));
            mutated[at] = static_cast<std::uint8_t>(mutated[at] ^ flip);
            parser.feed(mutated.data(), mutated.size());
            const FrameParser::Status st = parser.next(parsed, err);
            if (st == FrameParser::Status::Ready)
                record("corrupted frame parsed as valid");
            else if (st == FrameParser::Status::Bad)
                ++report.errorsTyped;
        }
    }
    return report;
}

} // namespace bxt::wire
