/**
 * @file
 * The bxtd framed wire protocol (DESIGN.md §10). Every message — request
 * or response, TCP or Unix-domain — is one length-prefixed, CRC32-checked
 * frame:
 *
 *   offset  size  field
 *        0     4  magic "BXTP"
 *        4     1  version (wireVersion or wireVersionTraced)
 *        5     1  opcode
 *        6     2  streamId  (little-endian; 0 = untagged)
 *        8     4  specLen   (little-endian, <= maxSpecLen)
 *       12     4  bodyLen   (little-endian, <= maxBodyLen)
 *     [ 16     8  traceId   — version 2 frames only            ]
 *     [ 24     8  spanId    — version 2 frames only            ]
 *     [ 32     4  traceFlags — version 2 only; bit0 = sampled,  ]
 *     [                        all other bits must be zero      ]
 *        +  specLen  codec-spec string (UTF-8, no terminator)
 *        +  bodyLen  opcode-specific body
 *        +     4  CRC32 over everything above (header + spec + body)
 *
 * All integers are little-endian. A frame that fails any structural check
 * maps to a typed ErrorCode; the server answers with an Error frame and
 * closes the connection (framing cannot be trusted after a corrupt
 * header). Error frames carry `u32 code | message bytes` as their body.
 *
 * Trace context: a version-2 frame inserts a 20-byte trace block between
 * the fixed header and the spec, carrying a 64-bit traceId, a 64-bit
 * spanId, and a flags word whose bit 0 marks the request as sampled for
 * server-side span recording. Version-1 frames carry no block and parse
 * exactly as before, so pre-trace clients and servers interoperate
 * unchanged; a server echoes the request's trace context on its reply.
 * A version-2 frame with any reserved flag bit set is Malformed.
 *
 * Request bodies (u32/u64 little-endian, payloads byte-exact):
 *   Ping    —
 *   Encode  u32 txBytes | u32 busBits | u64 count | count·txBytes raw
 *   Decode  u32 txBytes | u32 busBits | u32 metaWiresPerBeat |
 *           u32 metaBytesPerTx | u64 count |
 *           count·txBytes payload | count·metaBytesPerTx packed meta
 *   Stats   —
 *
 * Response bodies:
 *   Ping    —
 *   Encode  u32 txBytes | u32 busBits | u32 metaWiresPerBeat |
 *           u32 metaBytesPerTx | u64 count | u64 inputOnes |
 *           u64 payloadOnes | u64 metaOnes |
 *           count·txBytes payload | count·metaBytesPerTx packed meta
 *   Decode  u32 txBytes | u64 count | count·txBytes raw
 *   Stats   telemetry snapshot JSON (schema 2) as bytes
 *   Snapshot `{"uptime_us":…,"metrics":<schema-2 snapshot>}` as bytes
 *
 * Metadata bits are packed LSB-first: metadata bit j of a transaction
 * (beat-major, as in Encoded::meta) lives in packed byte j/8, bit j%8.
 *
 * Stream ids: a client may tag each request with a 16-bit stream
 * (tenant) id; the server echoes it on the response and keys its
 * per-tenant request/ones telemetry (`bxt.server.stream.<id>.*`) by
 * it. Id 0 means untagged and carries no per-stream accounting —
 * which is also what every pre-streamId client sends, since the field
 * occupies the formerly-reserved-zero header bytes.
 *
 * Adaptive spec announcement: for a concrete spec the server echoes the
 * request's spec field verbatim on Encode/Decode replies. When the
 * request names the adaptive meta-codec (`adaptive[:...]`), the reply's
 * spec field instead carries stream metadata — the concrete spec the
 * per-stream controller currently selects plus its switch epoch, as
 * `<concrete-spec>;epoch=<N>` (';' cannot occur in the spec grammar).
 * Clients decode cross-epoch payloads by sending a Decode under the
 * announced concrete spec; within one epoch a Decode under the adaptive
 * spec itself round-trips, since the choice only moves at encode-batch
 * boundaries. Only clients that asked for `adaptive` ever see the
 * announcement, so pre-adaptive clients are unaffected.
 */

#ifndef BXT_SERVER_WIRE_H
#define BXT_SERVER_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bxt::wire {

/** Frame magic, little-endian "BXTP". */
constexpr std::uint32_t frameMagic = 0x50545842u;

/** Protocol version of an untraced frame. */
constexpr std::uint8_t wireVersion = 1;

/** Protocol version of a frame carrying a trace block. */
constexpr std::uint8_t wireVersionTraced = 2;

/** Fixed frame-header size (before trace block/spec/body/CRC). */
constexpr std::size_t headerBytes = 16;

/** Size of the version-2 trace block (traceId + spanId + flags). */
constexpr std::size_t traceBlockBytes = 20;

/** Trace-flags bit 0: record server-side spans for this request. */
constexpr std::uint32_t traceFlagSampled = 1u;

/** Trailing CRC32 size. */
constexpr std::size_t crcBytes = 4;

/** Upper bound on the codec-spec string. */
constexpr std::size_t maxSpecLen = 128;

/** Upper bound on a frame body (16 MiB). */
constexpr std::size_t maxBodyLen = 16u << 20;

/** Upper bound on transactions per Encode/Decode request. */
constexpr std::size_t maxTxPerRequest = 4096;

/** Message opcodes. Responses echo the request opcode (or Error). */
enum class Opcode : std::uint8_t {
    Ping = 1,   ///< Liveness probe; empty body both ways.
    Encode = 2, ///< Encode raw transactions under the frame's spec.
    Decode = 3, ///< Decode payload+metadata back to raw transactions.
    Stats = 4,  ///< Fetch the server's telemetry snapshot JSON.
    Snapshot = 5, ///< Fetch uptime + full live telemetry (bxt_top feed).
    Error = 0x7f, ///< Response-only: u32 ErrorCode + message bytes.
};

/** True when @p op is a value the protocol defines. */
bool opcodeKnown(std::uint8_t op);

/** Typed protocol/request failures (Error-frame body code). */
enum class ErrorCode : std::uint32_t {
    None = 0,
    BadMagic = 1,      ///< First 4 bytes are not "BXTP".
    BadVersion = 2,    ///< Unsupported protocol version.
    BadCrc = 3,        ///< CRC32 mismatch.
    UnknownOpcode = 4, ///< Opcode outside the defined set.
    FrameTooLarge = 5, ///< specLen/bodyLen above the protocol bounds.
    Malformed = 6,     ///< Reserved bits set or body fails validation.
    BadSpec = 7,       ///< Codec spec rejected by tryMakeCodec.
    Busy = 8,          ///< Accept queue full; retry later.
    ShuttingDown = 9,  ///< Server draining; connection closing.
    Internal = 10,     ///< Unexpected server-side failure.
};

/** Stable lower-case token for an error code (log/CLI output). */
std::string errorCodeName(ErrorCode code);

/** One parsed (or to-be-serialized) frame. */
struct Frame
{
    Opcode opcode = Opcode::Ping;
    std::uint16_t streamId = 0;     ///< Tenant/stream tag (0 = none).
    std::uint64_t traceId = 0;      ///< Trace context id (0 = untraced).
    std::uint64_t spanId = 0;       ///< Caller's span id within traceId.
    bool traceSampled = false;      ///< Record server spans when set.
    std::string spec;               ///< Codec spec ("" when unused).
    std::vector<std::uint8_t> body; ///< Opcode-specific body bytes.

    /** True when the frame serializes with a version-2 trace block. */
    bool traced() const { return traceId != 0; }

    bool operator==(const Frame &other) const = default;
};

/** A typed parse/validation failure with a human-readable detail. */
struct WireError
{
    ErrorCode code = ErrorCode::None;
    std::string detail;
};

/** Serialize @p frame (header + spec + body + CRC32). */
std::vector<std::uint8_t> serializeFrame(const Frame &frame);

/** Build an Error response frame for @p code. */
Frame makeErrorFrame(ErrorCode code, const std::string &message);

/**
 * Interpret an Error frame's body. Returns false when @p frame is not an
 * Error frame or its body is shorter than the code field.
 */
bool parseErrorFrame(const Frame &frame, ErrorCode &code,
                     std::string &message);

/**
 * Incremental frame parser: feed() raw bytes as they arrive, then drain
 * complete frames with next(). Structural failures (bad magic, version,
 * oversized lengths, unknown opcode, CRC mismatch) are sticky — framing
 * is untrustworthy after corruption, so the connection must be torn down
 * after sending the typed error.
 */
class FrameParser
{
  public:
    enum class Status {
        NeedMore, ///< No complete frame buffered yet.
        Ready,    ///< A frame was produced.
        Bad,      ///< Typed error; parser is now stuck (failed()).
    };

    /** Append @p n raw stream bytes. No-op once failed(). */
    void feed(const std::uint8_t *data, std::size_t n);

    /**
     * Try to extract the next complete frame into @p out. On Bad, @p err
     * carries the typed error; every later call repeats it.
     */
    Status next(Frame &out, WireError &err);

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buffer_.size() - consumed_; }

    /** True after a structural error; the stream cannot be re-synced. */
    bool failed() const { return error_.code != ErrorCode::None; }

  private:
    Status fail(ErrorCode code, const std::string &detail, WireError &err);

    std::vector<std::uint8_t> buffer_;
    std::size_t consumed_ = 0; ///< Prefix of buffer_ already parsed.
    WireError error_;
};

/**
 * Little-endian body serializer (u32/u64/raw bytes), shared by the
 * service, the client library, and the tests.
 */
class BodyWriter
{
  public:
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void bytes(const std::uint8_t *data, std::size_t n);

    std::vector<std::uint8_t> take() { return std::move(out_); }

  private:
    std::vector<std::uint8_t> out_;
};

/**
 * Bounds-checked little-endian body reader. All accessors return false
 * once the body is exhausted; ok() stays false after the first failure.
 */
class BodyReader
{
  public:
    BodyReader(const std::uint8_t *data, std::size_t n)
        : data_(data), size_(n)
    {
    }
    explicit BodyReader(const std::vector<std::uint8_t> &body)
        : BodyReader(body.data(), body.size())
    {
    }

    bool u32(std::uint32_t &v);
    bool u64(std::uint64_t &v);
    bool bytes(std::uint8_t *out, std::size_t n);
    /** Borrow @p n bytes in place (valid while the body lives). */
    bool view(const std::uint8_t *&out, std::size_t n);

    std::size_t remaining() const { return size_ - pos_; }
    bool ok() const { return ok_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Frame-parser fuzz outcome (tools/bxt_fuzz --frames). */
struct FrameFuzzReport
{
    std::uint64_t iterations = 0;
    std::uint64_t framesParsed = 0;   ///< Clean frames round-tripped.
    std::uint64_t errorsTyped = 0;    ///< Corruptions caught with a type.
    std::vector<std::string> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Self-checking fuzz of the frame parser: generates valid frames, then
 * replays them clean (must round-trip byte-identically through
 * serialize→parse), chunked at random boundaries (must still round-trip),
 * truncated (must report NeedMore, never a frame), and with random byte
 * corruptions (must yield a typed error or NeedMore, never a parsed
 * frame). Deterministic per @p seed.
 */
FrameFuzzReport fuzzFrameParser(std::uint64_t seed,
                                std::uint64_t iterations);

} // namespace bxt::wire

#endif // BXT_SERVER_WIRE_H
