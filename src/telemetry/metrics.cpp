#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "telemetry/spanring.h"
#include "telemetry/trace.h"

namespace bxt::telemetry {

namespace detail {

namespace {

bool
envEnabled(const char *name)
{
    const char *value = std::getenv(name);
    return value != nullptr && *value != '\0' &&
           std::string(value) != "0";
}

} // namespace

std::atomic<bool> metricsOn{envEnabled("BXT_METRICS")};

} // namespace detail

namespace {

/** Innermost ScopedRegistry on this thread (null = default registry). */
thread_local Registry *t_currentRegistry = nullptr;

} // namespace

Registry &
defaultRegistry()
{
    static Registry *instance = new Registry(); // Never destroyed:
    // instruments may be touched from atexit trace flushing.
    return *instance;
}

Registry &
currentRegistry()
{
    Registry *reg = t_currentRegistry;
    return reg != nullptr ? *reg : defaultRegistry();
}

ScopedRegistry::ScopedRegistry(Registry &registry)
    : previous_(t_currentRegistry)
{
    t_currentRegistry = &registry;
}

ScopedRegistry::~ScopedRegistry()
{
    t_currentRegistry = previous_;
}

void
setMetricsEnabled(bool on)
{
    detail::metricsOn.store(on, std::memory_order_relaxed);
}

Histo::Histo(std::string name)
    : name_(std::move(name)), counts_(numBuckets)
{
    for (auto &count : counts_)
        count.store(0, std::memory_order_relaxed);
}

double
Histo::quantile(double q) const
{
    const std::uint64_t n = total();
    if (n == 0)
        return 0.0;
    double target = q * static_cast<double>(n);
    if (target < 1.0)
        target = 1.0;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        const std::uint64_t c = bucketCount(i);
        if (c > 0 && static_cast<double>(cum + c) >= target) {
            const double lo =
                static_cast<double>(bucketLowerBound(i));
            const double width = static_cast<double>(bucketWidth(i));
            // target lands on the k-th sample of this bucket (1-based);
            // interpolate from the bucket's lower edge so an exact hit
            // on a single-sample bucket returns that sample's value.
            const double frac =
                (target - static_cast<double>(cum) - 1.0) /
                static_cast<double>(c);
            double value = lo + width * frac;
            value = std::min(value, static_cast<double>(max()));
            value = std::max(value, static_cast<double>(min()));
            return value;
        }
        cum += c;
    }
    return static_cast<double>(max());
}

void
Histo::mergeFrom(const Histo &other)
{
    if (other.total() == 0)
        return; // An empty histogram carries sentinel min/max.
    for (std::size_t i = 0; i < numBuckets; ++i) {
        const std::uint64_t c = other.bucketCount(i);
        if (c > 0)
            counts_[i].fetch_add(c, std::memory_order_relaxed);
    }
    total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    const std::uint64_t other_min =
        other.min_.load(std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (other_min < cur &&
           !min_.compare_exchange_weak(cur, other_min,
                                       std::memory_order_relaxed)) {
    }
    const std::uint64_t other_max =
        other.max_.load(std::memory_order_relaxed);
    cur = max_.load(std::memory_order_relaxed);
    while (other_max > cur &&
           !max_.compare_exchange_weak(cur, other_max,
                                       std::memory_order_relaxed)) {
    }
}

void
Histo::reset()
{
    for (auto &count : counts_)
        count.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

std::string
sanitizeMetricName(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '+') {
            out += '-';
        } else if (c == '|') {
            out += "__";
        } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                   (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                   c == '-') {
            out += c;
        } else {
            out += '_';
        }
    }
    return out;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>(name);
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>(name);
    return *slot;
}

Histo &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histos_[name];
    if (slot == nullptr)
        slot = std::make_unique<Histo>(name);
    return *slot;
}

void
Registry::forEachCounter(
    const std::function<void(const Counter &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, instrument] : counters_)
        fn(*instrument);
}

void
Registry::forEachGauge(const std::function<void(const Gauge &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, instrument] : gauges_)
        fn(*instrument);
}

void
Registry::forEachHisto(const std::function<void(const Histo &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, instrument] : histos_)
        fn(*instrument);
}

void
Registry::mergeFrom(
    const Registry &other,
    const std::function<std::string(const std::string &)> &rename)
{
    // Never hold both registry mutexes at once (merge sources may be
    // concurrently recording); snapshot the source instrument pointers
    // under its lock, then fold them in. Source instruments cannot die
    // mid-merge: registries only drop instruments on destruction, and
    // the merging caller owns a reference to the source.
    const auto mapped = [&rename](const std::string &name) {
        return rename ? rename(name) : name;
    };
    std::vector<const Counter *> counters;
    std::vector<const Gauge *> gauges;
    std::vector<const Histo *> histos;
    {
        std::lock_guard<std::mutex> lock(other.mutex_);
        for (const auto &[name, instrument] : other.counters_)
            counters.push_back(instrument.get());
        for (const auto &[name, instrument] : other.gauges_)
            gauges.push_back(instrument.get());
        for (const auto &[name, instrument] : other.histos_)
            histos.push_back(instrument.get());
    }
    for (const Counter *src : counters) {
        const std::string name = mapped(src->name());
        if (!name.empty())
            counter(name).mergeAdd(src->value());
    }
    for (const Gauge *src : gauges) {
        const std::string name = mapped(src->name());
        if (!name.empty())
            gauge(name).mergeAdd(src->value());
    }
    for (const Histo *src : histos) {
        const std::string name = mapped(src->name());
        if (!name.empty())
            histogram(name).mergeFrom(*src);
    }
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, instrument] : counters_)
        instrument->reset();
    for (auto &[name, instrument] : gauges_)
        instrument->reset();
    for (auto &[name, instrument] : histos_)
        instrument->reset();
}

Counter &
counter(const std::string &name)
{
    return currentRegistry().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return currentRegistry().gauge(name);
}

Histo &
histogram(const std::string &name)
{
    return currentRegistry().histogram(name);
}

void
forEachCounter(const std::function<void(const Counter &)> &fn)
{
    currentRegistry().forEachCounter(fn);
}

void
forEachGauge(const std::function<void(const Gauge &)> &fn)
{
    currentRegistry().forEachGauge(fn);
}

void
forEachHisto(const std::function<void(const Histo &)> &fn)
{
    currentRegistry().forEachHisto(fn);
}

void
resetForTest()
{
    defaultRegistry().reset();
    clearTraceBuffer();
    clearServerSpans();
}

} // namespace bxt::telemetry
