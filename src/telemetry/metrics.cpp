#include "telemetry/metrics.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "telemetry/trace.h"

namespace bxt::telemetry {

namespace detail {

namespace {

bool
envEnabled(const char *name)
{
    const char *value = std::getenv(name);
    return value != nullptr && *value != '\0' &&
           std::string(value) != "0";
}

} // namespace

std::atomic<bool> metricsOn{envEnabled("BXT_METRICS")};

} // namespace detail

namespace {

/**
 * The process-wide registry. std::map keeps instruments name-sorted so
 * snapshots are deterministic; unique_ptr keeps instrument addresses
 * stable across rehash-free inserts (call sites cache references).
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histo>> histos;
};

Registry &
registry()
{
    static Registry *instance = new Registry(); // Never destroyed:
    // instruments may be touched from atexit trace flushing.
    return *instance;
}

} // namespace

void
setMetricsEnabled(bool on)
{
    detail::metricsOn.store(on, std::memory_order_relaxed);
}

Histo::Histo(std::string name, double lo, double hi, std::size_t buckets)
    : name_(std::move(name)), edges_(lo, hi, buckets), counts_(buckets)
{
    for (auto &count : counts_)
        count.store(0, std::memory_order_relaxed);
}

void
Histo::reset()
{
    for (auto &count : counts_)
        count.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    sum_micro_.store(0, std::memory_order_relaxed);
}

std::string
sanitizeMetricName(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '+') {
            out += '-';
        } else if (c == '|') {
            out += "__";
        } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                   (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                   c == '-') {
            out += c;
        } else {
            out += '_';
        }
    }
    return out;
}

Counter &
counter(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.counters[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>(name);
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.gauges[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>(name);
    return *slot;
}

Histo &
histogram(const std::string &name, double lo, double hi,
          std::size_t buckets)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.histos[name];
    if (slot == nullptr)
        slot = std::make_unique<Histo>(name, lo, hi, buckets);
    return *slot;
}

void
forEachCounter(const std::function<void(const Counter &)> &fn)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &[name, instrument] : reg.counters)
        fn(*instrument);
}

void
forEachGauge(const std::function<void(const Gauge &)> &fn)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &[name, instrument] : reg.gauges)
        fn(*instrument);
}

void
forEachHisto(const std::function<void(const Histo &)> &fn)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &[name, instrument] : reg.histos)
        fn(*instrument);
}

void
resetForTest()
{
    Registry &reg = registry();
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (auto &[name, instrument] : reg.counters)
            instrument->reset();
        for (auto &[name, instrument] : reg.gauges)
            instrument->reset();
        for (auto &[name, instrument] : reg.histos)
            instrument->reset();
    }
    clearTraceBuffer();
}

} // namespace bxt::telemetry
