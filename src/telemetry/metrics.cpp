#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "telemetry/spanring.h"
#include "telemetry/trace.h"

namespace bxt::telemetry {

namespace detail {

namespace {

bool
envEnabled(const char *name)
{
    const char *value = std::getenv(name);
    return value != nullptr && *value != '\0' &&
           std::string(value) != "0";
}

} // namespace

std::atomic<bool> metricsOn{envEnabled("BXT_METRICS")};

} // namespace detail

namespace {

/**
 * The process-wide registry. std::map keeps instruments name-sorted so
 * snapshots are deterministic; unique_ptr keeps instrument addresses
 * stable across rehash-free inserts (call sites cache references).
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histo>> histos;
};

Registry &
registry()
{
    static Registry *instance = new Registry(); // Never destroyed:
    // instruments may be touched from atexit trace flushing.
    return *instance;
}

} // namespace

void
setMetricsEnabled(bool on)
{
    detail::metricsOn.store(on, std::memory_order_relaxed);
}

Histo::Histo(std::string name)
    : name_(std::move(name)), counts_(numBuckets)
{
    for (auto &count : counts_)
        count.store(0, std::memory_order_relaxed);
}

double
Histo::quantile(double q) const
{
    const std::uint64_t n = total();
    if (n == 0)
        return 0.0;
    double target = q * static_cast<double>(n);
    if (target < 1.0)
        target = 1.0;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        const std::uint64_t c = bucketCount(i);
        if (c > 0 && static_cast<double>(cum + c) >= target) {
            const double lo =
                static_cast<double>(bucketLowerBound(i));
            const double width = static_cast<double>(bucketWidth(i));
            // target lands on the k-th sample of this bucket (1-based);
            // interpolate from the bucket's lower edge so an exact hit
            // on a single-sample bucket returns that sample's value.
            const double frac =
                (target - static_cast<double>(cum) - 1.0) /
                static_cast<double>(c);
            double value = lo + width * frac;
            value = std::min(value, static_cast<double>(max()));
            value = std::max(value, static_cast<double>(min()));
            return value;
        }
        cum += c;
    }
    return static_cast<double>(max());
}

void
Histo::reset()
{
    for (auto &count : counts_)
        count.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

std::string
sanitizeMetricName(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '+') {
            out += '-';
        } else if (c == '|') {
            out += "__";
        } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                   (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                   c == '-') {
            out += c;
        } else {
            out += '_';
        }
    }
    return out;
}

Counter &
counter(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.counters[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>(name);
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.gauges[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>(name);
    return *slot;
}

Histo &
histogram(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.histos[name];
    if (slot == nullptr)
        slot = std::make_unique<Histo>(name);
    return *slot;
}

void
forEachCounter(const std::function<void(const Counter &)> &fn)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &[name, instrument] : reg.counters)
        fn(*instrument);
}

void
forEachGauge(const std::function<void(const Gauge &)> &fn)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &[name, instrument] : reg.gauges)
        fn(*instrument);
}

void
forEachHisto(const std::function<void(const Histo &)> &fn)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &[name, instrument] : reg.histos)
        fn(*instrument);
}

void
resetForTest()
{
    Registry &reg = registry();
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (auto &[name, instrument] : reg.counters)
            instrument->reset();
        for (auto &[name, instrument] : reg.gauges)
            instrument->reset();
        for (auto &[name, instrument] : reg.histos)
            instrument->reset();
    }
    clearTraceBuffer();
    clearServerSpans();
}

} // namespace bxt::telemetry
