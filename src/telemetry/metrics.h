/**
 * @file
 * Thread-safe metrics registries: monotonic counters, gauges, and
 * log-bucketed HDR-style histograms, addressed by hierarchical names
 * following the `bxt.<layer>.<name>` convention (DESIGN.md §9).
 *
 * Registries are instantiable (DESIGN.md §14): the process keeps one
 * `defaultRegistry()`, and subsystems that want isolated instrument sets
 * — the bxtd shards, each owning a private registry merged on Stats —
 * construct their own `Registry` and install it per-thread with
 * `ScopedRegistry`. The free `counter()/gauge()/histogram()` lookups and
 * the `forEach*` visitors resolve against `currentRegistry()` (the
 * thread's installed registry, falling back to the default), so existing
 * instrumentation call sites transparently record into whichever
 * registry owns the calling thread. Registries of the same shape merge
 * instrument-wise (`Registry::mergeFrom`): counters and gauges add,
 * histograms sum their sparse HDR buckets bucket-wise.
 *
 * Zero-cost-when-off contract: instrumentation is compiled in
 * unconditionally but gated behind `metricsEnabled()` — a single relaxed
 * atomic load — so the tier-1 throughput numbers are unaffected when
 * `BXT_METRICS` is unset. When enabled, the record paths are lock-free
 * relaxed atomics; only registration (first lookup of a name) takes the
 * registry mutex, and hot call sites cache the returned reference.
 */

#ifndef BXT_TELEMETRY_METRICS_H
#define BXT_TELEMETRY_METRICS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bxt::telemetry {

namespace detail {
/** Global gate; initialized from BXT_METRICS, flipped programmatically. */
extern std::atomic<bool> metricsOn;
} // namespace detail

/**
 * True when metric recording is active (BXT_METRICS=1 or programmatic).
 * Constant-false under -DBXT_TELEMETRY=OFF so every gated call site
 * folds away (the baseline the metrics CI job measures against).
 */
inline bool
metricsEnabled()
{
#ifdef BXT_NO_TELEMETRY
    return false;
#else
    return detail::metricsOn.load(std::memory_order_relaxed);
#endif
}

/** Programmatic enable/disable (overrides the environment). */
void setMetricsEnabled(bool on);

/**
 * Zero every instrument of the default registry and clear the span and
 * trace buffers. Registered instruments stay registered (call sites
 * hold references). Shard-private registries are untouched — they die
 * with their owner. Test-only.
 */
void resetForTest();

/**
 * Map an arbitrary identifier (codec spec, app name) into a metric-name
 * segment: '+' -> '-', '|' -> "__", anything outside [A-Za-z0-9_.-]
 * -> '_'. "universal3+zdr|dbi4" becomes "universal3-zdr__dbi4".
 */
std::string sanitizeMetricName(const std::string &text);

/** Monotonic 64-bit counter. */
class Counter
{
  public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void add(std::uint64_t n = 1)
    {
        if (!metricsEnabled())
            return;
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Ungated add for registry merging (export path, not hot path). */
    void mergeAdd(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins floating-point gauge. */
class Gauge
{
  public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    void set(double v)
    {
        if (!metricsEnabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

    /**
     * Ungated accumulate for registry merging: shard gauges add on
     * merge (active connections sum to fleet totals; see DESIGN.md §14
     * for the stale-per-stream-gauge caveat).
     */
    void mergeAdd(double v)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + v,
                                             std::memory_order_relaxed)) {
        }
    }

    const std::string &name() const { return name_; }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::atomic<double> value_{0.0};
};

/**
 * Log-bucketed HDR-style histogram with atomic per-bucket counts, for
 * non-negative integer-valued samples (durations in µs, batch sizes).
 * Values below 32 land in exact unit-width buckets; above that, each
 * power-of-two octave is split into 32 sub-buckets, bounding the
 * relative quantization error at 1/32 (~3%) across the whole range.
 * With 1024 fixed buckets the histogram tracks values up to 2^36-1
 * (larger samples clamp into the top bucket) — no registration-time
 * range choice, so one shape fits every instrument and quantile
 * estimation (p50/p95/p99/p999) needs no a-priori bounds.
 */
class Histo
{
  public:
    /** log2 of sub-buckets per octave; bounds relative error at 2^-5. */
    static constexpr std::size_t subBucketBits = 5;
    static constexpr std::size_t subBuckets = std::size_t{1}
                                              << subBucketBits;
    /** Fixed bucket count: 32 exact + 31 octaves x 32 sub-buckets. */
    static constexpr std::size_t numBuckets = 1024;

    explicit Histo(std::string name);

    /** Bucket index holding @p v (clamped into the top bucket). */
    static std::size_t bucketIndexOf(std::uint64_t v)
    {
        if (v < subBuckets)
            return static_cast<std::size_t>(v);
        const std::size_t octave =
            static_cast<std::size_t>(std::bit_width(v)) - 1 -
            subBucketBits;
        const std::size_t sub =
            static_cast<std::size_t>(v >> octave) & (subBuckets - 1);
        const std::size_t index =
            subBuckets + octave * subBuckets + sub;
        return index < numBuckets ? index : numBuckets - 1;
    }

    /** Smallest value mapping to bucket @p index. */
    static std::uint64_t bucketLowerBound(std::size_t index)
    {
        if (index < subBuckets)
            return index;
        const std::size_t octave = (index - subBuckets) / subBuckets;
        const std::size_t sub = (index - subBuckets) % subBuckets;
        return static_cast<std::uint64_t>(subBuckets + sub) << octave;
    }

    /** Number of distinct values mapping to bucket @p index. */
    static std::uint64_t bucketWidth(std::size_t index)
    {
        if (index < subBuckets)
            return 1;
        return std::uint64_t{1} << ((index - subBuckets) / subBuckets);
    }

    /** Record one integer sample. */
    void record(std::uint64_t v)
    {
        if (!metricsEnabled())
            return;
        counts_[bucketIndexOf(v)].fetch_add(1,
                                            std::memory_order_relaxed);
        total_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        std::uint64_t cur = min_.load(std::memory_order_relaxed);
        while (v < cur && !min_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
        cur = max_.load(std::memory_order_relaxed);
        while (v > cur && !max_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }

    /** Record a double sample, rounded (negatives clamp to 0). */
    void add(double sample)
    {
        if (!metricsEnabled())
            return;
        record(sample <= 0.0 ? 0
                             : static_cast<std::uint64_t>(sample + 0.5));
    }

    const std::string &name() const { return name_; }
    std::size_t buckets() const { return numBuckets; }

    std::uint64_t bucketCount(std::size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    std::uint64_t total() const
    {
        return total_.load(std::memory_order_relaxed);
    }

    /** Sum of all (rounded) samples. */
    double sum() const
    {
        return static_cast<double>(
            sum_.load(std::memory_order_relaxed));
    }

    /** Mean sample, 0 when empty. */
    double mean() const
    {
        const std::uint64_t n = total();
        return n == 0 ? 0.0 : sum() / static_cast<double>(n);
    }

    /** Smallest / largest recorded sample (0 when empty). */
    std::uint64_t min() const
    {
        const std::uint64_t v = min_.load(std::memory_order_relaxed);
        return v == ~std::uint64_t{0} ? 0 : v;
    }
    std::uint64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    /**
     * Estimated q-quantile (q in [0,1]), linearly interpolated within
     * the holding bucket and clamped to [min, max]. 0 when empty.
     */
    double quantile(double q) const;

    /**
     * Fold @p other into this histogram: sparse HDR buckets sum
     * bucket-wise (never concatenate — both sides share the fixed
     * bucket geometry), totals and sums add, min/max widen. Quantiles
     * of the merged histogram match a histogram that recorded both
     * sample sets directly (the shard-merge invariant pinned by
     * tests/test_telemetry.cpp).
     */
    void mergeFrom(const Histo &other);

    void reset();

  private:
    std::string name_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * One instrument set: name-sorted maps of counters, gauges, and
 * histograms behind a registration mutex. std::map keeps snapshots
 * deterministic; unique_ptr keeps instrument addresses stable so call
 * sites may cache references for the registry's lifetime.
 *
 * The process-wide `defaultRegistry()` lives forever; additional
 * registries (one per bxtd shard) are plain objects whose instruments
 * die with them — holders of cached references must not outlive the
 * registry that issued them.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Look up or create an instrument. References stay valid for the
     * registry's lifetime; hot paths call once and cache.
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histo &histogram(const std::string &name);

    /** Visit every instrument in name order (snapshot export). */
    void forEachCounter(const std::function<void(const Counter &)> &fn) const;
    void forEachGauge(const std::function<void(const Gauge &)> &fn) const;
    void forEachHisto(const std::function<void(const Histo &)> &fn) const;

    /**
     * Fold every instrument of @p other into this registry: counters
     * and gauges add onto the same-named instrument here (creating it
     * if absent), histograms merge bucket-wise (Histo::mergeFrom).
     * @p rename, when non-null, maps each source name to the
     * destination name — returning an empty string skips the
     * instrument. This is the Stats/Snapshot union: bxtd merges its
     * shard registries into a scratch registry, once verbatim for
     * fleet totals and once renamed under `bxt.server.shard.<i>.*`
     * for the per-shard breakdown.
     *
     * Safe against concurrent recording into @p other (instrument
     * reads are relaxed atomics), but not against concurrent
     * mutation of this registry; merge targets are expected private.
     */
    void mergeFrom(
        const Registry &other,
        const std::function<std::string(const std::string &)> &rename =
            nullptr);

    /** Zero every instrument (registrations persist). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histo>> histos_;
};

/** The process-wide registry (never destroyed). */
Registry &defaultRegistry();

/**
 * The registry the calling thread records into: the innermost
 * ScopedRegistry installed on this thread, or defaultRegistry().
 */
Registry &currentRegistry();

/**
 * RAII thread-local registry override. A bxtd shard thread installs its
 * private registry at the top of its event loop, so every free-function
 * lookup below — including the ones buried in codec and service
 * instrumentation — lands in the shard's registry for the scope's
 * lifetime. Nests; restores the previous override on destruction.
 */
class ScopedRegistry
{
  public:
    explicit ScopedRegistry(Registry &registry);
    ~ScopedRegistry();
    ScopedRegistry(const ScopedRegistry &) = delete;
    ScopedRegistry &operator=(const ScopedRegistry &) = delete;

  private:
    Registry *previous_;
};

/**
 * Look up or create an instrument in currentRegistry(). References stay
 * valid for that registry's lifetime; hot paths call once and cache
 * (only safe against the default registry or one the caller owns).
 */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histo &histogram(const std::string &name);

/** Visit every currentRegistry() instrument in name order. */
void forEachCounter(const std::function<void(const Counter &)> &fn);
void forEachGauge(const std::function<void(const Gauge &)> &fn);
void forEachHisto(const std::function<void(const Histo &)> &fn);

} // namespace bxt::telemetry

#endif // BXT_TELEMETRY_METRICS_H
