/**
 * @file
 * Process-wide, thread-safe metrics registry: monotonic counters, gauges,
 * and fixed-bucket histograms, addressed by hierarchical names following
 * the `bxt.<layer>.<name>` convention (DESIGN.md §9).
 *
 * Zero-cost-when-off contract: instrumentation is compiled in
 * unconditionally but gated behind `metricsEnabled()` — a single relaxed
 * atomic load — so the tier-1 throughput numbers are unaffected when
 * `BXT_METRICS` is unset. When enabled, the record paths are lock-free
 * relaxed atomics; only registration (first lookup of a name) takes the
 * registry mutex, and hot call sites cache the returned reference.
 */

#ifndef BXT_TELEMETRY_METRICS_H
#define BXT_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace bxt::telemetry {

namespace detail {
/** Global gate; initialized from BXT_METRICS, flipped programmatically. */
extern std::atomic<bool> metricsOn;
} // namespace detail

/**
 * True when metric recording is active (BXT_METRICS=1 or programmatic).
 * Constant-false under -DBXT_TELEMETRY=OFF so every gated call site
 * folds away (the baseline the metrics CI job measures against).
 */
inline bool
metricsEnabled()
{
#ifdef BXT_NO_TELEMETRY
    return false;
#else
    return detail::metricsOn.load(std::memory_order_relaxed);
#endif
}

/** Programmatic enable/disable (overrides the environment). */
void setMetricsEnabled(bool on);

/**
 * Zero every registered instrument and clear the span buffer. Registered
 * instruments stay registered (call sites hold references). Test-only.
 */
void resetForTest();

/**
 * Map an arbitrary identifier (codec spec, app name) into a metric-name
 * segment: '+' -> '-', '|' -> "__", anything outside [A-Za-z0-9_.-]
 * -> '_'. "universal3+zdr|dbi4" becomes "universal3-zdr__dbi4".
 */
std::string sanitizeMetricName(const std::string &text);

/** Monotonic 64-bit counter. */
class Counter
{
  public:
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void add(std::uint64_t n = 1)
    {
        if (!metricsEnabled())
            return;
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins floating-point gauge. */
class Gauge
{
  public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    void set(double v)
    {
        if (!metricsEnabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    double value() const { return value_.load(std::memory_order_relaxed); }
    const std::string &name() const { return name_; }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::string name_;
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-range, uniformly bucketed histogram with atomic per-bucket
 * counts. Bucket-edge and clamp math is delegated to the existing
 * `common/histogram` (Histogram::bucketIndex), so the telemetry view and
 * the figure-plot histograms agree on semantics.
 */
class Histo
{
  public:
    Histo(std::string name, double lo, double hi, std::size_t buckets);

    void add(double sample)
    {
        if (!metricsEnabled())
            return;
        counts_[edges_.bucketIndex(sample)].fetch_add(
            1, std::memory_order_relaxed);
        total_.fetch_add(1, std::memory_order_relaxed);
        // Sum tracked in fixed-point microunits to stay lock-free
        // without atomic<double> RMW loops.
        sum_micro_.fetch_add(static_cast<std::int64_t>(sample * 1.0e6),
                             std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }
    double lo() const { return edges_.bucketLo(0); }
    double hi() const { return edges_.bucketHi(edges_.buckets() - 1); }
    std::size_t buckets() const { return counts_.size(); }
    double bucketLo(std::size_t i) const { return edges_.bucketLo(i); }
    double bucketHi(std::size_t i) const { return edges_.bucketHi(i); }

    std::uint64_t bucketCount(std::size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    std::uint64_t total() const
    {
        return total_.load(std::memory_order_relaxed);
    }

    /** Sum of all samples (microunit-resolution). */
    double sum() const
    {
        return static_cast<double>(
                   sum_micro_.load(std::memory_order_relaxed)) /
               1.0e6;
    }

    /** Mean sample, 0 when empty. */
    double mean() const
    {
        const std::uint64_t n = total();
        return n == 0 ? 0.0 : sum() / static_cast<double>(n);
    }

    void reset();

  private:
    std::string name_;
    Histogram edges_; ///< Edge/clamp math only; its counts stay empty.
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::int64_t> sum_micro_{0};
};

/**
 * Look up or create an instrument by name. References stay valid for the
 * process lifetime; hot paths call once and cache. Re-registering a
 * histogram name with different bounds keeps the original bounds.
 */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histo &histogram(const std::string &name, double lo, double hi,
                 std::size_t buckets);

/** Visit every registered instrument in name order (snapshot export). */
void forEachCounter(const std::function<void(const Counter &)> &fn);
void forEachGauge(const std::function<void(const Gauge &)> &fn);
void forEachHisto(const std::function<void(const Histo &)> &fn);

} // namespace bxt::telemetry

#endif // BXT_TELEMETRY_METRICS_H
