#include "telemetry/snapshot.h"

#include <fstream>

#include "common/json.h"
#include "telemetry/metrics.h"

namespace bxt::telemetry {

std::string
snapshotJson(bool pretty)
{
    JsonWriter w(pretty);
    w.beginObject();
    w.kv("schema", snapshotSchema);
    w.kv("enabled", metricsEnabled());

    w.beginObject("counters");
    forEachCounter([&](const Counter &c) { w.kv(c.name(), c.value()); });
    w.endObject();

    w.beginObject("gauges");
    forEachGauge([&](const Gauge &g) { w.kv(g.name(), g.value()); });
    w.endObject();

    w.beginObject("histograms");
    forEachHisto([&](const Histo &h) {
        w.beginObject(h.name());
        w.kv("lo", h.lo());
        w.kv("hi", h.hi());
        w.kv("total", h.total());
        w.kv("sum", h.sum());
        w.kv("mean", h.mean());
        w.beginArray("counts");
        for (std::size_t i = 0; i < h.buckets(); ++i)
            w.value(h.bucketCount(i));
        w.endArray();
        w.endObject();
    });
    w.endObject();

    w.endObject();
    return w.str();
}

bool
writeSnapshot(const std::string &path)
{
    if (!metricsEnabled())
        return false;
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << snapshotJson() << '\n';
    return out.good();
}

} // namespace bxt::telemetry
