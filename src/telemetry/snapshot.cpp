#include "telemetry/snapshot.h"

#include <cstdio>
#include <fstream>

#include "common/json.h"
#include "telemetry/metrics.h"

namespace bxt::telemetry {

std::string
snapshotJson(bool pretty)
{
    return snapshotJson(currentRegistry(), pretty);
}

std::string
snapshotJson(const Registry &registry, bool pretty)
{
    JsonWriter w(pretty);
    w.beginObject();
    w.kv("schema", snapshotSchema);
    w.kv("enabled", metricsEnabled());

    w.beginObject("counters");
    registry.forEachCounter(
        [&](const Counter &c) { w.kv(c.name(), c.value()); });
    w.endObject();

    w.beginObject("gauges");
    registry.forEachGauge(
        [&](const Gauge &g) { w.kv(g.name(), g.value()); });
    w.endObject();

    w.beginObject("histograms");
    registry.forEachHisto([&](const Histo &h) {
        w.beginObject(h.name());
        w.kv("kind", "hdr");
        w.kv("sub_bucket_bits",
             static_cast<std::uint64_t>(Histo::subBucketBits));
        w.kv("total", h.total());
        w.kv("sum", h.sum());
        w.kv("mean", h.mean());
        w.kv("min", h.min());
        w.kv("max", h.max());
        w.kv("p50", h.quantile(0.50));
        w.kv("p95", h.quantile(0.95));
        w.kv("p99", h.quantile(0.99));
        w.kv("p999", h.quantile(0.999));
        w.beginArray("buckets");
        for (std::size_t i = 0; i < h.buckets(); ++i) {
            const std::uint64_t count = h.bucketCount(i);
            if (count == 0)
                continue;
            w.beginArray();
            w.value(static_cast<std::uint64_t>(i));
            w.value(count);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    });
    w.endObject();

    w.endObject();
    return w.str();
}

bool
writeSnapshot(const std::string &path)
{
    if (!metricsEnabled())
        return false;
    // Write-then-rename so a SIGTERM mid-dump (the bxtd drain path)
    // cannot leave a truncated document at the published path.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << snapshotJson() << '\n';
        if (!out.good())
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace bxt::telemetry
