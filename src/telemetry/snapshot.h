/**
 * @file
 * JSON metrics-snapshot exporter. The snapshot is a stable, versioned
 * document (schema 1):
 *
 *   {
 *     "schema": 1,
 *     "enabled": true,
 *     "counters":   {"bxt.bus.data_ones": 123, ...},
 *     "gauges":     {"bxt.pool.threads": 8, ...},
 *     "histograms": {"bxt.pool.task_us":
 *                      {"lo": 0, "hi": 5000, "total": 42, "sum": 99.5,
 *                       "mean": 2.37, "counts": [ ... ]}, ...}
 *   }
 *
 * Instruments appear in name order, so two snapshots of the same run are
 * byte-identical and snapshots of different runs diff cleanly
 * (`tools/bxt_report --diff`). The benches embed this object under the
 * "metrics" key of their unified `--json` output.
 */

#ifndef BXT_TELEMETRY_SNAPSHOT_H
#define BXT_TELEMETRY_SNAPSHOT_H

#include <string>

namespace bxt::telemetry {

/** Snapshot document version ("schema" field). */
constexpr int snapshotSchema = 1;

/**
 * Render the registry as a snapshot JSON object. Always returns a valid
 * document; with metrics disabled it reports "enabled": false over the
 * (all-zero) registry. @p pretty selects indented vs one-line output.
 */
std::string snapshotJson(bool pretty = true);

/**
 * Write the snapshot to @p path. A disabled registry is not exported:
 * returns false without creating the file (the exporter no-op guarantee
 * tested by tests/test_telemetry.cpp). Also false on I/O failure.
 */
bool writeSnapshot(const std::string &path);

} // namespace bxt::telemetry

#endif // BXT_TELEMETRY_SNAPSHOT_H
