/**
 * @file
 * JSON metrics-snapshot exporter. The snapshot is a stable, versioned
 * document (schema 2):
 *
 *   {
 *     "schema": 2,
 *     "enabled": true,
 *     "counters":   {"bxt.bus.data_ones": 123, ...},
 *     "gauges":     {"bxt.pool.threads": 8, ...},
 *     "histograms": {"bxt.pool.task_us":
 *                      {"kind": "hdr", "sub_bucket_bits": 5,
 *                       "total": 42, "sum": 99, "mean": 2.37,
 *                       "min": 1, "max": 17,
 *                       "p50": 2.1, "p95": 9.8, "p99": 15.0,
 *                       "p999": 16.9,
 *                       "buckets": [[2, 31], [9, 11]]}, ...}
 *   }
 *
 * Histograms are the log-bucketed HDR instruments of telemetry/metrics;
 * "buckets" lists only non-empty [index, count] pairs — the index maps
 * back to a value range via Histo::bucketLowerBound/bucketWidth with the
 * advertised sub_bucket_bits, which is how bxt_top reconstructs windowed
 * quantiles from bucket deltas between polls.
 *
 * Instruments appear in name order, so two snapshots of the same run are
 * byte-identical and snapshots of different runs diff cleanly
 * (`tools/bxt_report --diff`). The benches embed this object under the
 * "metrics" key of their unified `--json` output.
 */

#ifndef BXT_TELEMETRY_SNAPSHOT_H
#define BXT_TELEMETRY_SNAPSHOT_H

#include <string>

namespace bxt::telemetry {

class Registry;

/** Snapshot document version ("schema" field). */
constexpr int snapshotSchema = 2;

/**
 * Render the calling thread's current registry as a snapshot JSON
 * object. Always returns a valid document; with metrics disabled it
 * reports "enabled": false over the (all-zero) registry. @p pretty
 * selects indented vs one-line output.
 */
std::string snapshotJson(bool pretty = true);

/**
 * Render a specific registry — the bxtd Stats/Snapshot path points this
 * at the scratch registry holding the merged shard union.
 */
std::string snapshotJson(const Registry &registry, bool pretty);

/**
 * Write the snapshot to @p path, atomically: the document lands in
 * `path + ".tmp"` first and is renamed into place, so a signal or crash
 * mid-dump can never leave a truncated snapshot at @p path. A disabled
 * registry is not exported: returns false without creating the file
 * (the exporter no-op guarantee tested by tests/test_telemetry.cpp).
 * Also false on I/O failure.
 */
bool writeSnapshot(const std::string &path);

} // namespace bxt::telemetry

#endif // BXT_TELEMETRY_SNAPSHOT_H
