#include "telemetry/spanring.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>

#include "common/json.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace bxt::telemetry {

const char *
serverPhaseName(ServerPhase phase)
{
    switch (phase) {
    case ServerPhase::Request: return "request";
    case ServerPhase::Parse: return "parse";
    case ServerPhase::QueueWait: return "queue_wait";
    case ServerPhase::Codec: return "codec";
    case ServerPhase::Reply: return "reply";
    }
    return "unknown";
}

namespace {

/** Pack the non-u64 span fields into one word (word[4]). */
std::uint64_t
packMisc(const ServerSpan &span)
{
    return static_cast<std::uint64_t>(span.phase) |
           (static_cast<std::uint64_t>(span.opcode) << 8) |
           (static_cast<std::uint64_t>(span.streamId) << 16) |
           (static_cast<std::uint64_t>(span.tid) << 32);
}

void
unpackMisc(std::uint64_t misc, ServerSpan &span)
{
    span.phase = static_cast<ServerPhase>(misc & 0xff);
    span.opcode = static_cast<std::uint8_t>((misc >> 8) & 0xff);
    span.streamId = static_cast<std::uint16_t>((misc >> 16) & 0xffff);
    span.tid = static_cast<std::uint32_t>(misc >> 32);
}

} // namespace

void
SpanRing::push(const ServerSpan &span)
{
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot &slot = slots_[h & (capacity - 1)];
    // Seqlock write: odd (2h+1) marks in-progress, even (2h+2) marks the
    // slot as holding generation h; a collector bumps a slot it consumed
    // to 2h+3. The exchange arbitrates drop accounting with a racing
    // collector: exactly one side owns each span, so overwriting a slot
    // still at its published (un-consumed) value counts as a drop here,
    // while a slot the collector claimed does not. Fence-free form
    // (GCC's -Wtsan rejects atomic_thread_fence under ThreadSanitizer):
    // each payload store is a release, which keeps the odd mark ordered
    // before it, and the final even store is a release over all of them.
    const std::uint64_t prev =
        slot.seq.exchange(2 * h + 1, std::memory_order_relaxed);
    if (h >= capacity && prev == 2 * (h - capacity) + 2)
        dropped_.fetch_add(1, std::memory_order_relaxed);
    slot.word[0].store(span.traceId, std::memory_order_release);
    slot.word[1].store(span.spanId, std::memory_order_release);
    slot.word[2].store(span.startUs, std::memory_order_release);
    slot.word[3].store(span.durUs, std::memory_order_release);
    slot.word[4].store(packMisc(span), std::memory_order_release);
    slot.word[5].store(span.txCount, std::memory_order_release);
    slot.seq.store(2 * h + 2, std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
}

std::size_t
SpanRing::drainInto(std::vector<ServerSpan> &out)
{
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    // Anything older than one capacity behind head was overwritten (the
    // producer counted those drops when it evicted them).
    if (head - tail > capacity)
        tail = head - capacity;

    std::size_t appended = 0;
    for (std::uint64_t i = tail; i < head; ++i) {
        Slot &slot = slots_[i & (capacity - 1)];
        std::uint64_t want = 2 * i + 2;
        if (slot.seq.load(std::memory_order_acquire) != want)
            continue; // Overwritten by a racing producer; counted there.
        // Acquire payload loads pin the claiming CAS below after them
        // (an acquire load forbids later operations from moving ahead
        // of it), replacing the classic seqlock acquire fence.
        ServerSpan span;
        span.traceId = slot.word[0].load(std::memory_order_acquire);
        span.spanId = slot.word[1].load(std::memory_order_acquire);
        span.startUs = slot.word[2].load(std::memory_order_acquire);
        span.durUs = slot.word[3].load(std::memory_order_acquire);
        unpackMisc(slot.word[4].load(std::memory_order_acquire), span);
        span.txCount = static_cast<std::uint32_t>(
            slot.word[5].load(std::memory_order_acquire));
        // Claim the span by marking the slot consumed (2i+3). A failed
        // CAS means the producer started overwriting it mid-read — it
        // saw the published value in its exchange and counted the drop,
        // so discarding here keeps the accounting exact either way.
        if (!slot.seq.compare_exchange_strong(want, want + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed))
            continue;
        out.push_back(span);
        ++appended;
    }
    tail_.store(head, std::memory_order_relaxed);
    return appended;
}

void
SpanRing::reset()
{
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    for (Slot &slot : slots_)
        slot.seq.store(0, std::memory_order_relaxed);
}

namespace {

/** All rings ever registered; rings outlive their producer threads. */
struct RingRegistry
{
    std::mutex mutex;
    std::vector<std::unique_ptr<SpanRing>> rings;
    /** Accumulated merged spans for writeServerSpanTrace. */
    std::vector<ServerSpan> merged;
    std::uint64_t mergedOverflow = 0;
};

/** Bound on the merged export buffer (matches traceBufferCap). */
constexpr std::size_t mergedCap = 1u << 20;

RingRegistry &
ringRegistry()
{
    // Never destroyed: worker threads may still push while static
    // destructors run.
    static RingRegistry *instance = new RingRegistry();
    return *instance;
}

SpanRing &
threadRing()
{
    thread_local SpanRing *ring = nullptr;
    if (ring == nullptr) {
        auto owned = std::make_unique<SpanRing>();
        ring = owned.get();
        RingRegistry &reg = ringRegistry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.rings.push_back(std::move(owned));
    }
    return *ring;
}

} // namespace

void
recordServerSpan(const ServerSpan &span)
{
    // Pinned to the default registry: the function-local statics bind
    // on the first record, which may happen on a shard thread whose
    // private registry dies with its Server — the default registry is
    // the only one guaranteed to outlive every recording thread.
    static Counter &recorded =
        defaultRegistry().counter("bxt.server.spans_recorded");
    static Counter &dropped =
        defaultRegistry().counter("bxt.server.spans_dropped");
    SpanRing &ring = threadRing();
    const std::uint64_t drops_before = ring.dropped();
    ring.push(span);
    recorded.add(1);
    const std::uint64_t evicted = ring.dropped() - drops_before;
    if (evicted > 0)
        dropped.add(evicted);
}

std::vector<ServerSpan>
collectServerSpans()
{
    std::vector<ServerSpan> spans;
    RingRegistry &reg = ringRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &ring : reg.rings)
        ring->drainInto(spans);
    return spans;
}

std::uint64_t
serverSpansRecorded()
{
    std::uint64_t total = 0;
    RingRegistry &reg = ringRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &ring : reg.rings)
        total += ring->pushed();
    return total;
}

std::uint64_t
serverSpansDropped()
{
    std::uint64_t total = 0;
    RingRegistry &reg = ringRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &ring : reg.rings)
        total += ring->dropped();
    return total;
}

void
clearServerSpans()
{
    RingRegistry &reg = ringRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &ring : reg.rings)
        ring->reset();
    reg.merged.clear();
    reg.mergedOverflow = 0;
}

bool
writeServerSpanTrace(const std::string &path)
{
    if (path.empty())
        return false;

    RingRegistry &reg = ringRegistry();
    std::uint64_t dropped_total = 0;
    std::vector<ServerSpan> snapshot;
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        std::vector<ServerSpan> fresh;
        for (const auto &ring : reg.rings) {
            ring->drainInto(fresh);
            dropped_total += ring->dropped();
        }
        for (ServerSpan &span : fresh) {
            if (reg.merged.size() >= mergedCap) {
                ++reg.mergedOverflow;
                continue;
            }
            reg.merged.push_back(span);
        }
        dropped_total += reg.mergedOverflow;
        snapshot = reg.merged;
    }

    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.beginArray("traceEvents");
    for (const ServerSpan &span : snapshot) {
        char trace_hex[20];
        std::snprintf(trace_hex, sizeof(trace_hex), "%016llx",
                      static_cast<unsigned long long>(span.traceId));
        w.beginObject();
        w.kv("name", serverPhaseName(span.phase));
        w.kv("cat", "bxt.server");
        w.kv("ph", "X");
        w.kv("ts", span.startUs);
        w.kv("dur", span.durUs);
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::uint64_t>(span.tid));
        w.beginObject("args");
        w.kv("trace_id", trace_hex);
        w.kv("span_id", span.spanId);
        w.kv("stream", static_cast<std::uint64_t>(span.streamId));
        w.kv("op", static_cast<std::uint64_t>(span.opcode));
        w.kv("txs", static_cast<std::uint64_t>(span.txCount));
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.kv("displayTimeUnit", "ms");
    w.beginObject("otherData");
    w.kv("droppedSpans", dropped_total);
    w.kv("tool", "bxt");
    w.endObject();
    w.endObject();

    // Atomic publish: a SIGTERM-time flush interrupted mid-write must
    // not leave a truncated trace behind the final rename.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        out << w.str() << '\n';
        if (!out.good())
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace bxt::telemetry
