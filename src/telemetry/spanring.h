/**
 * @file
 * Lock-free per-worker span rings for server-side request tracing
 * (DESIGN.md §9). Each worker thread records the lifecycle phases of a
 * sampled request — parse, queue wait, codec, reply — into its own
 * fixed-capacity single-producer ring. Rings overwrite their oldest
 * entry when full (drop-oldest) and count every overwritten-uncollected
 * span, so a slow exporter degrades visibility, never the serving path.
 *
 * The producer side is wait-free: one relaxed head bump plus a
 * seqlock-versioned slot write, all on atomics (ThreadSanitizer-clean).
 * Collection (`collectServerSpans`) merges every ring on demand under a
 * registry mutex, validating each slot's sequence number so a span being
 * overwritten mid-read is discarded and counted, never torn.
 *
 * Spans are recorded only for requests whose wire trace context carries
 * the sampled bit, so an untraced workload pays nothing on this path.
 */

#ifndef BXT_TELEMETRY_SPANRING_H
#define BXT_TELEMETRY_SPANRING_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bxt::telemetry {

/** Lifecycle phase of a server-side request span. */
enum class ServerPhase : std::uint8_t {
    Request = 0,   ///< Whole request: first byte fed to reply written.
    Parse = 1,     ///< Frame extraction + validation.
    QueueWait = 2, ///< Buffered bytes waiting for the worker loop.
    Codec = 3,     ///< Service dispatch (batch encode/decode).
    Reply = 4,     ///< Serialization + socket write of the response.
};

/** Stable lower-case phase token (Chrome-trace event name). */
const char *serverPhaseName(ServerPhase phase);

/** One recorded server-side span of a sampled request. */
struct ServerSpan
{
    std::uint64_t traceId = 0; ///< Wire trace context id.
    std::uint64_t spanId = 0;  ///< Client span id (trace-block spanId).
    std::uint64_t startUs = 0; ///< telemetry::nowMicros() at phase start.
    std::uint64_t durUs = 0;   ///< Phase duration, microseconds.
    ServerPhase phase = ServerPhase::Request;
    std::uint8_t opcode = 0;       ///< Wire opcode of the request.
    std::uint16_t streamId = 0;    ///< Tenant/stream tag (0 = none).
    std::uint32_t tid = 0;         ///< telemetry::currentThreadId().
    std::uint32_t txCount = 0;     ///< Transactions in the request body.

    bool operator==(const ServerSpan &other) const = default;
};

/**
 * Single-producer span ring. One instance per recording thread; the
 * producer thread is the only writer, collection may run concurrently
 * from any thread. Capacity is fixed; a full ring overwrites its oldest
 * entry and the overwritten span counts as dropped unless it was already
 * collected.
 */
class SpanRing
{
  public:
    /** Slots per ring (power of two). */
    static constexpr std::size_t capacity = 4096;

    /** Record @p span; wait-free, producer thread only. */
    void push(const ServerSpan &span);

    /** Spans ever pushed into this ring. */
    std::uint64_t pushed() const
    {
        return head_.load(std::memory_order_relaxed);
    }

    /** Spans overwritten before any collector read them. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /**
     * Append every un-collected, still-resident span to @p out in push
     * order and advance the collect cursor. Returns the number of spans
     * appended. Safe against a concurrently pushing producer: slots
     * overwritten mid-read are skipped (their loss shows up in
     * dropped()). Collectors must serialize among themselves — the
     * registry-level collectServerSpans() does.
     */
    std::size_t drainInto(std::vector<ServerSpan> &out);

    /** Test-only: forget everything (no concurrent producer allowed). */
    void reset();

  private:
    struct Slot
    {
        /**
         * 2·index+1 while the producer writes, 2·index+2 once published,
         * 2·index+3 after a collector consumed the span. The producer's
         * overwrite exchange and the collector's consuming CAS arbitrate
         * on this word, so exactly one side accounts for every span.
         */
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> word[6];
    };

    Slot slots_[capacity];
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> dropped_{0};
    /** First push index not yet collected (collector-side cursor). */
    std::atomic<std::uint64_t> tail_{0};
};

/**
 * Record @p span into the calling thread's ring, registering the ring on
 * first use. Also bumps the `bxt.server.spans_recorded` counter (and
 * `bxt.server.spans_dropped` when the push evicts an uncollected span).
 */
void recordServerSpan(const ServerSpan &span);

/**
 * Merge-drain every registered ring (push order per ring) into one
 * vector. Each span is returned exactly once across calls.
 */
std::vector<ServerSpan> collectServerSpans();

/** Total spans recorded / dropped across all rings since process start. */
std::uint64_t serverSpansRecorded();
std::uint64_t serverSpansDropped();

/** Test-only: drop all buffered spans and zero the counters. */
void clearServerSpans();

/**
 * Drain the rings and append the collected spans to the merged export
 * buffer, then write the whole buffer as a Chrome trace-event JSON file
 * (same shape as telemetry::writeTrace: complete "X" events with
 * trace/span/stream ids in args, droppedSpans in otherData). The write
 * is atomic (`.tmp` + rename). Returns false on I/O failure.
 */
bool writeServerSpanTrace(const std::string &path);

} // namespace bxt::telemetry

#endif // BXT_TELEMETRY_SPANRING_H
