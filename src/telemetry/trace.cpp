#include "telemetry/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/json.h"

namespace bxt::telemetry {

namespace {

/** Process-start anchor for span timestamps. */
const std::chrono::steady_clock::time_point traceEpoch =
    std::chrono::steady_clock::now();

struct TraceState
{
    std::mutex mutex;
    std::string path;
    std::vector<TraceEvent> events;
    std::atomic<std::uint64_t> dropped{0};
};

TraceState &
state()
{
    // Never destroyed: spans may be recorded from static destructors
    // racing the atexit flush.
    static TraceState *instance = new TraceState();
    return *instance;
}

/** Expand "%p" in a BXT_TRACE path to the pid (one expansion). */
std::string
expandPath(std::string path)
{
    const std::size_t pos = path.find("%p");
    if (pos != std::string::npos) {
        path.replace(pos, 2, std::to_string(
#ifdef _WIN32
                                 0
#else
                                 static_cast<long>(::getpid())
#endif
                                 ));
    }
    return path;
}

void
flushAtExit()
{
    const std::string path = tracePath();
    if (!path.empty())
        writeTrace(path);
}

/** Reads BXT_TRACE once at static init; installs the atexit flush. */
bool
initFromEnv()
{
    const char *env = std::getenv("BXT_TRACE");
    if (env == nullptr || *env == '\0')
        return false;
    state().path = expandPath(env);
    std::atexit(flushAtExit);
    return true;
}

} // namespace

namespace detail {
std::atomic<bool> traceOn{initFromEnv()};
} // namespace detail

void
setTraceEnabled(bool on)
{
    detail::traceOn.store(on, std::memory_order_relaxed);
}

std::string
tracePath()
{
    TraceState &ts = state();
    std::lock_guard<std::mutex> lock(ts.mutex);
    return ts.path;
}

void
setTracePath(const std::string &path)
{
    {
        TraceState &ts = state();
        std::lock_guard<std::mutex> lock(ts.mutex);
        ts.path = expandPath(path);
    }
    if (!path.empty())
        setTraceEnabled(true);
}

std::uint64_t
nowMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - traceEpoch)
            .count());
}

std::uint32_t
currentThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
recordSpan(const std::string &name, const std::string &category,
           std::uint64_t start_us, std::uint64_t duration_us)
{
    if (!traceEnabled())
        return;
    TraceState &ts = state();
    std::lock_guard<std::mutex> lock(ts.mutex);
    if (ts.events.size() >= traceBufferCap) {
        ts.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    ts.events.push_back(
        {name, category, currentThreadId(), start_us, duration_us});
}

std::uint64_t
droppedSpans()
{
    return state().dropped.load(std::memory_order_relaxed);
}

std::vector<TraceEvent>
traceEvents()
{
    TraceState &ts = state();
    std::lock_guard<std::mutex> lock(ts.mutex);
    return ts.events;
}

void
clearTraceBuffer()
{
    TraceState &ts = state();
    std::lock_guard<std::mutex> lock(ts.mutex);
    ts.events.clear();
    ts.dropped.store(0, std::memory_order_relaxed);
}

bool
writeTrace(const std::string &path)
{
    if (!traceEnabled() || path.empty())
        return false;

    const std::vector<TraceEvent> events = traceEvents();
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.beginArray("traceEvents");
    for (const TraceEvent &event : events) {
        w.beginObject();
        w.kv("name", event.name);
        w.kv("cat", event.category);
        w.kv("ph", "X");
        w.kv("ts", event.startUs);
        w.kv("dur", event.durationUs);
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::uint64_t>(event.tid));
        w.endObject();
    }
    w.endArray();
    w.kv("displayTimeUnit", "ms");
    w.beginObject("otherData");
    w.kv("droppedSpans", droppedSpans());
    w.kv("tool", "bxt");
    w.endObject();
    w.endObject();

    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << w.str() << '\n';
    return out.good();
}

} // namespace bxt::telemetry
