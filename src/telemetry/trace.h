/**
 * @file
 * Scoped-timer spans and the Chrome trace-event exporter. Spans are
 * recorded into a bounded process-wide buffer and written as a
 * `chrome://tracing` / Perfetto-loadable `trace.json` (complete "X"
 * events, microsecond timestamps anchored at process start).
 *
 * Gating mirrors the metrics registry: tracing is off unless the
 * `BXT_TRACE=<path>` environment variable is set (which also installs an
 * atexit flush to that path, with `%p` expanded to the pid so parallel
 * test processes do not clobber each other) or `setTraceEnabled(true)` /
 * `setTracePath(...)` is called. A disabled ScopedSpan costs one relaxed
 * atomic load and never takes a clock sample.
 */

#ifndef BXT_TELEMETRY_TRACE_H
#define BXT_TELEMETRY_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bxt::telemetry {

namespace detail {
extern std::atomic<bool> traceOn;
} // namespace detail

/** True when span recording is active (constant-false when compiled out). */
inline bool
traceEnabled()
{
#ifdef BXT_NO_TELEMETRY
    return false;
#else
    return detail::traceOn.load(std::memory_order_relaxed);
#endif
}

/** Programmatic enable/disable (overrides the environment). */
void setTraceEnabled(bool on);

/** Output path from BXT_TRACE / setTracePath ("" when unset). */
std::string tracePath();

/** Set the output path; a non-empty path also enables tracing. */
void setTracePath(const std::string &path);

/** Microseconds since the process-wide trace epoch (steady clock). */
std::uint64_t nowMicros();

/** Small dense id for the calling thread (chrome trace `tid`). */
std::uint32_t currentThreadId();

/** One completed span. */
struct TraceEvent
{
    std::string name;
    std::string category;
    std::uint32_t tid = 0;
    std::uint64_t startUs = 0;
    std::uint64_t durationUs = 0;
};

/**
 * Append a completed span to the buffer (no-op when tracing is off).
 * The buffer is bounded (traceBufferCap); overflow increments the
 * dropped-span count instead of silently growing without bound.
 */
void recordSpan(const std::string &name, const std::string &category,
                std::uint64_t start_us, std::uint64_t duration_us);

/** Span buffer capacity. */
constexpr std::size_t traceBufferCap = 1u << 20;

/** Spans discarded because the buffer was full. */
std::uint64_t droppedSpans();

/** Copy of the recorded spans (tests / custom exporters). */
std::vector<TraceEvent> traceEvents();

/** Drop every recorded span and zero the dropped count. */
void clearTraceBuffer();

/**
 * Write the buffered spans as a Chrome trace-event JSON object
 * (`{"traceEvents": [...], ...}`). Returns false (writing nothing) when
 * tracing is disabled or the file cannot be created.
 */
bool writeTrace(const std::string &path);

/**
 * RAII span: samples the clock on construction and records on
 * destruction. Construction with tracing disabled is a no-op (no clock
 * sample, no allocation).
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name, const char *category = "bxt")
    {
        if (traceEnabled()) {
            name_ = name;
            category_ = category;
            start_ = nowMicros();
            active_ = true;
        }
    }

    /** Dynamic-name overload for per-spec / per-unit spans. */
    ScopedSpan(std::string name, const char *category)
    {
        if (traceEnabled()) {
            dynamic_name_ = std::move(name);
            name_ = dynamic_name_.c_str();
            category_ = category;
            start_ = nowMicros();
            active_ = true;
        }
    }

    ~ScopedSpan()
    {
        if (active_)
            recordSpan(name_, category_, start_, nowMicros() - start_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Wall-clock so far; 0 when the span is inactive. */
    std::uint64_t elapsedUs() const
    {
        return active_ ? nowMicros() - start_ : 0;
    }

  private:
    const char *name_ = nullptr;
    const char *category_ = nullptr;
    std::string dynamic_name_;
    std::uint64_t start_ = 0;
    bool active_ = false;
};

} // namespace bxt::telemetry

#endif // BXT_TELEMETRY_TRACE_H
