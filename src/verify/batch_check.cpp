#include "verify/batch_check.h"

#include <algorithm>
#include <cstddef>

#include "channel/bus.h"
#include "common/bitops.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/batch.h"
#include "core/codec.h"
#include "core/codec_factory.h"
#include "telemetry/trace.h"
#include "verify/differential.h"
#include "verify/generators.h"

namespace bxt::verify {
namespace {

std::string
formatStats(const BusStats &s)
{
    return "tx=" + std::to_string(s.transactions) +
           " beats=" + std::to_string(s.beats) +
           " dataBits=" + std::to_string(s.dataBits) +
           " dataOnes=" + std::to_string(s.dataOnes) +
           " dataToggles=" + std::to_string(s.dataToggles) +
           " metaBits=" + std::to_string(s.metaBits) +
           " metaOnes=" + std::to_string(s.metaOnes) +
           " metaToggles=" + std::to_string(s.metaToggles);
}

std::string
hexOf(std::span<const std::uint8_t> bytes)
{
    return Transaction(bytes).toHex();
}

std::string
bitsOf(std::span<const std::uint8_t> bits)
{
    std::string out;
    out.reserve(bits.size());
    for (std::uint8_t b : bits)
        out.push_back(b ? '1' : '0');
    return out;
}

/** Seed mixer covering the full (spec, wires, batch, stream) unit space. */
std::uint64_t
mixSeed(std::uint64_t seed, const std::string &spec, unsigned wires,
        std::size_t batch_tx, std::uint64_t stream_index)
{
    std::uint64_t h = seed ^ 0xcbf29ce484222325ull;
    for (char c : spec) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    for (std::uint64_t v : {std::uint64_t{wires}, std::uint64_t{batch_tx},
                            stream_index}) {
        h ^= v;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

std::optional<Violation>
checkBatchAgainstScalar(const std::string &spec,
                        const std::vector<Transaction> &stream,
                        unsigned data_wires, std::size_t batch_tx,
                        double idle_fraction)
{
    if (stream.empty())
        return std::nullopt;

    CodecPtr scalar_codec = makeCodec(spec, data_wires / 8);
    CodecPtr batch_codec = makeCodec(spec, data_wires / 8);
    const unsigned meta_wires = scalar_codec->metaWiresPerBeat();

    // Two independent bus models; wire state and the idle accumulator
    // advance across the whole stream on both, so any divergence in the
    // cumulative counters is a batch-path bug, not a modelling artefact.
    Bus scalar_bus(data_wires, meta_wires, idle_fraction);
    Bus batch_bus(data_wires, meta_wires, idle_fraction);

    // Scalar reference pass over the entire stream first: stateful codecs
    // advance per transaction in stream order on both codec instances, so
    // slice i of every batch must equal scalar encoding i.
    std::vector<Encoded> expected;
    expected.reserve(stream.size());
    Encoded scratch;
    for (const Transaction &tx : stream) {
        scalar_codec->encodeInto(tx, scratch);
        scalar_bus.transmit(scratch);
        expected.push_back(scratch);
    }

    TxBatch batch;
    EncodedBatch enc;
    TxBatch decoded;
    std::size_t i = 0;
    while (i < stream.size()) {
        const std::size_t tx_bytes = stream[i].size();
        batch.reset(tx_bytes);
        std::size_t chunk = 0;
        while (i + chunk < stream.size() &&
               stream[i + chunk].size() == tx_bytes &&
               (batch_tx == 0 || chunk < batch_tx)) {
            batch.push(stream[i + chunk]);
            ++chunk;
        }

        try {
            batch_codec->encodeBatch(batch, enc);
        } catch (const CodecSizeError &e) {
            return Violation{"batch-encode-throw",
                             spec + " tx " + std::to_string(i) + " batch=" +
                                 std::to_string(chunk) + ": " + e.what()};
        }

        for (std::size_t j = 0; j < chunk; ++j) {
            const Encoded &want = expected[i + j];
            const std::string where =
                spec + " tx " + std::to_string(i + j) + " (batch of " +
                std::to_string(chunk) + " at offset " + std::to_string(j) +
                ")";
            if (enc.metaWiresPerBeat() != want.metaWiresPerBeat)
                return Violation{
                    "batch-vs-scalar-meta-wires",
                    where + ": batch " +
                        std::to_string(enc.metaWiresPerBeat()) +
                        " wires/beat, scalar " +
                        std::to_string(want.metaWiresPerBeat)};
            if (enc.txBytes() != want.payload.size() ||
                !bytesEqual(enc.payload(j).data(), want.payload.data(),
                            want.payload.size()))
                return Violation{"batch-vs-scalar-payload",
                                 where + ": batch " + hexOf(enc.payload(j)) +
                                     " scalar " + want.payload.toHex()};
            const std::span<const std::uint8_t> got_meta = enc.meta(j);
            if (got_meta.size() != want.meta.size() ||
                !std::equal(got_meta.begin(), got_meta.end(),
                            want.meta.begin()))
                return Violation{"batch-vs-scalar-meta",
                                 where + ": batch " + bitsOf(got_meta) +
                                     " scalar " +
                                     bitsOf({want.meta.data(),
                                             want.meta.size()})};
        }

        batch_bus.transmitBatch(enc);

        try {
            batch_codec->decodeBatch(enc, decoded);
        } catch (const CodecSizeError &e) {
            return Violation{"batch-decode-throw",
                             spec + " tx " + std::to_string(i) + " batch=" +
                                 std::to_string(chunk) + ": " + e.what()};
        }
        if (!(decoded == batch)) {
            for (std::size_t j = 0; j < chunk; ++j) {
                if (!bytesEqual(decoded.tx(j).data(), batch.tx(j).data(),
                                tx_bytes))
                    return Violation{
                        "batch-roundtrip",
                        spec + " tx " + std::to_string(i + j) + ": decoded " +
                            hexOf(decoded.tx(j)) + " original " +
                            hexOf(batch.tx(j))};
            }
            return Violation{"batch-roundtrip",
                             spec + ": decodeBatch corrupted the geometry"};
        }

        i += chunk;
    }

    if (!(batch_bus.stats() == scalar_bus.stats()))
        return Violation{"batch-vs-scalar-bus",
                         spec + " after " + std::to_string(stream.size()) +
                             " tx: batch [" + formatStats(batch_bus.stats()) +
                             "] scalar [" +
                             formatStats(scalar_bus.stats()) + "]"};

    return std::nullopt;
}

BatchFuzzReport
runBatchDifferentialFuzz(const BatchFuzzOptions &options)
{
    const std::vector<std::string> specs =
        options.specs.empty() ? canonicalSpecs() : options.specs;

    BatchFuzzReport report;
    const std::vector<GenKind> &kinds = allGenKinds();
    for (const std::string &spec : specs) {
        for (unsigned wires : options.dataWires) {
            for (std::size_t batch_tx : options.batchSizes) {
                telemetry::ScopedSpan span("batchfuzz." + spec + "." +
                                               std::to_string(wires) + ".b" +
                                               std::to_string(batch_tx),
                                           "fuzz");
                bool failed = false;
                for (std::uint64_t s = 0;
                     s < options.streamsPerSpec && !failed; ++s) {
                    const std::uint64_t seed =
                        mixSeed(options.seed, spec, wires, batch_tx, s);
                    Rng rng(seed);
                    std::vector<Transaction> stream;
                    stream.reserve(options.txPerStream);
                    Transaction previous(wires);
                    for (std::size_t t = 0; t < options.txPerStream; ++t) {
                        const GenKind kind = kinds[t % kinds.size()];
                        stream.push_back(
                            generate(rng, wires, kind, previous));
                        previous = stream.back();
                    }
                    report.transactionsChecked += stream.size();
                    if (auto violation = checkBatchAgainstScalar(
                            spec, stream, wires, batch_tx,
                            options.idleFraction)) {
                        failed = true;
                        report.failures.push_back(
                            {spec, wires, batch_tx, seed, *violation});
                    }
                }
                if (options.progress)
                    options.progress(spec + " wires=" +
                                     std::to_string(wires) + " batch=" +
                                     std::to_string(batch_tx) + " " +
                                     (failed ? "FAIL" : "ok"));
            }
        }
    }
    return report;
}

} // namespace bxt::verify
