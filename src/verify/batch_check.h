/**
 * @file
 * Batch-vs-scalar differential verification: the batch kernels
 * (Codec::encodeBatch / decodeBatch, Bus::transmitBatch) claim bit-identity
 * with the scalar reference path (encodeInto / decodeInto / transmit).
 * This module checks that claim the same way differential.h checks the
 * core codecs against the naive reference models — structured generator
 * streams, every canonical spec, and a campaign driver shared by
 * `bxt_fuzz --batch`, CI's batch mode, and tests/test_batch.cpp.
 */

#ifndef BXT_VERIFY_BATCH_CHECK_H
#define BXT_VERIFY_BATCH_CHECK_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/transaction.h"
#include "verify/invariants.h"

namespace bxt::verify {

/**
 * Run @p stream through two fresh instances of @p spec — one down the
 * scalar reference path, one chunked into TxBatches of at most
 * @p batch_tx transactions — and compare bit-for-bit:
 *
 *  - every encoded payload slice against the scalar Encoded payload;
 *  - every metadata slice and the metadata wire count;
 *  - decodeBatch's output against the original transactions;
 *  - the cumulative BusStats of transmit() vs transmitBatch(), wire
 *    state and idle accumulator carried across batch boundaries alike.
 *
 * @p batch_tx == 0 means one batch spanning the whole stream. Returns
 * nullopt when every comparison holds.
 */
std::optional<Violation>
checkBatchAgainstScalar(const std::string &spec,
                        const std::vector<Transaction> &stream,
                        unsigned data_wires = 32, std::size_t batch_tx = 0,
                        double idle_fraction = 0.3);

/** Batch campaign parameters (see FuzzOptions for the scalar analogue). */
struct BatchFuzzOptions
{
    /** Specs to sweep; empty selects canonicalSpecs(). */
    std::vector<std::string> specs;

    /** Channel widths to run each spec on (transaction = wires bytes). */
    std::vector<unsigned> dataWires = {32, 64};

    /** Generator streams per (spec, wires, batch size) unit. */
    std::uint64_t streamsPerSpec = 12;

    /** Transactions per generated stream. */
    std::size_t txPerStream = 96;

    /** Batch sizes to sweep; 1 pins the degenerate chunking, the larger
     *  sizes cross chunk boundaries mid-stream. */
    std::vector<std::size_t> batchSizes = {1, 7, 64, 512};

    /** Campaign seed; every (spec, wires, batch) unit derives a stream. */
    std::uint64_t seed = 0xba7c4f22ull;

    /** Bus idle-gap fraction (0.3 = the paper's 70 % utilization). */
    double idleFraction = 0.3;

    /** Optional progress sink (one line per unit). */
    std::function<void(const std::string &)> progress;
};

/** One batch-vs-scalar mismatch found by the campaign. */
struct BatchFuzzFailure
{
    std::string spec;
    unsigned dataWires = 32;
    std::size_t batchTx = 0;
    std::uint64_t seed = 0;
    Violation violation;
};

/** Campaign outcome. */
struct BatchFuzzReport
{
    std::uint64_t transactionsChecked = 0;
    std::vector<BatchFuzzFailure> failures;
    bool ok() const { return failures.empty(); }
};

/** Sweep the canonical specs' batch kernels against the scalar path. */
BatchFuzzReport runBatchDifferentialFuzz(const BatchFuzzOptions &options);

} // namespace bxt::verify

#endif // BXT_VERIFY_BATCH_CHECK_H
