#include "verify/differential.h"

#include <algorithm>
#include <chrono>

#include "common/rng.h"
#include "core/codec_factory.h"
#include "telemetry/trace.h"
#include "verify/generators.h"

namespace bxt::verify {
namespace {

std::uint64_t
mixSeed(std::uint64_t seed, const std::string &spec, unsigned wires)
{
    std::uint64_t h = seed ^ 0xcbf29ce484222325ull;
    for (char c : spec) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    h ^= wires;
    h *= 0x100000001b3ull;
    return h;
}

/** One (spec, wires) fuzzing unit with its own RNG, checker, and stream. */
struct Unit
{
    std::string spec;
    unsigned wires;
    std::uint64_t seed;
    Rng rng;
    DifferentialChecker checker;
    Transaction previous;
    std::uint64_t iteration = 0;
    bool failed = false;

    Unit(const std::string &spec_in, unsigned wires_in, std::uint64_t campaign,
         double idle_fraction)
        : spec(spec_in), wires(wires_in),
          seed(mixSeed(campaign, spec_in, wires_in)), rng(seed),
          checker(spec_in, wires_in, idle_fraction), previous(wires_in)
    {
    }
};

void
handleFailure(Unit &unit, const Transaction &tx, const Violation &violation,
              const FuzzOptions &options, FuzzReport &report)
{
    unit.failed = true;
    FuzzFailure failure;
    failure.spec = unit.spec;
    failure.dataWires = unit.wires;
    failure.seed = unit.seed;
    failure.violation = violation;
    failure.original = tx;
    failure.shrunk = tx;

    // Shrinking restarts from a fresh checker, so it only applies to
    // failures that do not depend on accumulated stream state.
    const FailPredicate fails = [&](const Transaction &candidate) {
        DifferentialChecker fresh(unit.spec, unit.wires,
                                  options.idleFraction);
        return fresh.check(candidate).has_value();
    };
    failure.reproducesFresh = fails(tx);
    if (failure.reproducesFresh && options.shrinkFailures)
        failure.shrunk = shrinkTransaction(tx, fails);

    if (!options.corpusDir.empty()) {
        Repro repro;
        repro.spec = unit.spec;
        repro.dataWires = unit.wires;
        repro.seed = unit.seed;
        repro.invariant = violation.invariant;
        repro.detail = violation.detail;
        repro.tx = failure.shrunk;
        failure.reproPath = writeRepro(options.corpusDir, repro);
    }
    report.failures.push_back(std::move(failure));
}

/** Run up to @p count iterations of @p unit; false once the unit failed. */
void
runChunk(Unit &unit, std::uint64_t count, const FuzzOptions &options,
         FuzzReport &report)
{
    // One span per (spec, wires) chunk; a trace of a fuzz run shows where
    // the wall-clock budget goes across the unit matrix.
    telemetry::ScopedSpan span(
        "fuzz." + unit.spec + "." + std::to_string(unit.wires), "fuzz");
    const std::vector<GenKind> &kinds = allGenKinds();
    const std::size_t tx_bytes = unit.wires;
    for (std::uint64_t i = 0; i < count && !unit.failed; ++i) {
        const GenKind kind = kinds[unit.iteration % kinds.size()];
        const Transaction tx =
            generate(unit.rng, tx_bytes, kind, unit.previous);
        unit.previous = tx;
        ++unit.iteration;
        ++report.transactionsChecked;
        if (auto violation = unit.checker.check(tx))
            handleFailure(unit, tx, *violation, options, report);
    }
}

} // namespace

std::vector<std::string>
canonicalSpecs()
{
    std::vector<std::string> specs = paperSchemeSpecs();
    for (const char *extra :
         {"xor2+zdr", "xor4", "xor4+zdr", "xor8+zdr", "xor16", "xor4+fixed",
          "universal1", "universal3", "universal4+zdr", "universal5+zdr",
          "xor4+zdr|dbi4", "dbi4|xor4+zdr", "dbi-ac1", "dbi-ac4"}) {
        if (std::find(specs.begin(), specs.end(), extra) == specs.end())
            specs.emplace_back(extra);
    }
    return specs;
}

FuzzReport
runDifferentialFuzz(const FuzzOptions &options)
{
    const std::vector<std::string> specs =
        options.specs.empty() ? canonicalSpecs() : options.specs;

    std::vector<Unit> units;
    for (const std::string &spec : specs) {
        for (unsigned wires : options.dataWires)
            units.emplace_back(spec, wires, options.seed,
                               options.idleFraction);
    }

    FuzzReport report;
    if (options.secondsBudget > 0.0) {
        // Time-bounded mode: round-robin chunks until the budget expires.
        const auto start = std::chrono::steady_clock::now();
        const auto budget = std::chrono::duration<double>(
            options.secondsBudget);
        bool expired = false;
        while (!expired) {
            for (Unit &unit : units) {
                runChunk(unit, 2000, options, report);
                if (std::chrono::steady_clock::now() - start >= budget) {
                    expired = true;
                    break;
                }
            }
        }
    } else {
        for (Unit &unit : units)
            runChunk(unit, options.iterationsPerSpec, options, report);
    }

    if (options.progress) {
        for (const Unit &unit : units) {
            options.progress(
                unit.spec + " wires=" + std::to_string(unit.wires) + " " +
                std::to_string(unit.iteration) + " tx " +
                (unit.failed ? "FAIL" : "ok") +
                (unit.checker.hasReference() ? "" : " (round-trip/bus only)"));
        }
    }
    return report;
}

FuzzReport
replayCorpus(const std::string &dir)
{
    FuzzReport report;
    for (const std::string &path : listRepros(dir)) {
        const std::optional<Repro> repro = loadRepro(path);
        if (!repro) {
            FuzzFailure failure;
            failure.violation = {"corpus-malformed", path};
            failure.reproPath = path;
            report.failures.push_back(std::move(failure));
            continue;
        }
        DifferentialChecker checker(repro->spec, repro->dataWires, 0.0);
        ++report.transactionsChecked;
        if (auto violation = checker.check(repro->tx)) {
            FuzzFailure failure;
            failure.spec = repro->spec;
            failure.dataWires = repro->dataWires;
            failure.seed = repro->seed;
            failure.violation = *violation;
            failure.original = repro->tx;
            failure.shrunk = repro->tx;
            failure.reproPath = path;
            report.failures.push_back(std::move(failure));
        }
    }
    return report;
}

} // namespace bxt::verify
