/**
 * @file
 * The differential fuzz driver: sweeps codec specs over the structured
 * generators, checks every invariant per transaction (verify/invariants.h),
 * and shrinks + persists failing inputs to the repro corpus. Shared by the
 * `bxt_fuzz` CLI, the nightly CI job, and `tests/test_differential.cpp`.
 */

#ifndef BXT_VERIFY_DIFFERENTIAL_H
#define BXT_VERIFY_DIFFERENTIAL_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/shrink.h"

namespace bxt::verify {

/** Fuzzing campaign parameters. */
struct FuzzOptions
{
    /** Specs to sweep; empty selects canonicalSpecs(). */
    std::vector<std::string> specs;

    /** Channel widths to run each spec on (transaction = wires bytes × 8). */
    std::vector<unsigned> dataWires = {32, 64};

    /** Transactions per (spec, wires) unit when secondsBudget == 0. */
    std::uint64_t iterationsPerSpec = 20000;

    /** When > 0, fuzz round-robin until this wall-clock budget expires. */
    double secondsBudget = 0.0;

    /** Campaign seed; every (spec, wires) unit derives its own stream. */
    std::uint64_t seed = 0xb8715eedull;

    /** Bus idle-gap fraction (0.3 = the paper's 70 % utilization). */
    double idleFraction = 0.3;

    /** Directory for shrunken repros; empty disables persistence. */
    std::string corpusDir;

    /** Minimize failing inputs before reporting/persisting them. */
    bool shrinkFailures = true;

    /** Optional progress sink (one line per unit). */
    std::function<void(const std::string &)> progress;
};

/** One invariant violation found by the campaign. */
struct FuzzFailure
{
    std::string spec;
    unsigned dataWires = 32;
    std::uint64_t seed = 0;
    Violation violation;
    Transaction original{Transaction::minBytes};
    Transaction shrunk{Transaction::minBytes};
    /** True when the failure reproduces from a fresh checker (stateless). */
    bool reproducesFresh = false;
    std::string reproPath; ///< Corpus file, when persisted.
};

/** Campaign outcome. */
struct FuzzReport
{
    std::uint64_t transactionsChecked = 0;
    std::vector<FuzzFailure> failures;
    bool ok() const { return failures.empty(); }
};

/**
 * The canonical spec set every scaling PR must keep green: the paper's
 * scheme table (codec_factory::paperSchemeSpecs) plus the per-codec
 * building blocks and both pipeline orders.
 */
std::vector<std::string> canonicalSpecs();

/** Run a fuzzing campaign. */
FuzzReport runDifferentialFuzz(const FuzzOptions &options);

/**
 * Re-check every shrunken repro in @p dir against the current build; a
 * failure here means a previously-fixed bug regressed (or a corpus file is
 * malformed). Counts as 0 checked transactions when the dir is missing.
 */
FuzzReport replayCorpus(const std::string &dir);

} // namespace bxt::verify

#endif // BXT_VERIFY_DIFFERENTIAL_H
