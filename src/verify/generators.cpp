#include "verify/generators.h"

#include "common/error.h"

namespace bxt::verify {

const std::vector<GenKind> &
allGenKinds()
{
    static const std::vector<GenKind> kinds = {
        GenKind::AllZero,    GenKind::ZdrConstant,   GenKind::Stride,
        GenKind::FloatLike,  GenKind::SparseZero,    GenKind::DenseOnes,
        GenKind::NeighbourFlip, GenKind::Random,
    };
    return kinds;
}

const char *
genKindName(GenKind kind)
{
    switch (kind) {
      case GenKind::AllZero:       return "all-zero";
      case GenKind::ZdrConstant:   return "zdr-constant";
      case GenKind::Stride:        return "stride";
      case GenKind::FloatLike:     return "float-like";
      case GenKind::SparseZero:    return "sparse-zero";
      case GenKind::DenseOnes:     return "dense-ones";
      case GenKind::NeighbourFlip: return "neighbour-flip";
      case GenKind::Random:        return "random";
    }
    return "unknown";
}

Transaction
generate(Rng &rng, std::size_t size, GenKind kind, const Transaction &previous)
{
    Transaction tx(size);
    switch (kind) {
      case GenKind::AllZero:
        break;

      case GenKind::ZdrConstant: {
        // Word lanes drawn from the ZDR symbol set: 0, C, base and base⊕C
        // for a random per-transaction base — the values whose outputs the
        // remap swaps or leaves fixed.
        const std::uint32_t base = rng.next32();
        for (std::size_t off = 0; off < size; off += 4) {
            switch (rng.nextBounded(4)) {
              case 0: tx.setWord32(off, 0); break;
              case 1: tx.setWord32(off, 0x40000000u); break;
              case 2: tx.setWord32(off, base); break;
              default: tx.setWord32(off, base ^ 0x40000000u); break;
            }
        }
        break;
      }

      case GenKind::Stride: {
        // A pointer-array walk: consecutive elements differ by a small
        // stride, the adjacent-base similarity Base+XOR is built for.
        std::uint64_t addr = rng.next64() & 0x0000ffffffffffc0ull;
        const std::uint64_t stride = (1ull << rng.nextBounded(8)) *
                                     (1 + rng.nextBounded(4));
        for (std::size_t off = 0; off + 8 <= size; off += 8) {
            tx.setWord64(off, addr);
            addr += stride;
        }
        break;
      }

      case GenKind::FloatLike: {
        // 32-bit floats sharing sign+exponent with noisy low mantissa bits,
        // the partial-similarity case ZDR alone cannot fix.
        const std::uint32_t exponent = (rng.next32() & 0xff800000u);
        for (std::size_t off = 0; off < size; off += 4) {
            tx.setWord32(off, exponent |
                                  (rng.next32() & 0x00000fffu));
        }
        break;
      }

      case GenKind::SparseZero:
        for (std::size_t i = 0; i < size; ++i) {
            if (rng.nextBounded(4) == 0)
                tx.data()[i] = static_cast<std::uint8_t>(rng.next32());
        }
        break;

      case GenKind::DenseOnes:
        for (std::size_t i = 0; i < size; ++i) {
            tx.data()[i] = static_cast<std::uint8_t>(
                0xff ^ (rng.nextBounded(8) == 0 ? rng.next32() & 0xf : 0));
        }
        break;

      case GenKind::NeighbourFlip: {
        BXT_ASSERT(previous.size() == size);
        tx = previous;
        const std::size_t bit = rng.nextBounded(size * 8);
        tx.data()[bit / 8] = static_cast<std::uint8_t>(
            tx.data()[bit / 8] ^ (1u << (bit % 8)));
        break;
      }

      case GenKind::Random:
        for (std::size_t off = 0; off + 8 <= size; off += 8)
            tx.setWord64(off, rng.next64());
        break;
    }
    return tx;
}

} // namespace bxt::verify
