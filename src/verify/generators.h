/**
 * @file
 * Structured transaction generators for the differential fuzzer. Each kind
 * targets a family of inputs the encoders treat specially: all-zero data
 * (the ZDR remap), ZDR-constant-shaped values (the rare swapped symbol),
 * strided pointer-like arrays (the similarity Base+XOR exploits),
 * float-like data with shared exponents, sparse and dense random data, and
 * single-bit-flip neighbourhoods of a previous transaction.
 */

#ifndef BXT_VERIFY_GENERATORS_H
#define BXT_VERIFY_GENERATORS_H

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "core/transaction.h"

namespace bxt::verify {

/** Input families the fuzzer sweeps; roughly ordered from most to least structured. */
enum class GenKind
{
    AllZero,       ///< Every byte zero (exercises the ZDR constant path).
    ZdrConstant,   ///< Lanes equal to C or base⊕C shapes (the swapped symbols).
    Stride,        ///< Pointer-array-like: base address + i·stride elements.
    FloatLike,     ///< IEEE-754-shaped words sharing exponent bytes.
    SparseZero,    ///< Random data with most bytes forced to zero.
    DenseOnes,     ///< Mostly-set bytes (exercises the DBI inversion path).
    NeighbourFlip, ///< Previous transaction with a single bit flipped.
    Random,        ///< Uniform random bytes.
};

/** All generator kinds, in sweep order. */
const std::vector<GenKind> &allGenKinds();

/** Short stable name for logs and corpus files. */
const char *genKindName(GenKind kind);

/**
 * Generate one @p size byte transaction of the given family from @p rng.
 * NeighbourFlip derives from @p previous (pass the last generated
 * transaction of the stream; it must have the same size).
 */
Transaction generate(Rng &rng, std::size_t size, GenKind kind,
                     const Transaction &previous);

} // namespace bxt::verify

#endif // BXT_VERIFY_GENERATORS_H
