/**
 * @file
 * Golden-vector corpus: checked-in text files (tests/golden/<spec>.txt) that
 * pin, for every canonical spec, the exact encoded bytes, metadata bits,
 * and Bus ones/toggles of a deterministic set of structured inputs.
 * `tools/gen_golden` regenerates them; `tests/test_golden.cpp` fails with a
 * readable diff on any cross-platform or refactor drift. A second file
 * (`endpoints.txt`) pins the aggregate figure-endpoint statistics the
 * fig11/12/14 benches report.
 */

#ifndef BXT_VERIFY_GOLDEN_H
#define BXT_VERIFY_GOLDEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "channel/bus.h"
#include "core/transaction.h"

namespace bxt::verify {

/** One pinned input → encoding → wire-stats record. */
struct GoldenVector
{
    Transaction input{Transaction::minBytes};
    Transaction payload{Transaction::minBytes}; ///< Expected encoded bytes.
    std::vector<std::uint8_t> meta;             ///< Expected metadata bits.
    unsigned metaWiresPerBeat = 0;
    BusStats stats; ///< Expected fresh-Bus transmit delta (idle 0).
};

/** One golden file: a spec at one channel width plus its vectors. */
struct GoldenFile
{
    std::string spec;
    unsigned dataWires = 32;
    std::uint64_t seed = 0;
    std::vector<GoldenVector> vectors;
};

/** The specs the corpus pins, per channel width. */
std::vector<std::string> goldenSpecs(unsigned data_wires);

/** Stable file name for (spec, wires), e.g. `universal3-zdr__dbi4.w32.txt`. */
std::string goldenFileName(const std::string &spec, unsigned data_wires);

/**
 * Generate the golden records for @p spec by running the *current* core
 * codec and Bus over the deterministic generator stream. Vectors are
 * encoded in file order on one codec instance (so stateful codecs like
 * BD-Encoding are pinned too); each vector's BusStats delta uses a fresh
 * idle-free Bus.
 */
GoldenFile generateGolden(const std::string &spec, unsigned data_wires,
                          std::uint64_t seed, std::size_t count);

/** Serialize @p golden to @p path; false on I/O failure. */
bool writeGoldenFile(const GoldenFile &golden, const std::string &path);

/**
 * Parse @p path into @p out. Returns one human-readable line per parse
 * problem (empty == clean); on any diagnostic @p out is unusable.
 */
std::vector<std::string> loadGoldenFile(const std::string &path,
                                        GoldenFile &out);

/**
 * Parse @p path and re-run the current core implementation over its
 * inputs. Returns one human-readable line per mismatch (empty == clean);
 * parse problems are reported the same way rather than aborting.
 */
std::vector<std::string> checkGoldenFile(const std::string &path);

/**
 * Like checkGoldenFile, but through the batch hot path: the file's inputs
 * become one TxBatch encoded with a single encodeBatch call (stateful
 * codecs advance in vector order either way), each vector's pinned
 * payload/metadata are compared against its batch slice, the pinned bus
 * counters against a fresh single-transaction transmitBatch, and the
 * whole batch must decodeBatch back to the inputs. Any diff line means a
 * batch kernel has drifted from the scalar reference the files pin.
 */
std::vector<std::string> checkGoldenFileBatch(const std::string &path);

/** One pinned aggregate endpoint, e.g. fig11's mean normalized ones. */
struct Endpoint
{
    std::string fig;    ///< "fig11" / "fig12" / "fig14".
    std::string spec;
    std::size_t txPerApp = 0;
    double value = 0.0; ///< Mean normalized ones across the suite.
};

/** Format one endpoint line (`endpoint fig11 xor2+zdr tx=512 v=0.123456789`). */
std::string formatEndpointLine(const Endpoint &endpoint);

/** Parse endpoint lines from @p path (comments/blank lines skipped). */
std::vector<Endpoint> loadEndpoints(const std::string &path);

/** Append endpoint lines to @p path (creates it); false on I/O failure. */
bool appendEndpoints(const std::string &path,
                     const std::vector<Endpoint> &endpoints);

} // namespace bxt::verify

#endif // BXT_VERIFY_GOLDEN_H
