#include "verify/invariants.h"

#include <algorithm>

#include "core/codec_factory.h"

namespace bxt::verify {
namespace {

std::string
bytesHex(const std::uint8_t *data, std::size_t n)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
        out += digits[data[i] >> 4];
        out += digits[data[i] & 0xf];
    }
    return out;
}

std::string
bytesHex(const std::vector<std::uint8_t> &bytes)
{
    return bytesHex(bytes.data(), bytes.size());
}

std::string
bitsString(const std::vector<std::uint8_t> &bits)
{
    if (bits.empty())
        return "-";
    std::string out;
    out.reserve(bits.size());
    for (std::uint8_t b : bits)
        out += b ? '1' : '0';
    return out;
}

/** Naive per-bit popcount, independent of common/bitops.h. */
std::size_t
naiveOnes(const std::uint8_t *data, std::size_t n)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (int bit = 0; bit < 8; ++bit)
            count += (data[i] >> bit) & 1;
    }
    return count;
}

std::string
statsString(const BusStats &s)
{
    return "ones=" + std::to_string(s.dataOnes) +
           " toggles=" + std::to_string(s.dataToggles) +
           " metaOnes=" + std::to_string(s.metaOnes) +
           " metaToggles=" + std::to_string(s.metaToggles) +
           " bits=" + std::to_string(s.dataBits) +
           " metaBits=" + std::to_string(s.metaBits);
}

} // namespace

std::size_t
trailingDbiGroupBytes(const std::string &spec)
{
    const std::size_t bar = spec.rfind('|');
    const std::string tail =
        bar == std::string::npos ? spec : spec.substr(bar + 1);
    if (tail.rfind("dbi", 0) != 0 || tail.rfind("dbi-ac", 0) == 0)
        return 0;
    std::size_t group = 0;
    for (std::size_t i = 3; i < tail.size(); ++i) {
        if (tail[i] < '0' || tail[i] > '9')
            return 0;
        group = group * 10 + static_cast<std::size_t>(tail[i] - '0');
    }
    return group;
}

DifferentialChecker::DifferentialChecker(const std::string &spec,
                                         unsigned data_wires,
                                         double idle_fraction)
    : DifferentialChecker(makeCodec(spec, data_wires / 8), spec, data_wires,
                          idle_fraction)
{
}

DifferentialChecker::DifferentialChecker(CodecPtr core,
                                         const std::string &spec,
                                         unsigned data_wires,
                                         double idle_fraction)
    : spec_(spec), data_wires_(data_wires), core_(std::move(core)),
      ref_(makeRefCodec(spec, data_wires / 8)),
      bus_(data_wires, core_->metaWiresPerBeat(), idle_fraction),
      ref_bus_(data_wires, core_->metaWiresPerBeat(), idle_fraction),
      tail_dbi_group_(trailingDbiGroupBytes(spec))
{
}

std::optional<Violation>
DifferentialChecker::check(const Transaction &tx)
{
    ++checked_;
    const std::string context =
        "spec " + spec_ + " wires " + std::to_string(data_wires_) + " tx " +
        bytesHex(tx.data(), tx.size());

    // 1. The optimized encode path, then size preservation (codes, not
    //    compressors: DRAM stores the encoded form in place).
    core_->encodeInto(tx, enc_);
    if (enc_.payload.size() != tx.size()) {
        return Violation{"payload-size",
                         context + " encoded size " +
                             std::to_string(enc_.payload.size())};
    }

    // 2. Core bijectivity: decode must restore the exact input.
    core_->decodeInto(enc_, decoded_);
    if (!(decoded_ == tx)) {
        return Violation{"core-roundtrip",
                         context + " decoded " +
                             bytesHex(decoded_.data(), decoded_.size())};
    }

    // 3. Core vs reference equality of the full encoding.
    if (ref_ != nullptr) {
        const std::vector<std::uint8_t> input(tx.data(),
                                              tx.data() + tx.size());
        const RefEncoded ref_enc = ref_->encode(input);
        if (!std::equal(ref_enc.payload.begin(), ref_enc.payload.end(),
                        enc_.payload.data(),
                        enc_.payload.data() + enc_.payload.size())) {
            return Violation{"core-vs-ref-payload",
                             context + " core " +
                                 bytesHex(enc_.payload.data(),
                                          enc_.payload.size()) +
                                 " ref " + bytesHex(ref_enc.payload)};
        }
        if (ref_enc.meta != enc_.meta ||
            ref_enc.metaWiresPerBeat != enc_.metaWiresPerBeat) {
            return Violation{"core-vs-ref-meta",
                             context + " core " + bitsString(enc_.meta) +
                                 "/" + std::to_string(enc_.metaWiresPerBeat) +
                                 " ref " + bitsString(ref_enc.meta) + "/" +
                                 std::to_string(ref_enc.metaWiresPerBeat)};
        }
        if (ref_->decode(ref_enc) != input) {
            return Violation{"ref-roundtrip",
                             context + " (reference model is not a bijection "
                                       "on this input)"};
        }
    }

    // 4. DBI-DC weight bound on the transmitted payload.
    if (tail_dbi_group_ > 0) {
        const std::size_t half_bits = tail_dbi_group_ * 8 / 2;
        for (std::size_t off = 0; off + tail_dbi_group_ <= enc_.payload.size();
             off += tail_dbi_group_) {
            const std::size_t ones =
                naiveOnes(enc_.payload.data() + off, tail_dbi_group_);
            if (ones > half_bits) {
                return Violation{"dbi-weight-bound",
                                 context + " group at byte " +
                                     std::to_string(off) + " carries " +
                                     std::to_string(ones) + " ones > " +
                                     std::to_string(half_bits)};
            }
        }
    }

    // 5. Word-wide Bus vs bit-level RefBus, per-delta and cumulative.
    const BusStats core_delta = bus_.transmit(enc_);
    const std::vector<std::uint8_t> payload(
        enc_.payload.data(), enc_.payload.data() + enc_.payload.size());
    const BusStats ref_delta =
        ref_bus_.transmit(payload, enc_.meta, enc_.metaWiresPerBeat);
    if (!(core_delta == ref_delta)) {
        return Violation{"bus-vs-ref-delta",
                         context + " core [" + statsString(core_delta) +
                             "] ref [" + statsString(ref_delta) + "]"};
    }
    if (!(bus_.stats() == ref_bus_.stats())) {
        return Violation{"bus-vs-ref-cumulative",
                         context + " core [" + statsString(bus_.stats()) +
                             "] ref [" + statsString(ref_bus_.stats()) + "]"};
    }
    return std::nullopt;
}

std::optional<Violation>
checkZdrLaneInvolution(const std::vector<std::uint8_t> &in,
                       const std::vector<std::uint8_t> &base)
{
    const std::vector<std::uint8_t> constant = refZdrConstant(in.size());
    const auto swap_symbols =
        [&](const std::vector<std::uint8_t> &y) -> std::vector<std::uint8_t> {
        if (y == base)
            return constant;
        if (y == constant)
            return base;
        return y;
    };
    const std::string context =
        "lane " + bytesHex(in) + " base " + bytesHex(base);

    const std::vector<std::uint8_t> plain = refXorLane(in, base);
    if (swap_symbols(swap_symbols(plain)) != plain) {
        return Violation{"zdr-swap-involution",
                         context + " σ∘σ != id on " + bytesHex(plain)};
    }
    const std::vector<std::uint8_t> zdr = refZdrLaneEncode(in, base);
    if (zdr != swap_symbols(plain)) {
        return Violation{"zdr-equals-swapped-xor",
                         context + " zdr " + bytesHex(zdr) + " σ(xor) " +
                             bytesHex(swap_symbols(plain))};
    }
    if (refZdrLaneDecode(zdr, base) != in) {
        return Violation{"zdr-lane-roundtrip",
                         context + " decode gives " +
                             bytesHex(refZdrLaneDecode(zdr, base))};
    }
    return std::nullopt;
}

} // namespace bxt::verify
