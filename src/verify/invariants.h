/**
 * @file
 * Per-transaction invariant checking: the machine-checked statements of the
 * paper's correctness claims, evaluated for every fuzzed transaction.
 *
 *  1. encode ∘ decode == identity for the core codec (bijection claim);
 *  2. the core encoding equals the naive reference encoding byte-for-byte
 *     (payload, metadata bits, and metadata wire count);
 *  3. the reference codec round-trips independently;
 *  4. ZDR bijectivity: E_zdr == σ ∘ E_xor where σ is the transposition of
 *     the two output symbols {base, C} — σ an involution keeps E_zdr a
 *     bijection (checked at lane level, see checkZdrLaneInvolution);
 *  5. DBI-DC output weight: every encoded group carries at most
 *     group-size/2 `1` bits (when the spec's final stage is dbiN);
 *  6. the optimized Bus and the bit-level RefBus report identical BusStats
 *     deltas and cumulative counters, across transaction boundaries.
 */

#ifndef BXT_VERIFY_INVARIANTS_H
#define BXT_VERIFY_INVARIANTS_H

#include <cstdint>
#include <optional>
#include <string>

#include "channel/bus.h"
#include "core/codec.h"
#include "verify/reference_bus.h"
#include "verify/reference_codecs.h"

namespace bxt::verify {

/** One failed invariant, with a human-readable account of the mismatch. */
struct Violation
{
    std::string invariant; ///< Stable id, e.g. "core-vs-ref-payload".
    std::string detail;    ///< Hex dumps / counters for the report.
};

/**
 * Drives one codec spec over a transaction stream and checks every
 * invariant above per transaction. The checker owns the core codec, the
 * reference codec (absent for specs outside the paper set: bd, dbi-ac —
 * those get round-trip and bus checks only), and both bus models, so
 * cross-transaction toggle accounting is exercised too.
 */
class DifferentialChecker
{
  public:
    /**
     * @param spec codec_factory spec string; the codec is built with
     *        bus_bytes = data_wires / 8.
     * @param data_wires Channel width in bits (32 GPU / 64 CPU).
     * @param idle_fraction Idle-gap fraction for both bus models.
     */
    explicit DifferentialChecker(const std::string &spec,
                                 unsigned data_wires = 32,
                                 double idle_fraction = 0.0);

    /**
     * As above, but verify an externally supplied core codec against the
     * reference model for @p spec. Used by mutation smoke tests to prove
     * the harness catches deliberately injected codec bugs.
     */
    DifferentialChecker(CodecPtr core, const std::string &spec,
                        unsigned data_wires, double idle_fraction);

    /** Check all invariants on @p tx; nullopt when every invariant holds. */
    std::optional<Violation> check(const Transaction &tx);

    /** False for specs with no reference model (bd, dbi-ac stages). */
    bool hasReference() const { return ref_ != nullptr; }

    /** Transactions checked since construction. */
    std::uint64_t checked() const { return checked_; }

    /** The spec under test. */
    const std::string &spec() const { return spec_; }

  private:
    std::string spec_;
    unsigned data_wires_;
    CodecPtr core_;
    RefCodecPtr ref_;
    Bus bus_;
    RefBus ref_bus_;
    std::size_t tail_dbi_group_ = 0; ///< Group bytes when last stage is dbiN.
    Encoded enc_;                    ///< Scratch for the hot encodeInto path.
    Transaction decoded_{Transaction::minBytes};
    std::uint64_t checked_ = 0;
};

/**
 * Lane-level ZDR bijectivity statement: with σ the swap of the two output
 * symbols {base, C}, verify σ∘σ == id (involution), E_zdr(in) == σ(E_xor(in)),
 * and D_zdr(E_zdr(in)) == in, all on naive reference lanes.
 */
std::optional<Violation>
checkZdrLaneInvolution(const std::vector<std::uint8_t> &in,
                       const std::vector<std::uint8_t> &base);

/**
 * Group size of the trailing dbiN stage of @p spec, or 0 when the spec does
 * not end in a plain DBI-DC stage (the weight bound only holds there).
 */
std::size_t trailingDbiGroupBytes(const std::string &spec);

} // namespace bxt::verify

#endif // BXT_VERIFY_INVARIANTS_H
