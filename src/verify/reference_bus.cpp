#include "verify/reference_bus.h"

#include "common/error.h"

namespace bxt::verify {

RefBus::RefBus(unsigned data_wires, unsigned meta_wires, double idle_fraction)
    : data_wires_(data_wires), meta_wires_(meta_wires),
      idle_fraction_(idle_fraction), last_data_bits_(data_wires, 0),
      last_meta_bits_(meta_wires, 0)
{
    BXT_ASSERT(data_wires >= 8 && data_wires % 8 == 0);
    BXT_ASSERT(idle_fraction >= 0.0 && idle_fraction < 1.0);
}

BusStats
RefBus::transmit(const std::vector<std::uint8_t> &payload,
                 const std::vector<std::uint8_t> &meta,
                 unsigned meta_wires_per_beat)
{
    const std::size_t bus_bytes = data_wires_ / 8;
    BXT_ASSERT(payload.size() % bus_bytes == 0);
    BXT_ASSERT(meta_wires_per_beat == meta_wires_);

    const std::size_t beats = payload.size() / bus_bytes;
    BXT_ASSERT(meta.size() == beats * meta_wires_);

    BusStats delta;
    delta.transactions = 1;
    delta.beats = beats;
    for (std::size_t beat = 0; beat < beats; ++beat) {
        // Data wire w carries bit (w % 8) of byte lane (w / 8) this beat.
        for (unsigned w = 0; w < data_wires_; ++w) {
            const std::uint8_t byte = payload[beat * bus_bytes + w / 8];
            const std::uint8_t bit = (byte >> (w % 8)) & 1;
            delta.dataOnes += bit;
            if (bit != last_data_bits_[w])
                delta.dataToggles += 1;
            last_data_bits_[w] = bit;
        }
        for (unsigned w = 0; w < meta_wires_; ++w) {
            const std::uint8_t bit = meta[beat * meta_wires_ + w];
            delta.metaOnes += bit;
            if (bit != last_meta_bits_[w])
                delta.metaToggles += 1;
            last_meta_bits_[w] = bit;
        }
    }
    delta.dataBits = beats * data_wires_;
    delta.metaBits = beats * meta_wires_;

    // Deterministic idle-gap accumulator, as in Bus::transmit: park every
    // wire at the idle 0 level, charging one transition per driven `1`.
    idle_accum_ += idle_fraction_;
    if (idle_accum_ >= 1.0) {
        idle_accum_ -= 1.0;
        for (std::uint8_t &bit : last_data_bits_) {
            delta.dataToggles += bit;
            bit = 0;
        }
        for (std::uint8_t &bit : last_meta_bits_) {
            delta.metaToggles += bit;
            bit = 0;
        }
    }

    stats_ += delta;
    return delta;
}

} // namespace bxt::verify
