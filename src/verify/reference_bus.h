/**
 * @file
 * Byte-lane/bit-level reference model of the physical channel
 * (`src/channel/bus.h`): walks every wire of every beat one bit at a time
 * and accounts `1` values and transitions with no word loads and no
 * popcount intrinsics. The word-wide `Bus::transmit` hot path must stay
 * bit-identical to this model, including the cross-transaction wire memory
 * and the deterministic idle-gap parking.
 */

#ifndef BXT_VERIFY_REFERENCE_BUS_H
#define BXT_VERIFY_REFERENCE_BUS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "channel/bus.h"

namespace bxt::verify {

/** Bit-at-a-time reference bus producing the same BusStats counters. */
class RefBus
{
  public:
    /** Parameters mirror Bus: wires idle at logical 0, park when idle. */
    explicit RefBus(unsigned data_wires, unsigned meta_wires = 0,
                    double idle_fraction = 0.0);

    /**
     * Transmit one encoded transaction given as raw payload bytes plus
     * beat-major metadata bits; returns this transaction's counter deltas.
     */
    BusStats transmit(const std::vector<std::uint8_t> &payload,
                      const std::vector<std::uint8_t> &meta,
                      unsigned meta_wires_per_beat);

    /** Counters accumulated since construction. */
    const BusStats &stats() const { return stats_; }

  private:
    unsigned data_wires_;
    unsigned meta_wires_;
    double idle_fraction_;
    double idle_accum_ = 0.0;
    std::vector<std::uint8_t> last_data_bits_; ///< One 0/1 entry per wire.
    std::vector<std::uint8_t> last_meta_bits_;
    BusStats stats_;
};

} // namespace bxt::verify

#endif // BXT_VERIFY_REFERENCE_BUS_H
