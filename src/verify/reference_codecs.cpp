#include "verify/reference_codecs.h"

#include "common/error.h"

namespace bxt::verify {
namespace {

using Bytes = std::vector<std::uint8_t>;

/** Set-bit count of one byte, one bit at a time. */
std::size_t
refPopcountByte(std::uint8_t value)
{
    std::size_t count = 0;
    for (int bit = 0; bit < 8; ++bit) {
        if ((value >> bit) & 1)
            ++count;
    }
    return count;
}

bool
refAllZero(const Bytes &bytes)
{
    for (std::uint8_t b : bytes) {
        if (b != 0)
            return false;
    }
    return true;
}

Bytes
slice(const Bytes &in, std::size_t offset, std::size_t n)
{
    Bytes out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = in[offset + i];
    return out;
}

void
place(Bytes &out, std::size_t offset, const Bytes &lane)
{
    for (std::size_t i = 0; i < lane.size(); ++i)
        out[offset + i] = lane[i];
}

} // namespace

Bytes
refXorLane(const Bytes &in, const Bytes &base)
{
    BXT_ASSERT(in.size() == base.size());
    Bytes out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = static_cast<std::uint8_t>(in[i] ^ base[i]);
    return out;
}

Bytes
refZdrConstant(std::size_t n)
{
    Bytes c(n, 0);
    c[n - 1] = 0x40;
    return c;
}

Bytes
refZdrLaneEncode(const Bytes &in, const Bytes &base)
{
    // Paper §IV-A: a zero element is remapped to the low-weight constant C;
    // the element whose plain XOR encoding *would have been* C (that is,
    // in == base ⊕ C) takes over the zero element's old output (the base
    // itself); everything else is plain XOR. Swapping two outputs of a
    // bijection keeps it a bijection, so no metadata is needed.
    if (refAllZero(in))
        return refZdrConstant(in.size());
    if (refXorLane(in, base) == refZdrConstant(in.size()))
        return base;
    return refXorLane(in, base);
}

Bytes
refZdrLaneDecode(const Bytes &in, const Bytes &base)
{
    if (in == refZdrConstant(in.size()))
        return Bytes(in.size(), 0);
    if (in == base)
        return refXorLane(base, refZdrConstant(in.size()));
    return refXorLane(in, base);
}

RefEncoded
RefIdentityCodec::encode(const Bytes &in)
{
    RefEncoded enc;
    enc.payload = in;
    return enc;
}

Bytes
RefIdentityCodec::decode(const RefEncoded &enc)
{
    return enc.payload;
}

RefBaseXorCodec::RefBaseXorCodec(std::size_t base_size, bool zdr,
                                 bool adjacent_base)
    : base_size_(base_size), zdr_(zdr), adjacent_base_(adjacent_base)
{
}

std::string
RefBaseXorCodec::name() const
{
    std::string n = "xor" + std::to_string(base_size_);
    if (zdr_)
        n += "+zdr";
    if (!adjacent_base_)
        n += "(fixed)";
    return n;
}

RefEncoded
RefBaseXorCodec::encode(const Bytes &in)
{
    BXT_ASSERT(in.size() % base_size_ == 0 && in.size() > base_size_);
    const std::size_t elements = in.size() / base_size_;
    RefEncoded enc;
    enc.payload.resize(in.size());

    // Element 0 (the base element) passes through unchanged.
    place(enc.payload, 0, slice(in, 0, base_size_));
    for (std::size_t e = 1; e < elements; ++e) {
        const Bytes element = slice(in, e * base_size_, base_size_);
        const Bytes base = adjacent_base_
                               ? slice(in, (e - 1) * base_size_, base_size_)
                               : slice(in, 0, base_size_);
        place(enc.payload, e * base_size_,
              zdr_ ? refZdrLaneEncode(element, base)
                   : refXorLane(element, base));
    }
    return enc;
}

Bytes
RefBaseXorCodec::decode(const RefEncoded &enc)
{
    BXT_ASSERT(enc.payload.size() % base_size_ == 0);
    const std::size_t elements = enc.payload.size() / base_size_;
    Bytes out(enc.payload.size());

    place(out, 0, slice(enc.payload, 0, base_size_));
    for (std::size_t e = 1; e < elements; ++e) {
        const Bytes encoded = slice(enc.payload, e * base_size_, base_size_);
        // The base is the already-decoded original value of the left
        // neighbour (or element 0 in fixed-base mode).
        const Bytes base = adjacent_base_
                               ? slice(out, (e - 1) * base_size_, base_size_)
                               : slice(out, 0, base_size_);
        place(out, e * base_size_,
              zdr_ ? refZdrLaneDecode(encoded, base)
                   : refXorLane(encoded, base));
    }
    return out;
}

RefUniversalXorCodec::RefUniversalXorCodec(unsigned stages, bool zdr,
                                           std::size_t zdr_lane)
    : stages_(stages), zdr_(zdr), zdr_lane_(zdr_lane)
{
}

std::string
RefUniversalXorCodec::name() const
{
    std::string n = "universal" + std::to_string(stages_);
    if (zdr_)
        n += "+zdr";
    return n;
}

unsigned
RefUniversalXorCodec::clampedStages(std::size_t size) const
{
    // The effective base after s stages is size >> s bytes; stop before it
    // would fold below 2 bytes.
    unsigned usable = 0;
    while ((size >> (usable + 1)) >= 2)
        ++usable;
    return stages_ < usable ? stages_ : usable;
}

RefEncoded
RefUniversalXorCodec::encode(const Bytes &in)
{
    RefEncoded enc;
    enc.payload = in;
    const unsigned stages = clampedStages(in.size());
    for (unsigned s = 0; s < stages; ++s) {
        // Stage s folds the right half of the leading size>>s byte region
        // onto its left half; later stages recurse into the left half only.
        const std::size_t half = in.size() >> (s + 1);
        std::size_t lane = zdr_lane_ < half ? zdr_lane_ : half;
        for (std::size_t off = 0; off < half; off += lane) {
            const Bytes right = slice(enc.payload, half + off, lane);
            const Bytes left = slice(enc.payload, off, lane);
            place(enc.payload, half + off,
                  zdr_ ? refZdrLaneEncode(right, left)
                       : refXorLane(right, left));
        }
    }
    return enc;
}

Bytes
RefUniversalXorCodec::decode(const RefEncoded &enc)
{
    Bytes out = enc.payload;
    const unsigned stages = clampedStages(out.size());
    for (unsigned s = stages; s-- > 0;) {
        const std::size_t half = out.size() >> (s + 1);
        std::size_t lane = zdr_lane_ < half ? zdr_lane_ : half;
        for (std::size_t off = 0; off < half; off += lane) {
            const Bytes right = slice(out, half + off, lane);
            const Bytes left = slice(out, off, lane);
            place(out, half + off,
                  zdr_ ? refZdrLaneDecode(right, left)
                       : refXorLane(right, left));
        }
    }
    return out;
}

RefDbiCodec::RefDbiCodec(std::size_t group_bytes, std::size_t bus_bytes)
    : group_bytes_(group_bytes), bus_bytes_(bus_bytes)
{
}

std::string
RefDbiCodec::name() const
{
    return "dbi" + std::to_string(group_bytes_);
}

unsigned
RefDbiCodec::metaWiresPerBeat() const
{
    return static_cast<unsigned>(bus_bytes_ / group_bytes_);
}

RefEncoded
RefDbiCodec::encode(const Bytes &in)
{
    BXT_ASSERT(in.size() % bus_bytes_ == 0);
    RefEncoded enc;
    enc.payload = in;
    enc.metaWiresPerBeat = metaWiresPerBeat();

    const std::size_t beats = in.size() / bus_bytes_;
    const std::size_t half_bits = group_bytes_ * 8 / 2;
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            const std::size_t start = beat * bus_bytes_ + g;
            std::size_t ones = 0;
            for (std::size_t i = 0; i < group_bytes_; ++i)
                ones += refPopcountByte(enc.payload[start + i]);
            const bool invert = ones > half_bits;
            if (invert) {
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    enc.payload[start + i] = static_cast<std::uint8_t>(
                        ~enc.payload[start + i]);
            }
            enc.meta.push_back(invert ? 1 : 0);
        }
    }
    return enc;
}

Bytes
RefDbiCodec::decode(const RefEncoded &enc)
{
    BXT_ASSERT(enc.payload.size() % bus_bytes_ == 0);
    Bytes out = enc.payload;
    const std::size_t beats = out.size() / bus_bytes_;
    BXT_ASSERT(enc.meta.size() == beats * metaWiresPerBeat());

    std::size_t meta_index = 0;
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t g = 0; g < bus_bytes_; g += group_bytes_) {
            const std::size_t start = beat * bus_bytes_ + g;
            if (enc.meta[meta_index++]) {
                for (std::size_t i = 0; i < group_bytes_; ++i)
                    out[start + i] = static_cast<std::uint8_t>(~out[start + i]);
            }
        }
    }
    return out;
}

RefPipelineCodec::RefPipelineCodec(std::vector<RefCodecPtr> stages)
    : stages_(std::move(stages))
{
    BXT_ASSERT(!stages_.empty());
}

std::string
RefPipelineCodec::name() const
{
    std::string n;
    for (const auto &stage : stages_) {
        if (!n.empty())
            n += "|";
        n += stage->name();
    }
    return n;
}

unsigned
RefPipelineCodec::metaWiresPerBeat() const
{
    unsigned wires = 0;
    for (const auto &stage : stages_)
        wires += stage->metaWiresPerBeat();
    return wires;
}

RefEncoded
RefPipelineCodec::encode(const Bytes &in)
{
    std::vector<RefEncoded> stage_encs;
    Bytes payload = in;
    for (auto &stage : stages_) {
        stage_encs.push_back(stage->encode(payload));
        payload = stage_encs.back().payload;
    }

    RefEncoded result;
    result.payload = payload;
    result.metaWiresPerBeat = metaWiresPerBeat();
    if (result.metaWiresPerBeat == 0)
        return result;

    // Metadata is serialized per beat in stage order (every stage sees the
    // same beat count because payload size is preserved).
    std::size_t beats = 0;
    for (const RefEncoded &enc : stage_encs) {
        if (enc.metaWiresPerBeat > 0) {
            const std::size_t stage_beats =
                enc.meta.size() / enc.metaWiresPerBeat;
            BXT_ASSERT(beats == 0 || beats == stage_beats);
            beats = stage_beats;
        }
    }
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (const RefEncoded &enc : stage_encs) {
            for (unsigned w = 0; w < enc.metaWiresPerBeat; ++w)
                result.meta.push_back(enc.meta[beat * enc.metaWiresPerBeat + w]);
        }
    }
    return result;
}

Bytes
RefPipelineCodec::decode(const RefEncoded &enc)
{
    // Split the interleaved metadata back into per-stage streams.
    std::vector<RefEncoded> stage_encs(stages_.size());
    unsigned total = 0;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        stage_encs[s].metaWiresPerBeat = stages_[s]->metaWiresPerBeat();
        total += stage_encs[s].metaWiresPerBeat;
    }
    BXT_ASSERT(total == enc.metaWiresPerBeat);
    const std::size_t beats = total == 0 ? 0 : enc.meta.size() / total;
    for (std::size_t beat = 0; beat < beats; ++beat) {
        std::size_t offset = beat * total;
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            for (unsigned w = 0; w < stage_encs[s].metaWiresPerBeat; ++w)
                stage_encs[s].meta.push_back(enc.meta[offset + w]);
            offset += stage_encs[s].metaWiresPerBeat;
        }
    }

    Bytes payload = enc.payload;
    for (std::size_t s = stages_.size(); s-- > 0;) {
        stage_encs[s].payload = payload;
        payload = stages_[s]->decode(stage_encs[s]);
    }
    return payload;
}

namespace {

std::vector<std::string>
refSplit(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            parts.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return parts;
}

/** Parse one stage token; nullptr when outside the reference set. */
RefCodecPtr
makeRefStage(const std::string &token, std::size_t bus_bytes)
{
    const std::vector<std::string> parts = refSplit(token, '+');
    const std::string &head = parts[0];

    bool zdr = false;
    bool fixed = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        if (parts[i] == "zdr")
            zdr = true;
        else if (parts[i] == "fixed")
            fixed = true;
        else
            return nullptr;
    }

    auto suffix = [&](std::size_t prefix_len, long fallback) -> long {
        if (head.size() == prefix_len)
            return fallback;
        long value = 0;
        for (std::size_t i = prefix_len; i < head.size(); ++i) {
            if (head[i] < '0' || head[i] > '9')
                return -1;
            value = value * 10 + (head[i] - '0');
        }
        return value;
    };

    if (head == "baseline" || head == "identity")
        return std::make_unique<RefIdentityCodec>();
    if (head.rfind("xor", 0) == 0) {
        const long n = suffix(3, -1);
        if (n < 2)
            return nullptr;
        return std::make_unique<RefBaseXorCodec>(
            static_cast<std::size_t>(n), zdr, !fixed);
    }
    if (head.rfind("universal", 0) == 0) {
        const long stages = suffix(9, 3);
        if (stages < 1)
            return nullptr;
        return std::make_unique<RefUniversalXorCodec>(
            static_cast<unsigned>(stages), zdr);
    }
    // dbi-ac and bd are outside the paper's scheme set: no reference model.
    if (head.rfind("dbi-ac", 0) == 0 || head == "bd")
        return nullptr;
    if (head.rfind("dbi", 0) == 0) {
        const long g = suffix(3, -1);
        if (g < 1)
            return nullptr;
        return std::make_unique<RefDbiCodec>(static_cast<std::size_t>(g),
                                             bus_bytes);
    }
    return nullptr;
}

} // namespace

RefCodecPtr
makeRefCodec(const std::string &spec, std::size_t bus_bytes)
{
    const std::vector<std::string> tokens = refSplit(spec, '|');
    if (tokens.size() == 1)
        return makeRefStage(tokens[0], bus_bytes);

    std::vector<RefCodecPtr> stages;
    for (const auto &token : tokens) {
        RefCodecPtr stage = makeRefStage(token, bus_bytes);
        if (stage == nullptr)
            return nullptr;
        stages.push_back(std::move(stage));
    }
    return std::make_unique<RefPipelineCodec>(std::move(stages));
}

} // namespace bxt::verify
