/**
 * @file
 * Bit-accurate *reference* codecs for differential verification.
 *
 * Every class here is a deliberately naive, byte-at-a-time reimplementation
 * of one of the paper's encodings, written directly from the paper text
 * (§III-B Base+XOR, §IV-A Zero Data Remapping, §IV-C Universal Base+XOR,
 * §II-B DBI-DC) with **no shared code with `src/core/`**: no word loads, no
 * popcount intrinsics, no shared lane helpers, and an independent spec
 * parser. The reference implementations are the obviously-correct model the
 * optimized hot paths are checked against; keep them slow and simple.
 */

#ifndef BXT_VERIFY_REFERENCE_CODECS_H
#define BXT_VERIFY_REFERENCE_CODECS_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bxt::verify {

/** Reference analogue of core Encoded: payload bytes + beat-major metadata. */
struct RefEncoded
{
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> meta; ///< One 0/1 entry per metadata bit.
    unsigned metaWiresPerBeat = 0;
};

/** A reference transaction encoder/decoder over plain byte vectors. */
class RefCodec
{
  public:
    virtual ~RefCodec() = default;

    /** Scheme name (matches the core codec's name for the same spec). */
    virtual std::string name() const = 0;

    /** Encode one transaction's bytes. */
    virtual RefEncoded encode(const std::vector<std::uint8_t> &in) = 0;

    /** Recover the original bytes from an encoding. */
    virtual std::vector<std::uint8_t> decode(const RefEncoded &enc) = 0;

    /** Dedicated metadata wires per beat (static per configuration). */
    virtual unsigned metaWiresPerBeat() const { return 0; }
};

/** Owning reference-codec handle. */
using RefCodecPtr = std::unique_ptr<RefCodec>;

/** Reference identity ("baseline"): transmits data unchanged. */
class RefIdentityCodec : public RefCodec
{
  public:
    std::string name() const override { return "baseline"; }
    RefEncoded encode(const std::vector<std::uint8_t> &in) override;
    std::vector<std::uint8_t> decode(const RefEncoded &enc) override;
};

/**
 * Reference N-byte Base+XOR (paper §III-B Figure 4) with optional Zero Data
 * Remapping (§IV-A Figure 10) and the fixed-base ablation (§V-B).
 */
class RefBaseXorCodec : public RefCodec
{
  public:
    RefBaseXorCodec(std::size_t base_size, bool zdr, bool adjacent_base);
    std::string name() const override;
    RefEncoded encode(const std::vector<std::uint8_t> &in) override;
    std::vector<std::uint8_t> decode(const RefEncoded &enc) override;

  private:
    std::size_t base_size_;
    bool zdr_;
    bool adjacent_base_;
};

/** Reference Universal Base+XOR (paper §IV-C Figures 7-8), lane-wise ZDR. */
class RefUniversalXorCodec : public RefCodec
{
  public:
    RefUniversalXorCodec(unsigned stages, bool zdr, std::size_t zdr_lane = 4);
    std::string name() const override;
    RefEncoded encode(const std::vector<std::uint8_t> &in) override;
    std::vector<std::uint8_t> decode(const RefEncoded &enc) override;

  private:
    unsigned clampedStages(std::size_t size) const;

    unsigned stages_;
    bool zdr_;
    std::size_t zdr_lane_;
};

/** Reference DBI-DC (paper §II-B): invert groups with > half their bits set. */
class RefDbiCodec : public RefCodec
{
  public:
    RefDbiCodec(std::size_t group_bytes, std::size_t bus_bytes);
    std::string name() const override;
    RefEncoded encode(const std::vector<std::uint8_t> &in) override;
    std::vector<std::uint8_t> decode(const RefEncoded &enc) override;
    unsigned metaWiresPerBeat() const override;

  private:
    std::size_t group_bytes_;
    std::size_t bus_bytes_;
};

/** Reference pipeline: stage-by-stage encode, per-beat meta interleaving. */
class RefPipelineCodec : public RefCodec
{
  public:
    explicit RefPipelineCodec(std::vector<RefCodecPtr> stages);
    std::string name() const override;
    RefEncoded encode(const std::vector<std::uint8_t> &in) override;
    std::vector<std::uint8_t> decode(const RefEncoded &enc) override;
    unsigned metaWiresPerBeat() const override;

  private:
    std::vector<RefCodecPtr> stages_;
};

/**
 * Independent parser for the `codec_factory` spec grammar, covering the
 * paper's schemes: `baseline`/`identity`, `xorN[+zdr][+fixed]`,
 * `universal[S][+zdr]`, `dbiN`, and `|`-joined pipelines of those.
 *
 * @return nullptr when @p spec contains a stage outside the reference set
 *         (`bd`, `dbi-acN`) — callers fall back to round-trip-only checks —
 *         and aborts via the error helpers on specs the core factory would
 *         itself reject.
 */
RefCodecPtr makeRefCodec(const std::string &spec, std::size_t bus_bytes = 4);

/*
 * Naive lane primitives, exposed so the invariant checker can state the
 * ZDR bijectivity property (the 0 ↔ base⊕C output swap) independently of
 * src/core. All operate on @p n byte lanes, most-significant byte last.
 */

/** Reference plain XOR lane: out = in ⊕ base, byte by byte. */
std::vector<std::uint8_t> refXorLane(const std::vector<std::uint8_t> &in,
                                     const std::vector<std::uint8_t> &base);

/** Reference ZDR lane encode (paper §IV-A, Figure 10). */
std::vector<std::uint8_t> refZdrLaneEncode(const std::vector<std::uint8_t> &in,
                                           const std::vector<std::uint8_t> &base);

/** Reference ZDR lane decode (inverse of refZdrLaneEncode for one base). */
std::vector<std::uint8_t> refZdrLaneDecode(const std::vector<std::uint8_t> &in,
                                           const std::vector<std::uint8_t> &base);

/** The ZDR low-weight constant C for an @p n byte lane (0x40 in the MSB). */
std::vector<std::uint8_t> refZdrConstant(std::size_t n);

} // namespace bxt::verify

#endif // BXT_VERIFY_REFERENCE_CODECS_H
