#include "verify/shrink.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace bxt::verify {
namespace {

/** Zero @p n bytes at @p offset; true if anything changed. */
bool
zeroSpan(Transaction &tx, std::size_t offset, std::size_t n)
{
    bool changed = false;
    for (std::size_t i = offset; i < offset + n; ++i) {
        changed = changed || tx.data()[i] != 0;
        tx.data()[i] = 0;
    }
    return changed;
}

std::string
sanitizeSpec(const std::string &spec)
{
    std::string out;
    for (char c : spec) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += c;
        else if (c == '|')
            out += "__";
        else
            out += '-';
    }
    return out;
}

/** FNV-1a over the repro's identifying content, for stable file names. */
std::uint64_t
contentHash(const Repro &repro)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint8_t byte) {
        h ^= byte;
        h *= 0x100000001b3ull;
    };
    for (char c : repro.invariant)
        mix(static_cast<std::uint8_t>(c));
    for (std::size_t i = 0; i < repro.tx.size(); ++i)
        mix(repro.tx.data()[i]);
    mix(static_cast<std::uint8_t>(repro.dataWires));
    return h;
}

std::string
compactHex(const Transaction &tx)
{
    std::string hex = tx.toHex();
    hex.erase(std::remove(hex.begin(), hex.end(), ' '), hex.end());
    return hex;
}

} // namespace

Transaction
shrinkTransaction(const Transaction &tx, const FailPredicate &fails)
{
    Transaction best = tx;
    bool progress = true;
    while (progress) {
        progress = false;

        // Coarse to fine: zero out spans of 16 down to 1 bytes.
        for (std::size_t span = 16; span >= 1; span /= 2) {
            for (std::size_t off = 0; off + span <= best.size(); off += span) {
                Transaction candidate = best;
                if (!zeroSpan(candidate, off, span))
                    continue;
                if (fails(candidate)) {
                    best = candidate;
                    progress = true;
                }
            }
        }

        // Clear surviving bits one at a time.
        for (std::size_t bit = 0; bit < best.size() * 8; ++bit) {
            const std::uint8_t mask =
                static_cast<std::uint8_t>(1u << (bit % 8));
            if ((best.data()[bit / 8] & mask) == 0)
                continue;
            Transaction candidate = best;
            candidate.data()[bit / 8] =
                static_cast<std::uint8_t>(candidate.data()[bit / 8] & ~mask);
            if (fails(candidate)) {
                best = candidate;
                progress = true;
            }
        }
    }
    return best;
}

std::string
writeRepro(const std::string &dir, const Repro &repro)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    char name[160];
    std::snprintf(name, sizeof(name), "repro-%s-%016llx.repro",
                  sanitizeSpec(repro.spec).c_str(),
                  static_cast<unsigned long long>(contentHash(repro)));
    const std::string path = dir + "/" + name;

    std::ofstream out(path);
    if (!out)
        return "";
    out << "# bxt differential fuzz repro — minimal failing input.\n"
        << "# Replayed by tests/test_differential.cpp (CorpusReplay).\n"
        << "spec " << repro.spec << "\n"
        << "wires " << repro.dataWires << "\n"
        << "seed 0x" << std::hex << repro.seed << std::dec << "\n"
        << "invariant " << repro.invariant << "\n"
        << "detail " << repro.detail << "\n"
        << "tx " << compactHex(repro.tx) << "\n";
    return out ? path : "";
}

std::optional<Repro>
loadRepro(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;

    Repro repro;
    bool have_spec = false;
    bool have_tx = false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos)
            continue;
        const std::string key = line.substr(0, space);
        const std::string value = line.substr(space + 1);
        if (key == "spec") {
            repro.spec = value;
            have_spec = true;
        } else if (key == "wires") {
            repro.dataWires = static_cast<unsigned>(std::stoul(value));
        } else if (key == "seed") {
            repro.seed = std::stoull(value, nullptr, 0);
        } else if (key == "invariant") {
            repro.invariant = value;
        } else if (key == "detail") {
            repro.detail = value;
        } else if (key == "tx") {
            // Validate before Transaction::fromHex, which is fatal on bad
            // input — a malformed corpus file must not kill the replayer.
            std::string digits;
            for (char c : value) {
                if (std::isspace(static_cast<unsigned char>(c)))
                    continue;
                if (!std::isxdigit(static_cast<unsigned char>(c)))
                    return std::nullopt;
                digits += c;
            }
            const std::size_t n = digits.size() / 2;
            if (digits.size() % 2 != 0 || n < Transaction::minBytes ||
                n > Transaction::maxBytes || (n & (n - 1)) != 0) {
                return std::nullopt;
            }
            repro.tx = Transaction::fromHex(digits);
            have_tx = true;
        }
    }
    if (!have_spec || !have_tx)
        return std::nullopt;
    return repro;
}

std::vector<std::string>
listRepros(const std::string &dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".repro") {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

} // namespace bxt::verify
