/**
 * @file
 * Failure-input shrinking and the on-disk repro corpus.
 *
 * When the differential fuzzer finds a transaction that violates an
 * invariant, it greedily minimizes the input while the failure persists —
 * zeroing whole elements, then bytes, then clearing single bits — and
 * writes the shrunken repro to `tests/corpus/` with the spec, seed, and
 * violated invariant embedded, so the bug reproduces from one small file
 * with no fuzzing involved.
 */

#ifndef BXT_VERIFY_SHRINK_H
#define BXT_VERIFY_SHRINK_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/transaction.h"
#include "verify/invariants.h"

namespace bxt::verify {

/** Returns true when @p tx still triggers the failure being minimized. */
using FailPredicate = std::function<bool(const Transaction &)>;

/**
 * Greedy fixpoint shrink: repeatedly apply the simplifications above,
 * keeping any candidate for which @p fails stays true. @p tx must satisfy
 * @p fails on entry; the result does too and is never larger.
 */
Transaction shrinkTransaction(const Transaction &tx, const FailPredicate &fails);

/** One reproducible failure, as serialized into the corpus. */
struct Repro
{
    std::string spec;
    unsigned dataWires = 32;
    std::uint64_t seed = 0;
    std::string invariant;
    std::string detail;
    Transaction tx{Transaction::minBytes};
};

/**
 * Write @p repro into directory @p dir (created if missing) under a
 * content-derived file name; returns the path, or empty on I/O failure.
 */
std::string writeRepro(const std::string &dir, const Repro &repro);

/** Parse one corpus file; nullopt on malformed content. */
std::optional<Repro> loadRepro(const std::string &path);

/** All `.repro` files under @p dir, sorted (empty when dir is missing). */
std::vector<std::string> listRepros(const std::string &dir);

} // namespace bxt::verify

#endif // BXT_VERIFY_SHRINK_H
