#include "workloads/apps.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <utility>

#include "common/error.h"

namespace bxt {
namespace {

/** 10^U(lo, hi): log-uniform draw for scale-free parameters. */
double
logUniform(Rng &rng, double lo, double hi)
{
    const double exponent = lo + (hi - lo) * rng.nextDouble();
    return std::pow(10.0, exponent);
}

double
uniform(Rng &rng, double lo, double hi)
{
    return lo + (hi - lo) * rng.nextDouble();
}

/**
 * Significant mantissa bits for a float family: most real arrays carry
 * limited precision (grid spacings, quantized inputs, small integers);
 * @p full_prob of apps keep full-entropy mantissas.
 */
unsigned
drawQuantBits(Rng &rng, unsigned lo, unsigned hi, double full_prob)
{
    if (rng.nextBool(full_prob))
        return 0;
    return lo + static_cast<unsigned>(rng.nextBounded(hi - lo + 1));
}

// --- GPU compute families ---------------------------------------------

PatternPtr
makeFp32Grid(Rng &rng)
{
    // Stencil/grid solvers: smooth scalar fp32 fields plus float4 state
    // vectors per cell, occasional zero halo cells.
    std::vector<std::pair<PatternPtr, double>> members;
    const unsigned grid_quant = drawQuantBits(rng, 8, 16, 0.20);
    members.emplace_back(makeSoaFloatPattern(logUniform(rng, -1.0, 4.0),
                                             logUniform(rng, -4.5, -1.5),
                                             rng.next64(), grid_quant),
                         0.60);
    members.emplace_back(
        makeVecFloatPattern(rng.nextBool(0.75) ? 2 : 4, 4,
                            logUniform(rng, -4.0, -1.5), rng.next64(),
                            grid_quant),
        0.40);
    PatternPtr base = makeMixPattern(std::move(members), 0.93, rng.next64());
    const double zero_prob = uniform(rng, 0.0, 0.10);
    if (zero_prob < 0.01)
        return base;
    return makeZeroMixedPattern(std::move(base), 4, zero_prob, rng.next64());
}

PatternPtr
makeFp32Particle(Rng &rng)
{
    // Particle/MD codes: float3/float4 positions and velocities plus
    // neighbour indices and a little incompressible payload.
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(
        makeVecFloatPattern(rng.nextBool(0.55)
                                ? 2u
                                : (rng.nextBool(0.6) ? 3u : 4u),
                            4, logUniform(rng, -3.5, -1.0), rng.next64(),
                            drawQuantBits(rng, 8, 18, 0.25)),
        0.65);
    members.emplace_back(
        makeIntStridePattern(4, 1 + static_cast<std::int64_t>(
                                     rng.nextBounded(4)),
                             static_cast<unsigned>(rng.nextBounded(6)),
                             rng.next64()),
        0.20);
    members.emplace_back(makeRandomPattern(rng.next64()), 0.15);
    PatternPtr mix = makeMixPattern(std::move(members), 0.92, rng.next64());
    const double zero_prob = uniform(rng, 0.0, 0.25);
    if (zero_prob < 0.02)
        return mix;
    return makeZeroMixedPattern(std::move(mix), 4, zero_prob, rng.next64());
}

PatternPtr
makeFp64Hpc(Rng &rng)
{
    // HPC solvers: fp64 fields, complex pairs / dual-component records.
    std::vector<std::pair<PatternPtr, double>> members;
    const unsigned hpc_quant = drawQuantBits(rng, 14, 30, 0.20);
    members.emplace_back(makeSoaDoublePattern(logUniform(rng, -2.0, 6.0),
                                              logUniform(rng, -5.0, -2.0),
                                              rng.next64(), hpc_quant),
                         0.75);
    members.emplace_back(makeVecFloatPattern(2, 8,
                                             logUniform(rng, -4.5, -2.0),
                                             rng.next64(), hpc_quant),
                         0.25);
    PatternPtr base = makeMixPattern(std::move(members), 0.93, rng.next64());
    const double zero_prob = uniform(rng, 0.0, 0.20);
    if (zero_prob < 0.02)
        return base;
    return makeZeroMixedPattern(std::move(base), 8, zero_prob, rng.next64());
}

PatternPtr
makeIntGraph(Rng &rng)
{
    // Graph/index kernels: adjacency indices, pointers, hash payloads, and
    // plenty of zero padding -> the mixed-data transactions of Figure 14.
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(
        makeIntStridePattern(8,
                             1 + static_cast<std::int64_t>(
                                     rng.nextBounded(8)),
                             static_cast<unsigned>(rng.nextBounded(8)),
                             rng.next64(),
                             24 + static_cast<unsigned>(rng.nextBounded(16))),
        0.30);
    members.emplace_back(
        makeIntStridePattern(4,
                             1 + static_cast<std::int64_t>(
                                     rng.nextBounded(8)),
                             static_cast<unsigned>(rng.nextBounded(8)),
                             rng.next64(),
                             13 + static_cast<unsigned>(rng.nextBounded(12))),
        0.25);
    members.emplace_back(
        makePointerPattern(0x0000700000000000ull +
                               (rng.next64() & 0xffffff0000ull),
                           1ull << (20 + rng.nextBounded(10)), rng.next64()),
        0.25);
    members.emplace_back(makeRandomPattern(rng.next64()), 0.20);
    PatternPtr mix = makeMixPattern(std::move(members), 0.90, rng.next64());
    return makeZeroMixedPattern(std::move(mix), 4,
                                uniform(rng, 0.05, 0.40), rng.next64());
}

PatternPtr
makeFp16Ml(Rng &rng)
{
    // ML tensors: uniform fp16 feature streams plus 4-component records.
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(makeHalfFloatPattern(logUniform(rng, -1.0, 1.0),
                                              logUniform(rng, -3.0, -1.0),
                                              rng.next64()),
                         0.55);
    members.emplace_back(makeVecFloatPattern(4, 2,
                                             logUniform(rng, -3.0, -1.0),
                                             rng.next64()),
                         0.45);
    PatternPtr base = makeMixPattern(std::move(members), 0.93, rng.next64());
    const double zero_prob = uniform(rng, 0.0, 0.15);
    if (zero_prob < 0.02)
        return base;
    return makeZeroMixedPattern(std::move(base), 2, zero_prob, rng.next64());
}

PatternPtr
makeSparseZero(Rng &rng)
{
    // AMR / sparse solvers: dense fp32 islands in mostly-zero storage.
    PatternPtr base = makeSoaFloatPattern(logUniform(rng, 0.0, 3.0),
                                          logUniform(rng, -4.0, -1.5),
                                          rng.next64(),
                                          drawQuantBits(rng, 8, 20, 0.30));
    PatternPtr mixed = makeZeroMixedPattern(
        std::move(base), 4, uniform(rng, 0.30, 0.60), rng.next64());
    return makeZeroBurstPattern(std::move(mixed), 0.02,
                                static_cast<unsigned>(
                                    4 + rng.nextBounded(12)),
                                rng.next64());
}

PatternPtr
makeIncompressible(Rng &rng)
{
    // Compressed/encrypted payloads, Monte-Carlo RNG state.
    return makeRandomPattern(rng.next64());
}

// --- Graphics families --------------------------------------------------

PatternPtr
makeFramebuffer(Rng &rng)
{
    const auto step = static_cast<unsigned>(4 + rng.nextBounded(40));
    const std::uint8_t alpha = rng.nextBool(0.7) ? 0xff : 0x80;
    return makeRgbaPixelPattern(step, alpha, rng.next64());
}

PatternPtr
makeZBuffer(Rng &rng)
{
    return makeDepthBufferPattern(uniform(rng, 0.2, 0.8),
                                  logUniform(rng, -5.5, -3.0), rng.next64());
}

PatternPtr
makeTexture(Rng &rng)
{
    // Textures: smooth albedo pages interleaved with block-compressed
    // (incompressible) pages.
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(makeRgbaPixelPattern(
                             static_cast<unsigned>(1 + rng.nextBounded(12)),
                             0xff, rng.next64()),
                         0.60);
    members.emplace_back(makeRandomPattern(rng.next64()), 0.40);
    return makeMixPattern(std::move(members), 0.95, rng.next64());
}

PatternPtr
makeVertex(Rng &rng)
{
    // Vertex/attribute buffers: xyzw coordinate records plus index streams.
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(
        makeVecFloatPattern(static_cast<unsigned>(3 + rng.nextBounded(2)),
                            4, logUniform(rng, -3.5, -1.0), rng.next64(),
                            drawQuantBits(rng, 10, 20, 0.30)),
        0.75);
    members.emplace_back(
        makeIntStridePattern(4, 1, static_cast<unsigned>(rng.nextBounded(4)),
                             rng.next64()),
        0.25);
    return makeMixPattern(std::move(members), 0.93, rng.next64());
}

PatternPtr
makeHdrFp16(Rng &rng)
{
    // HDR render targets are RGBA16F: 4-component half-float records.
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(makeVecFloatPattern(4, 2,
                                             logUniform(rng, -3.0, -1.0),
                                             rng.next64()),
                         0.75);
    members.emplace_back(makeHalfFloatPattern(logUniform(rng, -1.0, 2.0),
                                              logUniform(rng, -3.0, -1.0),
                                              rng.next64()),
                         0.25);
    return makeMixPattern(std::move(members), 0.93, rng.next64());
}

// --- CPU families --------------------------------------------------------

PatternPtr
makeCpuInt(Rng &rng)
{
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(makeAosRecordPattern(
                             24 + 8 * rng.nextBounded(4), rng.next64()),
                         0.30);
    members.emplace_back(makeTextPattern(rng.next64()), 0.20);
    members.emplace_back(
        makeEnumBytePattern(static_cast<unsigned>(3 + rng.nextBounded(13)),
                            rng.next64()),
        0.15);
    members.emplace_back(
        makeIntStridePattern(4, 1, static_cast<unsigned>(
                                       4 + rng.nextBounded(10)),
                             rng.next64()),
        0.10);
    members.emplace_back(makeRandomPattern(rng.next64()), 0.25);
    return makeMixPattern(std::move(members), 0.90, rng.next64());
}

PatternPtr
makeCpuIntDense(Rng &rng)
{
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(
        makeIntStridePattern(4,
                             1 + static_cast<std::int64_t>(
                                     rng.nextBounded(4)),
                             static_cast<unsigned>(2 + rng.nextBounded(7)),
                             rng.next64()),
        0.50);
    members.emplace_back(makeAosRecordPattern(32, rng.next64()), 0.50);
    return makeMixPattern(std::move(members), 0.92, rng.next64());
}

PatternPtr
makeCpuPointer(Rng &rng)
{
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(
        makePointerPattern(0x0000560000000000ull +
                               (rng.next64() & 0xffffff0000ull),
                           1ull << (22 + rng.nextBounded(8)), rng.next64()),
        0.50);
    members.emplace_back(makeAosRecordPattern(
                             24 + 8 * rng.nextBounded(3), rng.next64()),
                         0.30);
    members.emplace_back(makeRandomPattern(rng.next64()), 0.20);
    return makeMixPattern(std::move(members), 0.90, rng.next64());
}

PatternPtr
makeCpuText(Rng &rng)
{
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(makeTextPattern(rng.next64()), 0.60);
    members.emplace_back(makeAosRecordPattern(32, rng.next64()), 0.40);
    return makeMixPattern(std::move(members), 0.92, rng.next64());
}

PatternPtr
makeCpuStream(Rng &rng)
{
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(makeRandomPattern(rng.next64()), 0.75);
    members.emplace_back(
        makeEnumBytePattern(static_cast<unsigned>(3 + rng.nextBounded(13)),
                            rng.next64()),
        0.15);
    members.emplace_back(
        makeIntStridePattern(4, 1, static_cast<unsigned>(
                                       6 + rng.nextBounded(8)),
                             rng.next64()),
        0.15);
    return makeMixPattern(std::move(members), 0.95, rng.next64());
}

PatternPtr
makeCpuLowDensity(Rng &rng)
{
    // Flag/state-table dominated workloads: skewed low-weight values whose
    // bitwise differences are denser than the data itself, so XOR encoding
    // slightly backfires (the >100 % apps of Figure 18).
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(
        makeEnumBytePattern(static_cast<unsigned>(2 + rng.nextBounded(6)),
                            rng.next64()),
        0.70);
    members.emplace_back(
        makeIntStridePattern(4, 1, static_cast<unsigned>(
                                       2 + rng.nextBounded(4)),
                             rng.next64(),
                             8 + static_cast<unsigned>(rng.nextBounded(6))),
        0.15);
    members.emplace_back(makeAosRecordPattern(
                             24 + 8 * rng.nextBounded(3), rng.next64()),
                         0.15);
    return makeMixPattern(std::move(members), 0.92, rng.next64());
}

PatternPtr
makeCpuFp(Rng &rng)
{
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(makeSoaDoublePattern(logUniform(rng, 0.0, 4.0),
                                              logUniform(rng, -2.0, -1.0),
                                              rng.next64(),
                                              drawQuantBits(rng, 24, 44,
                                                            0.60)),
                         0.40);
    members.emplace_back(makeAosRecordPattern(
                             32 + 8 * rng.nextBounded(3), rng.next64()),
                         0.45);
    members.emplace_back(
        makeEnumBytePattern(static_cast<unsigned>(4 + rng.nextBounded(12)),
                            rng.next64()),
        0.15);
    return makeMixPattern(std::move(members), 0.90, rng.next64());
}

PatternPtr
makeCpuFpDense(Rng &rng)
{
    PatternPtr base = makeSoaDoublePattern(logUniform(rng, 0.0, 4.0),
                                           logUniform(rng, -4.0, -2.0),
                                           rng.next64(),
                                           drawQuantBits(rng, 18, 40, 0.50));
    const double zero_prob = uniform(rng, 0.0, 0.15);
    if (zero_prob < 0.02)
        return base;
    return makeZeroMixedPattern(std::move(base), 8, zero_prob, rng.next64());
}

// --- Suite assembly -------------------------------------------------------

using FamilyMaker = PatternPtr (*)(Rng &);

PatternPtr
makeByFamily(const std::string &family, Rng &rng)
{
    static const std::pair<const char *, FamilyMaker> table[] = {
        {"fp32-grid", makeFp32Grid},
        {"fp32-particle", makeFp32Particle},
        {"fp64-hpc", makeFp64Hpc},
        {"int-graph", makeIntGraph},
        {"fp16-ml", makeFp16Ml},
        {"sparse-zero", makeSparseZero},
        {"incompressible", makeIncompressible},
        {"framebuffer", makeFramebuffer},
        {"zbuffer", makeZBuffer},
        {"texture", makeTexture},
        {"vertex", makeVertex},
        {"hdr-fp16", makeHdrFp16},
        {"cpu-int", makeCpuInt},
        {"cpu-int-dense", makeCpuIntDense},
        {"cpu-pointer", makeCpuPointer},
        {"cpu-text", makeCpuText},
        {"cpu-stream", makeCpuStream},
        {"cpu-fp", makeCpuFp},
        {"cpu-fp-dense", makeCpuFpDense},
        {"cpu-lowdensity", makeCpuLowDensity},
    };
    for (const auto &[label, maker] : table) {
        if (family == label)
            return maker(rng);
    }
    panic("unknown workload family: " + family);
}

App
makeApp(const std::string &name, AppCategory category,
        const std::string &family, std::size_t tx_bytes, Rng &suite_rng)
{
    App app;
    app.name = name;
    app.category = category;
    app.family = family;
    app.txBytes = tx_bytes;
    Rng app_rng = suite_rng.split();
    // 4-8 concurrent streams of the same family: different arrays/buffers
    // of one workload, serviced simultaneously by the memory controller.
    const std::size_t streams = 4 + app_rng.nextBounded(5);
    app.streams.reserve(streams);
    for (std::size_t s = 0; s < streams; ++s)
        app.streams.push_back(makeByFamily(family, app_rng));
    return app;
}

/** Deterministic shuffle of family slot labels. */
void
shuffleSlots(std::vector<std::string> &slots, Rng &rng)
{
    for (std::size_t i = slots.size(); i > 1; --i)
        std::swap(slots[i - 1], slots[rng.nextBounded(i)]);
}

} // namespace

std::string
toString(AppCategory category)
{
    switch (category) {
      case AppCategory::Compute:
        return "compute";
      case AppCategory::Graphics:
        return "graphics";
      case AppCategory::Cpu:
        return "cpu";
    }
    return "?";
}

std::vector<App>
buildGpuSuite(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<App> suite;
    suite.reserve(187);

    // Named compute benchmarks with hand-assigned families.
    static const std::pair<const char *, const char *> named_compute[] = {
        {"rodinia-b+tree", "int-graph"},
        {"rodinia-backprop", "fp32-grid"},
        {"rodinia-bfs", "int-graph"},
        {"rodinia-cfd", "fp32-grid"},
        {"rodinia-gaussian", "fp32-grid"},
        {"rodinia-heartwall", "fp32-particle"},
        {"rodinia-hotspot", "fp32-grid"},
        {"rodinia-hotspot3d", "fp32-grid"},
        {"rodinia-huffman", "incompressible"},
        {"rodinia-hybridsort", "int-graph"},
        {"rodinia-kmeans", "fp32-particle"},
        {"rodinia-lavamd", "fp32-particle"},
        {"rodinia-leukocyte", "fp32-grid"},
        {"rodinia-lud", "fp32-grid"},
        {"rodinia-mummergpu", "int-graph"},
        {"rodinia-myocyte", "fp64-hpc"},
        {"rodinia-nn", "fp32-particle"},
        {"rodinia-nw", "int-graph"},
        {"rodinia-particlefilter", "fp32-particle"},
        {"rodinia-pathfinder", "int-graph"},
        {"rodinia-srad", "fp32-grid"},
        {"rodinia-streamcluster", "fp32-particle"},
        {"lonestar-bfs", "int-graph"},
        {"lonestar-bh", "fp32-particle"},
        {"lonestar-dmr", "fp64-hpc"},
        {"lonestar-mst", "int-graph"},
        {"lonestar-pta", "int-graph"},
        {"lonestar-sssp", "int-graph"},
        {"lonestar-sp", "int-graph"},
        {"comd", "fp64-hpc"},
        {"hpgmg", "fp64-hpc"},
        {"lulesh", "fp64-hpc"},
        {"mcb", "incompressible"},
        {"miniamr", "sparse-zero"},
        {"nekbone", "fp64-hpc"},
    };
    for (const auto &[name, family] : named_compute)
        suite.push_back(
            makeApp(name, AppCategory::Compute, family, 32, rng));

    // Remaining compute quota, filled by anonymized CN-coded applications
    // (the paper's naming style for unnamed CUDA workloads).
    std::vector<std::string> compute_slots;
    auto push_slots = [](std::vector<std::string> &slots, const char *family,
                         std::size_t count) {
        for (std::size_t i = 0; i < count; ++i)
            slots.emplace_back(family);
    };
    push_slots(compute_slots, "fp32-grid", 14);
    push_slots(compute_slots, "fp32-particle", 9);
    push_slots(compute_slots, "fp64-hpc", 18);
    push_slots(compute_slots, "int-graph", 8);
    push_slots(compute_slots, "fp16-ml", 10);
    push_slots(compute_slots, "sparse-zero", 8);
    push_slots(compute_slots, "incompressible", 4);
    BXT_ASSERT(compute_slots.size() == 71);
    shuffleSlots(compute_slots, rng);
    for (std::size_t i = 0; i < compute_slots.size(); ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "CN%03u",
                      static_cast<unsigned>(i + 36));
        suite.push_back(makeApp(name, AppCategory::Compute,
                                compute_slots[i], 32, rng));
    }
    BXT_ASSERT(suite.size() == 106);

    // Graphics population.
    std::vector<std::string> gfx_slots;
    push_slots(gfx_slots, "framebuffer", 24);
    push_slots(gfx_slots, "zbuffer", 12);
    push_slots(gfx_slots, "texture", 14);
    push_slots(gfx_slots, "vertex", 16);
    push_slots(gfx_slots, "hdr-fp16", 10);
    push_slots(gfx_slots, "incompressible", 5);
    BXT_ASSERT(gfx_slots.size() == 81);
    shuffleSlots(gfx_slots, rng);
    for (std::size_t i = 0; i < gfx_slots.size(); ++i) {
        char name[32];
        if (i < 40)
            std::snprintf(name, sizeof(name), "dxgame-%02u",
                          static_cast<unsigned>(i + 1));
        else if (i < 60)
            std::snprintf(name, sizeof(name), "bench3d-%02u",
                          static_cast<unsigned>(i - 39));
        else
            std::snprintf(name, sizeof(name), "wstation-%02u",
                          static_cast<unsigned>(i - 59));
        suite.push_back(
            makeApp(name, AppCategory::Graphics, gfx_slots[i], 32, rng));
    }
    BXT_ASSERT(suite.size() == 187);
    return suite;
}

std::vector<App>
buildCpuSuite(std::uint64_t seed)
{
    Rng rng(seed ^ 0xcafef00dull);
    static const std::pair<const char *, const char *> spec_apps[] = {
        {"perlbench", "cpu-int"},    {"bzip2", "cpu-stream"},
        {"gcc", "cpu-int"},          {"mcf", "cpu-pointer"},
        {"gobmk", "cpu-lowdensity"},        {"hmmer", "cpu-int-dense"},
        {"sjeng", "cpu-lowdensity"},        {"libquantum", "cpu-int-dense"},
        {"h264ref", "cpu-stream"},   {"omnetpp", "cpu-pointer"},
        {"astar", "cpu-lowdensity"},    {"xalancbmk", "cpu-text"},
        {"bwaves", "cpu-fp-dense"},  {"gamess", "cpu-lowdensity"},
        {"milc", "cpu-fp-dense"},    {"zeusmp", "cpu-fp-dense"},
        {"gromacs", "cpu-fp"},       {"cactusadm", "cpu-fp-dense"},
        {"leslie3d", "cpu-fp-dense"},{"namd", "cpu-fp"},
        {"dealii", "cpu-fp"},        {"soplex", "cpu-fp"},
        {"povray", "cpu-lowdensity"},        {"calculix", "cpu-lowdensity"},
        {"gemsfdtd", "cpu-fp-dense"},{"tonto", "cpu-fp"},
        {"lbm", "cpu-fp-dense"},     {"sphinx3", "cpu-fp"},
    };
    std::vector<App> suite;
    suite.reserve(std::size(spec_apps));
    for (const auto &[name, family] : spec_apps)
        suite.push_back(makeApp(name, AppCategory::Cpu, family, 64, rng));
    return suite;
}

std::vector<Transaction>
generateTrace(App &app, std::size_t count)
{
    BXT_ASSERT(!app.streams.empty());
    Rng rng(defaultSuiteSeed ^ std::hash<std::string>{}(app.name));
    std::vector<Transaction> trace;
    trace.reserve(count);

    // Interleave the concurrent streams in short bursts (row-buffer
    // friendly scheduling keeps 1-4 consecutive transactions from one
    // requester before switching).
    std::size_t stream = 0;
    std::size_t burst_left = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (burst_left == 0) {
            stream = rng.nextBounded(app.streams.size());
            burst_left = 1 + rng.nextBounded(4);
        }
        --burst_left;
        Transaction tx(app.txBytes);
        app.streams[stream]->fill(rng, tx.bytes());
        trace.push_back(tx);
    }
    return trace;
}

} // namespace bxt
