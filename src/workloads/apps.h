/**
 * @file
 * The workload population: 187 GPU applications (106 compute + 81
 * graphics) and 28 CPU applications, standing in for the paper's
 * proprietary trace sets (DESIGN.md §2 documents the substitution).
 *
 * Every application is a named, seeded instance of a data-pattern family
 * with parameters drawn from per-family distributions, so the population
 * spans the axes the encoders are sensitive to: element granularity of
 * similarity, zero-element density, and similarity strength. Equal suite
 * seeds give bit-identical traces.
 */

#ifndef BXT_WORKLOADS_APPS_H
#define BXT_WORKLOADS_APPS_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/transaction.h"
#include "workloads/patterns.h"

namespace bxt {

/** Workload category (the paper's suite split). */
enum class AppCategory
{
    Compute,  ///< CUDA compute (Rodinia / Lonestar / Exascale analogs).
    Graphics, ///< DirectX games, render benchmarks, workstation apps.
    Cpu,      ///< SPEC CPU2006 analogs (Figure 18).
};

/** Printable category name. */
std::string toString(AppCategory category);

/**
 * One synthetic application: a named, seeded set of concurrent transaction
 * streams.
 *
 * An application owns several independent pattern streams (different
 * buffers/arrays of the same workload); the bus-order trace interleaves
 * them in short runs, modeling a memory controller servicing many SMs at
 * once. Consecutive bus transactions are therefore usually *unrelated*,
 * which is what makes the baseline toggle rate realistic (Figure 16).
 */
struct App
{
    std::string name;
    AppCategory category = AppCategory::Compute;
    std::string family;       ///< Data-pattern family label for reports.
    std::size_t txBytes = 32; ///< Transaction size (32 GPU, 64 CPU).
    std::vector<PatternPtr> streams; ///< Concurrent payload streams.
};

/** Default master seed for the published experiment set. */
constexpr std::uint64_t defaultSuiteSeed = 0xb1c5'90d7'41e2'7a03ull;

/**
 * Build the 187-application GPU population (106 compute, then 81
 * graphics, in report order).
 */
std::vector<App> buildGpuSuite(std::uint64_t seed = defaultSuiteSeed);

/** Build the 28-application CPU population (64-byte transactions). */
std::vector<App> buildCpuSuite(std::uint64_t seed = defaultSuiteSeed);

/**
 * Materialize @p count transactions from @p app (advances the app's
 * pattern state).
 */
std::vector<Transaction> generateTrace(App &app, std::size_t count);

/** Transactions per app used by the reproduction benches. */
constexpr std::size_t defaultTraceLength = 2048;

} // namespace bxt

#endif // BXT_WORKLOADS_APPS_H
