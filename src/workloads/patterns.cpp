#include "workloads/patterns.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bitops.h"
#include "common/error.h"

namespace bxt {
namespace {

/** Convert a float to IEEE-754 binary16 bits (round-to-nearest-even). */
std::uint16_t
floatToHalf(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, 4);
    const std::uint32_t sign = (bits >> 16) & 0x8000u;
    const std::int32_t exponent =
        static_cast<std::int32_t>((bits >> 23) & 0xffu) - 127 + 15;
    std::uint32_t mantissa = bits & 0x7fffffu;

    if (exponent <= 0)
        return static_cast<std::uint16_t>(sign); // Flush tiny values to 0.
    if (exponent >= 31)
        return static_cast<std::uint16_t>(sign | 0x7c00u); // Infinity.
    // Round mantissa from 23 to 10 bits.
    mantissa += 0x1000u;
    if (mantissa & 0x800000u) {
        mantissa = 0;
        if (exponent + 1 >= 31)
            return static_cast<std::uint16_t>(sign | 0x7c00u);
        return static_cast<std::uint16_t>(
            sign | (static_cast<std::uint32_t>(exponent + 1) << 10));
    }
    return static_cast<std::uint16_t>(
        sign | (static_cast<std::uint32_t>(exponent) << 10) |
        (mantissa >> 13));
}

/**
 * Common random-walk machinery for the floating-point families.
 *
 * Real numeric data rarely carries full mantissa entropy: grid coordinates
 * are multiples of a spacing, sensor data has limited precision, many
 * values are small integers or constants. @p quant_bits therefore rounds
 * every emitted value to that many significant mantissa bits (0 keeps full
 * precision); the resulting zero low-order bits are a large part of why
 * XOR encoding works as well as the paper reports.
 */
class FloatWalk
{
  public:
    FloatWalk(double magnitude, double rel_step, std::uint64_t seed,
              unsigned quant_bits = 0)
        : magnitude_(magnitude), rel_step_(rel_step),
          quant_bits_(quant_bits), rng_(seed)
    {
        value_ = magnitude_ * (0.5 + rng_.nextDouble());
    }

    double next()
    {
        value_ += magnitude_ * rel_step_ * rng_.nextGaussian();
        // Occasionally jump to a new magnitude region (new array section).
        if (rng_.nextBool(0.002))
            value_ = magnitude_ * (0.5 + rng_.nextDouble()) *
                     (rng_.nextBool(0.5) ? 1.0 : -1.0);
        return quantize(value_);
    }

  private:
    double quantize(double value) const
    {
        if (quant_bits_ == 0 || value == 0.0)
            return value;
        int exponent = 0;
        const double mantissa = std::frexp(value, &exponent);
        const double scale = std::ldexp(1.0, static_cast<int>(quant_bits_));
        return std::ldexp(std::round(mantissa * scale) / scale, exponent);
    }

    double magnitude_;
    double rel_step_;
    unsigned quant_bits_;
    double value_;
    Rng rng_;
};

class SoaFloatPattern : public Pattern
{
  public:
    SoaFloatPattern(double magnitude, double rel_step, std::uint64_t seed,
                    unsigned quant_bits)
        : walk_(magnitude, rel_step, seed, quant_bits)
    {
    }

    std::string name() const override { return "soa-fp32"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        for (std::size_t off = 0; off + 4 <= out.size(); off += 4) {
            const auto value = static_cast<float>(walk_.next());
            std::memcpy(out.data() + off, &value, 4);
        }
    }

  private:
    FloatWalk walk_;
};

class SoaDoublePattern : public Pattern
{
  public:
    SoaDoublePattern(double magnitude, double rel_step, std::uint64_t seed,
                     unsigned quant_bits)
        : walk_(magnitude, rel_step, seed, quant_bits)
    {
    }

    std::string name() const override { return "soa-fp64"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        for (std::size_t off = 0; off + 8 <= out.size(); off += 8) {
            const double value = walk_.next();
            std::memcpy(out.data() + off, &value, 8);
        }
    }

  private:
    FloatWalk walk_;
};

class VecFloatPattern : public Pattern
{
  public:
    VecFloatPattern(unsigned components, std::size_t elem_bytes,
                    double rel_step, std::uint64_t seed,
                    unsigned quant_bits)
        : elem_bytes_(elem_bytes)
    {
        BXT_ASSERT(components >= 2 && components <= 4);
        BXT_ASSERT(elem_bytes == 2 || elem_bytes == 4 || elem_bytes == 8);
        Rng rng(seed);
        walks_.reserve(components);
        for (unsigned c = 0; c < components; ++c) {
            // Each component gets its own magnitude (positions vs masses
            // vs velocities), and roughly half are signed quantities.
            const double magnitude =
                std::pow(10.0, -1.0 + 4.0 * rng.nextDouble()) *
                (rng.nextBool(0.5) ? 1.0 : -1.0);
            walks_.emplace_back(magnitude, rel_step, rng.next64(),
                                quant_bits);
        }
    }

    std::string name() const override
    {
        return "vec" + std::to_string(walks_.size()) + "-fp" +
               std::to_string(elem_bytes_ * 8);
    }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        for (std::size_t off = 0; off + elem_bytes_ <= out.size();
             off += elem_bytes_) {
            const double value = walks_[component_].next();
            component_ = (component_ + 1) % walks_.size();
            if (elem_bytes_ == 2) {
                const std::uint16_t h =
                    floatToHalf(static_cast<float>(value));
                std::memcpy(out.data() + off, &h, 2);
            } else if (elem_bytes_ == 4) {
                const auto v = static_cast<float>(value);
                std::memcpy(out.data() + off, &v, 4);
            } else {
                std::memcpy(out.data() + off, &value, 8);
            }
        }
    }

  private:
    std::size_t elem_bytes_;
    std::vector<FloatWalk> walks_;
    std::size_t component_ = 0;
};

class HalfFloatPattern : public Pattern
{
  public:
    HalfFloatPattern(double magnitude, double rel_step, std::uint64_t seed)
        : walk_(magnitude, rel_step, seed)
    {
    }

    std::string name() const override { return "soa-fp16"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        for (std::size_t off = 0; off + 2 <= out.size(); off += 2) {
            const std::uint16_t half =
                floatToHalf(static_cast<float>(walk_.next()));
            std::memcpy(out.data() + off, &half, 2);
        }
    }

  private:
    FloatWalk walk_;
};

class IntStridePattern : public Pattern
{
  public:
    IntStridePattern(std::size_t elem_bytes, std::int64_t stride,
                     unsigned noise_bits, std::uint64_t seed,
                     unsigned value_bits)
        : elem_bytes_(elem_bytes), stride_(stride), noise_bits_(noise_bits),
          rng_(seed)
    {
        BXT_ASSERT(elem_bytes == 4 || elem_bytes == 8);
        BXT_ASSERT(noise_bits <= 16);
        if (value_bits == 0)
            value_bits = elem_bytes == 4 ? 24 : 48;
        BXT_ASSERT(value_bits <= elem_bytes * 8);
        counter_ = rng_.next64() >> (64 - value_bits);
    }

    std::string name() const override
    {
        return "int" + std::to_string(elem_bytes_ * 8) + "-stride";
    }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        for (std::size_t off = 0; off + elem_bytes_ <= out.size();
             off += elem_bytes_) {
            std::uint64_t value = counter_;
            if (noise_bits_ > 0)
                value ^= rng_.next64() & ((1ull << noise_bits_) - 1);
            if (elem_bytes_ == 4) {
                const auto v32 = static_cast<std::uint32_t>(value);
                std::memcpy(out.data() + off, &v32, 4);
            } else {
                std::memcpy(out.data() + off, &value, 8);
            }
            counter_ = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(counter_) + stride_);
        }
    }

  private:
    std::size_t elem_bytes_;
    std::int64_t stride_;
    unsigned noise_bits_;
    std::uint64_t counter_;
    Rng rng_;
};

class PointerPattern : public Pattern
{
  public:
    PointerPattern(std::uint64_t base, std::uint64_t region_bytes,
                   std::uint64_t seed)
        : base_(base), region_(region_bytes), rng_(seed)
    {
        BXT_ASSERT(region_bytes > 0);
    }

    std::string name() const override { return "pointer"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        for (std::size_t off = 0; off + 8 <= out.size(); off += 8) {
            // Pointers are 8-byte aligned within the region.
            const std::uint64_t value =
                base_ + (rng_.nextBounded(region_ / 8) * 8);
            std::memcpy(out.data() + off, &value, 8);
        }
    }

  private:
    std::uint64_t base_;
    std::uint64_t region_;
    Rng rng_;
};

class RandomPattern : public Pattern
{
  public:
    explicit RandomPattern(std::uint64_t seed) : rng_(seed) {}

    std::string name() const override { return "random"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        for (std::size_t off = 0; off + 8 <= out.size(); off += 8)
            storeWord64(out.data() + off, rng_.next64());
    }

  private:
    Rng rng_;
};

class ConstantElemPattern : public Pattern
{
  public:
    ConstantElemPattern(std::size_t elem_bytes, double redraw,
                        std::uint64_t seed)
        : elem_bytes_(elem_bytes), redraw_(redraw), rng_(seed)
    {
        BXT_ASSERT(isPowerOfTwo(elem_bytes) && elem_bytes <= 8);
        value_ = rng_.next64();
    }

    std::string name() const override { return "constant-elem"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        if (rng_.nextBool(redraw_))
            value_ = rng_.next64();
        for (std::size_t off = 0; off + elem_bytes_ <= out.size();
             off += elem_bytes_) {
            std::memcpy(out.data() + off, &value_, elem_bytes_);
        }
    }

  private:
    std::size_t elem_bytes_;
    double redraw_;
    std::uint64_t value_;
    Rng rng_;
};

class RgbaPixelPattern : public Pattern
{
  public:
    RgbaPixelPattern(unsigned channel_step, std::uint8_t alpha,
                     std::uint64_t seed)
        : step_(channel_step), alpha_(alpha), rng_(seed)
    {
        for (auto &c : channels_)
            c = static_cast<std::uint8_t>(rng_.next64());
    }

    std::string name() const override { return "rgba8"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        for (std::size_t off = 0; off + 4 <= out.size(); off += 4) {
            // Rendered content has edges: occasionally the pixel run hits
            // a different surface and all channels jump.
            if (rng_.nextBool(0.08)) {
                for (auto &c : channels_)
                    c = static_cast<std::uint8_t>(rng_.next64());
            }
            for (int c = 0; c < 3; ++c) {
                const auto delta = static_cast<int>(
                    rng_.nextBounded(2 * step_ + 1)) - static_cast<int>(step_);
                channels_[static_cast<std::size_t>(c)] =
                    static_cast<std::uint8_t>(std::clamp(
                        static_cast<int>(
                            channels_[static_cast<std::size_t>(c)]) + delta,
                        0, 255));
                out[off + static_cast<std::size_t>(c)] =
                    channels_[static_cast<std::size_t>(c)];
            }
            out[off + 3] = alpha_;
        }
    }

  private:
    unsigned step_;
    std::uint8_t alpha_;
    std::uint8_t channels_[3];
    Rng rng_;
};

class DepthBufferPattern : public Pattern
{
  public:
    DepthBufferPattern(double depth, double spread, std::uint64_t seed)
        : depth_(depth), spread_(spread), rng_(seed)
    {
    }

    std::string name() const override { return "zbuffer"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        // The surface drifts slowly; fragments within a transaction sit on
        // nearly the same plane, except across triangle silhouettes where
        // depth jumps to another surface.
        depth_ = std::clamp(depth_ + 0.001 * rng_.nextGaussian(), 0.05, 0.95);
        for (std::size_t off = 0; off + 4 <= out.size(); off += 4) {
            if (rng_.nextBool(0.06))
                depth_ = 0.05 + 0.9 * rng_.nextDouble();
            const auto z = static_cast<float>(
                std::clamp(depth_ + spread_ * rng_.nextGaussian(), 0.0, 1.0));
            std::memcpy(out.data() + off, &z, 4);
        }
    }

  private:
    double depth_;
    double spread_;
    Rng rng_;
};

class TextPattern : public Pattern
{
  public:
    explicit TextPattern(std::uint64_t seed) : rng_(seed) {}

    std::string name() const override { return "text"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        static const char *const lexicon[] = {
            "the",    "memory",  "system",  "data",   "transfer", "energy",
            "encode", "channel", "dram",    "cache",  "value",    "index",
            "packet", "stream",  "kernel",  "vector", "matrix",   "string",
        };
        std::size_t pos = 0;
        while (pos < out.size()) {
            const char *word =
                lexicon[rng_.nextBounded(std::size(lexicon))];
            for (const char *c = word; *c != '\0' && pos < out.size(); ++c)
                out[pos++] = static_cast<std::uint8_t>(*c);
            if (pos < out.size())
                out[pos++] = ' ';
        }
    }

  private:
    Rng rng_;
};

class EnumBytePattern : public Pattern
{
  public:
    EnumBytePattern(unsigned levels, std::uint64_t seed)
        : levels_(levels), rng_(seed)
    {
        BXT_ASSERT(levels >= 2 && levels <= 256);
    }

    std::string name() const override { return "enum-bytes"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        for (auto &byte : out)
            byte = static_cast<std::uint8_t>(rng_.nextBounded(levels_));
    }

  private:
    unsigned levels_;
    Rng rng_;
};

class AosRecordPattern : public Pattern
{
  public:
    AosRecordPattern(std::size_t record_bytes, std::uint64_t seed)
        : record_bytes_(record_bytes), rng_(seed),
          float_walk_(1.0e3, 0.01, seed ^ 0x5bd1e995u)
    {
        BXT_ASSERT(record_bytes >= 16 && record_bytes <= 64);
        id_ = rng_.next64() & 0xffffffu;
        pointer_base_ = 0x00007f2000000000ull +
                        (rng_.next64() & 0x3fffff000ull);
    }

    std::string name() const override { return "aos-record"; }

    void fill(Rng &, std::span<std::uint8_t> out) override
    {
        // Records stream continuously across transactions; phase_ remembers
        // where the last transaction stopped inside a record.
        for (std::size_t pos = 0; pos < out.size(); ++pos) {
            if (phase_ == 0)
                regenerateRecord();
            out[pos] = record_[phase_];
            phase_ = (phase_ + 1) % record_bytes_;
        }
    }

  private:
    void regenerateRecord()
    {
        // Layout: u32 id | f32 value | u64 pointer | remaining doubles.
        const auto id32 = static_cast<std::uint32_t>(id_++);
        std::memcpy(record_, &id32, 4);
        const auto value = static_cast<float>(float_walk_.next());
        std::memcpy(record_ + 4, &value, 4);
        const std::uint64_t ptr =
            pointer_base_ + (rng_.nextBounded(1 << 20) * 8);
        std::memcpy(record_ + 8, &ptr, 8);
        for (std::size_t off = 16; off + 8 <= record_bytes_; off += 8) {
            const double d = float_walk_.next();
            std::memcpy(record_ + off, &d, 8);
        }
        for (std::size_t off = record_bytes_ & ~std::size_t{7};
             off < record_bytes_; ++off) {
            record_[off] = static_cast<std::uint8_t>(rng_.next64());
        }
    }

    std::size_t record_bytes_;
    Rng rng_;
    FloatWalk float_walk_;
    std::uint64_t id_;
    std::uint64_t pointer_base_;
    std::uint8_t record_[64] = {};
    std::size_t phase_ = 0;
};

class ZeroMixedPattern : public Pattern
{
  public:
    ZeroMixedPattern(PatternPtr inner, std::size_t elem_bytes,
                     double zero_prob, std::uint64_t seed)
        : inner_(std::move(inner)), elem_bytes_(elem_bytes),
          zero_prob_(zero_prob), rng_(seed)
    {
        BXT_ASSERT(elem_bytes >= 2 && isPowerOfTwo(elem_bytes));
    }

    std::string name() const override
    {
        return inner_->name() + "+zeros";
    }

    void fill(Rng &rng, std::span<std::uint8_t> out) override
    {
        inner_->fill(rng, out);
        for (std::size_t off = 0; off + elem_bytes_ <= out.size();
             off += elem_bytes_) {
            if (rng_.nextBool(zero_prob_))
                std::memset(out.data() + off, 0, elem_bytes_);
        }
    }

  private:
    PatternPtr inner_;
    std::size_t elem_bytes_;
    double zero_prob_;
    Rng rng_;
};

class ZeroBurstPattern : public Pattern
{
  public:
    ZeroBurstPattern(PatternPtr inner, double burst_prob, unsigned burst_len,
                     std::uint64_t seed)
        : inner_(std::move(inner)), burst_prob_(burst_prob),
          burst_len_(burst_len), rng_(seed)
    {
    }

    std::string name() const override
    {
        return inner_->name() + "+zero-bursts";
    }

    void fill(Rng &rng, std::span<std::uint8_t> out) override
    {
        if (remaining_ == 0 && rng_.nextBool(burst_prob_))
            remaining_ = burst_len_;
        if (remaining_ > 0) {
            --remaining_;
            std::memset(out.data(), 0, out.size());
            return;
        }
        inner_->fill(rng, out);
    }

  private:
    PatternPtr inner_;
    double burst_prob_;
    unsigned burst_len_;
    unsigned remaining_ = 0;
    Rng rng_;
};

class MixPattern : public Pattern
{
  public:
    MixPattern(std::vector<std::pair<PatternPtr, double>> members,
               double stickiness, std::uint64_t seed)
        : members_(std::move(members)), stickiness_(stickiness), rng_(seed)
    {
        BXT_ASSERT(!members_.empty());
        double total = 0.0;
        for (const auto &[pattern, weight] : members_) {
            BXT_ASSERT(pattern != nullptr && weight > 0.0);
            total += weight;
        }
        cumulative_.reserve(members_.size());
        double acc = 0.0;
        for (const auto &[pattern, weight] : members_) {
            acc += weight / total;
            cumulative_.push_back(acc);
        }
        pickMember();
    }

    std::string name() const override { return "mix"; }

    void fill(Rng &rng, std::span<std::uint8_t> out) override
    {
        if (!rng_.nextBool(stickiness_))
            pickMember();
        members_[current_].first->fill(rng, out);
    }

  private:
    void pickMember()
    {
        const double draw = rng_.nextDouble();
        current_ = 0;
        while (current_ + 1 < cumulative_.size() &&
               draw > cumulative_[current_]) {
            ++current_;
        }
    }

    std::vector<std::pair<PatternPtr, double>> members_;
    std::vector<double> cumulative_;
    double stickiness_;
    std::size_t current_ = 0;
    Rng rng_;
};

} // namespace

PatternPtr
makeSoaFloatPattern(double magnitude, double rel_step, std::uint64_t seed,
                    unsigned quant_bits)
{
    return std::make_unique<SoaFloatPattern>(magnitude, rel_step, seed,
                                             quant_bits);
}

PatternPtr
makeSoaDoublePattern(double magnitude, double rel_step, std::uint64_t seed,
                     unsigned quant_bits)
{
    return std::make_unique<SoaDoublePattern>(magnitude, rel_step, seed,
                                              quant_bits);
}

PatternPtr
makeVecFloatPattern(unsigned components, std::size_t elem_bytes,
                    double rel_step, std::uint64_t seed,
                    unsigned quant_bits)
{
    return std::make_unique<VecFloatPattern>(components, elem_bytes,
                                             rel_step, seed, quant_bits);
}

PatternPtr
makeHalfFloatPattern(double magnitude, double rel_step, std::uint64_t seed)
{
    return std::make_unique<HalfFloatPattern>(magnitude, rel_step, seed);
}

PatternPtr
makeIntStridePattern(std::size_t elem_bytes, std::int64_t stride,
                     unsigned noise_bits, std::uint64_t seed,
                     unsigned value_bits)
{
    return std::make_unique<IntStridePattern>(elem_bytes, stride, noise_bits,
                                              seed, value_bits);
}

PatternPtr
makePointerPattern(std::uint64_t base, std::uint64_t region_bytes,
                   std::uint64_t seed)
{
    return std::make_unique<PointerPattern>(base, region_bytes, seed);
}

PatternPtr
makeRandomPattern(std::uint64_t seed)
{
    return std::make_unique<RandomPattern>(seed);
}

PatternPtr
makeConstantElemPattern(std::size_t elem_bytes, double redraw,
                        std::uint64_t seed)
{
    return std::make_unique<ConstantElemPattern>(elem_bytes, redraw, seed);
}

PatternPtr
makeRgbaPixelPattern(unsigned channel_step, std::uint8_t alpha,
                     std::uint64_t seed)
{
    return std::make_unique<RgbaPixelPattern>(channel_step, alpha, seed);
}

PatternPtr
makeDepthBufferPattern(double depth, double spread, std::uint64_t seed)
{
    return std::make_unique<DepthBufferPattern>(depth, spread, seed);
}

PatternPtr
makeTextPattern(std::uint64_t seed)
{
    return std::make_unique<TextPattern>(seed);
}

PatternPtr
makeEnumBytePattern(unsigned levels, std::uint64_t seed)
{
    return std::make_unique<EnumBytePattern>(levels, seed);
}

PatternPtr
makeAosRecordPattern(std::size_t record_bytes, std::uint64_t seed)
{
    return std::make_unique<AosRecordPattern>(record_bytes, seed);
}

PatternPtr
makeZeroMixedPattern(PatternPtr inner, std::size_t elem_bytes,
                     double zero_prob, std::uint64_t seed)
{
    return std::make_unique<ZeroMixedPattern>(std::move(inner), elem_bytes,
                                              zero_prob, seed);
}

PatternPtr
makeZeroBurstPattern(PatternPtr inner, double burst_prob, unsigned burst_len,
                     std::uint64_t seed)
{
    return std::make_unique<ZeroBurstPattern>(std::move(inner), burst_prob,
                                              burst_len, seed);
}

PatternPtr
makeMixPattern(std::vector<std::pair<PatternPtr, double>> members,
               double stickiness, std::uint64_t seed)
{
    return std::make_unique<MixPattern>(std::move(members), stickiness, seed);
}

} // namespace bxt
