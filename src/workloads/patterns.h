/**
 * @file
 * Data-pattern generators: the value-level families that GPU and CPU
 * memory traffic is composed of in this reproduction.
 *
 * The encoding mechanisms under study are sensitive only to the *values*
 * inside each DRAM transaction — the element granularity of similarity
 * (fp16/fp32/fp64/int/pointer), the fraction of all-zero elements, and
 * cross-transaction drift. Each Pattern below models one such family with
 * tunable parameters; workload "applications" (apps.h) are weighted
 * mixtures of patterns with per-app parameters drawn from documented
 * distributions (DESIGN.md §2).
 *
 * Patterns are stateful streams: successive transactions continue the same
 * walks/counters, which matters for toggle statistics and for the
 * BD-Encoding baseline's cross-transaction repository.
 */

#ifndef BXT_WORKLOADS_PATTERNS_H
#define BXT_WORKLOADS_PATTERNS_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace bxt {

/** A stream of transaction payloads from one data family. */
class Pattern
{
  public:
    virtual ~Pattern() = default;

    /** Family name for reports. */
    virtual std::string name() const = 0;

    /** Produce the next transaction's payload into @p out. */
    virtual void fill(Rng &rng, std::span<std::uint8_t> out) = 0;
};

using PatternPtr = std::unique_ptr<Pattern>;

/**
 * Structure-of-arrays float data (fp32): a random walk of magnitude
 * @p magnitude whose per-element relative step is @p rel_step. Small steps
 * keep sign/exponent/upper-mantissa bytes identical between adjacent
 * elements — the paper's transaction0 (Figure 3) shape.
 */
PatternPtr makeSoaFloatPattern(double magnitude, double rel_step,
                               std::uint64_t seed,
                               unsigned quant_bits = 0);

/** Structure-of-arrays double data (fp64): 8-byte-granular similarity. */
PatternPtr makeSoaDoublePattern(double magnitude, double rel_step,
                                std::uint64_t seed,
                                unsigned quant_bits = 0);

/**
 * Interleaved vector-component float data: @p components independent walks
 * (x, y, z, ... of float2/float3/float4 records) emitted cyclically, each
 * with its own magnitude. The record period is components · elem_bytes, so
 * similarity appears at 8/12/16-byte granularity — the data that makes
 * base-size selection matter (§IV-B) and the main source of baseline
 * toggle activity (components differ beat to beat until XOR encoding
 * cancels the repeating structure).
 *
 * @param elem_bytes 2 (fp16), 4 (fp32), or 8 (fp64) per component.
 */
PatternPtr makeVecFloatPattern(unsigned components, std::size_t elem_bytes,
                               double rel_step, std::uint64_t seed,
                               unsigned quant_bits = 0);

/** Structure-of-arrays half-float data (fp16): 2-byte-granular similarity. */
PatternPtr makeHalfFloatPattern(double magnitude, double rel_step,
                                std::uint64_t seed);

/**
 * Integer array data: a counter advancing by @p stride per element with
 * @p noise_bits of low-order randomness; @p elem_bytes is 4 or 8.
 * Models index/key arrays (Figure 7a's 3901 3903 3905 ... stream).
 * @p value_bits bounds the counter's magnitude (0 picks a default of
 * 24/48 bits); small-valued arrays (<2^16) leave upper halfwords zero,
 * the data that favours small bases with ZDR.
 */
PatternPtr makeIntStridePattern(std::size_t elem_bytes, std::int64_t stride,
                                unsigned noise_bits, std::uint64_t seed,
                                unsigned value_bits = 0);

/**
 * Pointer array data: 64-bit addresses uniform in a @p region_bytes sized
 * heap based at @p base — upper bytes identical, lower bytes noisy.
 */
PatternPtr makePointerPattern(std::uint64_t base, std::uint64_t region_bytes,
                              std::uint64_t seed);

/** Incompressible data (encrypted/compressed payloads, RNG state). */
PatternPtr makeRandomPattern(std::uint64_t seed);

/**
 * A repeated @p elem_bytes constant element re-drawn with probability
 * @p redraw per transaction (lookup tables, broadcast values).
 */
PatternPtr makeConstantElemPattern(std::size_t elem_bytes, double redraw,
                                   std::uint64_t seed);

/**
 * RGBA8 framebuffer data: channel values take smooth spatial walks with
 * step @p channel_step; alpha is a constant @p alpha (commonly 0xFF).
 */
PatternPtr makeRgbaPixelPattern(unsigned channel_step, std::uint8_t alpha,
                                std::uint64_t seed);

/**
 * Depth-buffer data: fp32 depths clustered around a slowly moving surface
 * at @p depth with spread @p spread — highly similar upper bytes.
 */
PatternPtr makeDepthBufferPattern(double depth, double spread,
                                  std::uint64_t seed);

/** ASCII text data (CPU workloads): words from a fixed lexicon. */
PatternPtr makeTextPattern(std::uint64_t seed);

/**
 * Enum/flag byte arrays: each byte drawn i.i.d. from {0..levels-1}
 * (state machines, tag arrays, boolean tables). Such skewed, low-density
 * data is the class that *regresses* under XOR encoding: the bitwise
 * difference of two independent low-weight values carries more `1`s than
 * the values themselves — a big reason CPU workloads benefit less
 * (Figure 18).
 */
PatternPtr makeEnumBytePattern(unsigned levels, std::uint64_t seed);

/**
 * Array-of-structures data (CPU): a repeating record of mixed field types
 * with stride @p record_bytes (not necessarily transaction aligned), which
 * yields little *intra*-transaction similarity — the reason Figure 18's
 * CPU reductions are smaller.
 */
PatternPtr makeAosRecordPattern(std::size_t record_bytes, std::uint64_t seed);

/**
 * Wrap @p inner, replacing each aligned @p elem_bytes element with zeros
 * with probability @p zero_prob — the interspersed zero elements that
 * motivate Zero Data Remapping (§IV-A).
 */
PatternPtr makeZeroMixedPattern(PatternPtr inner, std::size_t elem_bytes,
                                double zero_prob, std::uint64_t seed);

/**
 * Wrap @p inner, emitting all-zero transactions in bursts: a burst starts
 * with probability @p burst_prob and lasts @p burst_len transactions
 * (freshly zeroed allocations, cleared buffers).
 */
PatternPtr makeZeroBurstPattern(PatternPtr inner, double burst_prob,
                                unsigned burst_len, std::uint64_t seed);

/**
 * Weighted mixture with phase stickiness: each transaction is drawn from
 * one member pattern; the member switches with probability
 * 1 - @p stickiness (workloads execute in phases, so consecutive
 * transactions usually come from the same data structure).
 */
PatternPtr makeMixPattern(std::vector<std::pair<PatternPtr, double>> members,
                          double stickiness, std::uint64_t seed);

} // namespace bxt

#endif // BXT_WORKLOADS_PATTERNS_H
