#include "workloads/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>

#include "common/json.h"

namespace bxt::scenario {
namespace {

/** Default spec mix: the paper's main pipelines plus a raw control. */
std::vector<SpecShare>
defaultSpecMix()
{
    return {{"xor4+zdr", 0.35},
            {"universal3+zdr", 0.25},
            {"dbi4", 0.15},
            {"universal3+zdr|dbi4", 0.10},
            {"baseline", 0.15}};
}

/** Default size mix: GPU sectors dominate, some CPU-line traffic. */
std::vector<SizeShare>
defaultSizeMix()
{
    return {{32, 0.7}, {64, 0.3}};
}

/** Weighted index pick from normalized cumulative weights. */
std::size_t
pickCumulative(const std::vector<double> &cumulative, double u)
{
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), u);
    const std::size_t index =
        static_cast<std::size_t>(it - cumulative.begin());
    return std::min(index, cumulative.size() - 1);
}

/** Cumulative distribution of arbitrary positive weights. */
template <typename Share>
std::vector<double>
cumulativeOf(const std::vector<Share> &shares)
{
    double total = 0.0;
    for (const Share &share : shares)
        total += share.weight;
    std::vector<double> cumulative;
    cumulative.reserve(shares.size());
    double running = 0.0;
    for (const Share &share : shares) {
        running += share.weight / total;
        cumulative.push_back(running);
    }
    if (!cumulative.empty())
        cumulative.back() = 1.0;
    return cumulative;
}

/**
 * The data family assigned to tenant @p index: cycled over the
 * transaction-value families of patterns.h so a population exercises
 * float-similar, integer, pointer, zero-mixed, and incompressible
 * traffic side by side (their ones-on-bus deltas differ sharply, which
 * is what makes the per-tenant columns of the bench JSON informative).
 */
PatternPtr
tenantPattern(std::uint32_t index, Rng &setup)
{
    const std::uint64_t seed = setup.next64();
    switch (index % 6) {
    case 0: return makeSoaFloatPattern(1.0, 1.0e-3, seed);
    case 1: return makeIntStridePattern(4, 2, 4, seed);
    case 2:
        return makePointerPattern(0x7f00'0000'0000ull, 1ull << 30, seed);
    case 3: return makeVecFloatPattern(4, 4, 1.0e-3, seed);
    case 4:
        return makeZeroMixedPattern(
            makeIntStridePattern(4, 1, 2, setup.next64()), 4, 0.3, seed);
    default: return makeRandomPattern(seed);
    }
}

std::string
trim(const std::string &text)
{
    const std::size_t begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return {};
    const std::size_t end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

bool
parseDouble(const std::string &text, double &out)
{
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
}

bool
parseU32(const std::string &text, std::uint32_t &out)
{
    char *end = nullptr;
    const unsigned long value = std::strtoul(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        return false;
    out = static_cast<std::uint32_t>(value);
    return true;
}

/** Split `item:weight,item:weight,...`; item may not contain ':'. */
bool
parsePairs(const std::string &text,
           std::vector<std::pair<std::string, double>> &out)
{
    std::stringstream stream(text);
    std::string token;
    while (std::getline(stream, token, ',')) {
        token = trim(token);
        if (token.empty())
            return false;
        const std::size_t colon = token.rfind(':');
        if (colon == std::string::npos || colon == 0)
            return false;
        double weight = 0.0;
        if (!parseDouble(trim(token.substr(colon + 1)), weight) ||
            weight <= 0.0)
            return false;
        out.emplace_back(trim(token.substr(0, colon)), weight);
    }
    return !out.empty();
}

template <typename Share>
std::string
formatPairs(const std::vector<Share> &shares,
            const std::function<std::string(const Share &)> &item)
{
    std::string out;
    for (const Share &share : shares) {
        if (!out.empty())
            out += ',';
        out += item(share) + ':' + JsonWriter::formatNumber(share.weight);
    }
    return out;
}

/** Sanity bounds shared by parse() and preset(). */
std::string
validate(const Config &config)
{
    if (config.tenants == 0)
        return "tenants must be >= 1";
    if (config.specMix.empty())
        return "spec_mix must not be empty";
    if (config.sizeMix.empty())
        return "size_mix must not be empty";
    if (config.busBits != 32 && config.busBits != 64)
        return "bus_bits must be 32 or 64";
    if (config.minTx == 0 || config.maxTx < config.minTx)
        return "need 1 <= min_tx <= max_tx";
    if (config.alpha < 0.0)
        return "alpha must be >= 0";
    if (config.hotFraction < 0.0 || config.hotFraction >= 1.0)
        return "hot_fraction must be in [0, 1)";
    if (config.burstProb < 0.0 || config.burstProb > 1.0)
        return "burst_prob must be in [0, 1]";
    if (config.burstFactor <= 0.0)
        return "burst_factor must be > 0";
    if (config.requests == 0)
        return "requests must be >= 1";
    for (const SizeShare &share : config.sizeMix) {
        if (share.txBytes < 8 || share.txBytes > 64 ||
            (share.txBytes & (share.txBytes - 1)) != 0) {
            return "size_mix txBytes must be a power of two in [8, 64]";
        }
    }
    return {};
}

} // namespace

std::vector<double>
zipfWeights(std::uint32_t n, double alpha)
{
    std::vector<double> weights(n, 0.0);
    double total = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
        weights[i] = 1.0 / std::pow(static_cast<double>(i) + 1.0, alpha);
        total += weights[i];
    }
    for (double &w : weights)
        w /= total;
    return weights;
}

std::vector<std::string>
presetNames()
{
    return {"uniform", "zipf-0.99", "burst", "hot-flood"};
}

bool
preset(const std::string &name, Config &out, std::string &err)
{
    Config config;
    config.name = name;
    config.specMix = defaultSpecMix();
    config.sizeMix = defaultSizeMix();
    if (name == "uniform") {
        // Control: every tenant equally popular, steady arrivals.
        config.tenants = 16;
        config.alpha = 0.0;
    } else if (name == "zipf-0.99") {
        // YCSB-style skew: the head few tenants dominate the stream.
        config.tenants = 32;
        config.alpha = 0.99;
        config.ratePerSec = 150000.0;
    } else if (name == "burst") {
        // Skewed population with burst episodes at 8x the base rate.
        config.tenants = 16;
        config.alpha = 0.8;
        config.ratePerSec = 60000.0;
        config.burstProb = 0.02;
        config.burstLen = 64;
        config.burstFactor = 8.0;
    } else if (name == "hot-flood") {
        // One tenant floods one spec: the shared-pool sharding stress
        // case — 90 % of requests land on tenant 0 / xor4+zdr.
        config.tenants = 16;
        config.alpha = 0.99;
        config.hotFraction = 0.9;
        config.hotSpec = "xor4+zdr";
        config.sizeMix = {{32, 1.0}};
        config.minTx = 64;
        config.maxTx = 256;
        config.ratePerSec = 200000.0;
    } else {
        err = "unknown scenario preset '" + name + "' (have";
        for (const std::string &known : presetNames())
            err += " " + known;
        err += ")";
        return false;
    }
    out = std::move(config);
    return true;
}

bool
parse(const std::string &text, Config &out, std::string &err)
{
    Config config;
    config.specMix.clear();
    config.sizeMix.clear();
    std::stringstream stream(text);
    std::string line;
    std::size_t line_no = 0;
    std::set<std::string> seen;
    while (std::getline(stream, line)) {
        ++line_no;
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            err = "line " + std::to_string(line_no) + ": expected key = value";
            return false;
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        // A key given twice is almost always a copy-paste mistake; the
        // last-one-wins silent override it used to get hid real config
        // errors.
        if (!seen.insert(key).second) {
            err = "line " + std::to_string(line_no) + ": duplicate key '" +
                  key + "'";
            return false;
        }
        bool ok = true;
        if (key == "name") {
            config.name = value;
        } else if (key == "tenants") {
            ok = parseU32(value, config.tenants);
        } else if (key == "alpha") {
            ok = parseDouble(value, config.alpha);
        } else if (key == "spec_mix") {
            std::vector<std::pair<std::string, double>> pairs;
            ok = parsePairs(value, pairs);
            for (auto &[spec, weight] : pairs)
                config.specMix.push_back({std::move(spec), weight});
        } else if (key == "size_mix") {
            std::vector<std::pair<std::string, double>> pairs;
            ok = parsePairs(value, pairs);
            for (const auto &[size, weight] : pairs) {
                std::uint32_t tx_bytes = 0;
                ok = ok && parseU32(size, tx_bytes);
                config.sizeMix.push_back({tx_bytes, weight});
            }
        } else if (key == "bus_bits") {
            ok = parseU32(value, config.busBits);
        } else if (key == "min_tx") {
            ok = parseU32(value, config.minTx);
        } else if (key == "max_tx") {
            ok = parseU32(value, config.maxTx);
        } else if (key == "rate_per_sec") {
            ok = parseDouble(value, config.ratePerSec);
        } else if (key == "burst_prob") {
            ok = parseDouble(value, config.burstProb);
        } else if (key == "burst_len") {
            ok = parseU32(value, config.burstLen);
        } else if (key == "burst_factor") {
            ok = parseDouble(value, config.burstFactor);
        } else if (key == "hot_fraction") {
            ok = parseDouble(value, config.hotFraction);
        } else if (key == "hot_spec") {
            config.hotSpec = value;
        } else if (key == "requests") {
            ok = parseU32(value, config.requests);
        } else {
            err = "line " + std::to_string(line_no) + ": unknown key '" +
                  key + "'";
            return false;
        }
        if (!ok) {
            err = "line " + std::to_string(line_no) + ": bad value for '" +
                  key + "'";
            return false;
        }
    }
    if (config.specMix.empty())
        config.specMix = defaultSpecMix();
    if (config.sizeMix.empty())
        config.sizeMix = defaultSizeMix();
    const std::string problem = validate(config);
    if (!problem.empty()) {
        err = problem;
        return false;
    }
    out = std::move(config);
    return true;
}

std::string
format(const Config &config)
{
    std::string out = "# bxt scenario spec\n";
    out += "name = " + config.name + "\n";
    out += "tenants = " + std::to_string(config.tenants) + "\n";
    out += "alpha = " + JsonWriter::formatNumber(config.alpha) + "\n";
    out += "spec_mix = " +
           formatPairs<SpecShare>(
               config.specMix,
               [](const SpecShare &share) { return share.spec; }) +
           "\n";
    out += "size_mix = " +
           formatPairs<SizeShare>(
               config.sizeMix,
               [](const SizeShare &share) {
                   return std::to_string(share.txBytes);
               }) +
           "\n";
    out += "bus_bits = " + std::to_string(config.busBits) + "\n";
    out += "min_tx = " + std::to_string(config.minTx) + "\n";
    out += "max_tx = " + std::to_string(config.maxTx) + "\n";
    out += "rate_per_sec = " + JsonWriter::formatNumber(config.ratePerSec) +
           "\n";
    out += "burst_prob = " + JsonWriter::formatNumber(config.burstProb) +
           "\n";
    out += "burst_len = " + std::to_string(config.burstLen) + "\n";
    out += "burst_factor = " +
           JsonWriter::formatNumber(config.burstFactor) + "\n";
    out += "hot_fraction = " +
           JsonWriter::formatNumber(config.hotFraction) + "\n";
    out += "hot_spec = " + config.hotSpec + "\n";
    out += "requests = " + std::to_string(config.requests) + "\n";
    return out;
}

bool
load(const std::string &name_or_path, Config &out, std::string &err)
{
    std::string preset_err;
    if (preset(name_or_path, out, preset_err))
        return true;
    std::ifstream in(name_or_path);
    if (!in) {
        err = preset_err + "; and no such file";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!parse(buffer.str(), out, err)) {
        err = name_or_path + ": " + err;
        return false;
    }
    return true;
}

Engine::Engine(Config config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed)
{
    reset();
}

void
Engine::reset()
{
    // Two independent derivations of the master seed: tenant setup
    // (assignments, pattern seeds, per-tenant streams) and the arrival/
    // selection stream, so changing the request count or replaying the
    // stream never perturbs tenant identities.
    Rng setup(seed_ ^ 0x5ce0a1105eedull);
    rng_ = Rng(seed_);
    emitted_ = 0;
    clockUs_ = 0.0;
    burstLeft_ = 0;

    const std::vector<double> spec_cdf = cumulativeOf(config_.specMix);
    const std::vector<double> size_cdf = cumulativeOf(config_.sizeMix);
    tenants_.clear();
    tenants_.reserve(config_.tenants);
    for (std::uint32_t i = 0; i < config_.tenants; ++i) {
        Tenant tenant;
        tenant.spec =
            config_.specMix[pickCumulative(spec_cdf, setup.nextDouble())]
                .spec;
        tenant.txBytes =
            config_.sizeMix[pickCumulative(size_cdf, setup.nextDouble())]
                .txBytes;
        tenant.pattern = tenantPattern(i, setup);
        tenant.rng = setup.split();
        tenants_.push_back(std::move(tenant));
    }
    if (config_.hotFraction > 0.0 && !config_.hotSpec.empty())
        tenants_[0].spec = config_.hotSpec;

    const std::vector<double> weights =
        zipfWeights(config_.tenants, config_.alpha);
    cumulative_.clear();
    cumulative_.reserve(weights.size());
    double running = 0.0;
    for (const double w : weights) {
        running += w;
        cumulative_.push_back(running);
    }
    cumulative_.back() = 1.0;
}

const std::string &
Engine::tenantSpec(std::uint32_t t) const
{
    return tenants_.at(t).spec;
}

std::uint32_t
Engine::tenantTxBytes(std::uint32_t t) const
{
    return tenants_.at(t).txBytes;
}

double
Engine::tenantWeight(std::uint32_t t) const
{
    const double zipf =
        t == 0 ? cumulative_[0] : cumulative_[t] - cumulative_[t - 1];
    const double hot = config_.hotFraction;
    return (t == 0 ? hot : 0.0) + (1.0 - hot) * zipf;
}

std::uint32_t
Engine::sampleTenant()
{
    if (config_.hotFraction > 0.0 &&
        rng_.nextDouble() < config_.hotFraction)
        return 0;
    return static_cast<std::uint32_t>(
        pickCumulative(cumulative_, rng_.nextDouble()));
}

bool
Engine::next(Request &out)
{
    if (emitted_ >= config_.requests)
        return false;

    out.index = static_cast<std::uint32_t>(emitted_);
    out.tenant = sampleTenant();

    // Burst bookkeeping: an episode can start on any non-burst request
    // and then holds the elevated rate for burstLen requests.
    if (burstLeft_ == 0 && config_.burstLen > 0 &&
        config_.burstProb > 0.0 && rng_.nextBool(config_.burstProb)) {
        burstLeft_ = config_.burstLen;
    }
    out.burst = burstLeft_ > 0;
    if (out.burst)
        --burstLeft_;

    // Open-loop Poisson arrivals: exponential inter-arrival gaps at the
    // (possibly burst-boosted) instantaneous rate. log1p(-u) keeps the
    // draw finite for u in [0, 1).
    if (config_.ratePerSec > 0.0) {
        const double rate =
            config_.ratePerSec *
            (out.burst ? config_.burstFactor : 1.0);
        clockUs_ += -std::log1p(-rng_.nextDouble()) * 1.0e6 / rate;
    }
    out.arrivalUs = clockUs_;

    out.count = config_.minTx == config_.maxTx
                    ? config_.minTx
                    : config_.minTx +
                          static_cast<std::uint32_t>(rng_.nextBounded(
                              config_.maxTx - config_.minTx + 1));

    Tenant &tenant = tenants_[out.tenant];
    out.spec = tenant.spec;
    out.txBytes = tenant.txBytes;
    out.busBits = config_.busBits;
    out.payload.resize(static_cast<std::size_t>(out.count) * out.txBytes);
    for (std::uint32_t i = 0; i < out.count; ++i) {
        tenant.pattern->fill(
            tenant.rng,
            std::span<std::uint8_t>(out.payload.data() +
                                        static_cast<std::size_t>(i) *
                                            out.txBytes,
                                    out.txBytes));
    }

    ++emitted_;
    return true;
}

std::uint64_t
digest(const Config &config, std::uint64_t seed, std::size_t requests)
{
    constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
    constexpr std::uint64_t kFnvPrime = 1099511628211ull;
    std::uint64_t hash = kFnvOffset;
    const auto mix_byte = [&](std::uint8_t byte) {
        hash = (hash ^ byte) * kFnvPrime;
    };
    const auto mix64 = [&](std::uint64_t value) {
        for (int i = 0; i < 8; ++i)
            mix_byte(static_cast<std::uint8_t>(value >> (8 * i)));
    };

    Engine engine(config, seed);
    Request request;
    std::size_t emitted = 0;
    while (emitted < requests && engine.next(request)) {
        mix64(request.index);
        mix64(request.tenant);
        for (const char c : request.spec)
            mix_byte(static_cast<std::uint8_t>(c));
        mix_byte(0);
        mix64(request.txBytes);
        mix64(request.busBits);
        mix64(request.count);
        mix_byte(request.burst ? 1 : 0);
        // Nanosecond-quantized arrival offset: stable under the IEEE
        // double math the schedule is computed with.
        mix64(static_cast<std::uint64_t>(
            std::llround(request.arrivalUs * 1000.0)));
        for (const std::uint8_t byte : request.payload)
            mix_byte(byte);
        ++emitted;
    }
    return hash;
}

} // namespace bxt::scenario
