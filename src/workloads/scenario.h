/**
 * @file
 * Multi-tenant traffic scenarios: a seeded, deterministic model of a
 * production tenant population driving bxtd (DESIGN.md §11).
 *
 * The paper evaluates encoding on fixed single-spec streams; a serving
 * system sees something else entirely — many tenants with Zipf-skewed
 * popularity, each streaming its own codec spec, transaction size, and
 * data family, arriving open-loop with burst episodes. A Scenario
 * Config captures that population; an Engine expands it into a
 * reproducible request sequence (same seed → byte-identical payloads
 * and arrival schedule), so every scenario doubles as an integration
 * test and a regression gate for scaling work (the sharded-bxtd PRs).
 *
 * Named presets cover the interesting corners:
 *   uniform    equal tenant popularity, steady arrivals (control)
 *   zipf-0.99  YCSB-style skew: few hot tenants dominate
 *   burst      Zipf skew plus burst episodes at 8x the base rate
 *   hot-flood  one tenant + one spec takes ~90 % of traffic — the
 *              shared-pool stress case the sharding work must beat
 *
 * Configs round-trip through a small `key = value` text form (parse /
 * format), so presets can be dumped, edited, and loaded from a file.
 */

#ifndef BXT_WORKLOADS_SCENARIO_H
#define BXT_WORKLOADS_SCENARIO_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "workloads/patterns.h"

namespace bxt::scenario {

/** One codec spec and its share of the tenant population. */
struct SpecShare
{
    std::string spec;
    double weight = 0.0;

    bool operator==(const SpecShare &) const = default;
};

/** One transaction size and its share of the tenant population. */
struct SizeShare
{
    std::uint32_t txBytes = 32;
    double weight = 0.0;

    bool operator==(const SizeShare &) const = default;
};

/**
 * A tenant-population traffic model. All distributions are sampled with
 * the engine's seeded RNG only, so a (Config, seed) pair fully
 * determines the request stream.
 */
struct Config
{
    std::string name = "uniform";

    /** Tenant population size. Tenant ids are 0..tenants-1. */
    std::uint32_t tenants = 16;

    /**
     * Zipf popularity exponent over tenant rank (tenant 0 is the most
     * popular): weight(i) ∝ 1/(i+1)^alpha. 0 = uniform.
     */
    double alpha = 0.0;

    /** Codec-spec mix tenants are assigned from (weights normalized). */
    std::vector<SpecShare> specMix;

    /** Transaction-size mix tenants are assigned from. */
    std::vector<SizeShare> sizeMix;

    /** Bus width every request is encoded against. */
    std::uint32_t busBits = 32;

    /** Transactions per request: uniform in [minTx, maxTx]. */
    std::uint32_t minTx = 16;
    std::uint32_t maxTx = 256;

    /** Open-loop Poisson arrival rate, requests/s (0 disables pacing). */
    double ratePerSec = 100000.0;

    /**
     * Burst episodes: each non-burst request starts one with
     * probability burstProb; an episode lasts burstLen requests during
     * which the arrival rate is multiplied by burstFactor.
     */
    double burstProb = 0.0;
    std::uint32_t burstLen = 0;
    double burstFactor = 1.0;

    /**
     * Hot single-spec flood (the sharding stress case): this fraction
     * of requests is routed to tenant 0, which carries hotSpec
     * (when non-empty) regardless of the spec mix.
     */
    double hotFraction = 0.0;
    std::string hotSpec;

    /** Default request count for a run of this scenario. */
    std::uint32_t requests = 2000;

    bool operator==(const Config &) const = default;
};

/**
 * Closed-form normalized Zipf weights: w(i) = (1/(i+1)^alpha) / H for
 * i in [0, n). alpha = 0 yields the uniform distribution. The reference
 * the engine's sampler (and the chi-square test) is checked against.
 */
std::vector<double> zipfWeights(std::uint32_t n, double alpha);

/** The named presets, in documentation order. */
std::vector<std::string> presetNames();

/** Fill @p out with the named preset; false + @p err when unknown. */
bool preset(const std::string &name, Config &out, std::string &err);

/**
 * Parse the `key = value` scenario text form ('#' comments, blank lines
 * ignored; list values comma-separated `item:weight` pairs). Unknown
 * keys, malformed values, and duplicate keys fail with a line-annotated
 * @p err.
 */
bool parse(const std::string &text, Config &out, std::string &err);

/** Render @p config in the text form parse() accepts (round-trips). */
std::string format(const Config &config);

/**
 * Resolve @p name_or_path: a preset name first, else a path to a
 * scenario spec file in the parse() format.
 */
bool load(const std::string &name_or_path, Config &out, std::string &err);

/** One generated request: who, what, when, and the payload bytes. */
struct Request
{
    std::uint32_t index = 0;  ///< Position in the stream (0-based).
    std::uint32_t tenant = 0; ///< Tenant id in [0, config.tenants).
    std::string spec;         ///< The tenant's codec spec.
    std::uint32_t txBytes = 0;
    std::uint32_t busBits = 0;
    std::uint32_t count = 0;  ///< Transactions in this request.
    double arrivalUs = 0.0;   ///< Open-loop arrival offset from start.
    bool burst = false;       ///< Emitted inside a burst episode.
    std::vector<std::uint8_t> payload; ///< count * txBytes bytes.
};

/**
 * Expands a Config into its request stream. Deterministic: equal
 * (Config, seed) pairs produce byte-identical streams regardless of
 * wall clock, thread count, or how results are consumed. Each tenant
 * owns an independent pattern stream (data family cycled over the
 * workload families of patterns.h) and a split RNG, so per-tenant data
 * evolves like one coherent stream even under interleaved arrivals.
 */
class Engine
{
  public:
    Engine(Config config, std::uint64_t seed);

    const Config &config() const { return config_; }
    std::uint64_t seed() const { return seed_; }

    /** Spec assigned to tenant @p t (after hot-flood overrides). */
    const std::string &tenantSpec(std::uint32_t t) const;

    /** Transaction size assigned to tenant @p t. */
    std::uint32_t tenantTxBytes(std::uint32_t t) const;

    /** Normalized popularity of tenant @p t (includes hotFraction). */
    double tenantWeight(std::uint32_t t) const;

    /**
     * Produce the next request; false once config().requests have been
     * emitted. Arrival times are nondecreasing across the stream.
     */
    bool next(Request &out);

    /** Requests emitted so far. */
    std::uint64_t emitted() const { return emitted_; }

    /** Rewind to request 0: the stream replays identically. */
    void reset();

  private:
    struct Tenant
    {
        std::string spec;
        std::uint32_t txBytes = 32;
        PatternPtr pattern;
        Rng rng{0};
    };

    std::uint32_t sampleTenant();

    Config config_;
    std::uint64_t seed_ = 0;
    std::vector<Tenant> tenants_;
    std::vector<double> cumulative_; ///< Cumulative tenant weights.
    Rng rng_{0};                     ///< Arrival/selection stream.
    std::uint64_t emitted_ = 0;
    double clockUs_ = 0.0;
    std::uint32_t burstLeft_ = 0;
};

/**
 * FNV-1a digest over the first @p requests of (config, seed): every
 * request's routing fields, nanosecond-quantized arrival time, and
 * payload bytes. Pinned by tests/golden/scenarios/ so generator
 * refactors cannot silently change the workloads scaling PRs gate on.
 */
std::uint64_t digest(const Config &config, std::uint64_t seed,
                     std::size_t requests);

} // namespace bxt::scenario

#endif // BXT_WORKLOADS_SCENARIO_H
