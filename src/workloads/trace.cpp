#include "workloads/trace.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/error.h"

namespace bxt {
namespace {

constexpr char magic[4] = {'B', 'X', 'T', 'R'};
constexpr std::uint32_t version = 1;

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool
writeValue(std::FILE *f, const T &value)
{
    return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool
readValue(std::FILE *f, T &value)
{
    return std::fread(&value, sizeof(T), 1, f) == 1;
}

} // namespace

bool
saveTrace(const Trace &trace, const std::string &path)
{
    const std::size_t tx_bytes = trace.txBytes();
    for (const Transaction &tx : trace.txs)
        BXT_ASSERT(tx.size() == tx_bytes);

    FileHandle f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;

    if (std::fwrite(magic, sizeof(magic), 1, f.get()) != 1 ||
        !writeValue(f.get(), version) ||
        !writeValue(f.get(), static_cast<std::uint32_t>(tx_bytes)) ||
        !writeValue(f.get(), static_cast<std::uint64_t>(trace.txs.size()))) {
        return false;
    }
    const auto name_len = static_cast<std::uint32_t>(trace.name.size());
    if (!writeValue(f.get(), name_len))
        return false;
    if (name_len > 0 &&
        std::fwrite(trace.name.data(), 1, name_len, f.get()) != name_len) {
        return false;
    }
    for (const Transaction &tx : trace.txs) {
        if (std::fwrite(tx.data(), 1, tx.size(), f.get()) != tx.size())
            return false;
    }
    return true;
}

Trace
loadTrace(const std::string &path)
{
    Trace trace;
    FileHandle f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return trace;

    char file_magic[4];
    std::uint32_t file_version = 0;
    std::uint32_t tx_bytes = 0;
    std::uint64_t count = 0;
    std::uint32_t name_len = 0;
    if (std::fread(file_magic, sizeof(file_magic), 1, f.get()) != 1 ||
        std::memcmp(file_magic, magic, sizeof(magic)) != 0) {
        fatal("loadTrace: bad magic in " + path);
    }
    if (!readValue(f.get(), file_version) || file_version != version)
        fatal("loadTrace: unsupported version in " + path);
    if (!readValue(f.get(), tx_bytes) || !readValue(f.get(), count) ||
        !readValue(f.get(), name_len)) {
        fatal("loadTrace: truncated header in " + path);
    }
    // An empty trace legitimately records size 0; otherwise the size must
    // be a valid Transaction size.
    if (count > 0 && (tx_bytes < Transaction::minBytes ||
                      tx_bytes > Transaction::maxBytes ||
                      (tx_bytes & (tx_bytes - 1)) != 0)) {
        fatal("loadTrace: bad transaction size in " + path);
    }

    // Validate the header's length fields against the actual file size
    // before allocating anything: a corrupt count or name length must fail
    // with a diagnostic, not an allocation failure.
    const long header_end = std::ftell(f.get());
    if (header_end < 0 || std::fseek(f.get(), 0, SEEK_END) != 0)
        fatal("loadTrace: cannot determine size of " + path);
    const long file_end = std::ftell(f.get());
    if (file_end < header_end ||
        std::fseek(f.get(), header_end, SEEK_SET) != 0) {
        fatal("loadTrace: cannot determine size of " + path);
    }
    const auto remaining = static_cast<std::uint64_t>(file_end - header_end);
    if (name_len > remaining)
        fatal("loadTrace: oversized name length in " + path);
    if (count > 0 && (remaining - name_len) / tx_bytes < count)
        fatal("loadTrace: transaction count exceeds file size in " + path);

    trace.name.resize(name_len);
    if (name_len > 0 &&
        std::fread(trace.name.data(), 1, name_len, f.get()) != name_len) {
        fatal("loadTrace: truncated name in " + path);
    }

    trace.txs.reserve(count);
    std::uint8_t buffer[Transaction::maxBytes];
    for (std::uint64_t i = 0; i < count; ++i) {
        if (std::fread(buffer, 1, tx_bytes, f.get()) != tx_bytes)
            fatal("loadTrace: truncated payload in " + path);
        trace.txs.emplace_back(
            std::span<const std::uint8_t>(buffer, tx_bytes));
    }
    return trace;
}

} // namespace bxt
