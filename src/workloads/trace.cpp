#include "workloads/trace.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/error.h"

namespace bxt {
namespace {

constexpr char magic[4] = {'B', 'X', 'T', 'R'};
constexpr std::uint32_t version = 1;

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f != nullptr)
            std::fclose(f);
    }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool
writeValue(std::FILE *f, const T &value)
{
    return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool
readValue(std::FILE *f, T &value)
{
    return std::fread(&value, sizeof(T), 1, f) == 1;
}

} // namespace

bool
saveTrace(const Trace &trace, const std::string &path)
{
    // Mixed sizes are unrepresentable in the format; fail before touching
    // the filesystem so @p path is left exactly as it was.
    const std::size_t tx_bytes = trace.txBytes();
    for (const Transaction &tx : trace.txs) {
        if (tx.size() != tx_bytes)
            return false;
    }

    // Atomicity: write everything to a sibling temporary and rename it
    // into place only once fully flushed, so a crash mid-write can never
    // leave a truncated trace at @p path (trace.h documents this).
    const std::string tmp_path = path + ".tmp";
    const auto write_all = [&](std::FILE *f) {
        if (std::fwrite(magic, sizeof(magic), 1, f) != 1 ||
            !writeValue(f, version) ||
            !writeValue(f, static_cast<std::uint32_t>(tx_bytes)) ||
            !writeValue(f, static_cast<std::uint64_t>(trace.txs.size()))) {
            return false;
        }
        const auto name_len = static_cast<std::uint32_t>(trace.name.size());
        if (!writeValue(f, name_len))
            return false;
        if (name_len > 0 &&
            std::fwrite(trace.name.data(), 1, name_len, f) != name_len) {
            return false;
        }
        for (const Transaction &tx : trace.txs) {
            if (std::fwrite(tx.data(), 1, tx.size(), f) != tx.size())
                return false;
        }
        return true;
    };

    std::FILE *f = std::fopen(tmp_path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const bool written = write_all(f);
    // Close explicitly (not via a RAII handle) so a failed final flush —
    // e.g. a full disk — is a clean failure, not a rename of a short file.
    const bool closed = std::fclose(f) == 0;
    if (!written || !closed) {
        std::remove(tmp_path.c_str());
        return false;
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return false;
    }
    return true;
}

namespace {

enum class LoadStatus { Ok, CannotOpen, Malformed };

/** Shared reader behind loadTrace/tryLoadTrace; never calls fatal(). */
LoadStatus
loadTraceImpl(const std::string &path, Trace &trace, std::string &err)
{
    trace = Trace{};
    FileHandle f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        err = "loadTrace: cannot open " + path;
        return LoadStatus::CannotOpen;
    }

    const auto malformed = [&](const std::string &what) {
        trace = Trace{};
        err = "loadTrace: " + what + " in " + path;
        return LoadStatus::Malformed;
    };

    char file_magic[4];
    std::uint32_t file_version = 0;
    std::uint32_t tx_bytes = 0;
    std::uint64_t count = 0;
    std::uint32_t name_len = 0;
    if (std::fread(file_magic, sizeof(file_magic), 1, f.get()) != 1 ||
        std::memcmp(file_magic, magic, sizeof(magic)) != 0) {
        return malformed("bad magic");
    }
    if (!readValue(f.get(), file_version) || file_version != version)
        return malformed("unsupported version");
    if (!readValue(f.get(), tx_bytes) || !readValue(f.get(), count) ||
        !readValue(f.get(), name_len)) {
        return malformed("truncated header");
    }
    // An empty trace legitimately records size 0; otherwise the size must
    // be a valid Transaction size.
    if (count > 0 && (tx_bytes < Transaction::minBytes ||
                      tx_bytes > Transaction::maxBytes ||
                      (tx_bytes & (tx_bytes - 1)) != 0)) {
        return malformed("bad transaction size");
    }

    // Validate the header's length fields against the actual file size
    // before allocating anything: a corrupt count or name length must fail
    // with a diagnostic, not an allocation failure.
    const long header_end = std::ftell(f.get());
    if (header_end < 0 || std::fseek(f.get(), 0, SEEK_END) != 0)
        return malformed("cannot determine size");
    const long file_end = std::ftell(f.get());
    if (file_end < header_end ||
        std::fseek(f.get(), header_end, SEEK_SET) != 0) {
        return malformed("cannot determine size");
    }
    const auto remaining = static_cast<std::uint64_t>(file_end - header_end);
    if (name_len > remaining)
        return malformed("oversized name length");
    if (count > 0 && (remaining - name_len) / tx_bytes < count)
        return malformed("transaction count exceeds file size");

    trace.name.resize(name_len);
    if (name_len > 0 &&
        std::fread(trace.name.data(), 1, name_len, f.get()) != name_len) {
        return malformed("truncated name");
    }

    trace.txs.reserve(count);
    std::uint8_t buffer[Transaction::maxBytes];
    for (std::uint64_t i = 0; i < count; ++i) {
        if (std::fread(buffer, 1, tx_bytes, f.get()) != tx_bytes)
            return malformed("truncated payload");
        trace.txs.emplace_back(
            std::span<const std::uint8_t>(buffer, tx_bytes));
    }
    return LoadStatus::Ok;
}

} // namespace

Trace
loadTrace(const std::string &path)
{
    Trace trace;
    std::string err;
    switch (loadTraceImpl(path, trace, err)) {
    case LoadStatus::Ok:
    case LoadStatus::CannotOpen: // Historical contract: empty trace.
        return trace;
    case LoadStatus::Malformed:
        fatal(err);
    }
    return trace; // Unreachable.
}

bool
tryLoadTrace(const std::string &path, Trace &out, std::string &err)
{
    return loadTraceImpl(path, out, err) == LoadStatus::Ok;
}

} // namespace bxt
