/**
 * @file
 * Binary transaction-trace container and file format (.bxtrace), so traces
 * can be captured once and re-analyzed (the trace_tool example) or fed in
 * from an external simulator such as GPGPU-Sim in place of the synthetic
 * generators.
 *
 * File layout (little-endian):
 *   magic "BXTR" | u32 version | u32 txBytes | u64 count |
 *   u32 nameLen | name bytes | payload bytes (count * txBytes)
 */

#ifndef BXT_WORKLOADS_TRACE_H
#define BXT_WORKLOADS_TRACE_H

#include <string>
#include <vector>

#include "core/transaction.h"

namespace bxt {

/** An in-memory transaction trace with its source name. */
struct Trace
{
    std::string name;                  ///< Originating application.
    std::vector<Transaction> txs;      ///< Transactions in bus order.

    /** Transaction size (0 if the trace is empty). */
    std::size_t txBytes() const
    {
        return txs.empty() ? 0 : txs.front().size();
    }
};

/**
 * Write @p trace to @p path atomically: the bytes are written to a
 * `path + ".tmp"` sibling and rename(2)d into place only once complete,
 * so a crashed or interrupted writer (e.g. a bxt_client capture) never
 * leaves a truncated `.bxtrace` at @p path — readers see either the old
 * file or the complete new one. Returns false on I/O failure or when the
 * transactions do not all share one size (the temporary is removed;
 * @p path is untouched).
 */
bool saveTrace(const Trace &trace, const std::string &path);

/**
 * Read a trace from @p path; calls fatal() on malformed content, returns
 * an empty-name trace with no transactions if the file cannot be opened.
 */
Trace loadTrace(const std::string &path);

/**
 * Non-fatal variant of loadTrace for untrusted inputs (bxt_client uploads,
 * server-side trace handling): fills @p out and returns true on success;
 * on a missing file or malformed content returns false with a diagnostic
 * in @p err and leaves @p out empty. Never terminates the process.
 */
bool tryLoadTrace(const std::string &path, Trace &out, std::string &err);

} // namespace bxt

#endif // BXT_WORKLOADS_TRACE_H
