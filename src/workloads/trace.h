/**
 * @file
 * Binary transaction-trace container and file format (.bxtrace), so traces
 * can be captured once and re-analyzed (the trace_tool example) or fed in
 * from an external simulator such as GPGPU-Sim in place of the synthetic
 * generators.
 *
 * File layout (little-endian):
 *   magic "BXTR" | u32 version | u32 txBytes | u64 count |
 *   u32 nameLen | name bytes | payload bytes (count * txBytes)
 */

#ifndef BXT_WORKLOADS_TRACE_H
#define BXT_WORKLOADS_TRACE_H

#include <string>
#include <vector>

#include "core/transaction.h"

namespace bxt {

/** An in-memory transaction trace with its source name. */
struct Trace
{
    std::string name;                  ///< Originating application.
    std::vector<Transaction> txs;      ///< Transactions in bus order.

    /** Transaction size (0 if the trace is empty). */
    std::size_t txBytes() const
    {
        return txs.empty() ? 0 : txs.front().size();
    }
};

/**
 * Write @p trace to @p path. Returns false (and leaves no partial file
 * guarantee) on I/O failure. All transactions must share one size.
 */
bool saveTrace(const Trace &trace, const std::string &path);

/**
 * Read a trace from @p path; calls fatal() on malformed content, returns
 * an empty-name trace with no transactions if the file cannot be opened.
 */
Trace loadTrace(const std::string &path);

} // namespace bxt

#endif // BXT_WORKLOADS_TRACE_H
