/**
 * @file
 * Adaptive codec selection tests: the `adaptive[:...]` spec grammar and
 * candidate validation, the controller's calibrated cost model (it must
 * pick whichever candidate measurably wins on the sampled window),
 * differential byte-identity against the chosen concrete codec across
 * forced switch points, hysteresis no-flap behaviour, sensor sanity,
 * and a loopback end-to-end run where the announced spec follows a
 * mid-stream data-family migration.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/adaptive_codec.h"
#include "adaptive/controller.h"
#include "client/client.h"
#include "core/batch.h"
#include "core/codec_factory.h"
#include "server/server.h"

namespace bxt {
namespace {

constexpr std::size_t kTxBytes = 32;

// ---------------------------------------------------------------------
// Data families with a clear measured winner between xor2+zdr and
// baseline. Every expectation below is re-derived from actual encodes
// (measuredCost), so the tests hold even if a codec's cost profile
// shifts — a family assert fails loudly instead of silently passing.

/** Constant-filled transactions: adjacent 2-byte elements are equal, so
 *  Base+XOR deltas are all zero and ZDR eats them. xor2+zdr territory. */
TxBatch
constantBatch(std::size_t count, std::uint8_t fill)
{
    TxBatch batch;
    batch.reset(kTxBytes);
    batch.reserve(count);
    batch.resizeForOverwrite(count);
    std::memset(batch.data(), fill, count * kTxBytes);
    return batch;
}

/** Alternating 0x0000 / 0xFFFF 2-byte elements: every XOR delta is all
 *  ones, so baseline (half the bits set) wins over xor2+zdr. */
TxBatch
alternatingBatch(std::size_t count)
{
    TxBatch batch;
    batch.reset(kTxBytes);
    batch.reserve(count);
    batch.resizeForOverwrite(count);
    std::uint8_t *bytes = batch.data();
    for (std::size_t i = 0; i < count * kTxBytes; i += 2) {
        const std::uint8_t value = (i / 2) % 2 == 0 ? 0x00 : 0xff;
        bytes[i] = value;
        bytes[i + 1] = value;
    }
    return batch;
}

/** Alternating 0x0000 / 0x0001 2-byte elements: baseline is better than
 *  xor2+zdr, but only by about half — inside a wide hysteresis band. */
TxBatch
marginalBatch(std::size_t count)
{
    TxBatch batch;
    batch.reset(kTxBytes);
    batch.reserve(count);
    batch.resizeForOverwrite(count);
    std::uint8_t *bytes = batch.data();
    std::memset(bytes, 0, count * kTxBytes);
    for (std::size_t i = 0; i < count * kTxBytes; i += 4)
        bytes[i] = 0x01;
    return batch;
}

/** Measured ones-on-bus per transaction for @p spec over @p batch —
 *  the same cost the controller's model computes. */
double
measuredCost(const std::string &spec, const TxBatch &batch)
{
    CodecPtr codec = makeCodec(spec);
    EncodedBatch enc;
    codec->encodeBatch(batch, enc);
    return static_cast<double>(enc.payloadOnes() + enc.metaOnes()) /
           static_cast<double>(batch.size());
}

adaptive::Config
twoCandidateConfig(double hysteresis_pct)
{
    adaptive::Config config;
    config.candidates = {"xor2+zdr", "baseline"};
    config.window = 8;
    config.period = 8;
    config.hysteresisPct = hysteresis_pct;
    return config;
}

// ---------------------------------------------------------------------
// Spec grammar and candidate validation

TEST(AdaptiveSpec, BareSpecUsesDefaults)
{
    adaptive::Config config;
    std::string err;
    ASSERT_TRUE(adaptive::parseAdaptiveSpec("adaptive", 4, config, err))
        << err;
    EXPECT_EQ(config.candidates, adaptive::defaultConfig(4).candidates);
    EXPECT_GE(config.candidates.size(), 2u);
}

TEST(AdaptiveSpec, ParsesCandidatesAndKnobs)
{
    adaptive::Config config;
    std::string err;
    ASSERT_TRUE(adaptive::parseAdaptiveSpec(
        "adaptive:xor2+zdr,baseline,w=16,p=32,h=5", 4, config, err))
        << err;
    EXPECT_EQ(config.candidates,
              (std::vector<std::string>{"xor2+zdr", "baseline"}));
    EXPECT_EQ(config.window, 16u);
    EXPECT_EQ(config.period, 32u);
    EXPECT_DOUBLE_EQ(config.hysteresisPct, 5.0);

    // The canonical form round-trips through the parser.
    adaptive::Config again;
    ASSERT_TRUE(adaptive::parseAdaptiveSpec(adaptive::canonicalSpec(config),
                                            4, again, err))
        << err;
    EXPECT_EQ(again.candidates, config.candidates);
    EXPECT_EQ(again.window, config.window);
    EXPECT_EQ(again.period, config.period);
    EXPECT_DOUBLE_EQ(again.hysteresisPct, config.hysteresisPct);
}

TEST(AdaptiveSpec, FactoryBuildsAdaptiveCodec)
{
    CodecPtr codec = makeCodec("adaptive");
    auto *adaptive_codec =
        dynamic_cast<adaptive::AdaptiveCodec *>(codec.get());
    ASSERT_NE(adaptive_codec, nullptr);
    EXPECT_EQ(codec->name(),
              adaptive::canonicalSpec(adaptive::defaultConfig(4)));
    EXPECT_FALSE(codec->stateless());
    EXPECT_EQ(codec->metaWiresPerBeat(), 0u);
}

TEST(AdaptiveSpec, RejectsInvalidCandidateSets)
{
    const struct {
        const char *spec;
        const char *fragment;
    } cases[] = {
        {"adaptive:xor4+zdr", "2"},
        {"adaptive:bd,baseline", "stateful"},
        {"adaptive:xor4+zdr,dbi4", "metaWiresPerBeat"},
        {"adaptive:adaptive,baseline", "adaptive"},
        {"adaptive:no-such-codec,baseline", "no-such-codec"},
        {"adaptive:xor2+zdr,baseline,w=1", "w"},
        {"adaptive:xor2+zdr,baseline,p=0", "p"},
        {"adaptive:xor2+zdr,baseline,h=100", "h"},
        {"adaptive:xor2+zdr,baseline,q=3", "q"},
    };
    for (const auto &c : cases) {
        std::string err;
        EXPECT_EQ(tryMakeCodec(c.spec, 4, err), nullptr) << c.spec;
        EXPECT_NE(err.find(c.fragment), std::string::npos)
            << c.spec << " -> " << err;
    }
}

// ---------------------------------------------------------------------
// Controller choice and switching

TEST(AdaptiveController, PicksMeasuredWinnerPerFamily)
{
    const TxBatch xor_family = constantBatch(16, 0xff);
    const TxBatch base_family = alternatingBatch(16);
    ASSERT_LT(measuredCost("xor2+zdr", xor_family),
              measuredCost("baseline", xor_family));
    ASSERT_LT(measuredCost("baseline", base_family),
              measuredCost("xor2+zdr", base_family));

    std::string err;
    auto controller =
        adaptive::Controller::make(twoCandidateConfig(0.0), err);
    ASSERT_NE(controller, nullptr) << err;

    controller->observe(xor_family);
    controller->maybeEvaluate();
    EXPECT_EQ(controller->activeSpec(), "xor2+zdr");
    EXPECT_EQ(controller->epoch(), 0u);

    // Migrate the stream; the next due evaluation must follow it.
    controller->observe(base_family);
    EXPECT_TRUE(controller->maybeEvaluate());
    EXPECT_EQ(controller->activeSpec(), "baseline");
    EXPECT_EQ(controller->epoch(), 1u);
    ASSERT_EQ(controller->lastCosts().size(), 2u);
    EXPECT_LT(controller->lastCosts()[1], controller->lastCosts()[0]);
}

TEST(AdaptiveController, HysteresisHoldsNearTiedSpecs)
{
    const TxBatch xor_family = constantBatch(16, 0xff);
    const TxBatch marginal = marginalBatch(16);
    const double cost_base = measuredCost("baseline", marginal);
    const double cost_xor = measuredCost("xor2+zdr", marginal);
    // The margin must sit strictly inside the 60 % hysteresis band for
    // this test to mean anything.
    ASSERT_LT(cost_base, cost_xor);
    ASSERT_LT((cost_xor - cost_base) / cost_xor * 100.0, 60.0);

    std::string err;
    auto held = adaptive::Controller::make(twoCandidateConfig(60.0), err);
    ASSERT_NE(held, nullptr) << err;
    held->observe(xor_family);
    held->maybeEvaluate();
    ASSERT_EQ(held->activeSpec(), "xor2+zdr");

    // Baseline is better on the marginal family, but not by enough:
    // the incumbent must hold through repeated evaluations (no flap).
    for (int round = 0; round < 10; ++round) {
        held->observe(marginal);
        EXPECT_FALSE(held->maybeEvaluate()) << "round " << round;
        EXPECT_EQ(held->activeSpec(), "xor2+zdr");
    }
    EXPECT_EQ(held->epoch(), 0u);

    // Control: with hysteresis off the same stream does switch.
    auto eager = adaptive::Controller::make(twoCandidateConfig(0.0), err);
    ASSERT_NE(eager, nullptr) << err;
    eager->observe(xor_family);
    eager->maybeEvaluate();
    ASSERT_EQ(eager->activeSpec(), "xor2+zdr");
    eager->observe(marginal);
    EXPECT_TRUE(eager->maybeEvaluate());
    EXPECT_EQ(eager->activeSpec(), "baseline");
}

TEST(AdaptiveController, SensorsMatchConstructedWindow)
{
    // Words alternate 0x00000000 / 0xFFFFFFFF: half the 32-bit words are
    // zero, half the 4-byte beats are heavy, and adjacent 4-byte
    // elements toggle every bit.
    TxBatch batch;
    batch.reset(kTxBytes);
    batch.resizeForOverwrite(8);
    std::uint8_t *bytes = batch.data();
    for (std::size_t i = 0; i < 8 * kTxBytes; ++i)
        bytes[i] = (i / 4) % 2 == 0 ? 0x00 : 0xff;

    std::string err;
    auto controller =
        adaptive::Controller::make(twoCandidateConfig(10.0), err);
    ASSERT_NE(controller, nullptr) << err;
    controller->observe(batch);

    const adaptive::Sensors sensors = controller->sensors();
    EXPECT_EQ(sensors.samples, 8u);
    EXPECT_NEAR(sensors.zeroWordFrac, 0.5, 1e-9);
    EXPECT_NEAR(sensors.dbiWeight, 0.5, 1e-9);
    // kToggleGranularities[1] is the 4-byte granularity.
    EXPECT_NEAR(sensors.toggleWeight[1], 1.0, 1e-9);
}

TEST(AdaptiveController, ResetDropsHistoryAndChoice)
{
    std::string err;
    auto controller =
        adaptive::Controller::make(twoCandidateConfig(0.0), err);
    ASSERT_NE(controller, nullptr) << err;
    controller->observe(alternatingBatch(16));
    controller->maybeEvaluate();
    controller->observe(alternatingBatch(16));
    controller->maybeEvaluate();
    ASSERT_EQ(controller->activeSpec(), "baseline");

    controller->reset();
    EXPECT_EQ(controller->activeIndex(), 0u);
    EXPECT_EQ(controller->epoch(), 0u);
    EXPECT_EQ(controller->observed(), 0u);
    EXPECT_EQ(controller->sensors().samples, 0u);
}

// ---------------------------------------------------------------------
// Differential byte-identity across forced switch points

TEST(AdaptiveCodec, BatchOutputMatchesChosenConcreteCodecAcrossSwitches)
{
    CodecPtr codec = makeCodec("adaptive:xor2+zdr,baseline,w=8,p=8,h=0");
    auto *adaptive_codec =
        dynamic_cast<adaptive::AdaptiveCodec *>(codec.get());
    ASSERT_NE(adaptive_codec, nullptr);

    std::vector<TxBatch> stream;
    for (int i = 0; i < 6; ++i)
        stream.push_back(constantBatch(16, 0xff));
    for (int i = 0; i < 6; ++i)
        stream.push_back(alternatingBatch(16));
    for (int i = 0; i < 6; ++i)
        stream.push_back(constantBatch(16, 0xaa));

    std::uint64_t last_epoch = 0;
    std::size_t switches = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        EncodedBatch out;
        codec->encodeBatch(stream[i], out);

        // The evaluation ran at the batch boundary, so the spec active
        // *after* the encode is the one that produced it: a fresh
        // instance of that concrete codec must emit identical bytes.
        const std::string &chosen =
            adaptive_codec->controller().activeSpec();
        EncodedBatch reference;
        makeCodec(chosen)->encodeBatch(stream[i], reference);
        EXPECT_EQ(out, reference) << "batch " << i << " via " << chosen;

        // Within the same epoch the adaptive codec decodes its own
        // output bit-identically.
        TxBatch decoded;
        codec->decodeBatch(out, decoded);
        EXPECT_EQ(decoded, stream[i]) << "batch " << i;

        const std::uint64_t epoch = adaptive_codec->controller().epoch();
        switches += epoch - last_epoch;
        last_epoch = epoch;
    }
    // The two family migrations must each have forced a switch.
    EXPECT_GE(switches, 2u);
}

TEST(AdaptiveCodec, ScalarPathRoundTripsWhileAdapting)
{
    CodecPtr codec = makeCodec("adaptive:xor2+zdr,baseline,w=8,p=8,h=0");
    const TxBatch families[] = {constantBatch(64, 0xff),
                                alternatingBatch(64)};
    for (const TxBatch &family : families) {
        for (std::size_t i = 0; i < family.size(); ++i) {
            const auto bytes = family.tx(i);
            Transaction tx(bytes);
            const Encoded enc = codec->encode(tx);
            const Transaction back = codec->decode(enc);
            ASSERT_EQ(back, tx) << "tx " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Loopback end-to-end: the announced spec follows a family migration

class LiveServer
{
  public:
    explicit LiveServer(server::ServerOptions options)
        : server_(std::move(options))
    {
        std::string err;
        if (!server_.start(err)) {
            ADD_FAILURE() << "server start failed: " << err;
            return;
        }
        thread_ = std::thread([this] { server_.serve(); });
        started_ = true;
    }

    ~LiveServer()
    {
        if (started_) {
            server_.requestStop();
            thread_.join();
        }
    }

    bool started() const { return started_; }
    int tcpPort() const { return server_.tcpPort(); }

  private:
    server::Server server_;
    std::thread thread_;
    bool started_ = false;
};

TEST(AdaptiveLoopback, AnnouncedSpecFollowsDataFamilyMigration)
{
    server::ServerOptions options;
    options.tcpPort = 0; // Ephemeral.
    options.threads = 2;
    LiveServer live(options);
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;
    client.setStreamId(3);

    const std::string spec = "adaptive:xor2+zdr,baseline,w=8,p=8,h=0";
    const auto request = [&](const TxBatch &batch,
                             client::EncodeResult &enc) {
        const std::span<const std::uint8_t> raw(
            batch.data(), batch.size() * batch.txBytes());
        ASSERT_TRUE(client.encode(spec, kTxBytes, 32, raw, enc, err))
            << err;

        // Decoding under the announced concrete spec recovers the raw
        // bytes even when the choice later moves on.
        ASSERT_FALSE(enc.announcedSpec.empty());
        client::DecodeResult dec;
        ASSERT_TRUE(client.decode(enc.announcedSpec, enc, dec, err))
            << err;
        ASSERT_EQ(dec.raw.size(), raw.size());
        EXPECT_EQ(std::memcmp(dec.raw.data(), raw.data(), raw.size()), 0);
    };

    // Phase 1: Base+XOR territory. The first choice lands here.
    client::EncodeResult enc;
    for (int i = 0; i < 4; ++i)
        request(constantBatch(16, 0xff), enc);
    EXPECT_EQ(enc.announcedSpec, "xor2+zdr");
    const std::uint64_t epoch_before = enc.switchEpoch;

    // Phase 2: migrate to a family where baseline measurably wins; the
    // announcement and epoch must follow within a few periods.
    for (int i = 0; i < 6; ++i)
        request(alternatingBatch(16), enc);
    EXPECT_EQ(enc.announcedSpec, "baseline");
    EXPECT_GT(enc.switchEpoch, epoch_before);

    // A concrete spec on the same connection still echoes itself.
    const TxBatch plain = constantBatch(4, 0x11);
    const std::span<const std::uint8_t> raw(
        plain.data(), plain.size() * plain.txBytes());
    client::EncodeResult concrete;
    ASSERT_TRUE(
        client.encode("baseline", kTxBytes, 32, raw, concrete, err))
        << err;
    EXPECT_EQ(concrete.announcedSpec, "baseline");
    EXPECT_EQ(concrete.switchEpoch, 0u);
}

} // namespace
} // namespace bxt
