/**
 * @file
 * Unit tests for the workload population builder.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/apps.h"

namespace bxt {
namespace {

TEST(Apps, GpuSuiteHas187Apps)
{
    std::vector<App> suite = buildGpuSuite();
    ASSERT_EQ(suite.size(), 187u);
    std::size_t compute = 0;
    std::size_t graphics = 0;
    for (const App &app : suite) {
        if (app.category == AppCategory::Compute)
            ++compute;
        else if (app.category == AppCategory::Graphics)
            ++graphics;
        EXPECT_EQ(app.txBytes, 32u);
        EXPECT_FALSE(app.streams.empty());
    }
    EXPECT_EQ(compute, 106u);
    EXPECT_EQ(graphics, 81u);
}

TEST(Apps, CpuSuiteHas28Apps)
{
    std::vector<App> suite = buildCpuSuite();
    ASSERT_EQ(suite.size(), 28u);
    for (const App &app : suite) {
        EXPECT_EQ(app.category, AppCategory::Cpu);
        EXPECT_EQ(app.txBytes, 64u);
    }
}

TEST(Apps, NamesAreUnique)
{
    std::set<std::string> names;
    for (App &app : buildGpuSuite())
        EXPECT_TRUE(names.insert(app.name).second) << app.name;
    for (App &app : buildCpuSuite())
        EXPECT_TRUE(names.insert(app.name).second) << app.name;
}

TEST(Apps, KnownBenchmarksPresent)
{
    std::set<std::string> names;
    for (App &app : buildGpuSuite())
        names.insert(app.name);
    for (const char *expected :
         {"rodinia-hotspot", "rodinia-b+tree", "lonestar-bfs", "comd",
          "miniamr", "nekbone", "dxgame-01", "wstation-01"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
}

TEST(Apps, EveryFamilyRepresented)
{
    std::map<std::string, std::size_t> families;
    for (App &app : buildGpuSuite())
        ++families[app.family];
    for (const char *family :
         {"fp32-grid", "fp32-particle", "fp64-hpc", "int-graph", "fp16-ml",
          "sparse-zero", "incompressible", "framebuffer", "zbuffer",
          "texture", "vertex", "hdr-fp16"}) {
        EXPECT_GT(families[family], 0u) << family;
    }
}

TEST(Apps, TraceIsDeterministicPerApp)
{
    std::vector<App> a = buildGpuSuite();
    std::vector<App> b = buildGpuSuite();
    const auto trace_a = generateTrace(a[0], 64);
    const auto trace_b = generateTrace(b[0], 64);
    ASSERT_EQ(trace_a.size(), trace_b.size());
    for (std::size_t i = 0; i < trace_a.size(); ++i)
        EXPECT_EQ(trace_a[i], trace_b[i]);
}

TEST(Apps, DifferentSuiteSeedsChangeData)
{
    std::vector<App> a = buildGpuSuite(1);
    std::vector<App> b = buildGpuSuite(2);
    const auto trace_a = generateTrace(a[0], 32);
    const auto trace_b = generateTrace(b[0], 32);
    bool any_diff = false;
    for (std::size_t i = 0; i < trace_a.size(); ++i)
        any_diff = any_diff || !(trace_a[i] == trace_b[i]);
    EXPECT_TRUE(any_diff);
}

TEST(Apps, TraceLengthHonoured)
{
    std::vector<App> suite = buildCpuSuite();
    const auto trace = generateTrace(suite[0], 100);
    ASSERT_EQ(trace.size(), 100u);
    for (const Transaction &tx : trace)
        EXPECT_EQ(tx.size(), 64u);
}

TEST(Apps, CategoryNames)
{
    EXPECT_EQ(toString(AppCategory::Compute), "compute");
    EXPECT_EQ(toString(AppCategory::Graphics), "graphics");
    EXPECT_EQ(toString(AppCategory::Cpu), "cpu");
}

TEST(Apps, TracesAreNotDegenerate)
{
    // Every app must produce data with some ones (no all-zero traces,
    // which would make normalization meaningless).
    std::vector<App> suite = buildGpuSuite();
    for (App &app : suite) {
        const auto trace = generateTrace(app, 32);
        std::size_t ones = 0;
        for (const Transaction &tx : trace)
            ones += tx.ones();
        EXPECT_GT(ones, 0u) << app.name;
    }
}

} // namespace
} // namespace bxt
