/**
 * @file
 * Unit and property tests for N-byte Base+XOR Transfer, including the
 * paper's worked examples (Figures 4, 5, and 6).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/base_xor.h"

namespace bxt {
namespace {

TEST(BaseXor, PaperFigure4Encoding)
{
    // 16-byte transaction, 4-byte base, no ZDR needed (no zero elements):
    // 390c9bfb | 390c90f9 | 390c88f8 | 390c88f9
    // encodes to
    // 390c9bfb | 00000b02 | 00001801 | 00000001, 59 -> 24 ones.
    Transaction tx = Transaction::fromWords32(
        {0x390c9bfb, 0x390c90f9, 0x390c88f8, 0x390c88f9});
    BaseXorCodec codec(4, /*zdr=*/false);
    const Encoded enc = codec.encode(tx);

    EXPECT_EQ(enc.payload.word32(0), 0x390c9bfbu);
    EXPECT_EQ(enc.payload.word32(4), 0x00000b02u);
    EXPECT_EQ(enc.payload.word32(8), 0x00001801u);
    EXPECT_EQ(enc.payload.word32(12), 0x00000001u);
    EXPECT_EQ(tx.ones(), 59u);
    // The paper's figure counts 24 ones; its printed element1 XOR (0802)
    // is inconsistent with its printed inputs (9bfb ^ 90f9 = 0b02), which
    // costs two extra ones. With the printed inputs the correct count is
    // 26 and the shape of the claim (59 -> ~24) holds.
    EXPECT_EQ(enc.ones(), 26u);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(BaseXor, PaperFigure5aZeroDataWithoutZdr)
{
    // 400ea95b | 00000000 | 00000000 | 400ea95b: plain XOR copies the
    // non-zero value over the zero elements, 26 -> 39 ones.
    Transaction tx = Transaction::fromWords32(
        {0x400ea95b, 0x00000000, 0x00000000, 0x400ea95b});
    BaseXorCodec codec(4, /*zdr=*/false);
    const Encoded enc = codec.encode(tx);
    EXPECT_EQ(tx.ones(), 26u);
    EXPECT_EQ(enc.ones(), 39u);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(BaseXor, PaperFigure5cZeroDataWithZdr)
{
    // Same transaction with ZDR: zero elements map to the low-weight
    // constant, 26 -> 28 ones.
    Transaction tx = Transaction::fromWords32(
        {0x400ea95b, 0x00000000, 0x00000000, 0x400ea95b});
    BaseXorCodec codec(4, /*zdr=*/true);
    const Encoded enc = codec.encode(tx);
    EXPECT_EQ(enc.payload.word32(0), 0x400ea95bu);
    EXPECT_EQ(enc.payload.word32(4), 0x40000000u);
    EXPECT_EQ(enc.payload.word32(8), 0x40000000u);
    EXPECT_EQ(enc.payload.word32(12), 0x400ea95bu);
    EXPECT_EQ(enc.ones(), 28u);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(BaseXor, PaperFigure6aSmallBaseMissesSimilarity)
{
    // Two similar 8-byte elements, 4-byte base: no zeros appear in the
    // XORed elements (the similarity is at 8-byte granularity).
    Transaction tx = Transaction::fromWords64(
        {0x400ea15a5cf1bc00ull, 0x400ea15a5cf1bc04ull});
    BaseXorCodec small(4, /*zdr=*/false);
    const Encoded enc4 = small.encode(tx);
    // element1 = upper half of the first double ^ lower half: garbage.
    EXPECT_NE(enc4.payload.word32(4), 0u);
    EXPECT_NE(enc4.payload.word32(8), 0u);
    EXPECT_GT(enc4.ones(), tx.ones()); // It actively hurts here.
    EXPECT_EQ(small.decode(enc4), tx);
}

TEST(BaseXor, PaperFigure6bMatchedBaseFindsSimilarity)
{
    Transaction tx = Transaction::fromWords64(
        {0x400ea15a5cf1bc00ull, 0x400ea15a5cf1bc04ull});
    BaseXorCodec matched(8, /*zdr=*/false);
    const Encoded enc8 = matched.encode(tx);
    EXPECT_EQ(enc8.payload.word64(0), 0x400ea15a5cf1bc00ull);
    EXPECT_EQ(enc8.payload.word64(8), 0x0000000000000004ull);
    EXPECT_EQ(matched.decode(enc8), tx);
}

TEST(BaseXor, IdenticalElementsEncodeToZero)
{
    Transaction tx = Transaction::fromWords32(
        {0xdeadbeef, 0xdeadbeef, 0xdeadbeef, 0xdeadbeef,
         0xdeadbeef, 0xdeadbeef, 0xdeadbeef, 0xdeadbeef});
    BaseXorCodec codec(4, false);
    const Encoded enc = codec.encode(tx);
    for (std::size_t off = 4; off < 32; off += 4)
        EXPECT_EQ(enc.payload.word32(off), 0u);
}

TEST(BaseXor, FixedBaseUsesElementZero)
{
    Transaction tx = Transaction::fromWords32(
        {0x000000ff, 0x000000f0, 0x0000000f, 0x000000ff});
    BaseXorCodec fixed(4, /*zdr=*/false, /*adjacent_base=*/false);
    const Encoded enc = fixed.encode(tx);
    EXPECT_EQ(enc.payload.word32(4), 0x0000000fu);  // f0 ^ ff
    EXPECT_EQ(enc.payload.word32(8), 0x000000f0u);  // 0f ^ ff
    EXPECT_EQ(enc.payload.word32(12), 0x00000000u); // ff ^ ff
    EXPECT_EQ(fixed.decode(enc), tx);
}

TEST(BaseXor, AdjacentBaseUsesOriginalNeighbour)
{
    // Adjacent-base must XOR against the neighbour's *original* value,
    // not its encoded value.
    Transaction tx = Transaction::fromWords32(
        {0x00000001, 0x00000003, 0x00000007, 0x0000000f});
    BaseXorCodec codec(4, false);
    const Encoded enc = codec.encode(tx);
    EXPECT_EQ(enc.payload.word32(4), 0x00000002u);
    EXPECT_EQ(enc.payload.word32(8), 0x00000004u);  // 7 ^ 3, not 7 ^ 2.
    EXPECT_EQ(enc.payload.word32(12), 0x00000008u);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(BaseXor, NamesDescribeConfiguration)
{
    EXPECT_EQ(BaseXorCodec(4, true).name(), "xor4+zdr");
    EXPECT_EQ(BaseXorCodec(8, false).name(), "xor8");
    EXPECT_EQ(BaseXorCodec(2, true, false).name(), "xor2+zdr(fixed)");
}

TEST(BaseXor, NoMetadata)
{
    BaseXorCodec codec(4, true);
    EXPECT_EQ(codec.metaWiresPerBeat(), 0u);
    EXPECT_TRUE(codec.stateless());
    Transaction tx(32);
    EXPECT_TRUE(codec.encode(tx).meta.empty());
}

/** Round-trip sweep: (base size, transaction size, zdr, adjacent). */
class BaseXorRoundTrip
    : public testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, bool, bool>>
{
};

TEST_P(BaseXorRoundTrip, RandomData)
{
    const auto [base, size, zdr, adjacent] = GetParam();
    if (base >= size)
        GTEST_SKIP() << "base must be smaller than transaction";

    BaseXorCodec codec(base, zdr, adjacent);
    Rng rng(0x1234 + base * 131 + size);
    for (int trial = 0; trial < 500; ++trial) {
        Transaction tx(size);
        for (std::size_t off = 0; off < size; off += 8)
            tx.setWord64(off, rng.next64());
        // Sprinkle zero and near-base elements to hit ZDR paths.
        if (trial % 3 == 0)
            tx.setWord64(8, 0);
        if (trial % 4 == 0)
            tx.setWord32(4, 0);
        const Encoded enc = codec.encode(tx);
        ASSERT_EQ(codec.decode(enc), tx);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, BaseXorRoundTrip,
    testing::Combine(testing::Values<std::size_t>(2, 4, 8, 16),
                     testing::Values<std::size_t>(16, 32, 64),
                     testing::Bool(), testing::Bool()));

/** ZDR never loses on all-zero transactions by more than 1 bit/element. */
TEST(BaseXorProperty, ZeroTransactionCost)
{
    for (std::size_t base : {2u, 4u, 8u}) {
        Transaction tx(32);
        BaseXorCodec codec(base, true);
        const Encoded enc = codec.encode(tx);
        // Base element stays zero; each XORed element costs exactly the
        // 1-bit constant.
        EXPECT_EQ(enc.ones(), 32 / base - 1);
    }
}

} // namespace
} // namespace bxt
