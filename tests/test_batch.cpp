/**
 * @file
 * Batch-path regression suite: the flat TxBatch/EncodedBatch containers,
 * the BusStats accumulation they rely on, cross-batch toggle continuity
 * (splitting a stream into batches of any size changes no counter), the
 * golden corpus replayed through the batch kernels, and the typed
 * CodecSizeError geometry contract that replaced silent scratch resizing.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "channel/bus.h"
#include "channel/channel_eval.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/codec_factory.h"
#include "verify/batch_check.h"
#include "verify/generators.h"
#include "verify/golden.h"

namespace bxt {
namespace {

using verify::GenKind;
using verify::allGenKinds;
using verify::checkGoldenFileBatch;
using verify::generate;
using verify::goldenFileName;
using verify::goldenSpecs;

/** Structured stream covering the generator families (zeros, strides,
 *  dense, neighbour flips), the inputs the batch kernels special-case. */
std::vector<Transaction>
makeStream(std::size_t count, std::size_t tx_bytes, std::uint64_t seed)
{
    Rng rng(seed);
    const std::vector<GenKind> &kinds = allGenKinds();
    std::vector<Transaction> stream;
    stream.reserve(count);
    Transaction previous(tx_bytes);
    for (std::size_t i = 0; i < count; ++i) {
        stream.push_back(
            generate(rng, tx_bytes, kinds[i % kinds.size()], previous));
        previous = stream.back();
    }
    return stream;
}

TEST(Batch, BusStatsAccumulateFieldWise)
{
    BusStats a{/*transactions=*/1, /*beats=*/8,    /*dataBits=*/256,
               /*dataOnes=*/10,    /*dataToggles=*/20,
               /*metaBits=*/8,     /*metaOnes=*/3, /*metaToggles=*/5};
    BusStats b{2, 16, 512, 100, 200, 16, 30, 50};

    BusStats sum = a;
    sum += b;
    EXPECT_EQ(sum.transactions, 3u);
    EXPECT_EQ(sum.beats, 24u);
    EXPECT_EQ(sum.dataBits, 768u);
    EXPECT_EQ(sum.dataOnes, 110u);
    EXPECT_EQ(sum.dataToggles, 220u);
    EXPECT_EQ(sum.metaBits, 24u);
    EXPECT_EQ(sum.metaOnes, 33u);
    EXPECT_EQ(sum.metaToggles, 55u);
    EXPECT_EQ(sum.ones(), 143u);
    EXPECT_EQ(sum.toggles(), 275u);

    // Zero is the identity, and += returns the accumulator.
    BusStats zero;
    EXPECT_EQ((sum += zero), sum);
}

/**
 * transmitBatch is field-identical to the per-transaction transmit loop,
 * however the stream is split: wire state and the idle accumulator carry
 * across batch boundaries exactly as across transactions.
 */
TEST(Batch, TransmitBatchSplitInvariant)
{
    const std::string spec = "dbi4"; // Metadata wires exercise both planes.
    const std::vector<Transaction> stream = makeStream(97, 32, 41);

    CodecPtr codec = makeCodec(spec, 4);
    TxBatch batch(32);
    for (const Transaction &tx : stream)
        batch.push(tx);
    EncodedBatch enc;
    codec->encodeBatch(batch, enc);

    // Reference: one transmit per transaction through a scalar Encoded.
    Bus scalar_bus(32, codec->metaWiresPerBeat(), 0.3);
    CodecPtr scalar_codec = makeCodec(spec, 4);
    Encoded scalar_enc;
    for (const Transaction &tx : stream) {
        scalar_codec->encodeInto(tx, scalar_enc);
        scalar_bus.transmit(scalar_enc);
    }

    for (std::size_t split : {std::size_t{1}, std::size_t{7},
                              std::size_t{64}, stream.size()}) {
        Bus bus(32, codec->metaWiresPerBeat(), 0.3);
        EncodedBatch piece;
        std::size_t i = 0;
        while (i < stream.size()) {
            const std::size_t chunk = std::min(split, stream.size() - i);
            piece.configure(enc.txBytes(), enc.metaWiresPerBeat(),
                            enc.metaBitsPerTx());
            piece.resize(chunk);
            for (std::size_t j = 0; j < chunk; ++j) {
                std::copy(enc.payload(i + j).begin(),
                          enc.payload(i + j).end(),
                          piece.payload(j).begin());
                std::copy(enc.meta(i + j).begin(), enc.meta(i + j).end(),
                          piece.meta(j).begin());
            }
            bus.transmitBatch(piece);
            i += chunk;
        }
        EXPECT_EQ(bus.stats(), scalar_bus.stats()) << "split " << split;
    }
}

/**
 * End to end through evalCodecOnStream: batch sizes 1, 7, and 64 produce
 * BusStats identical to the scalar reference loop — in particular the
 * cross-transaction dataToggles/metaToggles, which are the counters a
 * batch boundary could plausibly perturb.
 */
TEST(Batch, CrossBatchToggleContinuity)
{
    const std::vector<Transaction> stream = makeStream(200, 32, 97);
    for (const char *spec : {"xor4+zdr", "universal3+zdr", "dbi4",
                             "universal3+zdr|dbi1", "bd"}) {
        CodecPtr scalar = makeCodec(spec, 4);
        const BusStats want =
            evalCodecOnStream(*scalar, stream, 32, 0.3, 0).stats;
        for (std::size_t batch_tx : {1, 7, 64}) {
            CodecPtr codec = makeCodec(spec, 4);
            const BusStats got =
                evalCodecOnStream(*codec, stream, 32, 0.3, batch_tx).stats;
            EXPECT_EQ(got.dataToggles, want.dataToggles)
                << spec << " batch " << batch_tx;
            EXPECT_EQ(got.metaToggles, want.metaToggles)
                << spec << " batch " << batch_tx;
            EXPECT_EQ(got, want) << spec << " batch " << batch_tx;
        }
    }
}

/** Every checked-in golden file re-verifies through the batch kernels. */
TEST(Batch, GoldenCorpusMatchesBatchKernels)
{
    std::size_t files = 0;
    for (unsigned wires : {32u, 64u}) {
        for (const std::string &spec : goldenSpecs(wires)) {
            const std::string path = std::string(BXT_GOLDEN_DIR) + "/" +
                                     goldenFileName(spec, wires);
            ++files;
            for (const std::string &diff : checkGoldenFileBatch(path))
                ADD_FAILURE() << diff;
        }
    }
    EXPECT_GE(files, 17u);
}

/** A short batch-vs-scalar differential campaign stays in tier 1. */
TEST(Batch, DifferentialFuzzSmoke)
{
    verify::BatchFuzzOptions options;
    options.specs = {"xor4+zdr", "universal3+zdr", "dbi4",
                     "universal3+zdr|dbi1", "bd"};
    options.streamsPerSpec = 2;
    options.txPerStream = 48;
    options.batchSizes = {1, 7, 64};
    const verify::BatchFuzzReport report =
        verify::runBatchDifferentialFuzz(options);
    EXPECT_GT(report.transactionsChecked, 0u);
    for (const verify::BatchFuzzFailure &failure : report.failures)
        ADD_FAILURE() << failure.spec << " batch " << failure.batchTx
                      << ": " << failure.violation.invariant << " — "
                      << failure.violation.detail;
}

/**
 * Regression for the silent-resize bug: a default-constructed Encoded
 * (minimum-size payload, no metadata) handed to a codec configured for a
 * different geometry must throw CodecSizeError, not resize scratch
 * buffers into a silently wrong decode.
 */
TEST(Batch, DefaultEncodedGeometryThrows)
{
    // xor8: an 8-byte payload does not split into >1 8-byte elements.
    CodecPtr xor8 = makeCodec("xor8", 4);
    EXPECT_THROW(xor8->decode(Encoded{}), CodecSizeError);

    // dbi4: the default Encoded carries 0 metadata bits, not beats*groups.
    CodecPtr dbi = makeCodec("dbi4", 4);
    EXPECT_THROW(dbi->decode(Encoded{}), CodecSizeError);
}

/** TxBatch enforces its geometry at the push boundary. */
TEST(Batch, PushRejectsMismatchedSize)
{
    TxBatch batch(32);
    batch.push(Transaction(32));
    EXPECT_THROW(batch.push(Transaction(64)), CodecSizeError);
    EXPECT_EQ(batch.size(), 1u);

    // Batches with no geometry are rejected by the codec entry points.
    CodecPtr codec = makeCodec("xor4+zdr", 4);
    TxBatch empty;
    EncodedBatch enc;
    EXPECT_THROW(codec->encodeBatch(empty, enc), CodecSizeError);
}

} // namespace
} // namespace bxt
