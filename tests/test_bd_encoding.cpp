/**
 * @file
 * Unit tests for the BD-Encoding comparison baseline (paper §VI-D).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/bd_encoding.h"

namespace bxt {
namespace {

TEST(BdEncoding, FirstTransactionIsRawWithEmptyRepository)
{
    BdEncodingCodec codec;
    Transaction tx = Transaction::fromWords64(
        {0x1111111111111111ull, 0x2222222222222222ull,
         0x3333333333333333ull, 0x4444444444444444ull});
    const Encoded enc = codec.encode(tx);
    // Dissimilar words: everything transmitted raw, no valid metadata.
    EXPECT_EQ(enc.payload, tx);
    EXPECT_EQ(enc.metaOnes(), 0u);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(BdEncoding, RepeatedWordHitsRepository)
{
    BdEncodingCodec codec;
    Transaction tx = Transaction::fromWords64(
        {0xabcdef0123456789ull, 0xabcdef0123456789ull,
         0xabcdef0123456789ull, 0xabcdef0123456789ull});
    const Encoded enc = codec.encode(tx);
    // Word 0 misses (repo empty); words 1-3 match exactly -> XOR to 0.
    EXPECT_EQ(enc.payload.word64(0), 0xabcdef0123456789ull);
    EXPECT_EQ(enc.payload.word64(8), 0u);
    EXPECT_EQ(enc.payload.word64(16), 0u);
    EXPECT_EQ(enc.payload.word64(24), 0u);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(BdEncoding, SimilarWordSentAsDifference)
{
    BdEncodingCodec codec(64, 12);
    Transaction a = Transaction::fromWords64(
        {0x400e000000000000ull, 0x400e000000000001ull,
         0x400e000000000003ull, 0x400e000000000007ull});
    const Encoded enc = codec.encode(a);
    // Words 1..3 differ from word 0 by < 12 bits -> differences.
    EXPECT_LE(enc.payload.word64(8), 0xfull);
    EXPECT_LE(enc.payload.word64(16), 0xfull);
    EXPECT_EQ(codec.decode(enc), a);
}

TEST(BdEncoding, ThresholdIsStrict)
{
    // Entry differing in exactly `threshold` bits must NOT match.
    BdEncodingCodec codec(64, 4);
    Transaction first = Transaction::fromWords64(
        {0ull, 0ull, 0ull, 0ull});
    // Fill both repositories with zero words (every transfer is encoded
    // at one end and decoded at the other).
    (void)codec.decode(codec.encode(first));

    Transaction probe(32);
    probe.setWord64(0, 0x0full);       // 4 bits away: no match.
    probe.setWord64(8, 0x07ull);       // 3 bits away: match.
    const Encoded enc = codec.encode(probe);
    EXPECT_EQ(enc.payload.word64(0), 0x0full); // Raw.
    EXPECT_EQ(enc.meta[7], 0u);                // Valid bit off for word 0.
    EXPECT_EQ(enc.meta[8 + 7], 1u);            // Valid bit on for word 1.
    EXPECT_EQ(codec.decode(enc), probe);
}

TEST(BdEncoding, MetadataCarriesIndexOnes)
{
    BdEncodingCodec codec;
    Transaction zeros(32);
    (void)codec.decode(codec.encode(zeros));
    Transaction again(32);
    const Encoded enc = codec.encode(again);
    // All four words match a repository entry: 4 valid bits at least.
    EXPECT_GE(enc.metaOnes(), 4u);
    EXPECT_EQ(codec.decode(enc), again);
}

TEST(BdEncoding, DecoderStaysCoherentOverLongStream)
{
    BdEncodingCodec codec;
    Rng rng(17);
    std::uint64_t walker = 0x400e000000000000ull;
    for (int i = 0; i < 500; ++i) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 8) {
            walker += rng.nextBounded(16);
            tx.setWord64(off, walker);
        }
        const Encoded enc = codec.encode(tx);
        ASSERT_EQ(codec.decode(enc), tx) << "desync at transaction " << i;
    }
}

TEST(BdEncoding, RepositoryEvictsOldEntries)
{
    // After filling all 64 slots with junk, an early word no longer
    // matches.
    BdEncodingCodec codec(64, 12);
    Transaction marker(32);
    marker.setWord64(0, 0x123456789abcdef0ull);
    (void)codec.decode(codec.encode(marker));

    Rng rng(23);
    for (int i = 0; i < 16; ++i) { // 16 tx x 4 words = 64 insertions.
        Transaction junk(32);
        for (std::size_t off = 0; off < 32; off += 8)
            junk.setWord64(off, rng.next64());
        (void)codec.decode(codec.encode(junk));
    }

    Transaction probe(32);
    probe.setWord64(0, 0x123456789abcdef0ull);
    const Encoded enc = codec.encode(probe);
    // With the marker evicted and random junk in the repo, the word
    // should (overwhelmingly likely) be sent raw.
    EXPECT_EQ(enc.payload.word64(0), 0x123456789abcdef0ull);
    EXPECT_EQ(codec.decode(enc), probe);
}

TEST(BdEncoding, ResetClearsBothRepositories)
{
    BdEncodingCodec codec;
    Transaction tx = Transaction::fromWords64(
        {0xaaaaaaaaaaaaaaaaull, 0xaaaaaaaaaaaaaaaaull,
         0xaaaaaaaaaaaaaaaaull, 0xaaaaaaaaaaaaaaaaull});
    (void)codec.decode(codec.encode(tx));
    codec.reset();
    const Encoded enc = codec.encode(tx);
    // Fresh repo: word 0 raw again.
    EXPECT_EQ(enc.payload.word64(0), 0xaaaaaaaaaaaaaaaaull);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(BdEncoding, StatefulAndMetadataProperties)
{
    BdEncodingCodec codec;
    EXPECT_FALSE(codec.stateless());
    EXPECT_EQ(codec.metaWiresPerBeat(), 4u);
    EXPECT_EQ(BdEncodingCodec(64, 12, 8).metaWiresPerBeat(), 8u);
    EXPECT_EQ(codec.name(), "bd-encoding");
}

TEST(BdEncoding, RandomRoundTripStress)
{
    BdEncodingCodec codec;
    Rng rng(29);
    for (int i = 0; i < 1000; ++i) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 8) {
            // Mix of random, zero, and near-duplicate words.
            const int kind = static_cast<int>(rng.nextBounded(3));
            if (kind == 0)
                tx.setWord64(off, rng.next64());
            else if (kind == 1)
                tx.setWord64(off, 0);
            else
                tx.setWord64(off, 0x400e00000000000ull +
                                      rng.nextBounded(256));
        }
        const Encoded enc = codec.encode(tx);
        ASSERT_EQ(codec.decode(enc), tx);
    }
}

} // namespace
} // namespace bxt
