/**
 * @file
 * Unit tests for common/bitops.h.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/bitops.h"

namespace bxt {
namespace {

TEST(Popcount64, Basics)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(0xffffffffffffffffull), 64);
    EXPECT_EQ(popcount64(0x8000000000000001ull), 2);
    EXPECT_EQ(popcount64(0x5555555555555555ull), 32);
}

TEST(PopcountBytes, EmptyIsZero)
{
    EXPECT_EQ(popcountBytes({}), 0u);
}

TEST(PopcountBytes, CountsAcrossWordBoundary)
{
    // 11 bytes: exercises both the 8-byte fast path and the byte tail.
    std::array<std::uint8_t, 11> bytes{};
    bytes.fill(0x0f); // 4 ones per byte.
    EXPECT_EQ(popcountBytes(bytes), 44u);
}

TEST(PopcountBytes, MatchesPerByteSum)
{
    std::array<std::uint8_t, 32> bytes{};
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::uint8_t>(i * 37);
    std::size_t expected = 0;
    for (std::uint8_t b : bytes)
        expected += static_cast<std::size_t>(popcount64(b));
    EXPECT_EQ(popcountBytes(bytes), expected);
}

TEST(IsPowerOfTwo, Basics)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(65));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
}

TEST(Log2Floor, Basics)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(32), 5u);
    EXPECT_EQ(log2Floor(63), 5u);
    EXPECT_EQ(log2Floor(64), 6u);
}

TEST(WordAccess, RoundTrip64)
{
    std::array<std::uint8_t, 16> buffer{};
    storeWord64(buffer.data() + 3, 0x0123456789abcdefull); // Unaligned.
    EXPECT_EQ(loadWord64(buffer.data() + 3), 0x0123456789abcdefull);
}

TEST(WordAccess, RoundTrip32)
{
    std::array<std::uint8_t, 8> buffer{};
    storeWord32(buffer.data() + 1, 0xdeadbeefu);
    EXPECT_EQ(loadWord32(buffer.data() + 1), 0xdeadbeefu);
}

TEST(WordAccess, LittleEndianLayout)
{
    std::array<std::uint8_t, 4> buffer{};
    storeWord32(buffer.data(), 0x390c9bfbu);
    EXPECT_EQ(buffer[0], 0xfb);
    EXPECT_EQ(buffer[1], 0x9b);
    EXPECT_EQ(buffer[2], 0x0c);
    EXPECT_EQ(buffer[3], 0x39);
}

TEST(XorBytes, XorsInPlace)
{
    std::array<std::uint8_t, 12> dst{};
    std::array<std::uint8_t, 12> src{};
    for (std::size_t i = 0; i < dst.size(); ++i) {
        dst[i] = static_cast<std::uint8_t>(i);
        src[i] = static_cast<std::uint8_t>(0xf0 | i);
    }
    xorBytes(dst.data(), src.data(), dst.size());
    for (std::size_t i = 0; i < dst.size(); ++i)
        EXPECT_EQ(dst[i], static_cast<std::uint8_t>(i ^ (0xf0 | i)));
}

TEST(XorBytes, SelfXorGivesZero)
{
    std::array<std::uint8_t, 16> data{};
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 11 + 1);
    xorBytes(data.data(), data.data(), data.size());
    EXPECT_TRUE(allZero(data.data(), data.size()));
}

TEST(AllZero, DetectsNonZeroInTail)
{
    std::array<std::uint8_t, 13> data{};
    EXPECT_TRUE(allZero(data.data(), data.size()));
    data[12] = 1; // Last byte: exercises the tail loop.
    EXPECT_FALSE(allZero(data.data(), data.size()));
    data[12] = 0;
    data[3] = 1; // Within the first word.
    EXPECT_FALSE(allZero(data.data(), data.size()));
}

TEST(BytesEqual, Basics)
{
    std::array<std::uint8_t, 8> a{1, 2, 3, 4, 5, 6, 7, 8};
    std::array<std::uint8_t, 8> b = a;
    EXPECT_TRUE(bytesEqual(a.data(), b.data(), 8));
    b[7] = 9;
    EXPECT_FALSE(bytesEqual(a.data(), b.data(), 8));
}

TEST(HammingDistance, Basics)
{
    std::array<std::uint8_t, 10> a{};
    std::array<std::uint8_t, 10> b{};
    EXPECT_EQ(hammingDistance(a.data(), b.data(), a.size()), 0u);
    b[0] = 0xff;
    b[9] = 0x01; // Tail byte.
    EXPECT_EQ(hammingDistance(a.data(), b.data(), a.size()), 9u);
}

} // namespace
} // namespace bxt
