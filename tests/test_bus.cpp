/**
 * @file
 * Unit tests for the channel/bus wire-activity model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "channel/bus.h"
#include "common/bitops.h"
#include "common/rng.h"
#include "core/dbi.h"

namespace bxt {
namespace {

Encoded
plain(const Transaction &tx)
{
    Encoded enc;
    enc.payload = tx;
    return enc;
}

TEST(Bus, CountsOnesPerTransaction)
{
    Bus bus(32);
    Transaction tx(32);
    tx.data()[0] = 0xff;
    tx.data()[31] = 0x01;
    const BusStats delta = bus.transmit(plain(tx));
    EXPECT_EQ(delta.dataOnes, 9u);
    EXPECT_EQ(delta.beats, 8u);
    EXPECT_EQ(delta.dataBits, 256u);
    EXPECT_EQ(delta.transactions, 1u);
}

TEST(Bus, TogglesWithinTransaction)
{
    Bus bus(32);
    Transaction tx(32);
    // Beat 0 drives 0xff on lane 0; beat 1 drives 0x00: 8 toggles up then
    // 8 toggles down... up happens from idle.
    tx.data()[0] = 0xff; // beat 0, lane 0.
    tx.data()[4] = 0x00; // beat 1, lane 0.
    tx.data()[8] = 0xff; // beat 2, lane 0.
    const BusStats delta = bus.transmit(plain(tx));
    // idle->ff (8), ff->00 (8), 00->ff (8), ff->00 at beat 3 (8).
    EXPECT_EQ(delta.dataToggles, 32u);
}

TEST(Bus, TogglesAcrossTransactions)
{
    Bus bus(32);
    Transaction tx(32);
    for (std::size_t i = 0; i < 32; i += 4)
        tx.data()[i] = 0xf0;
    bus.transmit(plain(tx));
    // Same data again: lane 0 still holds 0xf0 from the last beat, and
    // every beat drives 0xf0 -> no new toggles.
    const BusStats delta = bus.transmit(plain(tx));
    EXPECT_EQ(delta.dataToggles, 0u);
}

TEST(Bus, IdleStartCostsOnesOfFirstBeat)
{
    Bus bus(32);
    Transaction tx(32);
    tx.data()[2] = 0x81; // beat 0 only.
    const BusStats delta = bus.transmit(plain(tx));
    // idle(0) -> 0x81 (2 toggles), back to 0 on beat 1 (2 toggles).
    EXPECT_EQ(delta.dataToggles, 4u);
}

TEST(Bus, MetaWiresCounted)
{
    DbiCodec dbi(1, 4);
    Bus bus(32, dbi.metaWiresPerBeat());
    Transaction tx(32);
    for (std::size_t i = 0; i < 32; ++i)
        tx.data()[i] = 0xff;
    const Encoded enc = dbi.encode(tx);
    const BusStats delta = bus.transmit(enc);
    EXPECT_EQ(delta.dataOnes, 0u);
    EXPECT_EQ(delta.metaOnes, 32u);
    EXPECT_EQ(delta.metaBits, 32u);
    // All 4 meta wires rise once and stay high.
    EXPECT_EQ(delta.metaToggles, 4u);
}

TEST(Bus, SixtyFourBitBus)
{
    Bus bus(64);
    Transaction tx(64);
    const BusStats delta = bus.transmit(plain(tx));
    EXPECT_EQ(delta.beats, 8u);
    EXPECT_EQ(delta.dataBits, 512u);
}

TEST(Bus, StatsAccumulateAndReset)
{
    Bus bus(32);
    Transaction tx(32);
    tx.data()[0] = 0x01;
    bus.transmit(plain(tx));
    bus.transmit(plain(tx));
    EXPECT_EQ(bus.stats().transactions, 2u);
    EXPECT_EQ(bus.stats().dataOnes, 2u);
    bus.resetStats();
    EXPECT_EQ(bus.stats().transactions, 0u);
}

TEST(Bus, ResetWiresReturnsToIdle)
{
    Bus bus(32);
    Transaction tx(32);
    for (std::size_t i = 28; i < 32; ++i)
        tx.data()[i] = 0xff; // Last beat leaves lanes high.
    bus.transmit(plain(tx));
    bus.resetWires();
    // Transmitting zeros now causes no toggles.
    const BusStats delta = bus.transmit(plain(Transaction(32)));
    EXPECT_EQ(delta.dataToggles, 0u);
}

TEST(Bus, IdleParkingIsDeterministicAndCharged)
{
    // idle_fraction = 0.5: parking happens after every 2nd transaction.
    Bus bus(32, 0, 0.5);
    Transaction tx(32);
    for (std::size_t i = 28; i < 32; ++i)
        tx.data()[i] = 0xff; // Last beat high on all lanes of beat 7.

    const BusStats first = bus.transmit(plain(tx));
    const BusStats second = bus.transmit(plain(tx));
    // The second transmit ends with an idle gap: +32 parking toggles.
    EXPECT_EQ(second.dataToggles, first.dataToggles + 32u + 32u);
    // (32 extra rising toggles at beat 7 because the wires were parked
    // low; 32 falling toggles parking again.)
}

TEST(Bus, ZeroDataNeverToggles)
{
    Bus bus(32, 0, 0.3);
    for (int i = 0; i < 10; ++i) {
        const BusStats delta = bus.transmit(plain(Transaction(32)));
        EXPECT_EQ(delta.dataToggles, 0u);
        EXPECT_EQ(delta.dataOnes, 0u);
    }
}

/**
 * Byte-lane reference model for transmit counting: the formulation
 * Bus::transmit used before it was rewritten to count word-at-a-time.
 * Ignores idle parking (tested with idle_fraction = 0).
 */
void
referenceTransmit(const Encoded &enc, unsigned data_wires,
                  std::vector<std::uint8_t> &last_data,
                  std::vector<std::uint8_t> &last_meta, BusStats &acc)
{
    const std::size_t bus_bytes = data_wires / 8;
    const std::size_t beats = enc.payload.size() / bus_bytes;
    const unsigned meta_wires = enc.metaWiresPerBeat;
    const std::uint8_t *payload = enc.payload.data();
    for (std::size_t beat = 0; beat < beats; ++beat) {
        for (std::size_t lane = 0; lane < bus_bytes; ++lane) {
            const std::uint8_t value = payload[beat * bus_bytes + lane];
            acc.dataOnes +=
                static_cast<std::uint64_t>(popcount64(value));
            acc.dataToggles += static_cast<std::uint64_t>(popcount64(
                static_cast<std::uint8_t>(value ^ last_data[lane])));
            last_data[lane] = value;
        }
        for (unsigned w = 0; w < meta_wires; ++w) {
            const std::uint8_t bit = enc.meta[beat * meta_wires + w];
            acc.metaOnes += bit;
            acc.metaToggles += (bit != last_meta[w]) ? 1u : 0u;
            last_meta[w] = bit;
        }
    }
}

TEST(Bus, WordWideCountingMatchesByteLaneReference)
{
    Rng rng(0xb05);
    for (const unsigned data_wires : {32u, 64u}) {
        const std::size_t tx_bytes = data_wires == 64 ? 64 : 32;
        DbiCodec dbi(1, data_wires / 8);
        Bus bus(data_wires, dbi.metaWiresPerBeat());
        std::vector<std::uint8_t> ref_data(data_wires / 8, 0);
        std::vector<std::uint8_t> ref_meta(dbi.metaWiresPerBeat(), 0);
        BusStats ref;

        for (int i = 0; i < 200; ++i) {
            Transaction tx(tx_bytes);
            for (std::size_t off = 0; off < tx_bytes; off += 8)
                tx.setWord64(off, rng.next64());
            const Encoded enc = dbi.encode(tx);
            bus.transmit(enc);
            referenceTransmit(enc, data_wires, ref_data, ref_meta, ref);
        }
        EXPECT_EQ(bus.stats().dataOnes, ref.dataOnes);
        EXPECT_EQ(bus.stats().dataToggles, ref.dataToggles);
        EXPECT_EQ(bus.stats().metaOnes, ref.metaOnes);
        EXPECT_EQ(bus.stats().metaToggles, ref.metaToggles);
    }
}

TEST(BusStats, Accumulate)
{
    BusStats a;
    a.dataOnes = 5;
    a.metaOnes = 2;
    a.dataToggles = 3;
    BusStats b;
    b.dataOnes = 1;
    b.metaToggles = 4;
    a += b;
    EXPECT_EQ(a.ones(), 8u);
    EXPECT_EQ(a.toggles(), 7u);
}

} // namespace
} // namespace bxt
