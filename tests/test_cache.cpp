/**
 * @file
 * Unit tests for the sectored, write-validate LLC model.
 */

#include <gtest/gtest.h>

#include <map>

#include "gpusim/cache.h"

namespace bxt {
namespace {

/** In-memory backend recording all traffic. */
class FakeMemory : public MemoryBackend
{
  public:
    Transaction readSector(std::uint64_t addr) override
    {
        ++reads;
        const auto it = contents.find(addr);
        return it == contents.end() ? Transaction(32) : it->second;
    }

    void writeSector(std::uint64_t addr, const Transaction &data) override
    {
        ++writes;
        contents[addr] = data;
    }

    std::map<std::uint64_t, Transaction> contents;
    std::size_t reads = 0;
    std::size_t writes = 0;
};

Transaction
pattern(std::uint32_t tag)
{
    Transaction tx(32);
    for (std::size_t off = 0; off < 32; off += 4)
        tx.setWord32(off, tag + static_cast<std::uint32_t>(off));
    return tx;
}

/** Small cache: 4 sets x 2 ways x 128 B lines = 1 KiB. */
SectoredCache
smallCache()
{
    return SectoredCache(1024, 2, 128, 32);
}

TEST(Cache, Geometry)
{
    SectoredCache cache = smallCache();
    EXPECT_EQ(cache.numSets(), 4u);
}

TEST(Cache, ReadMissFetchesOnlyTheSector)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    mem.contents[0] = pattern(0xa0);
    mem.contents[32] = pattern(0xb0);

    Transaction out(32);
    cache.read(0, out, mem);
    EXPECT_EQ(out, pattern(0xa0));
    EXPECT_EQ(mem.reads, 1u); // Sectored: sibling sector not fetched.
    EXPECT_EQ(cache.stats().sectorMisses, 1u);
}

TEST(Cache, SecondReadHits)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    mem.contents[64] = pattern(0xcc);
    Transaction out(32);
    cache.read(64, out, mem);
    cache.read(64, out, mem);
    cache.read(70, out, mem); // Same sector, different byte.
    EXPECT_EQ(mem.reads, 1u);
    EXPECT_EQ(cache.stats().sectorHits, 2u);
}

TEST(Cache, WriteValidateDoesNotFetch)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    cache.write(96, pattern(0x11), mem);
    EXPECT_EQ(mem.reads, 0u);
    EXPECT_EQ(cache.stats().writeValidates, 1u);

    Transaction out(32);
    cache.read(96, out, mem);
    EXPECT_EQ(out, pattern(0x11));
    EXPECT_EQ(mem.reads, 0u); // Still served from the cache.
}

TEST(Cache, DirtyEvictionWritesBack)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    // Three lines mapping to set 0 (line addr multiples of 128 * 4 sets).
    cache.write(0 * 512, pattern(0x01), mem);
    cache.write(1 * 512, pattern(0x02), mem);
    cache.write(2 * 512, pattern(0x03), mem); // Evicts the LRU line.
    EXPECT_EQ(cache.stats().lineEvictions, 1u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
    ASSERT_TRUE(mem.contents.count(0));
    EXPECT_EQ(mem.contents.at(0), pattern(0x01));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    cache.write(0 * 512, pattern(0x01), mem);
    cache.write(1 * 512, pattern(0x02), mem);
    // Touch line 0 so line 1 becomes LRU.
    Transaction out(32);
    cache.read(0 * 512, out, mem);
    cache.write(2 * 512, pattern(0x03), mem);
    EXPECT_TRUE(mem.contents.count(512)); // Line 1 was written back.
    EXPECT_FALSE(mem.contents.count(0));
}

TEST(Cache, CleanEvictionWritesNothing)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    mem.contents[0] = pattern(0xaa);
    Transaction out(32);
    cache.read(0 * 512, out, mem);
    cache.read(1 * 512, out, mem);
    cache.read(2 * 512, out, mem); // Evicts a clean line.
    EXPECT_EQ(mem.writes, 0u);
    EXPECT_EQ(cache.stats().lineEvictions, 1u);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, FlushDrainsAllDirtySectors)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    cache.write(0, pattern(0x01), mem);
    cache.write(32, pattern(0x02), mem);  // Same line, second sector.
    cache.write(640, pattern(0x03), mem); // Different set.
    cache.flush(mem);
    EXPECT_EQ(mem.writes, 3u);
    EXPECT_EQ(mem.contents.at(32), pattern(0x02));

    // After the flush everything is invalid: a read misses again.
    Transaction out(32);
    cache.read(0, out, mem);
    EXPECT_EQ(mem.reads, 1u);
    EXPECT_EQ(out, pattern(0x01));
}

TEST(Cache, DirtySectorSurvivesReadOfSiblingSector)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    mem.contents[32] = pattern(0xee);
    cache.write(0, pattern(0x77), mem);
    Transaction out(32);
    cache.read(32, out, mem); // Fetches the sibling sector.
    EXPECT_EQ(out, pattern(0xee));
    cache.flush(mem);
    EXPECT_EQ(mem.contents.at(0), pattern(0x77));
}

TEST(Cache, StatsHitRate)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    Transaction out(32);
    cache.read(0, out, mem);
    cache.read(0, out, mem);
    cache.read(0, out, mem);
    cache.read(0, out, mem);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.75);
}

TEST(Cache, OverwriteUpdatesData)
{
    SectoredCache cache = smallCache();
    FakeMemory mem;
    cache.write(0, pattern(0x01), mem);
    cache.write(0, pattern(0x02), mem);
    Transaction out(32);
    cache.read(0, out, mem);
    EXPECT_EQ(out, pattern(0x02));
    cache.flush(mem);
    EXPECT_EQ(mem.contents.at(0), pattern(0x02));
}

} // namespace
} // namespace bxt
