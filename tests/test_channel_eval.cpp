/**
 * @file
 * Unit tests for the channel evaluation driver.
 */

#include <gtest/gtest.h>

#include "channel/channel_eval.h"
#include "core/codec_factory.h"

namespace bxt {
namespace {

std::vector<Transaction>
similarStream(std::size_t count)
{
    std::vector<Transaction> stream;
    for (std::size_t i = 0; i < count; ++i) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 4)
            tx.setWord32(off, 0x390c9b00u +
                                  static_cast<std::uint32_t>(off + i));
        stream.push_back(tx);
    }
    return stream;
}

TEST(ChannelEval, BaselineNormalizedOnesIsOne)
{
    CodecPtr codec = makeCodec("baseline");
    const auto result = evalCodecOnStream(*codec, similarStream(64), 32);
    EXPECT_DOUBLE_EQ(result.normalizedOnes(), 1.0);
    EXPECT_EQ(result.stats.transactions, 64u);
}

TEST(ChannelEval, UniversalReducesOnesOnSimilarData)
{
    CodecPtr codec = makeCodec("universal3+zdr");
    const auto result = evalCodecOnStream(*codec, similarStream(64), 32);
    EXPECT_LT(result.normalizedOnes(), 0.6);
    EXPECT_GT(result.onesPerTransaction(), 0.0);
}

TEST(ChannelEval, EmptyStream)
{
    CodecPtr codec = makeCodec("baseline");
    const auto result = evalCodecOnStream(*codec, {}, 32);
    EXPECT_DOUBLE_EQ(result.normalizedOnes(), 1.0);
    EXPECT_DOUBLE_EQ(result.onesPerTransaction(), 0.0);
}

TEST(MixedDataRatio, AllDense)
{
    std::vector<Transaction> stream;
    Transaction tx(32);
    for (std::size_t off = 0; off < 32; off += 4)
        tx.setWord32(off, 0x12345678);
    stream.push_back(tx);
    EXPECT_DOUBLE_EQ(mixedDataRatio(stream), 0.0);
}

TEST(MixedDataRatio, AllZeroIsNotMixed)
{
    std::vector<Transaction> stream{Transaction(32)};
    EXPECT_DOUBLE_EQ(mixedDataRatio(stream), 0.0);
}

TEST(MixedDataRatio, MixedCounts)
{
    std::vector<Transaction> stream;
    Transaction mixed(32);
    mixed.setWord32(0, 0xdeadbeef); // One non-zero + seven zero elements.
    stream.push_back(mixed);
    Transaction dense(32);
    for (std::size_t off = 0; off < 32; off += 4)
        dense.setWord32(off, 0x1);
    stream.push_back(dense);
    EXPECT_DOUBLE_EQ(mixedDataRatio(stream), 0.5);
}

TEST(MixedDataRatio, EmptyStreamIsZero)
{
    EXPECT_DOUBLE_EQ(mixedDataRatio({}), 0.0);
}

} // namespace
} // namespace bxt
