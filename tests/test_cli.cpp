/**
 * @file
 * Cli parser tests: both `--flag VALUE` and `--flag=VALUE` spellings,
 * boolean flags, positionals, and the exit-2 error contract for unknown
 * options and misuse. Death tests are unnecessary — parse() reports
 * through its return value and exitCode().
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.h"

namespace bxt {
namespace {

/** Build argv from string literals and run parse(). */
struct ParseResult
{
    bool ok = false;
    int exitCode = 0;
};

ParseResult
parseWith(Cli &cli, std::vector<std::string> args)
{
    args.insert(args.begin(), "prog");
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (std::string &arg : args)
        argv.push_back(arg.data());
    ParseResult result;
    result.ok = cli.parse(static_cast<int>(argv.size()), argv.data());
    result.exitCode = cli.exitCode();
    return result;
}

TEST(Cli, SeparateValueForm)
{
    std::string seen;
    Cli cli("t", "test");
    cli.add("--spec", "S", "spec", [&](const std::string &v) { seen = v; });
    EXPECT_TRUE(parseWith(cli, {"--spec", "xor4+zdr"}).ok);
    EXPECT_EQ(seen, "xor4+zdr");
}

TEST(Cli, InlineEqualsValueForm)
{
    std::string seen;
    Cli cli("t", "test");
    cli.add("--spec", "S", "spec", [&](const std::string &v) { seen = v; });
    EXPECT_TRUE(parseWith(cli, {"--spec=universal3+zdr"}).ok);
    EXPECT_EQ(seen, "universal3+zdr");
}

TEST(Cli, InlineValueMayContainEquals)
{
    std::string seen;
    Cli cli("t", "test");
    cli.add("--filter", "F", "filter",
            [&](const std::string &v) { seen = v; });
    // Only the first '=' splits flag from value.
    EXPECT_TRUE(parseWith(cli, {"--filter=key=value"}).ok);
    EXPECT_EQ(seen, "key=value");
}

TEST(Cli, InlineValueMayBeEmpty)
{
    std::string seen = "unset";
    Cli cli("t", "test");
    cli.add("--out", "PATH", "path",
            [&](const std::string &v) { seen = v; });
    EXPECT_TRUE(parseWith(cli, {"--out="}).ok);
    EXPECT_EQ(seen, "");
}

TEST(Cli, BothFormsMixInOneInvocation)
{
    std::string a, b;
    int flag_hits = 0;
    Cli cli("t", "test");
    cli.add("--alpha", "A", "a", [&](const std::string &v) { a = v; });
    cli.add("--beta", "B", "b", [&](const std::string &v) { b = v; });
    cli.addFlag("--verbose", "v", [&] { ++flag_hits; });
    EXPECT_TRUE(
        parseWith(cli, {"--alpha=1", "--verbose", "--beta", "2"}).ok);
    EXPECT_EQ(a, "1");
    EXPECT_EQ(b, "2");
    EXPECT_EQ(flag_hits, 1);
}

TEST(Cli, BooleanFlagRejectsInlineValue)
{
    Cli cli("t", "test");
    cli.addFlag("--verbose", "v", [] {});
    const ParseResult result = parseWith(cli, {"--verbose=1"});
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.exitCode, 2);
}

TEST(Cli, UnknownFlagExitsTwo)
{
    Cli cli("t", "test");
    const ParseResult result = parseWith(cli, {"--nope"});
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.exitCode, 2);
}

TEST(Cli, UnknownFlagWithInlineValueExitsTwo)
{
    Cli cli("t", "test");
    const ParseResult result = parseWith(cli, {"--nope=3"});
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.exitCode, 2);
}

TEST(Cli, MissingValueExitsTwo)
{
    Cli cli("t", "test");
    cli.add("--spec", "S", "spec", [](const std::string &) {});
    const ParseResult result = parseWith(cli, {"--spec"});
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.exitCode, 2);
}

TEST(Cli, UnexpectedPositionalExitsTwo)
{
    Cli cli("t", "test");
    const ParseResult result = parseWith(cli, {"stray"});
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.exitCode, 2);
}

TEST(Cli, RegisteredPositionalIsDelivered)
{
    std::vector<std::string> seen;
    Cli cli("t", "test");
    cli.addPositional("FILE", "input",
                      [&](const std::string &v) { seen.push_back(v); });
    EXPECT_TRUE(parseWith(cli, {"a.trace", "b.trace"}).ok);
    EXPECT_EQ(seen, (std::vector<std::string>{"a.trace", "b.trace"}));
}

TEST(Cli, HelpAndVersionExitZero)
{
    for (const char *flag : {"--help", "-h", "--version"}) {
        Cli cli("t", "test");
        const ParseResult result = parseWith(cli, {flag});
        EXPECT_FALSE(result.ok);
        EXPECT_EQ(result.exitCode, 0) << flag;
    }
}

} // namespace
} // namespace bxt
