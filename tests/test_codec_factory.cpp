/**
 * @file
 * Unit tests for the codec spec parser.
 */

#include <gtest/gtest.h>

#include "core/codec_factory.h"

namespace bxt {
namespace {

TEST(CodecFactory, ParsesBaseline)
{
    EXPECT_EQ(makeCodec("baseline")->name(), "baseline");
    EXPECT_EQ(makeCodec("identity")->name(), "baseline");
}

TEST(CodecFactory, ParsesXorVariants)
{
    EXPECT_EQ(makeCodec("xor4")->name(), "xor4");
    EXPECT_EQ(makeCodec("xor4+zdr")->name(), "xor4+zdr");
    EXPECT_EQ(makeCodec("xor8+zdr+fixed")->name(), "xor8+zdr(fixed)");
    EXPECT_EQ(makeCodec("xor2")->name(), "xor2");
    EXPECT_EQ(makeCodec("xor16")->name(), "xor16");
}

TEST(CodecFactory, ParsesUniversal)
{
    EXPECT_EQ(makeCodec("universal")->name(), "universal3");
    EXPECT_EQ(makeCodec("universal4+zdr")->name(), "universal4+zdr");
}

TEST(CodecFactory, ParsesDbiAndBd)
{
    EXPECT_EQ(makeCodec("dbi1")->name(), "dbi1");
    EXPECT_EQ(makeCodec("dbi4")->name(), "dbi4");
    EXPECT_EQ(makeCodec("dbi-ac1")->name(), "dbi-ac1");
    EXPECT_EQ(makeCodec("dbi-ac4")->name(), "dbi-ac4");
    EXPECT_EQ(makeCodec("bd")->name(), "bd-encoding");
}

TEST(CodecFactory, ParsesPipelines)
{
    CodecPtr codec = makeCodec("universal3+zdr|dbi1");
    EXPECT_EQ(codec->name(), "universal3+zdr|dbi1");
    EXPECT_EQ(codec->metaWiresPerBeat(), 4u);
}

TEST(CodecFactory, BusBytesPropagates)
{
    EXPECT_EQ(makeCodec("dbi1", 8)->metaWiresPerBeat(), 8u);
    EXPECT_EQ(makeCodec("bd", 8)->metaWiresPerBeat(), 8u);
}

TEST(CodecFactory, ParsedCodecsRoundTrip)
{
    for (const std::string &spec : paperSchemeSpecs()) {
        CodecPtr codec = makeCodec(spec);
        Transaction tx = Transaction::fromWords32(
            {0x390c9bfb, 0x390c90f9, 0x390c88f8, 0x390c88f9,
             0x00000000, 0x390c78f9, 0x390c78f8, 0x390c70f9});
        const Encoded enc = codec->encode(tx);
        EXPECT_EQ(codec->decode(enc), tx) << spec;
    }
}

TEST(CodecFactory, PaperSchemeListShape)
{
    const auto specs = paperSchemeSpecs();
    EXPECT_EQ(specs.size(), 9u);
    EXPECT_EQ(specs.front(), "baseline");
    EXPECT_EQ(specs.back(), "bd");
}

TEST(CodecFactoryDeath, RejectsMalformedSpecs)
{
    EXPECT_EXIT(makeCodec(""), testing::ExitedWithCode(1), "empty spec");
    EXPECT_EXIT(makeCodec("xor3"), testing::ExitedWithCode(1),
                "base size");
    EXPECT_EXIT(makeCodec("universal9"), testing::ExitedWithCode(1),
                "stages");
    EXPECT_EXIT(makeCodec("dbi3"), testing::ExitedWithCode(1), "group");
    EXPECT_EXIT(makeCodec("frobnicate"), testing::ExitedWithCode(1),
                "unknown stage");
    EXPECT_EXIT(makeCodec("xor4+bogus"), testing::ExitedWithCode(1),
                "unknown flag");
    EXPECT_EXIT(makeCodec("bd+zdr"), testing::ExitedWithCode(1),
                "no flags");
}

} // namespace
} // namespace bxt
